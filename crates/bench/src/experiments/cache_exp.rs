//! Figures 11b and 11c: MJoin sensitivity to cache size (§5.2.4).
//!
//! TPC-H Q5 — the six-table join whose input nearly covers the dataset —
//! under shrinking MJoin caches. Shrinking the cache forces evictions of
//! objects still needed by pending subplans, which must be refetched in
//! reissue cycles: execution time and GET counts climb steeply below
//! ~20 % of the dataset size. Figure 11c repeats the sweep at SF-100
//! (127 objects, 14 630 subplans).

use skipper_core::driver::{EngineKind, Scenario};
use skipper_datagen::tpch;

use crate::ctx::Ctx;
use crate::experiments::params::{DIVISOR_LARGE, DIVISOR_MAIN, GIB, SF_LARGE, SF_MAIN};
use crate::report::{secs, Table};

/// One cache-sweep point.
#[derive(Clone, Copy, Debug)]
pub struct CacheRow {
    /// Cache size in GiB (= objects, at 1 GiB per object).
    pub cache_gib: u64,
    /// Mean Q5 execution time across the 5 clients.
    pub exec_secs: f64,
    /// Total GET requests issued by one client (initial + reissues).
    pub gets_per_client: u64,
}

fn sweep(ctx: &mut Ctx, sf: u32, divisor: u64, cache_gib: &[u64], clients: usize) -> Vec<CacheRow> {
    let ds = ctx.tpch(sf, divisor);
    let q5 = tpch::q5(&ds);
    cache_gib
        .iter()
        .map(|&gib| {
            let res = Scenario::new((*ds).clone())
                .clients(clients)
                .engine(EngineKind::Skipper)
                .cache_bytes(gib * GIB)
                .repeat_query(q5.clone(), 1)
                .run();
            CacheRow {
                cache_gib: gib,
                exec_secs: res.mean_query_secs(),
                gets_per_client: res.total_gets() / clients as u64,
            }
        })
        .collect()
}

/// Runs Figure 11b: SF-50 Q5, caches 10-30 GB, 5 clients.
pub fn fig11b_rows(ctx: &mut Ctx) -> Vec<CacheRow> {
    sweep(ctx, SF_MAIN, DIVISOR_MAIN, &[10, 15, 20, 25, 30], 5)
}

/// The vanilla Q5 reference time quoted alongside Figure 11b
/// ("the average query execution time under vanilla PostgreSQL was
/// 3,710 seconds").
pub fn fig11b_vanilla_reference(ctx: &mut Ctx) -> f64 {
    let ds = ctx.tpch(SF_MAIN, DIVISOR_MAIN);
    let q5 = tpch::q5(&ds);
    Scenario::new((*ds).clone())
        .clients(5)
        .engine(EngineKind::Vanilla)
        .repeat_query(q5, 1)
        .run()
        .mean_query_secs()
}

/// Figure 11b as a printable table.
pub fn fig11b(ctx: &mut Ctx) -> Table {
    let mut t = Table::new(
        "Figure 11b: MJoin cache sensitivity (TPC-H SF-50 Q5, 5 clients)",
        &["cache (GB)", "avg exec (s)", "GET requests"],
    );
    for r in fig11b_rows(ctx) {
        t.push_row(vec![
            r.cache_gib.to_string(),
            secs(r.exec_secs),
            r.gets_per_client.to_string(),
        ]);
    }
    t.push_row(vec![
        "vanilla ref".into(),
        secs(fig11b_vanilla_reference(ctx)),
        "66".into(),
    ]);
    t
}

/// Runs Figure 11c: SF-100 Q5, caches 14-42 objects (10-30 % of the
/// dataset in 5 % steps), 5 clients.
pub fn fig11c_rows(ctx: &mut Ctx) -> Vec<CacheRow> {
    sweep(ctx, SF_LARGE, DIVISOR_LARGE, &[14, 21, 28, 35, 42], 5)
}

/// Figure 11c as a printable table.
pub fn fig11c(ctx: &mut Ctx) -> Table {
    let mut t = Table::new(
        "Figure 11c: MJoin cache sensitivity at scale (TPC-H SF-100 Q5, 5 clients, 127 objects, 14630 subplans)",
        &["cache (objects)", "avg exec (s)", "GET requests"],
    );
    for r in fig11c_rows(ctx) {
        t.push_row(vec![
            r.cache_gib.to_string(),
            secs(r.exec_secs),
            r.gets_per_client.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinking_cache_inflates_gets_and_time() {
        // Miniature sweep: SF-8 Q5 (lineitem 8, orders 2, customer 1,
        // dims 1) with caches from roomy to tight.
        let mut ctx = Ctx::new();
        let ds = ctx.tpch(8, 400_000);
        let q5 = tpch::q5(&ds);
        let objects = ds.objects_for_query(&q5) as u64;
        let run = |gib: u64| {
            let res = Scenario::new((*ds).clone())
                .clients(2)
                .engine(EngineKind::Skipper)
                .cache_bytes(gib * GIB)
                .repeat_query(q5.clone(), 1)
                .run();
            (res.mean_query_secs(), res.total_gets() / 2)
        };
        let (t_big, g_big) = run(objects); // everything fits
        let (t_small, g_small) = run(6); // one object per relation
        assert_eq!(g_big, objects, "roomy cache must not reissue");
        assert!(
            g_small > g_big,
            "tight cache must reissue: {g_small} !> {g_big}"
        );
        assert!(t_small > t_big);
    }
}
