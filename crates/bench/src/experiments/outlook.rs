//! The paper's §5.2.1/§7 outlook claim, quantified.
//!
//! "We are neither saturating the storage I/O throughput (1.2 GB/s) nor
//! the network bandwidth (10 Gb/s) with our current Swift middleware.
//! Thus, by parallelizing the servicing of requests within a group, we
//! can reduce transfer time substantially. With such improvements,
//! Skipper would outperform PostgreSQL by a big margin and offer
//! performance comparable to conventional disk-based storage services."
//!
//! This experiment enables the improvement the authors could not ship:
//! [`Scenario::streams`] opens parallel service-pipeline slots per
//! device, modelling concurrent request servicing against the spun-up
//! disk group faithfully (transfers overlap; each stream still runs at
//! the per-stream rate). The historical bandwidth-multiplier model this
//! experiment used before the pipeline landed survives as
//! `StreamModel::BandwidthMultiplier`; the `streams` experiment A/Bs
//! the two.

use skipper_core::driver::{EngineKind, Scenario};
use skipper_datagen::tpch;

use crate::ctx::Ctx;
use crate::experiments::params::{DIVISOR_MAIN, GIB, SF_MAIN};
use crate::report::{secs, Table};

/// One outlook point.
#[derive(Clone, Copy, Debug)]
pub struct OutlookRow {
    /// Concurrent clients.
    pub clients: usize,
    /// Vanilla on the CSD (serialized middleware).
    pub vanilla_secs: f64,
    /// Skipper, serialized middleware (the paper's prototype).
    pub skipper_1x_secs: f64,
    /// Skipper with 5 parallel intra-group streams (the outlook).
    pub skipper_5x_secs: f64,
    /// The uncontended HDD ideal.
    pub ideal_secs: f64,
}

/// Runs the outlook sweep: 1-5 clients, Q12.
pub fn outlook_rows(ctx: &mut Ctx) -> Vec<OutlookRow> {
    let ds = ctx.tpch(SF_MAIN, DIVISOR_MAIN);
    let q12 = tpch::q12(&ds);
    let ideal = crate::experiments::baseline::ideal_hdd_secs(&ds, &q12);
    (1..=5)
        .map(|clients| {
            let run = |engine, streams: u32| {
                Scenario::new((*ds).clone())
                    .clients(clients)
                    .engine(engine)
                    .cache_bytes(30 * GIB)
                    .parallel_streams(streams)
                    .repeat_query(q12.clone(), 1)
                    .run()
                    .mean_query_secs()
            };
            OutlookRow {
                clients,
                vanilla_secs: run(EngineKind::Vanilla, 1),
                skipper_1x_secs: run(EngineKind::Skipper, 1),
                skipper_5x_secs: run(EngineKind::Skipper, 5),
                ideal_secs: ideal,
            }
        })
        .collect()
}

/// The outlook as a printable table.
pub fn outlook(ctx: &mut Ctx) -> Table {
    let mut t = Table::new(
        "Outlook (§7): Skipper with parallel intra-group servicing (Q12, S=10s)",
        &[
            "clients",
            "PostgreSQL",
            "Skipper (1 stream)",
            "Skipper (5 streams)",
            "Ideal HDD",
        ],
    );
    for r in outlook_rows(ctx) {
        t.push_row(vec![
            r.clients.to_string(),
            secs(r.vanilla_secs),
            secs(r.skipper_1x_secs),
            secs(r.skipper_5x_secs),
            secs(r.ideal_secs),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_streams_deliver_the_paper_outlook() {
        let mut ctx = Ctx::new();
        let ds = ctx.tpch(4, 100_000);
        let q12 = tpch::q12(&ds);
        let run = |streams: u32| {
            Scenario::new((*ds).clone())
                .clients(4)
                .engine(EngineKind::Skipper)
                .cache_bytes(10 << 30)
                .parallel_streams(streams)
                .repeat_query(q12.clone(), 1)
                .run()
                .mean_query_secs()
        };
        let serial = run(1);
        let parallel = run(5);
        // Transfer-dominated workload: 5 pipeline slots overlap the
        // intra-group transfers. Unlike the old bandwidth multiplier
        // (which divided every transfer by 5 unconditionally), the
        // honest pipeline is bounded by per-stream bandwidth and by
        // how many requests are actually pending per residency, so the
        // gain lands just under 2× here rather than ~5×.
        assert!(
            parallel < serial / 1.7,
            "parallel {parallel:.0}s !<< serial {serial:.0}s"
        );
        // "Performance comparable to conventional disk-based storage":
        // within ~2x of the uncontended ideal even with 4 tenants.
        let ideal = crate::experiments::baseline::ideal_hdd_secs(&ds, &q12);
        assert!(
            parallel < 2.0 * ideal,
            "parallel {parallel:.0}s vs ideal {ideal:.0}s"
        );
    }
}
