//! Figures 4 and 5: the motivating baseline pathology (§3.2).
//!
//! Vanilla PostgreSQL over a shared CSD: per-segment pull-based GETs make
//! every pair of consecutive requests pay a full round of group switches,
//! so execution time grows like `S × C × D` and is hypersensitive to the
//! switch latency.

use skipper_core::driver::{EngineKind, Scenario};
use skipper_csd::LayoutPolicy;
use skipper_datagen::tpch;
use skipper_sim::SimDuration;

use crate::ctx::Ctx;
use crate::experiments::params::{DIVISOR_MAIN, SF_MAIN};
use crate::report::{secs, Table};

/// The "PostgreSQL-on-HDD (ideal)" reference: on the HDD capacity tier
/// every tenant effectively has a dedicated 110 MB/s stream (the RAID
/// array's 1.2 GB/s aggregate is not bandwidth-bound at five streams),
/// which is why the paper's ideal line in Figure 4 stays flat as clients
/// are added. Modelled as an uncontended single-client run.
pub fn ideal_hdd_secs(
    ds: &skipper_datagen::Dataset,
    q: &skipper_relational::query::QuerySpec,
) -> f64 {
    Scenario::new(ds.clone())
        .engine(EngineKind::Vanilla)
        .layout(LayoutPolicy::AllInOne)
        .repeat_query(q.clone(), 1)
        .run()
        .mean_query_secs()
}

/// One Figure 4 point.
#[derive(Clone, Copy, Debug)]
pub struct Fig4Row {
    /// Concurrent clients.
    pub clients: usize,
    /// Mean query time on the CSD (one group per client).
    pub on_csd_secs: f64,
    /// Mean query time on the emulated HDD tier (all data in one group).
    pub on_hdd_secs: f64,
}

/// Runs Figure 4: vanilla PostgreSQL, TPC-H Q12, 1-5 clients, S = 10 s.
pub fn fig4_rows(ctx: &mut Ctx) -> Vec<Fig4Row> {
    let ds = ctx.tpch(SF_MAIN, DIVISOR_MAIN);
    let q12 = tpch::q12(&ds);
    let ideal = ideal_hdd_secs(&ds, &q12);
    (1..=5)
        .map(|clients| {
            let on_csd = Scenario::new((*ds).clone())
                .clients(clients)
                .engine(EngineKind::Vanilla)
                .layout(LayoutPolicy::OneClientPerGroup)
                .repeat_query(q12.clone(), 1)
                .run();
            Fig4Row {
                clients,
                on_csd_secs: on_csd.mean_query_secs(),
                on_hdd_secs: ideal,
            }
        })
        .collect()
}

/// Figure 4 as a printable table.
pub fn fig4(ctx: &mut Ctx) -> Table {
    let mut t = Table::new(
        "Figure 4: vanilla PostgreSQL on CSD vs HDD (TPC-H Q12, S=10s, avg exec s)",
        &["clients", "PostgreSQL-on-CSD", "PostgreSQL-on-HDD (ideal)"],
    );
    for r in fig4_rows(ctx) {
        t.push_row(vec![
            r.clients.to_string(),
            secs(r.on_csd_secs),
            secs(r.on_hdd_secs),
        ]);
    }
    t
}

/// One Figure 5 point.
#[derive(Clone, Copy, Debug)]
pub struct Fig5Row {
    /// Group-switch latency in seconds.
    pub switch_secs: u64,
    /// Mean query time (5 clients).
    pub exec_secs: f64,
}

/// Runs Figure 5: vanilla, 5 clients, switch latency 0-20 s.
pub fn fig5_rows(ctx: &mut Ctx) -> Vec<Fig5Row> {
    let ds = ctx.tpch(SF_MAIN, DIVISOR_MAIN);
    let q12 = tpch::q12(&ds);
    [0u64, 5, 10, 15, 20]
        .iter()
        .map(|&s| {
            let res = Scenario::new((*ds).clone())
                .clients(5)
                .engine(EngineKind::Vanilla)
                .switch_latency(SimDuration::from_secs(s))
                .repeat_query(q12.clone(), 1)
                .run();
            Fig5Row {
                switch_secs: s,
                exec_secs: res.mean_query_secs(),
            }
        })
        .collect()
}

/// Figure 5 as a printable table.
pub fn fig5(ctx: &mut Ctx) -> Table {
    let mut t = Table::new(
        "Figure 5: vanilla sensitivity to group-switch latency (5 clients, Q12, avg exec s)",
        &["switch latency (s)", "avg exec (s)"],
    );
    for r in fig5_rows(ctx) {
        t.push_row(vec![r.switch_secs.to_string(), secs(r.exec_secs)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_ctx_rows() -> Vec<Fig4Row> {
        // Tests run the same code at SF-4 via a private context to stay
        // fast in debug builds.
        let mut ctx = Ctx::new();
        let ds = ctx.tpch(4, 100_000);
        let q12 = tpch::q12(&ds);
        let ideal = ideal_hdd_secs(&ds, &q12);
        (1..=3)
            .map(|clients| {
                let on_csd = Scenario::new((*ds).clone())
                    .clients(clients)
                    .engine(EngineKind::Vanilla)
                    .repeat_query(q12.clone(), 1)
                    .run();
                Fig4Row {
                    clients,
                    on_csd_secs: on_csd.mean_query_secs(),
                    on_hdd_secs: ideal,
                }
            })
            .collect()
    }

    #[test]
    fn csd_time_grows_with_clients_hdd_stays_flatter() {
        let rows = small_ctx_rows();
        // CSD time grows superlinearly vs the single-client case...
        assert!(rows[2].on_csd_secs > 2.0 * rows[0].on_csd_secs);
        // ...and the no-switch configuration is always faster.
        for r in &rows {
            assert!(r.on_hdd_secs <= r.on_csd_secs + 1e-9);
        }
        // One client on its own group = HDD-identical (no switches).
        assert!((rows[0].on_csd_secs - rows[0].on_hdd_secs).abs() < 1e-6);
    }

    #[test]
    fn latency_sensitivity_is_superlinear_for_vanilla() {
        let mut ctx = Ctx::new();
        let ds = ctx.tpch(4, 100_000);
        let q12 = tpch::q12(&ds);
        let run = |s: u64| {
            Scenario::new((*ds).clone())
                .clients(3)
                .engine(EngineKind::Vanilla)
                .switch_latency(SimDuration::from_secs(s))
                .repeat_query(q12.clone(), 1)
                .run()
                .mean_query_secs()
        };
        let t0 = run(0);
        let t10 = run(10);
        let t20 = run(20);
        assert!(t10 > t0);
        // Linear-in-S growth: the S=20 delta is ~2× the S=10 delta.
        let d10 = t10 - t0;
        let d20 = t20 - t0;
        assert!(
            (d20 / d10 - 2.0).abs() < 0.2,
            "expected linear growth in S, got d10={d10:.1} d20={d20:.1}"
        );
    }
}
