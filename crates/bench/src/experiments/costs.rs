//! Table 1, Figure 2 and Figure 3: storage-tiering economics.

use skipper_cost::model::{CsdTiering, StorageConfig, REFERENCE_DB_GB};
use skipper_cost::tiers::{DevicePricing, TierFractions, CSD_PRICE_POINTS};

use crate::report::{factor, Table};

/// Table 1: acquisition cost in $/GB and data fraction per device class.
pub fn table1() -> Table {
    let p = DevicePricing::default();
    let mut t = Table::new(
        "Table 1: acquisition cost ($/GB) and data placement per tiering strategy",
        &[
            "strategy",
            "SSD",
            "15k-HDD",
            "7.2k-HDD",
            "tape",
            "$/GB blended",
        ],
    );
    t.push_row(vec![
        "cost $/GB".into(),
        format!("{:.1}", p.ssd),
        format!("{:.1}", p.hdd_15k),
        format!("{:.1}", p.hdd_7k2),
        format!("{:.1}", p.tape),
        "-".into(),
    ]);
    for (name, f) in [
        ("2-tier", TierFractions::TWO_TIER),
        ("3-tier", TierFractions::THREE_TIER),
        ("4-tier", TierFractions::FOUR_TIER),
    ] {
        t.push_row(vec![
            name.into(),
            format!("{:.0}%", f.ssd * 100.0),
            format!("{:.0}%", f.hdd_15k * 100.0),
            format!("{:.1}%", f.hdd_7k2 * 100.0),
            format!("{:.1}%", f.tape * 100.0),
            format!("{:.4}", f.dollars_per_gb(&p)),
        ]);
    }
    t
}

/// Figure 2 rows: `(label, cost in k$ for the 100 TB database)`.
pub fn fig2_rows() -> Vec<(&'static str, f64)> {
    let p = DevicePricing::default();
    StorageConfig::ALL
        .iter()
        .map(|&c| (c.label(), c.cost(&p, REFERENCE_DB_GB) / 1_000.0))
        .collect()
}

/// Figure 2: cost of a 100 TB database under each storage configuration.
pub fn fig2() -> Table {
    let mut t = Table::new(
        "Figure 2: cost of a 100 TB database (k$)",
        &["configuration", "cost (k$)"],
    );
    for (label, k) in fig2_rows() {
        t.push_row(vec![label.into(), format!("{k:.2}")]);
    }
    t
}

/// Figure 3 rows: `(tiering, csd $/GB, traditional k$, csd k$, savings×)`.
pub fn fig3_rows() -> Vec<(&'static str, f64, f64, f64, f64)> {
    let p = DevicePricing::default();
    let mut rows = Vec::new();
    for tiering in [CsdTiering::ThreeTier, CsdTiering::FourTier] {
        for &price in &CSD_PRICE_POINTS {
            let trad = tiering.traditional_cost(&p, REFERENCE_DB_GB) / 1_000.0;
            let csd = tiering.csd_cost(&p, price, REFERENCE_DB_GB) / 1_000.0;
            rows.push((tiering.label(), price, trad, csd, trad / csd));
        }
    }
    rows
}

/// Figure 3: savings from replacing capacity+archival tiers with a CSD.
pub fn fig3() -> Table {
    let mut t = Table::new(
        "Figure 3: CSD-based cold storage tier vs traditional hierarchy (100 TB, k$)",
        &[
            "hierarchy",
            "CSD $/GB",
            "traditional",
            "with CST",
            "savings",
        ],
    );
    for (label, price, trad, csd, save) in fig3_rows() {
        t.push_row(vec![
            label.into(),
            format!("{price:.2}"),
            format!("{trad:.1}"),
            format!("{csd:.1}"),
            format!("{}x", factor(save)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_reproduces_paper_bars() {
        let rows = fig2_rows();
        let get = |label: &str| rows.iter().find(|(l, _)| *l == label).unwrap().1;
        assert!((get("All-SSD") - 7680.0).abs() < 0.01);
        assert!((get("All-SCSI") - 1382.4).abs() < 0.01);
        assert!((get("All-SATA") - 460.8).abs() < 0.01);
        assert!((get("All-tape") - 20.48).abs() < 0.01);
        assert!((get("2-Tier") - 783.36).abs() < 0.01);
        assert!((get("3-Tier") - 367.872).abs() < 0.01);
        assert!((get("4-Tier") - 493.824).abs() < 0.01);
    }

    #[test]
    fn fig3_reproduces_paper_factors() {
        let rows = fig3_rows();
        let get = |label: &str, price: f64| {
            rows.iter()
                .find(|(l, p, ..)| *l == label && (*p - price).abs() < 1e-9)
                .unwrap()
                .4
        };
        assert!((get("3-Tier", 0.1) - 1.70).abs() < 0.01);
        assert!((get("4-Tier", 0.1) - 1.44).abs() < 0.01);
        assert!((get("3-Tier", 0.2) - 1.63).abs() < 0.01);
        assert!((get("4-Tier", 0.2) - 1.40).abs() < 0.01);
        assert!((get("3-Tier", 1.0) - 1.24).abs() < 0.01);
        assert!((get("4-Tier", 1.0) - 1.17).abs() < 0.01);
    }

    #[test]
    fn tables_render() {
        assert!(table1().to_string().contains("4-tier"));
        assert!(fig2().to_string().contains("All-tape"));
        assert!(fig3().to_string().contains("with CST"));
    }
}
