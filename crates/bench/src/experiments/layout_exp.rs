//! Figure 11a: sensitivity to the CSD data layout (§5.2.3).
//!
//! Four clients, Q12, four placements: all tenants in one group
//! (`Allin1`), two per group (`2perG`), one per group (`1perG`), and the
//! `Increm.` split where each tenant's data straddles two groups.

use skipper_core::driver::{EngineKind, Scenario};
use skipper_csd::LayoutPolicy;
use skipper_datagen::tpch;

use crate::ctx::Ctx;
use crate::experiments::params::{DIVISOR_MAIN, GIB, SF_MAIN};
use crate::report::{secs, Table};

/// One Figure 11a point.
#[derive(Clone, Copy, Debug)]
pub struct Fig11aRow {
    /// Layout label (paper x-axis).
    pub layout: &'static str,
    /// Vanilla mean execution time.
    pub vanilla_secs: f64,
    /// Skipper mean execution time.
    pub skipper_secs: f64,
}

/// All four layouts in figure order.
pub const LAYOUTS: [LayoutPolicy; 4] = [
    LayoutPolicy::AllInOne,
    LayoutPolicy::TwoClientsPerGroup,
    LayoutPolicy::OneClientPerGroup,
    LayoutPolicy::Incremental,
];

/// Runs Figure 11a: 4 clients, Q12, the four layouts, both engines.
pub fn fig11a_rows(ctx: &mut Ctx) -> Vec<Fig11aRow> {
    let ds = ctx.tpch(SF_MAIN, DIVISOR_MAIN);
    let q12 = tpch::q12(&ds);
    LAYOUTS
        .iter()
        .map(|&layout| {
            let run = |engine| {
                Scenario::new((*ds).clone())
                    .clients(4)
                    .engine(engine)
                    .layout(layout)
                    .cache_bytes(30 * GIB)
                    .repeat_query(q12.clone(), 1)
                    .run()
                    .mean_query_secs()
            };
            Fig11aRow {
                layout: layout.label(),
                vanilla_secs: run(EngineKind::Vanilla),
                skipper_secs: run(EngineKind::Skipper),
            }
        })
        .collect()
}

/// Figure 11a as a printable table.
pub fn fig11a(ctx: &mut Ctx) -> Table {
    let mut t = Table::new(
        "Figure 11a: sensitivity to data layout (4 clients, Q12, avg exec s)",
        &["layout", "PostgreSQL", "Skipper"],
    );
    for r in fig11a_rows(ctx) {
        t.push_row(vec![
            r.layout.into(),
            secs(r.vanilla_secs),
            secs(r.skipper_secs),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_shapes_hold_in_miniature() {
        let mut ctx = Ctx::new();
        let ds = ctx.tpch(4, 100_000);
        let q12 = tpch::q12(&ds);
        let run = |engine, layout| {
            Scenario::new((*ds).clone())
                .clients(4)
                .engine(engine)
                .layout(layout)
                .cache_bytes(10 * GIB)
                .repeat_query(q12.clone(), 1)
                .run()
                .mean_query_secs()
        };
        // Vanilla degrades as data fans out across groups...
        let v_allin1 = run(EngineKind::Vanilla, LayoutPolicy::AllInOne);
        let v_2perg = run(EngineKind::Vanilla, LayoutPolicy::TwoClientsPerGroup);
        let v_1perg = run(EngineKind::Vanilla, LayoutPolicy::OneClientPerGroup);
        assert!(v_allin1 < v_2perg);
        assert!(v_2perg < v_1perg);
        // ...while Skipper is insensitive between 2perG and 1perG (§5.2.3).
        let s_allin1 = run(EngineKind::Skipper, LayoutPolicy::AllInOne);
        let s_2perg = run(EngineKind::Skipper, LayoutPolicy::TwoClientsPerGroup);
        let s_1perg = run(EngineKind::Skipper, LayoutPolicy::OneClientPerGroup);
        let drift = (s_1perg - s_2perg).abs() / s_2perg;
        assert!(drift < 0.25, "skipper layout drift {drift:.2}");
        // With no switches both engines come close (paper: "similar
        // execution time under the all-in-one case").
        assert!(s_allin1 <= v_1perg);
        // And Skipper beats vanilla whenever switches exist.
        assert!(s_1perg < v_1perg);
    }
}
