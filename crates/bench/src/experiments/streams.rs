//! Intra-group parallel servicing: the §5.2.1 stream sweep.
//!
//! The paper's prototype middleware serialized request servicing and
//! §5.2.1 observes that "by parallelizing the servicing of requests
//! within a group, we can reduce transfer time substantially" — the
//! spun-up Pelican group sustains 1-2 GB/s while a single stream sees
//! ~110 MB/s. This experiment quantifies that claim on the mixed-tenant
//! fleet: 1→8 service-pipeline streams × 1→4 CSD shards, reporting the
//! makespan, the intra-group transfer *wall* time (the quantity §5.2.1
//! says parallelism compresses), the stream-seconds of transfer work
//! (invariant across stream counts — same bytes, same per-stream rate),
//! and the overlap/utilization rollup. As streams grow, the transfer
//! wall approaches `stream_secs / streams` and the makespan approaches
//! the *switch-limited bound* (switch wall + residual serial work).
//!
//! The historical `StreamModel::BandwidthMultiplier` — which modelled
//! the same improvement as a flat bandwidth constant — rides along as
//! an A/B column at each stream count: it reaches similar makespans on
//! saturated queues but reports no overlap (it *is* serial), which is
//! exactly why it was demoted to a compat mode.

use std::sync::Arc;

use skipper_core::driver::Scenario;
use skipper_core::runtime::{SkipperFactory, StreamModel, VanillaFactory, Workload};

use crate::ctx::Ctx;
use crate::experiments::mixed;
use crate::experiments::params::GIB;
use crate::report::{secs, Table};

/// One (streams, shards, model) cell of the sweep.
#[derive(Clone, Debug)]
pub struct StreamsRow {
    /// Transfer streams per shard.
    pub streams: u32,
    /// Fleet size.
    pub shards: usize,
    /// `"pipeline"` or `"multiplier"` (the compat A/B).
    pub model: &'static str,
    /// Virtual makespan of the whole fleet run.
    pub makespan_secs: f64,
    /// Mean per-query execution time.
    pub mean_query_secs: f64,
    /// Wall-clock seconds with ≥ 1 stream transferring (summed over
    /// shards) — the intra-group transfer time §5.2.1 compresses.
    pub transfer_wall_secs: f64,
    /// Stream-seconds of transfer work (invariant in stream count).
    pub transfer_stream_secs: f64,
    /// Mean transfer concurrency (`stream_secs / wall_secs`).
    pub overlap: f64,
    /// Wall-clock seconds spent switching (summed over shards).
    pub switching_secs: f64,
    /// Total paid group switches across all shards.
    pub total_switches: u64,
}

/// Runs the mixed-tenant fleet (the four Figure 8 benchmark tenants,
/// all on Skipper) at one configuration. All-Skipper is the §5.2.1
/// setting: Skipper issues its working set upfront, so the middleware
/// is what serializes servicing — a pull-based tenant serializes at
/// the *client* protocol and no amount of device streams can help it
/// (see [`vanilla_pull_cells`] for that control).
fn run_cell(
    tenants: &[(
        &'static str,
        Arc<skipper_datagen::Dataset>,
        skipper_relational::query::QuerySpec,
    )],
    reps: usize,
    streams: u32,
    shards: usize,
    model: StreamModel,
) -> StreamsRow {
    let workloads: Vec<Workload> = tenants
        .iter()
        .map(|(_, ds, q)| {
            Workload::new(Arc::clone(ds))
                .repeat_query(q.clone(), reps)
                .engine(SkipperFactory::default().cache_bytes(30 * GIB))
        })
        .collect();
    let res = Scenario::from_workloads(workloads)
        .shards(shards)
        .streams(streams)
        .stream_model(model)
        .run();
    let rollup = res.stream_rollup();
    StreamsRow {
        streams,
        shards,
        model: match model {
            StreamModel::Pipeline => "pipeline",
            StreamModel::BandwidthMultiplier => "multiplier",
        },
        makespan_secs: res.makespan.as_secs_f64(),
        mean_query_secs: res.mean_query_secs(),
        transfer_wall_secs: rollup.transfer_wall_secs,
        transfer_stream_secs: rollup.transfer_stream_secs,
        overlap: rollup.overlap(),
        switching_secs: rollup.switching_secs,
        total_switches: res.device.group_switches,
    }
}

/// Control cells: the same tenants pull-based (Vanilla). The client
/// protocol admits one outstanding GET per tenant, so device streams
/// barely move the needle — isolating how much of the §5.2.1 win
/// depends on Skipper's issue-everything-upfront batches.
fn vanilla_pull_cells(
    tenants: &[(
        &'static str,
        Arc<skipper_datagen::Dataset>,
        skipper_relational::query::QuerySpec,
    )],
    reps: usize,
) -> Vec<StreamsRow> {
    [1u32, 8]
        .into_iter()
        .map(|streams| {
            let workloads: Vec<Workload> = tenants
                .iter()
                .map(|(_, ds, q)| {
                    Workload::new(Arc::clone(ds))
                        .repeat_query(q.clone(), reps)
                        .engine(VanillaFactory)
                })
                .collect();
            let res = Scenario::from_workloads(workloads).streams(streams).run();
            let rollup = res.stream_rollup();
            StreamsRow {
                streams,
                shards: 1,
                model: "pull-ctrl",
                makespan_secs: res.makespan.as_secs_f64(),
                mean_query_secs: res.mean_query_secs(),
                transfer_wall_secs: rollup.transfer_wall_secs,
                transfer_stream_secs: rollup.transfer_stream_secs,
                overlap: rollup.overlap(),
                switching_secs: rollup.switching_secs,
                total_switches: res.device.group_switches,
            }
        })
        .collect()
}

/// The full sweep: pipeline at 1→8 streams × 1→4 shards, the
/// bandwidth-multiplier A/B at each stream count on one shard, and the
/// pull-based control pair.
pub fn streams_rows(ctx: &mut Ctx, reps: usize) -> Vec<StreamsRow> {
    let tenants = mixed::tenants(ctx);
    let mut rows = Vec::new();
    for shards in [1usize, 2, 4] {
        for streams in [1u32, 2, 4, 8] {
            rows.push(run_cell(
                &tenants,
                reps,
                streams,
                shards,
                StreamModel::Pipeline,
            ));
        }
    }
    for streams in [2u32, 4, 8] {
        rows.push(run_cell(
            &tenants,
            reps,
            streams,
            1,
            StreamModel::BandwidthMultiplier,
        ));
    }
    rows.extend(vanilla_pull_cells(&tenants, reps));
    rows
}

/// The stream sweep as a printable table.
pub fn streams(ctx: &mut Ctx) -> Table {
    table(&streams_rows(ctx, 5))
}

/// Renders already-computed sweep rows.
pub fn table(rows: &[StreamsRow]) -> Table {
    let mut t = Table::new(
        "Intra-group parallel servicing (§5.2.1): mixed-tenant fleet, 1-8 streams x 1-4 shards (5 runs per tenant)",
        &[
            "shards",
            "streams",
            "model",
            "makespan(s)",
            "mean query(s)",
            "transfer wall(s)",
            "stream secs",
            "overlap",
            "switch wall(s)",
            "switches",
        ],
    );
    for r in rows {
        t.push_row(vec![
            r.shards.to_string(),
            r.streams.to_string(),
            r.model.into(),
            secs(r.makespan_secs),
            secs(r.mean_query_secs),
            secs(r.transfer_wall_secs),
            secs(r.transfer_stream_secs),
            format!("{:.2}", r.overlap),
            secs(r.switching_secs),
            r.total_switches.to_string(),
        ]);
    }
    t
}

/// One-call variant for the `streams` binary: sweep once, return both
/// the table and the rows for the JSON dump.
pub fn streams_with_rows(ctx: &mut Ctx, reps: usize) -> (Table, Vec<StreamsRow>) {
    let rows = streams_rows(ctx, reps);
    (table(&rows), rows)
}

/// Serializes the sweep as the `BENCH_streams.json` document (schema
/// `BENCH_streams/v1`); hand-rolled JSON, no serde in this workspace.
pub fn to_json(rows: &[StreamsRow]) -> String {
    let mut out = String::from("{\n  \"schema\": \"BENCH_streams/v1\",\n  \"rows\": [\n");
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"shards\": {}, \"streams\": {}, \"model\": \"{}\", \"makespan_secs\": {:.3}, \"mean_query_secs\": {:.3}, \"transfer_wall_secs\": {:.3}, \"transfer_stream_secs\": {:.3}, \"overlap\": {:.3}, \"switching_secs\": {:.3}, \"switches\": {}}}",
                r.shards,
                r.streams,
                r.model,
                r.makespan_secs,
                r.mean_query_secs,
                r.transfer_wall_secs,
                r.transfer_stream_secs,
                r.overlap,
                r.switching_secs,
                r.total_switches,
            )
        })
        .collect();
    out.push_str(&body.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipper_csd::SchedPolicy;

    #[test]
    fn four_streams_halve_the_intra_group_transfer_wall() {
        // Miniature acceptance check for the §5.2.1 claim (the real
        // sweep records the SF-50 numbers in EXPERIMENTS.md): on a
        // transfer-bound two-tenant mix, 4 streams must cut the
        // intra-group transfer wall time by ≥ 2× while conserving the
        // delivery multiset and the stream-seconds of work.
        let mut ctx = Ctx::new();
        let tpch_ds = ctx.tpch(2, 200_000);
        let mr_ds = ctx.mrbench(2, 200_000);
        let mk = |streams: u32| {
            Scenario::from_workloads(vec![
                Workload::new(Arc::clone(&tpch_ds))
                    .repeat_query(skipper_datagen::tpch::q12(&tpch_ds), 2)
                    .engine(SkipperFactory::default().cache_bytes(20 * GIB)),
                Workload::new(Arc::clone(&mr_ds))
                    .repeat_query(skipper_datagen::mrbench::join_task(&mr_ds), 2)
                    .engine(SkipperFactory::default().cache_bytes(20 * GIB)),
            ])
            .scheduler(SchedPolicy::RankBased)
            .streams(streams)
            .run()
        };
        let serial = mk(1);
        let parallel = mk(4);
        assert_eq!(serial.delivery_multiset(), parallel.delivery_multiset());
        let s = serial.stream_rollup();
        let p = parallel.stream_rollup();
        assert!((s.transfer_stream_secs - p.transfer_stream_secs).abs() < 1e-6);
        assert!(
            p.transfer_wall_secs <= s.transfer_wall_secs / 2.0,
            "4 streams only cut transfer wall from {:.0}s to {:.0}s",
            s.transfer_wall_secs,
            p.transfer_wall_secs
        );
        assert!(parallel.makespan < serial.makespan);
    }

    #[test]
    fn json_schema_and_multiplier_ab_rows() {
        let rows = vec![
            StreamsRow {
                streams: 4,
                shards: 1,
                model: "pipeline",
                makespan_secs: 100.0,
                mean_query_secs: 10.0,
                transfer_wall_secs: 25.0,
                transfer_stream_secs: 100.0,
                overlap: 4.0,
                switching_secs: 30.0,
                total_switches: 3,
            },
            StreamsRow {
                streams: 4,
                shards: 1,
                model: "multiplier",
                makespan_secs: 100.0,
                mean_query_secs: 10.0,
                transfer_wall_secs: 25.0,
                transfer_stream_secs: 25.0,
                overlap: 1.0,
                switching_secs: 30.0,
                total_switches: 3,
            },
        ];
        let json = to_json(&rows);
        assert!(json.contains("\"schema\": \"BENCH_streams/v1\""));
        assert!(json.contains("\"model\": \"pipeline\""));
        assert!(json.contains("\"model\": \"multiplier\""));
    }
}
