//! Experiment runners, one module per paper artifact group.

pub mod ablations;
pub mod baseline;
pub mod cache_exp;
pub mod costs;
pub mod layout_exp;
pub mod mixed;
pub mod outlook;
pub mod perf;
pub mod power_exp;
pub mod sched_exp;
pub mod sharding;
pub mod skipper_exp;
pub mod streams;
pub mod suite;
pub mod table2;
pub mod tiering;

/// Default scale parameters shared by the §5 experiments.
pub mod params {
    /// TPC-H scale factor of the main experiments (50 GB dataset class).
    pub const SF_MAIN: u32 = 50;
    /// TPC-H scale factor of the large cache sweep (Figure 11c).
    pub const SF_LARGE: u32 = 100;
    /// Physical miniaturization for SF-50 runs.
    pub const DIVISOR_MAIN: u64 = 5_000;
    /// Coarser miniaturization for the SF-100 sweep (14 630 subplans ×
    /// 5 clients make per-tuple work the wall-clock bottleneck).
    pub const DIVISOR_LARGE: u64 = 20_000;
    /// One gibibyte.
    pub const GIB: u64 = 1 << 30;
}
