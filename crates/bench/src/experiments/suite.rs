//! Bonus experiment: the extended TPC-H query suite at paper scale.
//!
//! The paper evaluates Q12 and Q5; this table runs seven TPC-H queries
//! (pure scans, two-way, three-way, four-way and six-way joins) through
//! both engines at SF-50 with five tenants, showing that the Skipper
//! advantage is a property of the access pattern, not of one query: every
//! shape lands in the 2.5-3.5× band once group switches dominate.

use skipper_core::driver::{EngineKind, Scenario};
use skipper_datagen::tpch;
use skipper_relational::query::{results_approx_eq, QuerySpec};

use crate::ctx::Ctx;
use crate::experiments::params::{DIVISOR_MAIN, GIB, SF_MAIN};
use crate::report::{secs, Table};

/// One suite row.
#[derive(Clone, Debug)]
pub struct SuiteRow {
    /// Query name.
    pub query: String,
    /// Objects the query touches.
    pub objects: u32,
    /// Vanilla mean execution time.
    pub vanilla_secs: f64,
    /// Skipper mean execution time.
    pub skipper_secs: f64,
    /// Result rows (sanity; identical across engines by assertion).
    pub result_rows: usize,
}

/// Runs the suite: 5 clients, 30 GB cache, S = 10 s.
pub fn suite_rows(ctx: &mut Ctx) -> Vec<SuiteRow> {
    let ds = ctx.tpch(SF_MAIN, DIVISOR_MAIN);
    let queries: Vec<QuerySpec> = vec![
        tpch::q1(&ds),
        tpch::q3(&ds),
        tpch::q5(&ds),
        tpch::q6(&ds),
        tpch::q10(&ds),
        tpch::q12(&ds),
        tpch::q14(&ds),
    ];
    queries
        .into_iter()
        .map(|q| {
            let run = |engine| {
                Scenario::new((*ds).clone())
                    .clients(5)
                    .engine(engine)
                    .cache_bytes(30 * GIB)
                    .repeat_query(q.clone(), 1)
                    .run()
            };
            let vanilla = run(EngineKind::Vanilla);
            let skipper = run(EngineKind::Skipper);
            let v = &vanilla.clients[0][0];
            let s = &skipper.clients[0][0];
            assert!(
                results_approx_eq(&v.result, &s.result, 1e-9),
                "{} diverged between engines",
                q.name
            );
            SuiteRow {
                query: q.name.clone(),
                objects: ds.objects_for_query(&q),
                vanilla_secs: vanilla.mean_query_secs(),
                skipper_secs: skipper.mean_query_secs(),
                result_rows: s.result.len(),
            }
        })
        .collect()
}

/// The suite as a printable table.
pub fn suite(ctx: &mut Ctx) -> Table {
    let mut t = Table::new(
        "Bonus: extended TPC-H suite (SF-50, 5 clients, S=10s, avg exec s)",
        &[
            "query",
            "objects",
            "PostgreSQL",
            "Skipper",
            "speedup",
            "rows",
        ],
    );
    for r in suite_rows(ctx) {
        t.push_row(vec![
            r.query,
            r.objects.to_string(),
            secs(r.vanilla_secs),
            secs(r.skipper_secs),
            format!("{:.2}x", r.vanilla_secs / r.skipper_secs),
            r.result_rows.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_queries_all_win_under_contention() {
        let mut ctx = Ctx::new();
        let ds = ctx.tpch(4, 200_000);
        for q in [tpch::q1(&ds), tpch::q6(&ds), tpch::q10(&ds), tpch::q14(&ds)] {
            let run = |engine| {
                Scenario::new((*ds).clone())
                    .clients(3)
                    .engine(engine)
                    .cache_bytes(10 * GIB)
                    .repeat_query(q.clone(), 1)
                    .run()
            };
            let vanilla = run(EngineKind::Vanilla);
            let skipper = run(EngineKind::Skipper);
            assert!(
                results_approx_eq(
                    &vanilla.clients[0][0].result,
                    &skipper.clients[0][0].result,
                    1e-9
                ),
                "{} diverged",
                q.name
            );
            assert!(
                skipper.mean_query_secs() < vanilla.mean_query_secs(),
                "{}: skipper must win under contention",
                q.name
            );
        }
    }
}
