//! Figure 8: cumulative execution time under a mixed workload.
//!
//! Four tenants share the CSD, each running a different benchmark five
//! times: TPC-H Q12, the MR-bench JoinTask, the NREF protein-count query,
//! and SSB Q1.1 — the paper's demonstration that Skipper's benefit is not
//! TPC-H-specific.

use std::sync::Arc;

use skipper_core::driver::{EngineKind, Scenario};
use skipper_datagen::{mrbench, nref, ssb, tpch, Dataset};
use skipper_relational::query::QuerySpec;

use crate::ctx::Ctx;
use crate::experiments::params::{DIVISOR_MAIN, GIB, SF_MAIN};
use crate::report::{secs, Table};

/// Cumulative seconds per benchmark for one engine.
#[derive(Clone, Debug)]
pub struct Fig8Row {
    /// Benchmark label (paper x-axis).
    pub benchmark: &'static str,
    /// Vanilla cumulative execution time (5 runs).
    pub vanilla_secs: f64,
    /// Skipper cumulative execution time (5 runs).
    pub skipper_secs: f64,
}

/// The four tenants: `(label, dataset, query)`.
pub fn tenants(ctx: &mut Ctx) -> Vec<(&'static str, Arc<Dataset>, QuerySpec)> {
    let tpch_ds = ctx.tpch(SF_MAIN, DIVISOR_MAIN);
    let mr_ds = ctx.mrbench(SF_MAIN, DIVISOR_MAIN);
    let nref_ds = ctx.nref(SF_MAIN, DIVISOR_MAIN);
    let ssb_ds = ctx.ssb(SF_MAIN, DIVISOR_MAIN);
    let q12 = tpch::q12(&tpch_ds);
    let mr = mrbench::join_task(&mr_ds);
    let pc = nref::protein_count(&nref_ds);
    let q1 = ssb::q1(&ssb_ds);
    vec![
        ("TPC-H", tpch_ds, q12),
        ("MR-Bench", mr_ds, mr),
        ("NREF", nref_ds, pc),
        ("SSB", ssb_ds, q1),
    ]
}

/// Runs Figure 8 with `reps` repetitions per tenant (paper: 5).
pub fn fig8_rows(ctx: &mut Ctx, reps: usize) -> Vec<Fig8Row> {
    let tenants = tenants(ctx);
    let run = |engine: EngineKind| {
        let clients: Vec<(Arc<Dataset>, Vec<QuerySpec>)> = tenants
            .iter()
            .map(|(_, ds, q)| {
                (
                    Arc::clone(ds),
                    std::iter::repeat_with(|| q.clone()).take(reps).collect(),
                )
            })
            .collect();
        // Base dataset is unused once custom clients are set; reuse the
        // first tenant's.
        Scenario::new((*tenants[0].1).clone())
            .custom_clients(clients)
            .engine(engine)
            .cache_bytes(30 * GIB)
            .run()
    };
    let vanilla = run(EngineKind::Vanilla);
    let skipper = run(EngineKind::Skipper);
    tenants
        .iter()
        .enumerate()
        .map(|(c, (label, _, _))| {
            let sum = |res: &skipper_core::driver::RunResult| {
                res.clients[c]
                    .iter()
                    .map(|r| r.duration().as_secs_f64())
                    .sum::<f64>()
            };
            Fig8Row {
                benchmark: label,
                vanilla_secs: sum(&vanilla),
                skipper_secs: sum(&skipper),
            }
        })
        .collect()
}

/// Figure 8 as a printable table.
pub fn fig8(ctx: &mut Ctx) -> Table {
    let mut t = Table::new(
        "Figure 8: cumulative execution time of the mixed workload (5 runs each, s)",
        &["benchmark", "PostgreSQL", "Skipper", "speedup"],
    );
    for r in fig8_rows(ctx, 5) {
        t.push_row(vec![
            r.benchmark.into(),
            secs(r.vanilla_secs),
            secs(r.skipper_secs),
            format!("{:.2}x", r.vanilla_secs / r.skipper_secs),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_workload_runs_and_skipper_wins_overall() {
        // Miniature: SF-2 datasets, 1 repetition.
        let mut ctx = Ctx::new();
        let tpch_ds = ctx.tpch(2, 200_000);
        let mr_ds = ctx.mrbench(2, 200_000);
        let clients = vec![
            (Arc::clone(&tpch_ds), vec![tpch::q12(&tpch_ds)]),
            (Arc::clone(&mr_ds), vec![mrbench::join_task(&mr_ds)]),
        ];
        let run = |engine| {
            Scenario::new((*tpch_ds).clone())
                .custom_clients(clients.clone())
                .engine(engine)
                .cache_bytes(20 * GIB)
                .run()
        };
        let v = run(EngineKind::Vanilla);
        let s = run(EngineKind::Skipper);
        assert_eq!(v.clients.len(), 2);
        assert!(s.cumulative_secs() < v.cumulative_secs());
        // Both engines agree on every tenant's result (the miniature
        // MR-bench window may legitimately select zero rows).
        for (a, b) in s.records().zip(v.records()) {
            assert_eq!(a.result.len(), b.result.len(), "{}", a.query);
        }
        // The TPC-H tenant's result is non-trivial.
        assert!(!s.clients[0][0].result.is_empty());
    }
}
