//! Figure 8: cumulative execution time under a mixed workload — plus
//! the mixed-*engine* fleet the layered runtime unlocks.
//!
//! Four tenants share the CSD, each running a different benchmark five
//! times: TPC-H Q12, the MR-bench JoinTask, the NREF protein-count query,
//! and SSB Q1.1 — the paper's demonstration that Skipper's benefit is not
//! TPC-H-specific. The paper compares two homogeneous fleets (all
//! PostgreSQL vs all Skipper); [`mixed_fleet_rows`] additionally runs a
//! *heterogeneous* fleet — Skipper and Vanilla tenants side by side in
//! one scenario — which the seed's single-global-engine driver could not
//! express.

use std::sync::Arc;

use skipper_core::driver::{EngineKind, Scenario};
use skipper_core::runtime::{SkipperFactory, VanillaFactory, Workload};
use skipper_datagen::{mrbench, nref, ssb, tpch, Dataset};
use skipper_relational::query::QuerySpec;

use crate::ctx::Ctx;
use crate::experiments::params::{DIVISOR_MAIN, GIB, SF_MAIN};
use crate::report::{secs, Table};

/// Cumulative seconds per benchmark for one engine.
#[derive(Clone, Debug)]
pub struct Fig8Row {
    /// Benchmark label (paper x-axis).
    pub benchmark: &'static str,
    /// Vanilla cumulative execution time (5 runs).
    pub vanilla_secs: f64,
    /// Skipper cumulative execution time (5 runs).
    pub skipper_secs: f64,
}

/// The four tenants: `(label, dataset, query)`.
pub fn tenants(ctx: &mut Ctx) -> Vec<(&'static str, Arc<Dataset>, QuerySpec)> {
    let tpch_ds = ctx.tpch(SF_MAIN, DIVISOR_MAIN);
    let mr_ds = ctx.mrbench(SF_MAIN, DIVISOR_MAIN);
    let nref_ds = ctx.nref(SF_MAIN, DIVISOR_MAIN);
    let ssb_ds = ctx.ssb(SF_MAIN, DIVISOR_MAIN);
    let q12 = tpch::q12(&tpch_ds);
    let mr = mrbench::join_task(&mr_ds);
    let pc = nref::protein_count(&nref_ds);
    let q1 = ssb::q1(&ssb_ds);
    vec![
        ("TPC-H", tpch_ds, q12),
        ("MR-Bench", mr_ds, mr),
        ("NREF", nref_ds, pc),
        ("SSB", ssb_ds, q1),
    ]
}

/// Runs Figure 8 with `reps` repetitions per tenant (paper: 5).
pub fn fig8_rows(ctx: &mut Ctx, reps: usize) -> Vec<Fig8Row> {
    let tenants = tenants(ctx);
    let run = |engine: EngineKind| {
        let workloads: Vec<Workload> = tenants
            .iter()
            .map(|(_, ds, q)| {
                let w = Workload::new(Arc::clone(ds)).repeat_query(q.clone(), reps);
                match engine {
                    EngineKind::Skipper => {
                        w.engine(SkipperFactory::default().cache_bytes(30 * GIB))
                    }
                    EngineKind::Vanilla => w.engine(VanillaFactory),
                }
            })
            .collect();
        Scenario::from_workloads(workloads).run()
    };
    let vanilla = run(EngineKind::Vanilla);
    let skipper = run(EngineKind::Skipper);
    tenants
        .iter()
        .enumerate()
        .map(|(c, (label, _, _))| {
            let sum = |res: &skipper_core::driver::RunResult| {
                res.clients[c]
                    .iter()
                    .map(|r| r.duration().as_secs_f64())
                    .sum::<f64>()
            };
            Fig8Row {
                benchmark: label,
                vanilla_secs: sum(&vanilla),
                skipper_secs: sum(&skipper),
            }
        })
        .collect()
}

/// Figure 8 as a printable table.
pub fn fig8(ctx: &mut Ctx) -> Table {
    let mut t = Table::new(
        "Figure 8: cumulative execution time of the mixed workload (5 runs each, s)",
        &["benchmark", "PostgreSQL", "Skipper", "speedup"],
    );
    for r in fig8_rows(ctx, 5) {
        t.push_row(vec![
            r.benchmark.into(),
            secs(r.vanilla_secs),
            secs(r.skipper_secs),
            format!("{:.2}x", r.vanilla_secs / r.skipper_secs),
        ]);
    }
    t
}

/// One tenant's outcome in the heterogeneous fleet.
#[derive(Clone, Debug)]
pub struct MixedFleetRow {
    /// Benchmark label.
    pub benchmark: &'static str,
    /// Engine the tenant ran ("skipper"/"vanilla").
    pub engine: &'static str,
    /// Cumulative execution time over `reps` runs.
    pub cumulative_secs: f64,
    /// GETs in the tenant's first upfront batch (whole working set for
    /// Skipper, 1 for the pull-based baseline).
    pub upfront_gets: u64,
}

/// The mixed-engine migration scenario: TPC-H and NREF tenants have
/// upgraded to Skipper while MR-bench and SSB still run pull-based
/// PostgreSQL — all four against one shared device in a single run.
pub fn mixed_fleet_rows(ctx: &mut Ctx, reps: usize) -> Vec<MixedFleetRow> {
    let tenants = tenants(ctx);
    let workloads: Vec<Workload> = tenants
        .iter()
        .enumerate()
        .map(|(i, (_, ds, q))| {
            let w = Workload::new(Arc::clone(ds)).repeat_query(q.clone(), reps);
            if i % 2 == 0 {
                w.engine(SkipperFactory::default().cache_bytes(30 * GIB))
            } else {
                w.engine(VanillaFactory)
            }
        })
        .collect();
    let res = Scenario::from_workloads(workloads).run();
    tenants
        .iter()
        .enumerate()
        .map(|(c, (label, _, _))| MixedFleetRow {
            benchmark: label,
            engine: res.clients[c][0].engine,
            cumulative_secs: res.clients[c]
                .iter()
                .map(|r| r.duration().as_secs_f64())
                .sum(),
            upfront_gets: res.clients[c][0].upfront_gets,
        })
        .collect()
}

/// The mixed-engine fleet as a printable table.
pub fn mixed_fleet(ctx: &mut Ctx) -> Table {
    let mut t = Table::new(
        "Mixed-engine fleet: Skipper and PostgreSQL tenants sharing one CSD (5 runs each, s)",
        &["benchmark", "engine", "cumulative(s)", "upfront GETs"],
    );
    for r in mixed_fleet_rows(ctx, 5) {
        t.push_row(vec![
            r.benchmark.into(),
            r.engine.into(),
            secs(r.cumulative_secs),
            r.upfront_gets.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_workload_runs_and_skipper_wins_overall() {
        // Miniature: SF-2 datasets, 1 repetition.
        let mut ctx = Ctx::new();
        let tpch_ds = ctx.tpch(2, 200_000);
        let mr_ds = ctx.mrbench(2, 200_000);
        let clients = vec![
            (Arc::clone(&tpch_ds), vec![tpch::q12(&tpch_ds)]),
            (Arc::clone(&mr_ds), vec![mrbench::join_task(&mr_ds)]),
        ];
        let run = |engine| {
            Scenario::new((*tpch_ds).clone())
                .custom_clients(clients.clone())
                .engine(engine)
                .cache_bytes(20 * GIB)
                .run()
        };
        let v = run(EngineKind::Vanilla);
        let s = run(EngineKind::Skipper);
        assert_eq!(v.clients.len(), 2);
        assert!(s.cumulative_secs() < v.cumulative_secs());
        // Both engines agree on every tenant's result (the miniature
        // MR-bench window may legitimately select zero rows).
        for (a, b) in s.records().zip(v.records()) {
            assert_eq!(a.result.len(), b.result.len(), "{}", a.query);
        }
        // The TPC-H tenant's result is non-trivial.
        assert!(!s.clients[0][0].result.is_empty());
    }

    #[test]
    fn mixed_fleet_is_truly_heterogeneous() {
        let mut ctx = Ctx::new();
        let tpch_ds = ctx.tpch(2, 200_000);
        let mr_ds = ctx.mrbench(2, 200_000);
        let workloads = vec![
            Workload::new(Arc::clone(&tpch_ds))
                .repeat_query(tpch::q12(&tpch_ds), 1)
                .engine(SkipperFactory::default().cache_bytes(20 * GIB)),
            Workload::new(Arc::clone(&mr_ds))
                .repeat_query(mrbench::join_task(&mr_ds), 1)
                .engine(VanillaFactory),
        ];
        let res = Scenario::from_workloads(workloads).run();
        assert_eq!(res.clients[0][0].engine, "skipper");
        assert_eq!(res.clients[1][0].engine, "vanilla");
        // Skipper issues its working set upfront; vanilla pulls one
        // object at a time.
        assert!(res.clients[0][0].upfront_gets > 1);
        assert_eq!(res.clients[1][0].upfront_gets, 1);
    }
}
