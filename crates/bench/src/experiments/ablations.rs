//! Ablations of Skipper's design choices (DESIGN.md experiment index).
//!
//! Three A/B comparisons the paper motivates qualitatively, quantified
//! here:
//!
//! 1. **Cache eviction** (§4.2): maximal-progress vs
//!    maximal-pending-subplans at a tight cache.
//! 2. **Intra-group ordering** (§4.4): semantically-smart round-robin vs
//!    naive table-major delivery.
//! 3. **Subplan pruning** (§5.2.4): on a clustered-selectivity workload
//!    where most orders segments contain no qualifying tuples.

use skipper_core::cache::EvictionPolicy;
use skipper_core::driver::{EngineKind, Scenario};
use skipper_csd::IntraGroupOrder;
use skipper_datagen::{tpch, Dataset};
use skipper_relational::expr::Expr;
use skipper_relational::query::QuerySpec;

use crate::ctx::Ctx;
use crate::experiments::params::{DIVISOR_MAIN, GIB, SF_MAIN};
use crate::report::{secs, Table};

/// One ablation measurement.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Which design dimension.
    pub dimension: &'static str,
    /// Variant label.
    pub variant: String,
    /// Mean execution time.
    pub exec_secs: f64,
    /// GETs per client.
    pub gets_per_client: u64,
    /// Subplans executed per client.
    pub subplans_per_client: u64,
}

/// Eviction-policy A/B: Q5, 5 clients, swept over cache pressure (the
/// paper's §4.2 argument concerns *low* cache capacities).
pub fn eviction_rows(ctx: &mut Ctx) -> Vec<AblationRow> {
    let ds = ctx.tpch(SF_MAIN, DIVISOR_MAIN);
    let q5 = tpch::q5(&ds);
    let mut out = Vec::new();
    for cache_gib in [8u64, 12, 20] {
        for policy in [
            EvictionPolicy::MaximalProgress,
            EvictionPolicy::MaxPendingSubplans,
        ] {
            let res = Scenario::new((*ds).clone())
                .clients(5)
                .engine(EngineKind::Skipper)
                .cache_bytes(cache_gib * GIB)
                .eviction(policy)
                .repeat_query(q5.clone(), 1)
                .run();
            out.push(AblationRow {
                dimension: "eviction",
                variant: format!("{} @{}GB", policy.label(), cache_gib),
                exec_secs: res.mean_query_secs(),
                gets_per_client: res.total_gets() / 5,
                subplans_per_client: res
                    .records()
                    .map(|r| r.stats.subplans_executed)
                    .sum::<u64>()
                    / 5,
            });
        }
    }
    out
}

/// Intra-group-ordering A/B: Q5, 5 clients, swept over cache pressure.
/// Semantically-smart round-robin matters when the cache cannot hold the
/// build side; with ample cache, table-major delivery degenerates to the
/// classic build-then-probe order and is equally good.
pub fn ordering_rows(ctx: &mut Ctx) -> Vec<AblationRow> {
    let ds = ctx.tpch(SF_MAIN, DIVISOR_MAIN);
    let q5 = tpch::q5(&ds);
    let mut out = Vec::new();
    for cache_gib in [8u64, 15] {
        for order in [
            IntraGroupOrder::SemanticRoundRobin,
            IntraGroupOrder::TableOrder,
        ] {
            let res = Scenario::new((*ds).clone())
                .clients(5)
                .engine(EngineKind::Skipper)
                .cache_bytes(cache_gib * GIB)
                .intra_order(order)
                .repeat_query(q5.clone(), 1)
                .run();
            out.push(AblationRow {
                dimension: "intra-group order",
                variant: format!("{order:?} @{}GB", cache_gib),
                exec_secs: res.mean_query_secs(),
                gets_per_client: res.total_gets() / 5,
                subplans_per_client: res
                    .records()
                    .map(|r| r.stats.subplans_executed)
                    .sum::<u64>()
                    / 5,
            });
        }
    }
    out
}

/// A Q12 variant whose orders-side predicate only matches the first
/// orders segment (keys are partitioned per segment), so every other
/// orders object is prunable.
pub fn clustered_q12(ds: &Dataset) -> QuerySpec {
    let mut spec = tpch::q12(ds);
    spec.name = "tpch-q12-clustered".into();
    let orders_idx = ds.catalog.index_of("orders").unwrap();
    let orders = &ds.catalog.table(orders_idx).schema;
    let seg_rows = ds.segments[orders_idx][0].len() as i64;
    spec.filters[0] = Some(Expr::col(orders.col("o_orderkey")).le(Expr::lit(seg_rows)));
    spec
}

/// Subplan-pruning A/B on the clustered workload: 5 clients, tight cache.
pub fn pruning_rows(ctx: &mut Ctx) -> Vec<AblationRow> {
    let ds = ctx.tpch(SF_MAIN, DIVISOR_MAIN);
    let spec = clustered_q12(&ds);
    [false, true]
        .iter()
        .map(|&prune| {
            let res = Scenario::new((*ds).clone())
                .clients(5)
                .engine(EngineKind::Skipper)
                .cache_bytes(4 * GIB)
                .prune_empty_objects(prune)
                .repeat_query(spec.clone(), 1)
                .run();
            AblationRow {
                dimension: "subplan pruning",
                variant: if prune { "enabled" } else { "disabled" }.to_string(),
                exec_secs: res.mean_query_secs(),
                gets_per_client: res.total_gets() / 5,
                subplans_per_client: res
                    .records()
                    .map(|r| r.stats.subplans_executed)
                    .sum::<u64>()
                    / 5,
            }
        })
        .collect()
}

/// All ablations as one printable table.
pub fn ablations(ctx: &mut Ctx) -> Table {
    let mut t = Table::new(
        "Ablations: Skipper design choices (5 clients)",
        &[
            "dimension",
            "variant",
            "avg exec (s)",
            "GETs/client",
            "subplans/client",
        ],
    );
    let mut rows = eviction_rows(ctx);
    rows.extend(ordering_rows(ctx));
    rows.extend(pruning_rows(ctx));
    for r in rows {
        t.push_row(vec![
            r.dimension.into(),
            r.variant,
            secs(r.exec_secs),
            r.gets_per_client.to_string(),
            r.subplans_per_client.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pruning_reduces_work_on_clustered_data() {
        let mut ctx = Ctx::new();
        let ds = ctx.tpch(8, 400_000);
        let spec = clustered_q12(&ds);
        let run = |prune: bool| {
            Scenario::new((*ds).clone())
                .clients(2)
                .engine(EngineKind::Skipper)
                .cache_bytes(3 * GIB)
                .prune_empty_objects(prune)
                .repeat_query(spec.clone(), 1)
                .run()
        };
        let without = run(false);
        let with = run(true);
        let sub = |res: &skipper_core::driver::RunResult| {
            res.records()
                .map(|r| r.stats.subplans_executed)
                .sum::<u64>()
        };
        assert!(
            sub(&with) < sub(&without),
            "pruning must skip subplans: {} !< {}",
            sub(&with),
            sub(&without)
        );
        // Pruned objects are detected.
        let pruned: u64 = with.records().map(|r| r.stats.pruned_objects).sum();
        assert!(pruned > 0);
        // Same results either way.
        for (a, b) in with.records().zip(without.records()) {
            assert_eq!(a.result, b.result);
        }
    }

    #[test]
    fn semantic_ordering_beats_table_major_at_tight_cache() {
        let mut ctx = Ctx::new();
        let ds = ctx.tpch(8, 400_000);
        let q5 = tpch::q5(&ds);
        let run = |order| {
            Scenario::new((*ds).clone())
                .clients(1)
                .engine(EngineKind::Skipper)
                .cache_bytes(7 * GIB)
                .intra_order(order)
                .repeat_query(q5.clone(), 1)
                .run()
        };
        let smart = run(IntraGroupOrder::SemanticRoundRobin);
        let naive = run(IntraGroupOrder::TableOrder);
        assert!(
            smart.total_gets() <= naive.total_gets(),
            "semantic ordering should not reissue more: {} vs {}",
            smart.total_gets(),
            naive.total_gets()
        );
    }
}
