//! The shard-cache tiering sweep: cost vs performance across cache
//! sizes, tier mixes, and policies.
//!
//! Runs the [`SkewedFleet`](crate::scenarios::SkewedFleet) — a head of
//! hot tenants whose Q12 rounds re-GET the same objects against a tail
//! of cold one-shot scans — under a grid of shard-cache configurations,
//! and reports for each the makespan, hit rate, per-query p99, and the
//! end-of-run economics ($/query from amortized capex + energy). The
//! interesting output is the **Pareto frontier** over
//! `(dollars_per_query, makespan)`: small DRAM tiers buy large makespan
//! reductions (the hot head fits), while past the knee extra capacity
//! only caches touch-once cold traffic and the dollars are wasted —
//! the same cost-vs-performance argument the paper makes for the cold
//! tier itself (§2.1), one level up the hierarchy.

use skipper_core::runtime::RunResult;
use skipper_csd::cache::{CacheConfig, CachePolicy};

use crate::report::Table;
use crate::scenarios::SkewedFleet;

/// One point of the sweep grid: a labelled cache configuration.
#[derive(Clone, Copy, Debug)]
pub struct TieringConfig {
    /// Grid label (e.g. `"dram-10%"`, `"dram-5%+ssd-20%"`).
    pub label: &'static str,
    /// The shard-cache configuration installed on every shard.
    pub cache: CacheConfig,
}

/// Measurements from one sweep run.
#[derive(Clone, Debug)]
pub struct TieringSample {
    /// Grid label of the configuration.
    pub label: &'static str,
    /// Cache policy label (`lru` / `clock` / `group`).
    pub policy: &'static str,
    /// Fleet-total DRAM tier capacity (all shards).
    pub dram_bytes: u64,
    /// Fleet-total SSD tier capacity (all shards).
    pub ssd_bytes: u64,
    /// Run makespan in seconds.
    pub makespan_secs: f64,
    /// Fleet cache hit rate (0 when uncached).
    pub hit_rate: f64,
    /// DRAM-tier hits.
    pub dram_hits: u64,
    /// SSD-tier hits.
    pub ssd_hits: u64,
    /// Cache misses (GETs that reached the CSD).
    pub misses: u64,
    /// DRAM→SSD demotion write-backs.
    pub demotions: u64,
    /// Objects the CSDs actually served.
    pub objects_served: u64,
    /// Group switches across the fleet.
    pub group_switches: u64,
    /// p99 of per-query durations, seconds.
    pub p99_secs: f64,
    /// Mean per-query duration, seconds.
    pub mean_secs: f64,
    /// Energy drawn under the MAID electrical model, Wh.
    pub energy_wh: f64,
    /// Amortized capex + energy for the run, dollars.
    pub total_run_dollars: f64,
    /// Dollars per completed query.
    pub dollars_per_query: f64,
    /// Allocations per delivered object over the drive, when a counting
    /// allocator is installed (binary-side probe).
    pub allocs_per_delivery: Option<f64>,
}

/// The sweep grid for a fleet with the given total working set:
/// DRAM-only sizes bracketing the hot head (0 / 2.5 / 5 / 10 / 20 /
/// 40 % of the working set, LRU), one two-tier mix, and the two
/// alternative policies at the 10 % point.
pub fn sweep_grid(working_set_bytes: u64) -> Vec<TieringConfig> {
    let frac = |pct: u64| working_set_bytes * pct / 1000;
    vec![
        TieringConfig {
            label: "uncached",
            cache: CacheConfig::disabled(),
        },
        TieringConfig {
            label: "dram-2.5%",
            cache: CacheConfig::dram_only(frac(25)),
        },
        TieringConfig {
            label: "dram-5%",
            cache: CacheConfig::dram_only(frac(50)),
        },
        TieringConfig {
            label: "dram-10%",
            cache: CacheConfig::dram_only(frac(100)),
        },
        TieringConfig {
            label: "dram-20%",
            cache: CacheConfig::dram_only(frac(200)),
        },
        TieringConfig {
            label: "dram-40%",
            cache: CacheConfig::dram_only(frac(400)),
        },
        TieringConfig {
            label: "dram-5%+ssd-20%",
            cache: CacheConfig::two_tier(frac(50), frac(200)),
        },
        TieringConfig {
            label: "dram-10%-clock",
            cache: CacheConfig::dram_only(frac(100)).with_policy(CachePolicy::Clock),
        },
        TieringConfig {
            label: "dram-10%-group",
            cache: CacheConfig::dram_only(frac(100)).with_policy(CachePolicy::GroupAware),
        },
    ]
}

/// The grid label whose configuration the CI gates (hit-rate floor,
/// speedup floor) are checked against: DRAM at 10 % of the working set.
pub const GATED_LABEL: &str = "dram-10%";

/// Runs one grid point on `fleet` and extracts a sample. The per-shard
/// cache gets `1/shards` of the grid's fleet-total capacity (placement
/// spreads every tenant's objects round-robin, so capacity follows the
/// data). `alloc_counter` is the binary's allocation probe, sampled
/// around the run.
pub fn run_config(
    fleet: &SkewedFleet,
    cfg: &TieringConfig,
    alloc_counter: Option<fn() -> u64>,
) -> TieringSample {
    let shards = fleet.spec.shards as u64;
    let per_shard = CacheConfig {
        dram: skipper_csd::cache::TierConfig {
            capacity_bytes: cfg.cache.dram.capacity_bytes / shards,
            ..cfg.cache.dram
        },
        ssd: skipper_csd::cache::TierConfig {
            capacity_bytes: cfg.cache.ssd.capacity_bytes / shards,
            ..cfg.cache.ssd
        },
        policy: cfg.cache.policy,
    };
    let before = alloc_counter.map(|f| f());
    let res = fleet.scenario().shard_cache(per_shard).run();
    let allocs = alloc_counter.map(|f| f() - before.unwrap());
    sample_from(cfg, per_shard, shards, &res, allocs)
}

fn sample_from(
    cfg: &TieringConfig,
    per_shard: CacheConfig,
    shards: u64,
    res: &RunResult,
    allocs: Option<u64>,
) -> TieringSample {
    let mut durations: Vec<f64> = res.records().map(|r| r.duration().as_secs_f64()).collect();
    durations.sort_by(f64::total_cmp);
    let pick = |q: f64| {
        if durations.is_empty() {
            0.0
        } else {
            durations[((durations.len() as f64 * q).ceil() as usize).max(1) - 1]
        }
    };
    let delivered = res.device.objects_served + res.cache.hits();
    TieringSample {
        label: cfg.label,
        policy: cfg.cache.policy.label(),
        dram_bytes: per_shard.dram.capacity_bytes * shards,
        ssd_bytes: per_shard.ssd.capacity_bytes * shards,
        makespan_secs: res.makespan.as_secs_f64(),
        hit_rate: res.cache.hit_rate(),
        dram_hits: res.cache.dram_hits,
        ssd_hits: res.cache.ssd_hits,
        misses: res.cache.misses,
        demotions: res.cache.demotions,
        objects_served: res.device.objects_served,
        group_switches: res.device.group_switches,
        p99_secs: pick(0.99),
        mean_secs: if durations.is_empty() {
            0.0
        } else {
            durations.iter().sum::<f64>() / durations.len() as f64
        },
        energy_wh: res.energy.maid_wh,
        total_run_dollars: res.economics.total_run_dollars,
        dollars_per_query: res.economics.dollars_per_query,
        allocs_per_delivery: allocs.map(|a| a as f64 / delivered.max(1) as f64),
    }
}

/// Indices of the samples on the Pareto frontier minimizing
/// `(dollars_per_query, makespan_secs)`: a sample survives unless some
/// other sample is no worse on both axes and strictly better on one.
pub fn pareto_frontier(samples: &[TieringSample]) -> Vec<usize> {
    (0..samples.len())
        .filter(|&i| {
            !samples.iter().enumerate().any(|(j, other)| {
                j != i
                    && other.dollars_per_query <= samples[i].dollars_per_query
                    && other.makespan_secs <= samples[i].makespan_secs
                    && (other.dollars_per_query < samples[i].dollars_per_query
                        || other.makespan_secs < samples[i].makespan_secs)
            })
        })
        .collect()
}

/// The printable sweep table.
pub fn table(fleet: &SkewedFleet, samples: &[TieringSample]) -> Table {
    let frontier = pareto_frontier(samples);
    let mut t = Table::new(
        &format!(
            "Shard-cache tiering sweep ({} hot x {} rounds + {} cold scans, {} shards, \
             working set {} GiB)",
            fleet.spec.hot_tenants,
            fleet.spec.hot_rounds,
            fleet.spec.cold_tenants,
            fleet.spec.shards,
            fleet.working_set_bytes() >> 30,
        ),
        &[
            "config", "policy", "dram GiB", "ssd GiB", "makespan", "hit rate", "p99", "switches",
            "Wh", "$/query", "pareto",
        ],
    );
    for (i, s) in samples.iter().enumerate() {
        t.push_row(vec![
            s.label.to_string(),
            s.policy.to_string(),
            format!("{:.1}", s.dram_bytes as f64 / (1u64 << 30) as f64),
            format!("{:.1}", s.ssd_bytes as f64 / (1u64 << 30) as f64),
            format!("{:.1}s", s.makespan_secs),
            format!("{:.1}%", s.hit_rate * 100.0),
            format!("{:.1}s", s.p99_secs),
            s.group_switches.to_string(),
            format!("{:.1}", s.energy_wh),
            format!("{:.5}", s.dollars_per_query),
            if frontier.contains(&i) { "*" } else { "" }.to_string(),
        ]);
    }
    t
}

/// Renders `BENCH_tiering.json` (schema `BENCH_tiering/v1`).
pub fn to_json(fleet: &SkewedFleet, samples: &[TieringSample]) -> String {
    let mut out = String::from("{\n  \"schema\": \"BENCH_tiering/v1\",\n");
    out.push_str(&format!(
        "  \"fleet\": {{\"hot_tenants\": {}, \"hot_rounds\": {}, \"cold_tenants\": {}, \
         \"shards\": {}, \"working_set_bytes\": {}, \"hot_set_bytes\": {}}},\n",
        fleet.spec.hot_tenants,
        fleet.spec.hot_rounds,
        fleet.spec.cold_tenants,
        fleet.spec.shards,
        fleet.working_set_bytes(),
        fleet.hot_set_bytes(),
    ));
    out.push_str("  \"samples\": [\n");
    let rows: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                "    {{\"config\": \"{}\", \"policy\": \"{}\", \"dram_bytes\": {}, \
                 \"ssd_bytes\": {}, \"makespan_secs\": {:.6}, \"hit_rate\": {:.6}, \
                 \"dram_hits\": {}, \"ssd_hits\": {}, \"misses\": {}, \"demotions\": {}, \
                 \"objects_served\": {}, \"group_switches\": {}, \"p99_secs\": {:.6}, \
                 \"mean_secs\": {:.6}, \"energy_wh\": {:.3}, \"total_run_dollars\": {:.6}, \
                 \"dollars_per_query\": {:.8}, \"allocs_per_delivery\": {}}}",
                s.label,
                s.policy,
                s.dram_bytes,
                s.ssd_bytes,
                s.makespan_secs,
                s.hit_rate,
                s.dram_hits,
                s.ssd_hits,
                s.misses,
                s.demotions,
                s.objects_served,
                s.group_switches,
                s.p99_secs,
                s.mean_secs,
                s.energy_wh,
                s.total_run_dollars,
                s.dollars_per_query,
                s.allocs_per_delivery
                    .map_or_else(|| "null".into(), |a| format!("{a:.4}")),
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ],\n");
    let frontier: Vec<String> = pareto_frontier(samples)
        .into_iter()
        .map(|i| format!("\"{}\"", samples[i].label))
        .collect();
    out.push_str(&format!("  \"pareto\": [{}]\n}}\n", frontier.join(", ")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake(label: &'static str, dollars: f64, makespan: f64) -> TieringSample {
        TieringSample {
            label,
            policy: "lru",
            dram_bytes: 0,
            ssd_bytes: 0,
            makespan_secs: makespan,
            hit_rate: 0.0,
            dram_hits: 0,
            ssd_hits: 0,
            misses: 0,
            demotions: 0,
            objects_served: 0,
            group_switches: 0,
            p99_secs: 0.0,
            mean_secs: 0.0,
            energy_wh: 0.0,
            total_run_dollars: 0.0,
            dollars_per_query: dollars,
            allocs_per_delivery: None,
        }
    }

    #[test]
    fn pareto_drops_dominated_points() {
        // (0.2, 100) is dominated by (0.1, 90); the cheap-slow and
        // fast-expensive extremes both survive.
        let samples = vec![
            fake("cheap-slow", 0.05, 300.0),
            fake("dominated", 0.2, 100.0),
            fake("knee", 0.1, 90.0),
            fake("fast-expensive", 0.3, 80.0),
        ];
        let frontier = pareto_frontier(&samples);
        assert_eq!(frontier, vec![0, 2, 3]);
    }

    #[test]
    fn grid_brackets_the_gated_point() {
        let grid = sweep_grid(64 << 30);
        assert!(grid.iter().any(|c| c.label == GATED_LABEL));
        assert!(grid.iter().any(|c| !c.cache.enabled()));
        let gated = grid.iter().find(|c| c.label == GATED_LABEL).unwrap();
        assert_eq!(gated.cache.dram.capacity_bytes, (64u64 << 30) / 10);
    }
}
