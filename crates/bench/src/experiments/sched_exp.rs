//! Figure 12: balancing efficiency and fairness (§5.2.5).
//!
//! Five clients, each issuing TPC-H Q12 ten times, over a skewed layout:
//! two groups hold two clients each and the last group holds the fifth
//! client ([`LayoutPolicy::TwoClientsPerGroup`] with five tenants).
//! Three schedulers are compared — query-FCFS ("fairness"), Max-Queries
//! ("maxquery"), and the paper's rank-based policy ("ranking") — on the
//! L2-norm of stretch, maximum stretch, and cumulative workload time.

use skipper_core::driver::{EngineKind, Scenario};
use skipper_csd::{LayoutPolicy, SchedPolicy};
use skipper_datagen::tpch;
use skipper_sim::stats::{l2_norm, max_stretch};
use skipper_sim::SimDuration;

use crate::ctx::Ctx;
use crate::experiments::params::{DIVISOR_MAIN, GIB, SF_MAIN};
use crate::report::{factor, secs, Table};

/// One scheduler's Figure 12 metrics.
#[derive(Clone, Copy, Debug)]
pub struct Fig12Row {
    /// Scheduler label (paper x-axis).
    pub scheduler: &'static str,
    /// L2-norm of per-query stretches.
    pub l2_norm_stretch: f64,
    /// Maximum stretch (worst-served query).
    pub max_stretch: f64,
    /// Cumulative workload time in seconds (sum over the 50 queries).
    pub cumulative_secs: f64,
}

/// The three policies in figure order.
pub const POLICIES: [SchedPolicy; 3] = [
    SchedPolicy::FcfsQuery,
    SchedPolicy::MaxQueries,
    SchedPolicy::RankBased,
];

/// The per-query ideal: single-client execution time (no contention).
pub fn ideal_secs(ctx: &mut Ctx) -> f64 {
    let ds = ctx.tpch(SF_MAIN, DIVISOR_MAIN);
    let q12 = tpch::q12(&ds);
    Scenario::new((*ds).clone())
        .engine(EngineKind::Skipper)
        .cache_bytes(30 * GIB)
        .repeat_query(q12, 1)
        .run()
        .mean_query_secs()
}

/// Runs Figure 12 with `reps` Q12 repetitions per client (paper: 10).
pub fn fig12_rows(ctx: &mut Ctx, reps: usize) -> Vec<Fig12Row> {
    let ideal = SimDuration::from_secs_f64(ideal_secs(ctx));
    let ds = ctx.tpch(SF_MAIN, DIVISOR_MAIN);
    let q12 = tpch::q12(&ds);
    POLICIES
        .iter()
        .map(|&policy| {
            let res = Scenario::new((*ds).clone())
                .clients(5)
                .engine(EngineKind::Skipper)
                .cache_bytes(30 * GIB)
                .layout(LayoutPolicy::TwoClientsPerGroup)
                .scheduler(policy)
                .repeat_query(q12.clone(), reps)
                .run();
            let stretches = res.stretches(ideal);
            Fig12Row {
                scheduler: policy.label(),
                l2_norm_stretch: l2_norm(&stretches),
                max_stretch: max_stretch(&stretches),
                cumulative_secs: res.cumulative_secs(),
            }
        })
        .collect()
}

/// Figure 12 (both panels) as a printable table.
pub fn fig12(ctx: &mut Ctx) -> Table {
    let mut t = Table::new(
        "Figure 12: fairness vs efficiency (5 clients × Q12 × 10, skewed layout)",
        &[
            "scheduler",
            "L2-norm stretch",
            "max stretch",
            "cumulative (s)",
        ],
    );
    for r in fig12_rows(ctx, 10) {
        t.push_row(vec![
            r.scheduler.into(),
            factor(r.l2_norm_stretch),
            factor(r.max_stretch),
            secs(r.cumulative_secs),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_tradeoffs_hold_in_miniature() {
        let mut ctx = Ctx::new();
        let ds = ctx.tpch(4, 100_000);
        let q12 = tpch::q12(&ds);
        let ideal = {
            let res = Scenario::new((*ds).clone())
                .engine(EngineKind::Skipper)
                .cache_bytes(10 * GIB)
                .repeat_query(q12.clone(), 1)
                .run();
            SimDuration::from_secs_f64(res.mean_query_secs())
        };
        let run = |policy: SchedPolicy| {
            let res = Scenario::new((*ds).clone())
                .clients(5)
                .engine(EngineKind::Skipper)
                .cache_bytes(10 * GIB)
                .layout(LayoutPolicy::TwoClientsPerGroup)
                .scheduler(policy)
                .repeat_query(q12.clone(), 3)
                .run();
            let st = res.stretches(ideal);
            (max_stretch(&st), res.cumulative_secs())
        };
        let (fair_max, _fair_cum) = run(SchedPolicy::FcfsQuery);
        let (mq_max, mq_cum) = run(SchedPolicy::MaxQueries);
        let (rank_max, rank_cum) = run(SchedPolicy::RankBased);
        // Max-Queries starves the lone-group client: worst max stretch.
        assert!(
            mq_max >= rank_max && mq_max >= fair_max,
            "maxquery should have the worst max stretch: mq={mq_max:.1} rank={rank_max:.1} fcfs={fair_max:.1}"
        );
        // Ranking must not cost much efficiency vs Max-Queries.
        assert!(
            rank_cum <= mq_cum * 1.25,
            "ranking cumulative {rank_cum:.0} vs maxquery {mq_cum:.0}"
        );
    }
}
