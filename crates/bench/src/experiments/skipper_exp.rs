//! Figures 7, 9, 10 and Table 3: the core Skipper-vs-vanilla results.

use skipper_core::config::CostModel;
use skipper_core::driver::{EngineKind, RunResult, Scenario};
use skipper_csd::LayoutPolicy;
use skipper_datagen::tpch;
use skipper_sim::SimDuration;

use crate::ctx::Ctx;
use crate::experiments::params::{DIVISOR_MAIN, GIB, SF_MAIN};
use crate::report::{pct, secs, Table};

/// The paper's default Skipper cache: 30 GB (half the Q12 working set's
/// dataset class).
pub const CACHE_BYTES: u64 = 30 * GIB;

/// One Figure 7 point.
#[derive(Clone, Copy, Debug)]
pub struct Fig7Row {
    /// Concurrent clients.
    pub clients: usize,
    /// Vanilla on CSD.
    pub vanilla_secs: f64,
    /// Skipper on CSD.
    pub skipper_secs: f64,
    /// Vanilla with the all-in-one (no-switch) layout — the HDD ideal.
    pub ideal_secs: f64,
}

/// Runs Figure 7: Skipper vs vanilla vs ideal, TPC-H Q12, 1-5 clients.
pub fn fig7_rows(ctx: &mut Ctx) -> Vec<Fig7Row> {
    let ds = ctx.tpch(SF_MAIN, DIVISOR_MAIN);
    let q12 = tpch::q12(&ds);
    let ideal = crate::experiments::baseline::ideal_hdd_secs(&ds, &q12);
    (1..=5)
        .map(|clients| {
            let vanilla = Scenario::new((*ds).clone())
                .clients(clients)
                .engine(EngineKind::Vanilla)
                .repeat_query(q12.clone(), 1)
                .run();
            let skipper = Scenario::new((*ds).clone())
                .clients(clients)
                .engine(EngineKind::Skipper)
                .cache_bytes(CACHE_BYTES)
                .repeat_query(q12.clone(), 1)
                .run();
            Fig7Row {
                clients,
                vanilla_secs: vanilla.mean_query_secs(),
                skipper_secs: skipper.mean_query_secs(),
                ideal_secs: ideal,
            }
        })
        .collect()
}

/// Figure 7 as a printable table.
pub fn fig7(ctx: &mut Ctx) -> Table {
    let mut t = Table::new(
        "Figure 7: average execution time, Skipper vs PostgreSQL vs ideal (Q12, S=10s)",
        &["clients", "PostgreSQL", "Skipper", "Ideal"],
    );
    for r in fig7_rows(ctx) {
        t.push_row(vec![
            r.clients.to_string(),
            secs(r.vanilla_secs),
            secs(r.skipper_secs),
            secs(r.ideal_secs),
        ]);
    }
    t
}

/// One engine's Figure 9 breakdown (fractions of end-to-end time).
#[derive(Clone, Copy, Debug)]
pub struct Fig9Row {
    /// Engine label.
    pub engine: &'static str,
    /// Useful processing fraction.
    pub processing: f64,
    /// Group-switch stall fraction.
    pub switching: f64,
    /// Transfer stall fraction.
    pub transfer: f64,
    /// Device-idle waits (usually ~0).
    pub idle: f64,
}

fn breakdown(res: &RunResult, engine: &'static str) -> Fig9Row {
    let (mut proc, mut sw, mut tr, mut idle, mut total) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for r in res.records() {
        proc += r.processing.as_secs_f64();
        sw += r.stalls.switching.as_secs_f64();
        tr += r.stalls.transfer.as_secs_f64();
        idle += r.stalls.idle.as_secs_f64();
        total += r.duration().as_secs_f64();
    }
    Fig9Row {
        engine,
        processing: proc / total,
        switching: sw / total,
        transfer: tr / total,
        idle: idle / total,
    }
}

/// Runs Figure 9: 5-client execution-time breakdown for both engines.
pub fn fig9_rows(ctx: &mut Ctx) -> Vec<Fig9Row> {
    let ds = ctx.tpch(SF_MAIN, DIVISOR_MAIN);
    let q12 = tpch::q12(&ds);
    let vanilla = Scenario::new((*ds).clone())
        .clients(5)
        .engine(EngineKind::Vanilla)
        .repeat_query(q12.clone(), 1)
        .run();
    let skipper = Scenario::new((*ds).clone())
        .clients(5)
        .engine(EngineKind::Skipper)
        .cache_bytes(CACHE_BYTES)
        .repeat_query(q12, 1)
        .run();
    vec![
        breakdown(&vanilla, "PostgreSQL"),
        breakdown(&skipper, "Skipper"),
    ]
}

/// Figure 9 as a printable table.
pub fn fig9(ctx: &mut Ctx) -> Table {
    let mut t = Table::new(
        "Figure 9: avg execution-time breakdown, 5 clients (fractions of total)",
        &[
            "engine",
            "processing",
            "switch stall",
            "transfer stall",
            "device idle",
        ],
    );
    for r in fig9_rows(ctx) {
        t.push_row(vec![
            r.engine.into(),
            pct(r.processing),
            pct(r.switching),
            pct(r.transfer),
            pct(r.idle),
        ]);
    }
    t
}

/// One Figure 10 point.
#[derive(Clone, Copy, Debug)]
pub struct Fig10Row {
    /// Switch latency in seconds.
    pub switch_secs: u64,
    /// Vanilla mean execution time.
    pub vanilla_secs: f64,
    /// Skipper mean execution time.
    pub skipper_secs: f64,
}

/// Runs Figure 10: sensitivity to switch latency 10-40 s, 5 clients.
pub fn fig10_rows(ctx: &mut Ctx) -> Vec<Fig10Row> {
    let ds = ctx.tpch(SF_MAIN, DIVISOR_MAIN);
    let q12 = tpch::q12(&ds);
    [10u64, 20, 30, 40]
        .iter()
        .map(|&s| {
            let vanilla = Scenario::new((*ds).clone())
                .clients(5)
                .engine(EngineKind::Vanilla)
                .switch_latency(SimDuration::from_secs(s))
                .repeat_query(q12.clone(), 1)
                .run();
            let skipper = Scenario::new((*ds).clone())
                .clients(5)
                .engine(EngineKind::Skipper)
                .cache_bytes(CACHE_BYTES)
                .switch_latency(SimDuration::from_secs(s))
                .repeat_query(q12.clone(), 1)
                .run();
            Fig10Row {
                switch_secs: s,
                vanilla_secs: vanilla.mean_query_secs(),
                skipper_secs: skipper.mean_query_secs(),
            }
        })
        .collect()
}

/// Figure 10 as a printable table.
pub fn fig10(ctx: &mut Ctx) -> Table {
    let mut t = Table::new(
        "Figure 10: sensitivity to CSD group-switch latency (5 clients, Q12, avg exec s)",
        &["switch latency (s)", "PostgreSQL", "Skipper"],
    );
    for r in fig10_rows(ctx) {
        t.push_row(vec![
            r.switch_secs.to_string(),
            secs(r.vanilla_secs),
            secs(r.skipper_secs),
        ]);
    }
    t
}

/// Table 3 measurements: component times in seconds per engine.
#[derive(Clone, Copy, Debug)]
pub struct Table3Row {
    /// Engine label.
    pub engine: &'static str,
    /// Pure query-execution time (local data, no FUSE).
    pub query_exec_secs: f64,
    /// FUSE file-system overhead (vanilla only; 0 for Skipper).
    pub fuse_secs: f64,
    /// Network-access overhead (remote single-group Swift vs local).
    pub network_secs: f64,
}

/// Runs the Table 3 component breakdown: single client, Q12, three
/// configurations (local / local+FUSE / remote single-group).
pub fn table3_rows(ctx: &mut Ctx) -> Vec<Table3Row> {
    let ds = ctx.tpch(SF_MAIN, DIVISOR_MAIN);
    let q12 = tpch::q12(&ds);
    let run = |engine: EngineKind, cost: CostModel, bandwidth: f64| {
        Scenario::new((*ds).clone())
            .engine(engine)
            .cache_bytes(CACHE_BYTES)
            .layout(LayoutPolicy::AllInOne)
            .cost(cost)
            .bandwidth(bandwidth)
            .repeat_query(q12.clone(), 1)
            .run()
            .mean_query_secs()
    };
    let default_bw = 110.0 * 1024.0 * 1024.0;
    let calibrated = CostModel::paper_calibrated();

    let mut out = Vec::new();
    for engine in [EngineKind::Vanilla, EngineKind::Skipper] {
        let local = run(engine, calibrated.without_fuse(), 0.0);
        let with_fuse = if engine == EngineKind::Vanilla {
            run(engine, calibrated, 0.0)
        } else {
            local // Skipper's client proxy bypasses FUSE
        };
        let remote = if engine == EngineKind::Vanilla {
            run(engine, calibrated, default_bw)
        } else {
            run(engine, calibrated.without_fuse(), default_bw)
        };
        out.push(Table3Row {
            engine: match engine {
                EngineKind::Vanilla => "PostgreSQL",
                EngineKind::Skipper => "Skipper",
            },
            query_exec_secs: local,
            fuse_secs: with_fuse - local,
            network_secs: remote - with_fuse,
        });
    }
    out
}

/// Table 3 as a printable table.
pub fn table3(ctx: &mut Ctx) -> Table {
    let mut t = Table::new(
        "Table 3: execution breakdown of PostgreSQL and Skipper (1 client, Q12, seconds)",
        &["component", "PostgreSQL", "%", "Skipper", "%"],
    );
    let rows = table3_rows(ctx);
    let (v, s) = (rows[0], rows[1]);
    let vt = v.query_exec_secs + v.fuse_secs + v.network_secs;
    let st = s.query_exec_secs + s.fuse_secs + s.network_secs;
    let mut push = |name: &str, vv: f64, sv: Option<f64>| {
        t.push_row(vec![
            name.into(),
            format!("{vv:.1}"),
            pct(vv / vt),
            sv.map(|x| format!("{x:.1}")).unwrap_or_else(|| "/".into()),
            sv.map(|x| pct(x / st)).unwrap_or_else(|| "/".into()),
        ]);
    };
    push(
        "Query execution",
        v.query_exec_secs,
        Some(s.query_exec_secs),
    );
    push("FUSE file system", v.fuse_secs, None);
    push("Network access", v.network_secs, Some(s.network_secs));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shared miniature runs (SF-4) exercising the same code paths.
    fn mini(clients: usize, engine: EngineKind) -> RunResult {
        let mut ctx = Ctx::new();
        let ds = ctx.tpch(4, 100_000);
        let q12 = tpch::q12(&ds);
        Scenario::new((*ds).clone())
            .clients(clients)
            .engine(engine)
            .cache_bytes(10 * GIB)
            .repeat_query(q12, 1)
            .run()
    }

    #[test]
    fn skipper_scales_better_than_vanilla() {
        let v = mini(4, EngineKind::Vanilla);
        let s = mini(4, EngineKind::Skipper);
        assert!(s.mean_query_secs() < v.mean_query_secs());
        // Switch stalls dominate vanilla, not Skipper.
        let v_row = breakdown(&v, "v");
        let s_row = breakdown(&s, "s");
        assert!(
            v_row.switching > s_row.switching,
            "vanilla switch stall {:.2} should exceed skipper {:.2}",
            v_row.switching,
            s_row.switching
        );
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let v = mini(3, EngineKind::Vanilla);
        let r = breakdown(&v, "v");
        let sum = r.processing + r.switching + r.transfer + r.idle;
        assert!((sum - 1.0).abs() < 1e-6, "fractions sum to {sum}");
    }

    #[test]
    fn table3_shape_holds_in_miniature() {
        let mut ctx = Ctx::new();
        let ds = ctx.tpch(4, 100_000);
        let q12 = tpch::q12(&ds);
        let run = |engine, cost: CostModel, bw: f64| {
            Scenario::new((*ds).clone())
                .engine(engine)
                .cache_bytes(10 * GIB)
                .layout(LayoutPolicy::AllInOne)
                .cost(cost)
                .bandwidth(bw)
                .repeat_query(q12.clone(), 1)
                .run()
                .mean_query_secs()
        };
        let c = CostModel::paper_calibrated();
        let local = run(EngineKind::Vanilla, c.without_fuse(), 0.0);
        let fuse = run(EngineKind::Vanilla, c, 0.0);
        let remote = run(EngineKind::Vanilla, c, 110.0 * 1024.0 * 1024.0);
        assert!(local < fuse && fuse < remote);
        // Skipper's out-of-order execution carries only marginal overhead
        // vs the blocking baseline (paper: +6%).
        let skipper_local = run(EngineKind::Skipper, c.without_fuse(), 0.0);
        let overhead = skipper_local / local;
        assert!(
            (0.95..1.35).contains(&overhead),
            "skipper local overhead {overhead:.3}"
        );
    }
}
