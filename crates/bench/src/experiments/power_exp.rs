//! Bonus experiment: MAID energy accounting for the Figure 7 scenario.
//!
//! Quantifies the motivation-level claims of §1/§7: a MAID-configured CSD
//! consumes a fraction of an always-on array's power, and Skipper's
//! batched group residencies save further energy over the pull-based
//! baseline (fewer spin-up cycles, shorter makespans for the same work).

use skipper_core::driver::{EngineKind, Scenario};
use skipper_csd::PowerModel;
use skipper_datagen::tpch;
use skipper_sim::{SimDuration, SimTime};

use crate::ctx::Ctx;
use crate::experiments::params::{DIVISOR_MAIN, GIB, SF_MAIN};
use crate::report::{pct, Table};

/// One engine's energy figures for the 5-client Q12 run.
#[derive(Clone, Copy, Debug)]
pub struct PowerRow {
    /// Engine label.
    pub engine: &'static str,
    /// Group switches (spin-up cycles).
    pub switches: u64,
    /// Makespan in seconds.
    pub makespan_secs: f64,
    /// MAID energy in watt-hours.
    pub maid_wh: f64,
    /// Always-on baseline energy in watt-hours.
    pub all_spinning_wh: f64,
}

/// Runs the energy comparison: 5 clients, Q12, Pelican-shaped array.
pub fn power_rows(ctx: &mut Ctx) -> Vec<PowerRow> {
    let ds = ctx.tpch(SF_MAIN, DIVISOR_MAIN);
    let q12 = tpch::q12(&ds);
    let model = PowerModel::default();
    [EngineKind::Vanilla, EngineKind::Skipper]
        .iter()
        .map(|&engine| {
            let res = Scenario::new((*ds).clone())
                .clients(5)
                .engine(engine)
                .cache_bytes(30 * GIB)
                .repeat_query(q12.clone(), 1)
                .run();
            let transfer = SimDuration::from_secs_f64(
                res.device.logical_bytes_served as f64 / (110.0 * 1024.0 * 1024.0),
            );
            let report = model.estimate(
                res.makespan.since(SimTime::ZERO),
                transfer,
                res.device.group_switches,
            );
            PowerRow {
                engine: match engine {
                    EngineKind::Vanilla => "PostgreSQL",
                    EngineKind::Skipper => "Skipper",
                },
                switches: res.device.group_switches,
                makespan_secs: res.makespan.as_secs_f64(),
                maid_wh: report.maid_wh,
                all_spinning_wh: report.all_spinning_wh,
            }
        })
        .collect()
}

/// The energy comparison as a printable table.
pub fn power(ctx: &mut Ctx) -> Table {
    let mut t = Table::new(
        "Bonus: MAID energy for the Figure 7 scenario (Pelican-shaped array, 5 clients, Q12)",
        &[
            "engine",
            "switches",
            "makespan (s)",
            "MAID (Wh)",
            "always-on (Wh)",
            "saving",
        ],
    );
    for r in power_rows(ctx) {
        t.push_row(vec![
            r.engine.into(),
            r.switches.to_string(),
            format!("{:.0}", r.makespan_secs),
            format!("{:.0}", r.maid_wh),
            format!("{:.0}", r.all_spinning_wh),
            pct(1.0 - r.maid_wh / r.all_spinning_wh),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skipper_consumes_less_energy_for_the_same_work() {
        let mut ctx = Ctx::new();
        // Miniature run through the same code path.
        let ds = ctx.tpch(4, 200_000);
        let q12 = tpch::q12(&ds);
        let model = PowerModel::default();
        let energy = |engine| {
            let res = Scenario::new((*ds).clone())
                .clients(4)
                .engine(engine)
                .cache_bytes(10 * GIB)
                .repeat_query(q12.clone(), 1)
                .run();
            let transfer = SimDuration::from_secs_f64(
                res.device.logical_bytes_served as f64 / (110.0 * 1024.0 * 1024.0),
            );
            model.estimate(
                res.makespan.since(SimTime::ZERO),
                transfer,
                res.device.group_switches,
            )
        };
        let v = energy(EngineKind::Vanilla);
        let s = energy(EngineKind::Skipper);
        assert!(s.maid_wh < v.maid_wh);
        assert!(v.savings() > 0.5 && s.savings() > 0.5);
    }
}
