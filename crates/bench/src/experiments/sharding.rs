//! Fleet scale-out: the mixed-tenant fleet swept across 1→8 CSD shards.
//!
//! The paper's testbed has one emulated CSD; the production question is
//! what happens when the archive outgrows a rack and the same tenants
//! are spread over a *fleet* of devices. This experiment reruns the
//! heterogeneous Figure 8 mix — TPC-H and NREF tenants on Skipper,
//! MR-bench and SSB still pull-based — against 1 through 8 shards and
//! reports the makespan, the switch bill, and the per-shard balance.
//! Work is conserved by construction (the determinism/property suite in
//! `tests/sharding.rs` pins that), so every speedup here is pure
//! parallelism: more spun-up groups serving at once.

use std::sync::Arc;

use skipper_core::driver::Scenario;
use skipper_core::runtime::{SkipperFactory, VanillaFactory, Workload};
use skipper_csd::PlacementPolicy;

use crate::ctx::Ctx;
use crate::experiments::mixed;
use crate::experiments::params::GIB;
use crate::report::{secs, Table};

/// One shard count's outcome under the mixed-tenant fleet.
#[derive(Clone, Debug)]
pub struct ShardingRow {
    /// Fleet size.
    pub shards: usize,
    /// Placement policy label.
    pub placement: &'static str,
    /// Virtual makespan of the whole fleet run.
    pub makespan_secs: f64,
    /// Mean per-query execution time.
    pub mean_query_secs: f64,
    /// Total paid group switches across all shards.
    pub total_switches: u64,
    /// Objects served by the least-loaded shard.
    pub min_shard_objects: u64,
    /// Objects served by the most-loaded shard.
    pub max_shard_objects: u64,
}

/// Runs the sweep for one placement policy with `reps` repetitions per
/// tenant.
pub fn sharding_rows(ctx: &mut Ctx, placement: PlacementPolicy, reps: usize) -> Vec<ShardingRow> {
    let tenants = mixed::tenants(ctx);
    (1..=8)
        .map(|shards| {
            let workloads: Vec<Workload> = tenants
                .iter()
                .enumerate()
                .map(|(i, (_, ds, q))| {
                    let w = Workload::new(Arc::clone(ds)).repeat_query(q.clone(), reps);
                    if i % 2 == 0 {
                        w.engine(SkipperFactory::default().cache_bytes(30 * GIB))
                    } else {
                        w.engine(VanillaFactory)
                    }
                })
                .collect();
            let res = Scenario::from_workloads(workloads)
                .shards(shards)
                .placement(placement)
                .run();
            let objects: Vec<u64> = res
                .shards
                .iter()
                .map(|s| s.metrics.objects_served)
                .collect();
            ShardingRow {
                shards,
                placement: placement.label(),
                makespan_secs: res.makespan.as_secs_f64(),
                mean_query_secs: res.mean_query_secs(),
                total_switches: res.device.group_switches,
                min_shard_objects: objects.iter().copied().min().unwrap_or(0),
                max_shard_objects: objects.iter().copied().max().unwrap_or(0),
            }
        })
        .collect()
}

/// The sharding sweep as a printable table (round-robin and hash
/// placement side by side).
pub fn sharding(ctx: &mut Ctx) -> Table {
    let mut t = Table::new(
        "Fleet scale-out: mixed-tenant fleet on 1-8 CSD shards (5 runs per tenant)",
        &[
            "shards",
            "placement",
            "makespan(s)",
            "mean query(s)",
            "switches",
            "min/max shard objects",
        ],
    );
    for placement in [PlacementPolicy::RoundRobin, PlacementPolicy::HashObject] {
        for r in sharding_rows(ctx, placement, 5) {
            t.push_row(vec![
                r.shards.to_string(),
                r.placement.into(),
                secs(r.makespan_secs),
                secs(r.mean_query_secs),
                r.total_switches.to_string(),
                format!("{}/{}", r.min_shard_objects, r.max_shard_objects),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shrinks_makespan_and_conserves_objects() {
        // Miniature: SF-2 datasets, 1 repetition, round-robin placement.
        let mut ctx = Ctx::new();
        // Warm the miniature datasets so mixed::tenants at SF_MAIN is
        // not required: run the sweep directly over two tenants.
        let tpch_ds = ctx.tpch(2, 200_000);
        let mr_ds = ctx.mrbench(2, 200_000);
        let mk = |shards: usize| {
            Scenario::from_workloads(vec![
                Workload::new(Arc::clone(&tpch_ds))
                    .repeat_query(skipper_datagen::tpch::q12(&tpch_ds), 1)
                    .engine(SkipperFactory::default().cache_bytes(20 * GIB)),
                Workload::new(Arc::clone(&mr_ds))
                    .repeat_query(skipper_datagen::mrbench::join_task(&mr_ds), 1)
                    .engine(VanillaFactory),
            ])
            .shards(shards)
            .placement(PlacementPolicy::RoundRobin)
            .run()
        };
        let one = mk(1);
        let four = mk(4);
        assert_eq!(
            one.device.objects_served, four.device.objects_served,
            "sharding must conserve work"
        );
        assert!(
            four.makespan <= one.makespan,
            "4 shards slower than 1: {} > {}",
            four.makespan,
            one.makespan
        );
        assert_eq!(four.shards.len(), 4);
    }
}
