//! Table 2: the data-layout / subplan worked example (§3.3, §4.1).
//!
//! Three relations A, B, C of two segments each, spread over three disk
//! groups: g1 = {A.1, B.1, C.1}, g2 = {A.2, B.2}, g3 = {C.3}. The example
//! shows (a) the 8 subplans MJoin enumerates, and (b) that batching all
//! requests upfront retrieves everything with 2 group switches while the
//! pull-based order C, B, A pays 5.

use std::collections::BTreeMap;

use skipper_core::subplan::SubplanTracker;
use skipper_csd::{
    CsdConfig, CsdDevice, IntraGroupOrder, ObjectId, ObjectStore, QueryId, SchedPolicy, StreamModel,
};
use skipper_sim::{SimDuration, SimTime};

use crate::report::Table;

/// The example's object universe: `(label, object, group)`.
/// Tables: A=0, B=1, C=2; the paper's segment names A.1/A.2 map to
/// segment ids 0/1 (C.1/C.3 likewise).
pub fn example_objects() -> Vec<(&'static str, ObjectId, u32)> {
    vec![
        ("A.1", ObjectId::new(0, 0, 0), 0),
        ("B.1", ObjectId::new(0, 1, 0), 0),
        ("C.1", ObjectId::new(0, 2, 0), 0),
        ("A.2", ObjectId::new(0, 0, 1), 1),
        ("B.2", ObjectId::new(0, 1, 1), 1),
        ("C.3", ObjectId::new(0, 2, 1), 2),
    ]
}

fn device() -> CsdDevice<&'static str> {
    let mut store = ObjectStore::new();
    for (_, id, group) in example_objects() {
        store.put(id, 1, group, "seg");
    }
    CsdDevice::new(
        CsdConfig {
            switch_latency: SimDuration::from_secs(8),
            bandwidth_bytes_per_sec: 0.0, // latency-free transfers: count switches only
            initial_load_free: true,
            parallel_streams: 1,
            stream_model: StreamModel::Pipeline,
            ..CsdConfig::default()
        },
        store,
        SchedPolicy::MaxQueries.build(),
        IntraGroupOrder::SemanticRoundRobin,
    )
}

/// Serves a request schedule to completion, returning the switch count.
/// `batches` are submitted one after another, each only after the
/// previous batch completed (pull-based = one object per batch).
pub fn switches_for(batches: &[Vec<ObjectId>]) -> u64 {
    let mut dev = device();
    let mut now = SimTime::ZERO;
    for batch in batches {
        dev.submit(now, 0, QueryId::new(0, 0), batch);
        while let Some(t) = dev.kick(now) {
            now = t;
            dev.complete(now);
        }
    }
    dev.metrics().group_switches
}

/// The 8 subplans of the example, as label strings.
pub fn subplans() -> Vec<String> {
    let tracker = SubplanTracker::new(&[2, 2, 2]);
    let names: BTreeMap<(usize, u32), &str> = [
        ((0usize, 0u32), "A.1"),
        ((0, 1), "A.2"),
        ((1, 0), "B.1"),
        ((1, 1), "B.2"),
        ((2, 0), "C.1"),
        ((2, 1), "C.3"),
    ]
    .into_iter()
    .collect();
    let mut out = Vec::new();
    for a in 0..tracker.seg_count(0) {
        for b in 0..tracker.seg_count(1) {
            for c in 0..tracker.seg_count(2) {
                out.push(format!(
                    "{},{},{}",
                    names[&(0, a)],
                    names[&(1, b)],
                    names[&(2, c)]
                ));
            }
        }
    }
    out
}

/// Table 2 as a printable table, plus the switch-count comparison.
pub fn table2() -> Table {
    let mut t = Table::new(
        "Table 2: data layout and execution subplans (g1={A.1,B.1,C.1} g2={A.2,B.2} g3={C.3})",
        &["id", "subplan"],
    );
    for (i, s) in subplans().iter().enumerate() {
        t.push_row(vec![(i + 1).to_string(), s.clone()]);
    }
    // The access-order comparison of §3.3.
    let objs = example_objects();
    let by_label = |l: &str| objs.iter().find(|(n, ..)| *n == l).unwrap().1;
    let batched = vec![objs.iter().map(|(_, id, _)| *id).collect::<Vec<_>>()];
    let pull: Vec<Vec<ObjectId>> = ["C.1", "C.3", "B.1", "B.2", "A.1", "A.2"]
        .iter()
        .map(|l| vec![by_label(l)])
        .collect();
    t.push_row(vec![
        "switches".into(),
        format!(
            "batched upfront: {} | pull-based C,B,A: {}",
            switches_for(&batched),
            switches_for(&pull)
        ),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerates_exactly_eight_subplans() {
        let s = subplans();
        assert_eq!(s.len(), 8);
        assert_eq!(s[0], "A.1,B.1,C.1");
        assert!(s.contains(&"A.2,B.2,C.3".to_string()));
    }

    #[test]
    fn batched_needs_two_switches_pull_needs_five() {
        let objs = example_objects();
        let by_label = |l: &str| objs.iter().find(|(n, ..)| *n == l).unwrap().1;
        // "all three tables can be retrieved from the CSD with just two
        // group switches"
        let batched = vec![objs.iter().map(|(_, id, _)| *id).collect::<Vec<_>>()];
        assert_eq!(switches_for(&batched), 2);
        // "fetching relations C, B, A, in that order leads to 5 switches
        // instead of 2"
        let pull: Vec<Vec<ObjectId>> = ["C.1", "C.3", "B.1", "B.2", "A.1", "A.2"]
            .iter()
            .map(|l| vec![by_label(l)])
            .collect();
        assert_eq!(switches_for(&pull), 5);
    }
}
