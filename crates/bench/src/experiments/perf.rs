//! Wall-clock performance of the simulator's per-event hot path.
//!
//! Everything else in this harness measures *virtual* time; this
//! experiment measures *simulator throughput* — the wall-clock cost of
//! driving the CSD scheduling loop — because simulator speed bounds how
//! many scenarios the suite can sweep. It drives a large synthetic
//! closed-loop scenario (the default: 64 tenants × 12 rounds × 150
//! objects = 115 200 requests; [`PerfScenario::million`]: 64 × 32 × 500
//! = 1 024 000 requests, ~32 000 pending at any instant) across two
//! axes:
//!
//! * **queue** — `indexed` (the production [`RequestQueue`]) vs `naive`
//!   (the pre-index [`NaiveQueue`] reference, O(n) rescans per
//!   decision).
//! * **core** — `v1` (the pre-rebuild event core: full span/ledger
//!   recording, a freshly allocated `Vec<Delivery>` per wake-up,
//!   re-kick *every* shard after a resubmit, linear min-scan over the
//!   per-shard wake-ups per event) vs `v2` (the million-request core:
//!   `TraceMode::Counters` + `LedgerMode::Counters` bounded-memory
//!   observability, `complete_into` with one reusable scratch buffer,
//!   a [`CalendarQueue`] of armed per-shard wake-ups with stale-event
//!   filtering, and re-kicks only for shards actually mutated).
//!
//! Every run must produce the identical delivery multiset (checked via
//! an order-insensitive streaming fingerprint, so the check itself
//! costs no memory), the same makespan, and the same switch count. The
//! reported events/sec quantify both wins; with an allocation probe
//! installed (the `perf` binary's counting `#[global_allocator]`), the
//! v2 samples also report *allocations per event* over the drive loop —
//! the zero-allocation steady-state gauge.
//!
//! A third axis rides on top of the v2 core: **execution** — the
//! windowed-parallel drive loop (`par`), the bench-side twin of the
//! runtime's `ExecutionMode::Parallel`. Tenant resubmits go through
//! scheduled `Round` events (`think_micros` after the round-completing
//! delivery — the client think time), which makes every cross-shard
//! interaction instant known ahead of time: a [`HorizonTracker`] bounds
//! the safe horizon, shard completion chains drain concurrently into
//! [`WindowBuffer`] replay logs on a worker pool, and the calendar loop
//! replays them — bit-identical to the same loop at `workers = 0` (no
//! windows), which [`parallel_sweep`] asserts per configuration. With
//! `think_micros = 0` the horizon collapses to the next wake-up and no
//! window ever drains: parallel execution only pays off when clients
//! think between rounds.
//!
//! A fourth drive loop leaves the closed-loop regime entirely: **open**
//! ([`drive_open` via `open_sweep`]) releases every round at instants
//! expanded up-front from a seeded [`ArrivalProcess`] (Poisson, bursty
//! on/off, diurnal, trace replay), so load arrives whether or not the
//! fleet keeps up and queues grow past saturation — the internet-facing
//! regime. Each round's response time (release → last delivery,
//! queue-wait included) feeds a fixed-ε Greenwald–Khanna
//! [`QuantileSketch`], giving p50/p95/p99/p999 tail latency in O(1)
//! memory per sample ([`PerfSample::latency`]) without disturbing the
//! allocs/event gauge.
//!
//! `skipper-bench --bin perf` emits the results as `BENCH_perf.json`
//! (schema `BENCH_perf/v4`) and the recorded baselines live in
//! `EXPERIMENTS.md`.

use std::time::Instant;

use skipper_core::runtime::ArrivalProcess;
use skipper_csd::sched::{NaiveQueue, RequestIndex, RequestQueue};
use skipper_csd::{
    CsdConfig, CsdDevice, Delivery, IntraGroupOrder, LedgerMode, ObjectId, ObjectStore, QueryId,
    SchedPolicy, StreamModel,
};
use skipper_sim::parallel::{
    drain_chain, drain_parallel, HorizonTracker, WindowBuffer, WindowDrain,
};
use skipper_sim::rng::splitmix64;
use skipper_sim::{CalendarQueue, QuantileSketch, SimDuration, SimTime, TraceMode};

use crate::report::Table;

const MB: u64 = 1 << 20;

/// The synthetic closed-loop scenario driven against both queues.
#[derive(Clone, Debug)]
pub struct PerfScenario {
    /// Closed-loop synthetic tenants.
    pub tenants: usize,
    /// Rounds ("queries") per tenant; a tenant resubmits the next round
    /// when the previous one is fully delivered.
    pub rounds: usize,
    /// GET requests per round.
    pub objects_per_round: u32,
    /// Disk groups per shard (tenant `t` lives in group `t % groups`).
    pub groups: u32,
    /// Scheduling policy under test.
    pub policy: SchedPolicy,
    /// Transfer streams per device (the service pipeline width). The
    /// multi-stream configuration exercises the earliest-of-K wake-up
    /// path and the armed-switch drain in the hot loop.
    pub streams: u32,
    /// Client think time in microseconds: the delay between a tenant's
    /// round-completing delivery and its next-round submission. Only
    /// the windowed (`par`) drive loop honours it — the v1/v2 loops
    /// resubmit inline — and it is the parallel loop's lookahead: safe
    /// windows are at most `min-armed + think` wide, so 0 disables
    /// draining entirely.
    pub think_micros: u64,
    /// Open-arrival process for the `open` drive loop: round `r` of
    /// tenant `t` is *released* at the process's `r`-th event instead
    /// of on completion of round `r−1`, so load is applied regardless
    /// of whether the fleet keeps up (the internet-facing regime —
    /// queues grow past saturation and the latency sketch sees the
    /// queueing delay). `None` keeps the closed loop; the v1/v2/par
    /// drives ignore this field.
    pub arrival: Option<ArrivalProcess>,
}

impl Default for PerfScenario {
    fn default() -> Self {
        PerfScenario {
            tenants: 64,
            rounds: 12,
            objects_per_round: 150,
            groups: 16,
            policy: SchedPolicy::RankBased,
            streams: 1,
            think_micros: 0,
            arrival: None,
        }
    }
}

impl PerfScenario {
    /// The million-request configuration: 64 tenants × 32 rounds × 500
    /// objects = 1 024 000 GETs with ~32 000 requests pending at any
    /// instant — the regime the ROADMAP's millions-of-users north star
    /// lives in. Drive it with the v2 core (`Counters` observability);
    /// the naive queue is O(n²) here and should be skipped.
    pub fn million() -> Self {
        PerfScenario {
            tenants: 64,
            rounds: 32,
            objects_per_round: 500,
            groups: 16,
            policy: SchedPolicy::RankBased,
            streams: 1,
            think_micros: 0,
            arrival: None,
        }
    }

    /// Total GET requests the scenario issues.
    pub fn total_requests(&self) -> u64 {
        self.tenants as u64 * self.rounds as u64 * self.objects_per_round as u64
    }
}

/// Which drive loop + observability regime a sample ran under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoreVersion {
    /// The pre-rebuild loop: full traces/ledgers, per-wake-up `Vec`
    /// allocation, re-kick every shard on resubmit, linear min-scan.
    V1,
    /// The million-request loop: counters-mode observability, reusable
    /// scratch delivery buffer, calendar-queue wake-ups, mutated-shard
    /// re-kicks.
    V2,
}

impl CoreVersion {
    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            CoreVersion::V1 => "v1",
            CoreVersion::V2 => "v2",
        }
    }
}

/// One timed run of the scenario on one (core, queue) combination.
#[derive(Clone, Debug)]
pub struct PerfSample {
    /// Core label: `"v1"`, `"v2"`, or `"par"` (the windowed loop).
    pub core: &'static str,
    /// Worker threads draining windows (`par` core only): `Some(0)` is
    /// the no-window sequential reference every parallel run must match
    /// bit-for-bit; `None` for the v1/v2 cores.
    pub workers: Option<usize>,
    /// Queue implementation label: `"indexed"` or `"naive"`.
    pub queue: &'static str,
    /// Fleet size.
    pub shards: usize,
    /// Requests submitted (= objects delivered).
    pub requests: u64,
    /// Device events processed (transfer + switch completions).
    pub events: u64,
    /// Wall-clock seconds for the drive loop.
    pub wall_secs: f64,
    /// Device events per wall-clock second — the headline throughput.
    pub events_per_sec: f64,
    /// Virtual makespan of the run (identical across queues and cores).
    pub makespan_secs: f64,
    /// Total paid group switches (identical across queues and cores).
    pub switches: u64,
    /// Heap allocations per event over the drive loop, when an
    /// allocation probe is installed (v2/open runs only — the
    /// steady-state zero-allocation gauge).
    pub allocs_per_event: Option<f64>,
    /// Round response-time distribution (the `open` core only): the
    /// tail-latency section fed by the streaming quantile sketch.
    pub latency: Option<LatencySample>,
}

/// The tail-latency block of an open-arrival sample: per-round response
/// time (release → last delivery of the round, so queue-wait included)
/// summarized by a fixed-ε [`QuantileSketch`] — O(1) memory no matter
/// how many rounds the drive retires.
#[derive(Clone, Copy, Debug)]
pub struct LatencySample {
    /// Rounds completed (= sketch observations).
    pub count: u64,
    /// Mean response seconds (exact running sum, not sketch-derived).
    pub mean_secs: f64,
    /// Worst response seconds (exact).
    pub max_secs: f64,
    /// Median response seconds (sketch, ±ε rank error).
    pub p50_secs: f64,
    /// 95th-percentile response seconds.
    pub p95_secs: f64,
    /// 99th-percentile response seconds.
    pub p99_secs: f64,
    /// 99.9th-percentile response seconds.
    pub p999_secs: f64,
}

impl LatencySample {
    /// Summarizes a finished response-time sketch plus the exact
    /// mean/max accumulators; `None` when nothing completed.
    fn from_sketch(sketch: &QuantileSketch, sum_secs: f64, max_secs: f64) -> Option<LatencySample> {
        let q = |phi: f64| sketch.quantile(phi).expect("non-empty sketch");
        (sketch.count() > 0).then(|| LatencySample {
            count: sketch.count(),
            mean_secs: sum_secs / sketch.count() as f64,
            max_secs,
            p50_secs: q(0.50),
            p95_secs: q(0.95),
            p99_secs: q(0.99),
            p999_secs: q(0.999),
        })
    }
}

/// Outcome invariants used to cross-check runs without holding the
/// delivery list in memory: an order-insensitive streaming fingerprint.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    count: u64,
    checksum: u64,
    makespan: SimTime,
    switches: u64,
}

/// Commutative delivery digest: the wrapping sum of per-delivery mixes
/// pins the delivery *multiset* regardless of retirement order; the
/// makespan/switch fields catch schedule divergence beyond that.
fn mix_delivery(client: usize, query: QueryId, object: ObjectId) -> u64 {
    let mut h = (client as u64) << 48
        ^ (query.tenant as u64) << 32
        ^ (query.seq as u64) << 40
        ^ (object.tenant as u64) << 16
        ^ (object.table as u64) << 24
        ^ object.segment as u64;
    splitmix64(&mut h)
}

/// Builds the per-shard devices: tenant `t`'s `rounds × objects` GETs
/// target objects `0..rounds*objects` in group `t % groups`, spread
/// round-robin by segment over the shards.
fn build_devices<Q: RequestIndex>(
    sc: &PerfScenario,
    shards: usize,
    core: CoreVersion,
) -> Vec<CsdDevice<(), Q>> {
    let per_tenant = sc.rounds as u32 * sc.objects_per_round;
    let (trace_mode, ledger_mode) = match core {
        CoreVersion::V1 => (TraceMode::Full, LedgerMode::Full),
        CoreVersion::V2 => (TraceMode::Counters, LedgerMode::Counters),
    };
    (0..shards)
        .map(|shard| {
            let mut store = ObjectStore::new();
            for t in 0..sc.tenants {
                for seg in 0..per_tenant {
                    if seg as usize % shards == shard {
                        store.put(
                            ObjectId::new(t as u16, 0, seg),
                            100 * MB,
                            t as u32 % sc.groups,
                            (),
                        );
                    }
                }
            }
            CsdDevice::new(
                CsdConfig {
                    switch_latency: SimDuration::from_secs(10),
                    bandwidth_bytes_per_sec: (100 * MB) as f64,
                    initial_load_free: true,
                    parallel_streams: sc.streams,
                    stream_model: StreamModel::Pipeline,
                    trace_mode,
                    ledger_mode,
                },
                store,
                sc.policy.build(),
                IntraGroupOrder::SemanticRoundRobin,
            )
        })
        .collect()
}

/// Per-tenant closed-loop state shared by both drive loops.
struct ClosedLoop {
    round: Vec<usize>,
    outstanding: Vec<u32>,
    count: u64,
    checksum: u64,
}

impl ClosedLoop {
    fn new(tenants: usize) -> Self {
        ClosedLoop {
            round: vec![0; tenants],
            outstanding: vec![0; tenants],
            count: 0,
            checksum: 0,
        }
    }

    /// Digests a delivery; returns `Some(next_round)` when it completed
    /// tenant `t`'s current round and another round remains.
    fn on_delivery(&mut self, sc: &PerfScenario, d: &Delivery<()>) -> Option<usize> {
        self.count += 1;
        self.checksum = self
            .checksum
            .wrapping_add(mix_delivery(d.client, d.query, d.object));
        let t = d.client;
        self.outstanding[t] -= 1;
        if self.outstanding[t] == 0 {
            self.round[t] += 1;
            if self.round[t] < sc.rounds {
                self.outstanding[t] = sc.objects_per_round;
                return Some(self.round[t]);
            }
        }
        None
    }
}

fn submit_round<Q: RequestIndex>(
    sc: &PerfScenario,
    devices: &mut [CsdDevice<(), Q>],
    now: SimTime,
    t: usize,
    r: usize,
) {
    let shards = devices.len();
    let query = QueryId::new(t as u16, r as u32);
    let base = r as u32 * sc.objects_per_round;
    for seg in base..base + sc.objects_per_round {
        devices[seg as usize % shards].submit(now, t, query, &[ObjectId::new(t as u16, 0, seg)]);
    }
}

/// The pre-rebuild drive loop, preserved verbatim as the `v1` baseline:
/// a `Vec<Delivery>` is allocated per wake-up, a resubmit re-kicks
/// *every* shard, and the next wake-up is re-derived with a linear
/// min-scan over the per-shard completion times on every event.
fn drive_v1<Q: RequestIndex>(
    sc: &PerfScenario,
    shards: usize,
    queue_label: &'static str,
) -> (PerfSample, Fingerprint) {
    let mut devices = build_devices::<Q>(sc, shards, CoreVersion::V1);
    let mut loop_state = ClosedLoop::new(sc.tenants);
    let mut events = 0u64;

    let start = Instant::now();
    for t in 0..sc.tenants {
        submit_round(sc, &mut devices, SimTime::ZERO, t, 0);
        loop_state.outstanding[t] = sc.objects_per_round;
    }
    let mut next: Vec<Option<SimTime>> = (0..shards)
        .map(|s| devices[s].kick(SimTime::ZERO))
        .collect();
    let mut makespan = SimTime::ZERO;
    while let Some((now, s)) = next
        .iter()
        .enumerate()
        .filter_map(|(s, t)| t.map(|t| (t, s)))
        .min()
    {
        makespan = now;
        events += 1;
        let mut resubmitted = false;
        for d in devices[s].complete(now) {
            if let Some(r) = loop_state.on_delivery(sc, &d) {
                submit_round(sc, &mut devices, now, d.client, r);
                resubmitted = true;
            }
        }
        if resubmitted {
            // A round spans every shard, and new work can move a busy
            // shard's earliest completion *earlier* (idle pipeline
            // slots fill): re-kick everything, re-arming on mutation.
            for (o, slot) in next.iter_mut().enumerate() {
                *slot = devices[o].kick(now);
            }
        } else {
            next[s] = devices[s].kick(now);
        }
    }
    let wall = start.elapsed().as_secs_f64();
    finish(
        sc,
        devices,
        loop_state.count,
        loop_state.checksum,
        events,
        wall,
        makespan,
        CoreVersion::V1,
        queue_label,
        None,
    )
}

/// The million-request drive loop (`v2`): armed per-shard wake-ups live
/// in a [`CalendarQueue`] (stale superseded entries are filtered on
/// pop), completions drain into one reusable scratch buffer, and only
/// the shards a resubmit actually touched are re-kicked.
fn drive_v2<Q: RequestIndex>(
    sc: &PerfScenario,
    shards: usize,
    queue_label: &'static str,
    alloc_counter: Option<fn() -> u64>,
) -> (PerfSample, Fingerprint) {
    assert!(
        shards <= 64,
        "v2 drive loop tracks mutated shards in a u64 bitmask"
    );
    let mut devices = build_devices::<Q>(sc, shards, CoreVersion::V2);
    let mut loop_state = ClosedLoop::new(sc.tenants);
    let mut events = 0u64;
    let mut scratch: Vec<Delivery<()>> = Vec::new();

    let start = Instant::now();
    for t in 0..sc.tenants {
        submit_round(sc, &mut devices, SimTime::ZERO, t, 0);
        loop_state.outstanding[t] = sc.objects_per_round;
    }
    let mut wakeups: CalendarQueue<usize> = CalendarQueue::new();
    let mut armed: Vec<Option<SimTime>> = vec![None; shards];
    for (s, slot) in armed.iter_mut().enumerate() {
        if let Some(at) = devices[s].kick(SimTime::ZERO) {
            *slot = Some(at);
            wakeups.schedule(at, s);
        }
    }
    let allocs_before = alloc_counter.map(|f| f());
    let mut makespan = SimTime::ZERO;
    while let Some((now, s)) = wakeups.pop() {
        if armed[s] != Some(now) {
            continue; // superseded by a re-arm at an earlier instant
        }
        armed[s] = None;
        makespan = now;
        events += 1;
        scratch.clear();
        devices[s].complete_into(now, &mut scratch);
        // The completed shard always needs a re-kick; resubmits mark
        // the other shards they touched.
        let mut touched: u64 = 1 << s;
        for d in &scratch {
            let (client, next_round) = match loop_state.on_delivery(sc, d) {
                Some(r) => (d.client, r),
                None => continue,
            };
            submit_round(sc, &mut devices, now, client, next_round);
            touched |= if sc.objects_per_round as usize >= shards {
                // A full round lands on every shard.
                u64::MAX >> (64 - shards)
            } else {
                let mut mask = 0u64;
                let base = next_round as u32 * sc.objects_per_round;
                for seg in base..base + sc.objects_per_round {
                    mask |= 1 << (seg as usize % shards);
                }
                mask
            };
        }
        let mut rest = touched;
        while rest != 0 {
            let s2 = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            match devices[s2].kick(now) {
                Some(at) if armed[s2] == Some(at) => {}
                Some(at) => {
                    armed[s2] = Some(at);
                    wakeups.schedule(at, s2);
                }
                None => armed[s2] = None,
            }
        }
    }
    let allocs_after = alloc_counter.map(|f| f());
    let wall = start.elapsed().as_secs_f64();
    let allocs_per_event = allocs_before.zip(allocs_after).map(|(before, after)| {
        if events > 0 {
            (after - before) as f64 / events as f64
        } else {
            0.0
        }
    });
    finish(
        sc,
        devices,
        loop_state.count,
        loop_state.checksum,
        events,
        wall,
        makespan,
        CoreVersion::V2,
        queue_label,
        allocs_per_event,
    )
}

/// Event payloads of the windowed (`par`) drive loop.
#[derive(Clone, Copy, Debug)]
enum DriveEvent {
    /// Shard's armed wake-up fires.
    Wake(usize),
    /// Tenant submits a round, `think_micros` after the delivery that
    /// completed its previous one. Every `Round` is noted in the
    /// horizon tracker: rounds are the loop's only cross-shard
    /// interactions, so their instants bound the safe window.
    Round(usize, usize),
}

/// One shard of the windowed drive loop: the device plus the replay
/// machinery of the conservative-window protocol — the bench-side twin
/// of the runtime's `DevicePump`.
struct ParShard<Q: RequestIndex> {
    device: CsdDevice<(), Q>,
    /// The armed wake-up instant (the sequential protocol invariant).
    armed: Option<SimTime>,
    replay: WindowBuffer<Delivery<()>>,
    stage: Vec<Delivery<()>>,
}

impl<Q: RequestIndex> WindowDrain for ParShard<Q> {
    fn drain_window(&mut self, horizon: SimTime) {
        let device = &mut self.device;
        drain_chain(
            &mut self.armed,
            horizon,
            &mut self.replay,
            &mut self.stage,
            |at, out| {
                device.complete_into(at, out);
                device.kick(at)
            },
        );
    }
}

fn submit_round_par<Q: RequestIndex>(
    sc: &PerfScenario,
    fleet: &mut [ParShard<Q>],
    now: SimTime,
    t: usize,
    r: usize,
) {
    let shards = fleet.len();
    let query = QueryId::new(t as u16, r as u32);
    let base = r as u32 * sc.objects_per_round;
    for seg in base..base + sc.objects_per_round {
        let shard = &mut fleet[seg as usize % shards];
        debug_assert!(
            shard.replay.is_empty(),
            "submit landed inside a drained window (unsound horizon)"
        );
        shard
            .device
            .submit(now, t, query, &[ObjectId::new(t as u16, 0, seg)]);
    }
}

/// The windowed-parallel drive loop (`par` core, v2 observability).
///
/// Differs from `drive_v2` in exactly one workload respect: a tenant's
/// next round is a scheduled `Round` event `think_micros` after the
/// completing delivery instead of an inline resubmit (with think 0 the
/// round still fires at the same instant, but after the completed
/// shard's kick — so `par` outcomes are compared within the `par`
/// family, not against v2 fingerprints). That deferral is what makes
/// parallelism sound: every future submit instant is known, so between
/// `now` and `min(pending rounds, min-armed + think)` each shard's
/// chain is private and can be drained concurrently into replay logs.
///
/// `workers = 0` disables windows entirely — the pure sequential
/// reference; every `workers >= 1` run must match it bit-for-bit.
fn drive_par<Q: RequestIndex + Send>(
    sc: &PerfScenario,
    shards: usize,
    workers: usize,
    queue_label: &'static str,
    alloc_counter: Option<fn() -> u64>,
) -> (PerfSample, Fingerprint) {
    let think = SimDuration::from_micros(sc.think_micros);
    let mut fleet: Vec<ParShard<Q>> = build_devices::<Q>(sc, shards, CoreVersion::V2)
        .into_iter()
        .map(|device| ParShard {
            device,
            armed: None,
            replay: WindowBuffer::new(),
            stage: Vec::new(),
        })
        .collect();
    let mut loop_state = ClosedLoop::new(sc.tenants);
    let mut events = 0u64;
    let mut scratch: Vec<Delivery<()>> = Vec::new();
    let mut wakeups: CalendarQueue<DriveEvent> = CalendarQueue::new();
    let mut tracker = HorizonTracker::new();

    let start = Instant::now();
    for t in 0..sc.tenants {
        submit_round_par(sc, &mut fleet, SimTime::ZERO, t, 0);
        loop_state.outstanding[t] = sc.objects_per_round;
    }
    for (s, shard) in fleet.iter_mut().enumerate() {
        if let Some(at) = shard.device.kick(SimTime::ZERO) {
            shard.armed = Some(at);
            wakeups.schedule(at, DriveEvent::Wake(s));
        }
    }
    let allocs_before = alloc_counter.map(|f| f());
    let mut makespan = SimTime::ZERO;
    let mut window_end = SimTime::ZERO;
    while let Some((now, ev)) = wakeups.pop() {
        if workers > 0 && now >= window_end {
            // Window barrier: pending rounds bound the horizon
            // directly; beyond them, the earliest completion can breed
            // a round no sooner than `min-armed + think`.
            let mut horizon = tracker.horizon();
            let min_armed = fleet
                .iter()
                .filter_map(|s| s.armed)
                .min()
                .unwrap_or(SimTime::MAX);
            if min_armed != SimTime::MAX {
                horizon = horizon.min(min_armed + think);
            }
            debug_assert!(horizon >= now, "interaction missed by the horizon tracker");
            if horizon > now {
                drain_parallel(&mut fleet, horizon, workers);
            }
            window_end = horizon;
        }
        match ev {
            DriveEvent::Wake(s) => {
                let shard = &mut fleet[s];
                scratch.clear();
                // `Some(rearm)` when answered from the replay log (the
                // recorded re-arm schedules the next wake); `None` when
                // the device ran live and must be kicked afterwards.
                let replayed = if !shard.replay.is_empty() {
                    if shard.replay.next_at() != Some(now) {
                        continue; // stale superseded wake-up (drained)
                    }
                    Some(shard.replay.consume_into(now, &mut scratch))
                } else {
                    if shard.armed != Some(now) {
                        continue; // stale superseded wake-up
                    }
                    shard.armed = None;
                    shard.device.complete_into(now, &mut scratch);
                    None
                };
                makespan = now;
                events += 1;
                for d in &scratch {
                    if let Some(r) = loop_state.on_delivery(sc, d) {
                        let at = now + think;
                        tracker.note(at);
                        wakeups.schedule(at, DriveEvent::Round(d.client, r));
                    }
                }
                let shard = &mut fleet[s];
                match replayed {
                    Some(Some(at)) => wakeups.schedule(at, DriveEvent::Wake(s)),
                    Some(None) => {}
                    None => {
                        if let Some(at) = shard.device.kick(now) {
                            shard.armed = Some(at);
                            wakeups.schedule(at, DriveEvent::Wake(s));
                        }
                    }
                }
            }
            DriveEvent::Round(t, r) => {
                tracker.consume(now);
                submit_round_par(sc, &mut fleet, now, t, r);
                let all = sc.objects_per_round as usize >= shards;
                let base = r as u32 * sc.objects_per_round;
                for (s2, shard) in fleet.iter_mut().enumerate() {
                    let touched = all
                        || (base..base + sc.objects_per_round)
                            .any(|seg| seg as usize % shards == s2);
                    if !touched {
                        continue;
                    }
                    match shard.device.kick(now) {
                        Some(at) if shard.armed == Some(at) => {}
                        Some(at) => {
                            shard.armed = Some(at);
                            wakeups.schedule(at, DriveEvent::Wake(s2));
                        }
                        None => shard.armed = None,
                    }
                }
            }
        }
    }
    let allocs_after = alloc_counter.map(|f| f());
    let wall = start.elapsed().as_secs_f64();
    let allocs_per_event = allocs_before.zip(allocs_after).map(|(before, after)| {
        if events > 0 {
            (after - before) as f64 / events as f64
        } else {
            0.0
        }
    });
    let devices: Vec<CsdDevice<(), Q>> = fleet
        .into_iter()
        .map(|s| {
            assert!(s.replay.is_empty(), "run ended with unconsumed replay");
            s.device
        })
        .collect();
    let (mut sample, fp) = finish(
        sc,
        devices,
        loop_state.count,
        loop_state.checksum,
        events,
        wall,
        makespan,
        CoreVersion::V2,
        queue_label,
        allocs_per_event,
    );
    sample.core = "par";
    sample.workers = Some(workers);
    (sample, fp)
}

/// Event payloads of the open-arrival (`open`) drive loop.
#[derive(Clone, Copy, Debug)]
enum OpenEvent {
    /// Shard's armed wake-up fires.
    Wake(usize),
    /// Tenant `t` releases round `r` — scheduled up-front from the
    /// arrival process, fired regardless of earlier rounds' progress.
    Release(usize, usize),
}

/// The open-arrival drive loop (`open` core, v2 observability + event
/// mechanics): every round's release instant is expanded from
/// [`PerfScenario::arrival`] *before* the clock starts, so load arrives
/// whether or not the fleet keeps up and several rounds of one tenant
/// can be in flight at once. Each round's response time (release → last
/// delivery of the round, queue-wait included) feeds one fixed-ε
/// [`QuantileSketch`] — the O(1)-memory tail-latency gauge the closed
/// loops cannot produce, reported as [`PerfSample::latency`].
///
/// `exact_out`, when set, additionally records every response sample in
/// completion order — the rank-error oracle for the sketch tests, never
/// used by the timed sweeps.
fn drive_open<Q: RequestIndex>(
    sc: &PerfScenario,
    shards: usize,
    queue_label: &'static str,
    alloc_counter: Option<fn() -> u64>,
    mut exact_out: Option<&mut Vec<f64>>,
) -> (PerfSample, Fingerprint) {
    assert!(
        shards <= 64,
        "open drive loop tracks mutated shards in a u64 bitmask"
    );
    let arrival = sc
        .arrival
        .as_ref()
        .expect("the open drive loop needs an arrival process");
    let mut devices = build_devices::<Q>(sc, shards, CoreVersion::V2);
    let mut events = 0u64;
    let mut scratch: Vec<Delivery<()>> = Vec::new();

    let start = Instant::now();
    // Expand every release instant up-front (the processes are pure
    // functions of (seed, tenant), so this is bit-reproducible) and
    // schedule them all; ties pop in (tenant, round) insertion order.
    let mut wakeups: CalendarQueue<OpenEvent> = CalendarQueue::new();
    let mut releases: Vec<Vec<SimTime>> = Vec::with_capacity(sc.tenants);
    for t in 0..sc.tenants {
        let times: Vec<SimTime> = arrival
            .release_times(sc.rounds, t, SimDuration::ZERO)
            .into_iter()
            .map(|at| at.expect("open drive needs open-arrival release instants"))
            .collect();
        for (r, &at) in times.iter().enumerate() {
            wakeups.schedule(at, OpenEvent::Release(t, r));
        }
        releases.push(times);
    }
    let mut outstanding: Vec<Vec<u32>> = vec![vec![0; sc.rounds]; sc.tenants];
    let mut armed: Vec<Option<SimTime>> = vec![None; shards];
    let mut count = 0u64;
    let mut checksum = 0u64;
    let mut sketch = QuantileSketch::default_epsilon();
    let mut sum_secs = 0.0f64;
    let mut max_secs = 0.0f64;
    let allocs_before = alloc_counter.map(|f| f());
    let mut makespan = SimTime::ZERO;
    while let Some((now, ev)) = wakeups.pop() {
        match ev {
            OpenEvent::Wake(s) => {
                if armed[s] != Some(now) {
                    continue; // superseded by a re-arm at an earlier instant
                }
                armed[s] = None;
                makespan = now;
                events += 1;
                scratch.clear();
                devices[s].complete_into(now, &mut scratch);
                for d in &scratch {
                    count += 1;
                    checksum = checksum.wrapping_add(mix_delivery(d.client, d.query, d.object));
                    let (t, r) = (d.client, d.query.seq as usize);
                    outstanding[t][r] -= 1;
                    if outstanding[t][r] == 0 {
                        // Round complete: response includes however long
                        // the round waited in the device queues.
                        let response = now.since(releases[t][r]).as_secs_f64();
                        sketch.push(response);
                        sum_secs += response;
                        max_secs = max_secs.max(response);
                        if let Some(exact) = exact_out.as_deref_mut() {
                            exact.push(response);
                        }
                    }
                }
                // Deliveries never breed submits here (the loop is
                // open), so only the completed shard needs a re-kick.
                if let Some(at) = devices[s].kick(now) {
                    armed[s] = Some(at);
                    wakeups.schedule(at, OpenEvent::Wake(s));
                }
            }
            OpenEvent::Release(t, r) => {
                makespan = makespan.max(now);
                outstanding[t][r] = sc.objects_per_round;
                submit_round(sc, &mut devices, now, t, r);
                let mut touched = if sc.objects_per_round as usize >= shards {
                    u64::MAX >> (64 - shards)
                } else {
                    let mut mask = 0u64;
                    let base = r as u32 * sc.objects_per_round;
                    for seg in base..base + sc.objects_per_round {
                        mask |= 1 << (seg as usize % shards);
                    }
                    mask
                };
                while touched != 0 {
                    let s2 = touched.trailing_zeros() as usize;
                    touched &= touched - 1;
                    match devices[s2].kick(now) {
                        Some(at) if armed[s2] == Some(at) => {}
                        Some(at) => {
                            armed[s2] = Some(at);
                            wakeups.schedule(at, OpenEvent::Wake(s2));
                        }
                        None => armed[s2] = None,
                    }
                }
            }
        }
    }
    let allocs_after = alloc_counter.map(|f| f());
    let wall = start.elapsed().as_secs_f64();
    let allocs_per_event = allocs_before.zip(allocs_after).map(|(before, after)| {
        if events > 0 {
            (after - before) as f64 / events as f64
        } else {
            0.0
        }
    });
    assert_eq!(
        sketch.count(),
        sc.tenants as u64 * sc.rounds as u64,
        "open drive lost rounds"
    );
    let (mut sample, fp) = finish(
        sc,
        devices,
        count,
        checksum,
        events,
        wall,
        makespan,
        CoreVersion::V2,
        queue_label,
        allocs_per_event,
    );
    sample.core = "open";
    sample.latency = LatencySample::from_sketch(&sketch, sum_secs, max_secs);
    (sample, fp)
}

#[allow(clippy::too_many_arguments)]
fn finish<Q: RequestIndex>(
    sc: &PerfScenario,
    devices: Vec<CsdDevice<(), Q>>,
    count: u64,
    checksum: u64,
    events: u64,
    wall: f64,
    makespan: SimTime,
    core: CoreVersion,
    queue_label: &'static str,
    allocs_per_event: Option<f64>,
) -> (PerfSample, Fingerprint) {
    assert!(
        devices.iter().all(|d| d.is_quiescent()),
        "perf drive loop left work behind"
    );
    let switches: u64 = devices.iter().map(|d| d.metrics().group_switches).sum();
    assert_eq!(count, sc.total_requests(), "lost deliveries");
    (
        PerfSample {
            core: core.label(),
            workers: None,
            queue: queue_label,
            shards: devices.len(),
            requests: count,
            events,
            wall_secs: wall,
            events_per_sec: if wall > 0.0 {
                events as f64 / wall
            } else {
                0.0
            },
            makespan_secs: makespan.as_secs_f64(),
            switches,
            allocs_per_event,
            latency: None,
        },
        Fingerprint {
            count,
            checksum,
            makespan,
            switches,
        },
    )
}

/// Knobs for [`perf_sweep`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SweepOptions {
    /// Skip the naive-queue baseline (mandatory for million-scale runs:
    /// the naive queue is O(n²) in pending depth).
    pub skip_naive: bool,
    /// Skip the v1-core baseline (CI smoke mode).
    pub skip_v1: bool,
    /// Allocation probe: a function reading a process-wide allocation
    /// counter (the perf binary installs a counting
    /// `#[global_allocator]`). When set, v2 samples report
    /// allocations/event.
    pub alloc_counter: Option<fn() -> u64>,
    /// Timed repetitions per configuration; the fastest wall time is
    /// reported (0 is treated as 1). Virtual outcomes are asserted
    /// identical across repeats, so best-of-N only de-noises the
    /// wall-clock measurement.
    pub repeats: usize,
}

/// Runs the scenario on every requested shard count: the v2 core on the
/// indexed queue (the production configuration), plus — unless skipped —
/// the v1 core on the indexed queue (core baseline) and the v1 core on
/// the naive queue (queue baseline). All runs of a shard count must be
/// observationally identical (delivery multiset fingerprint, makespan,
/// switches); samples arrive v2 first per shard count.
pub fn perf_sweep(
    sc: &PerfScenario,
    shard_counts: &[usize],
    opts: SweepOptions,
) -> Vec<PerfSample> {
    let mut samples = Vec::new();
    // Untimed warm-up at the real queue depth: the first timed run would
    // otherwise pay the process's page-fault and allocator warm-up alone,
    // systematically biasing whichever variant runs first.
    if sc.rounds > 1 {
        let warmup = PerfScenario {
            rounds: 1,
            ..sc.clone()
        };
        let shards = shard_counts.first().copied().unwrap_or(1);
        drive_v2::<RequestQueue>(&warmup, shards, "indexed", None);
        drive_v1::<RequestQueue>(&warmup, shards, "indexed");
    }
    let repeats = opts.repeats.max(1);
    let best = |mut run: Box<dyn FnMut() -> (PerfSample, Fingerprint)>| {
        let (mut sample, fp) = run();
        for _ in 1..repeats {
            let (s, f) = run();
            assert_eq!(fp, f, "repeat run diverged");
            if s.wall_secs < sample.wall_secs {
                sample = s;
            }
        }
        (sample, fp)
    };
    for &shards in shard_counts {
        let alloc = opts.alloc_counter;
        let (v2, fp_v2) = best(Box::new(move || {
            drive_v2::<RequestQueue>(sc, shards, "indexed", alloc)
        }));
        samples.push(v2);
        if !opts.skip_v1 {
            let (v1, fp_v1) = best(Box::new(move || {
                drive_v1::<RequestQueue>(sc, shards, "indexed")
            }));
            assert_eq!(fp_v2, fp_v1, "v1/v2 cores diverged at {shards} shards");
            samples.push(v1);
        }
        if !opts.skip_naive {
            let (naive, fp_naive) = best(Box::new(move || {
                drive_v1::<NaiveQueue>(sc, shards, "naive")
            }));
            assert_eq!(
                fp_v2, fp_naive,
                "queue implementations diverged at {shards} shards"
            );
            samples.push(naive);
        }
    }
    samples
}

/// Runs the windowed (`par`) drive on every requested shard count: the
/// no-window sequential reference (`workers = 0`) first, then every
/// requested worker count — asserting each parallel run's fingerprint
/// matches the reference exactly (the bench-side differential sweep).
pub fn parallel_sweep(
    sc: &PerfScenario,
    shard_counts: &[usize],
    workers: &[usize],
    opts: SweepOptions,
) -> Vec<PerfSample> {
    let mut samples = Vec::new();
    if sc.rounds > 1 {
        let warmup = PerfScenario {
            rounds: 1,
            ..sc.clone()
        };
        let shards = shard_counts.first().copied().unwrap_or(1);
        drive_par::<RequestQueue>(&warmup, shards, 0, "indexed", None);
    }
    let repeats = opts.repeats.max(1);
    for &shards in shard_counts {
        let best = |w: usize| {
            let (mut sample, fp) =
                drive_par::<RequestQueue>(sc, shards, w, "indexed", opts.alloc_counter);
            for _ in 1..repeats {
                let (s2, f2) =
                    drive_par::<RequestQueue>(sc, shards, w, "indexed", opts.alloc_counter);
                assert_eq!(fp, f2, "repeat run diverged");
                if s2.wall_secs < sample.wall_secs {
                    sample = s2;
                }
            }
            (sample, fp)
        };
        let (seq, fp_seq) = best(0);
        samples.push(seq);
        for &w in workers.iter().filter(|&&w| w > 0) {
            let (par, fp_par) = best(w);
            assert_eq!(
                fp_seq, fp_par,
                "parallel run diverged from sequential at {shards} shards, {w} workers"
            );
            samples.push(par);
        }
    }
    samples
}

/// Runs the open-arrival (`open`) drive on every requested shard
/// count. There is no closed-loop twin to diff against (the workload
/// semantics differ by construction), so the cross-check here is
/// repeat-determinism: every repeat must reproduce the fingerprint
/// *and* the full latency block bit-for-bit — arrival expansion,
/// schedule, and sketch are all deterministic.
///
/// # Panics
/// Panics if [`PerfScenario::arrival`] is `None`.
pub fn open_sweep(
    sc: &PerfScenario,
    shard_counts: &[usize],
    opts: SweepOptions,
) -> Vec<PerfSample> {
    assert!(
        sc.arrival.is_some(),
        "open_sweep needs PerfScenario::arrival"
    );
    let mut samples = Vec::new();
    if sc.rounds > 1 {
        let warmup = PerfScenario {
            rounds: 1,
            ..sc.clone()
        };
        let shards = shard_counts.first().copied().unwrap_or(1);
        drive_open::<RequestQueue>(&warmup, shards, "indexed", None, None);
    }
    let repeats = opts.repeats.max(1);
    for &shards in shard_counts {
        let (mut sample, fp) =
            drive_open::<RequestQueue>(sc, shards, "indexed", opts.alloc_counter, None);
        for _ in 1..repeats {
            let (s2, f2) =
                drive_open::<RequestQueue>(sc, shards, "indexed", opts.alloc_counter, None);
            assert_eq!(fp, f2, "open repeat run diverged");
            let (a, b) = (sample.latency.unwrap(), s2.latency.unwrap());
            assert_eq!(
                (a.count, a.p50_secs, a.p95_secs, a.p99_secs, a.p999_secs),
                (b.count, b.p50_secs, b.p95_secs, b.p99_secs, b.p999_secs),
                "open repeat latency diverged"
            );
            if s2.wall_secs < sample.wall_secs {
                sample = s2;
            }
        }
        samples.push(sample);
    }
    samples
}

/// The per-(shards, workers) `sequential wall / parallel wall` speedups
/// of the windowed drive (both on the `par` core, so the event
/// mechanics are identical and the ratio isolates the worker pool).
pub fn parallel_speedups(samples: &[PerfSample]) -> Vec<(usize, usize, f64)> {
    let mut out = Vec::new();
    for s in samples
        .iter()
        .filter(|s| s.core == "par" && s.workers.is_some_and(|w| w > 0))
    {
        if let Some(reference) = samples
            .iter()
            .find(|r| r.core == "par" && r.workers == Some(0) && r.shards == s.shards)
        {
            if s.wall_secs > 0.0 {
                out.push((
                    s.shards,
                    s.workers.unwrap(),
                    reference.wall_secs / s.wall_secs,
                ));
            }
        }
    }
    out
}

/// The per-shard-count `naive wall / indexed wall` speedups (both on
/// the v1 core: the PR-3 queue-indexing win).
pub fn queue_speedups(samples: &[PerfSample]) -> Vec<(usize, f64)> {
    ratio(samples, ("v1", "naive"), ("v1", "indexed"))
}

/// The per-shard-count `v1 wall / v2 wall` speedups (both on the
/// indexed queue: the event-core rebuild win).
pub fn core_speedups(samples: &[PerfSample]) -> Vec<(usize, f64)> {
    ratio(samples, ("v1", "indexed"), ("v2", "indexed"))
}

fn ratio(samples: &[PerfSample], num: (&str, &str), den: (&str, &str)) -> Vec<(usize, f64)> {
    let mut out = Vec::new();
    for d in samples.iter().filter(|s| (s.core, s.queue) == den) {
        if let Some(n) = samples
            .iter()
            .find(|s| (s.core, s.queue) == num && s.shards == d.shards)
        {
            if d.wall_secs > 0.0 {
                out.push((d.shards, n.wall_secs / d.wall_secs));
            }
        }
    }
    out
}

/// Renders the sweep as a printable table.
pub fn table(sc: &PerfScenario, samples: &[PerfSample]) -> Table {
    let mut t = Table::new(
        &format!(
            "Simulator hot path: {} tenants x {} rounds x {} objects ({} requests, {} groups, {}, {} streams)",
            sc.tenants,
            sc.rounds,
            sc.objects_per_round,
            sc.total_requests(),
            sc.groups,
            sc.policy.label(),
            sc.streams,
        ),
        &[
            "shards",
            "core",
            "workers",
            "queue",
            "wall(s)",
            "events",
            "events/sec",
            "allocs/evt",
            "makespan(s)",
            "switches",
            "p99(s)",
        ],
    );
    for s in samples {
        t.push_row(vec![
            s.shards.to_string(),
            s.core.into(),
            s.workers.map_or_else(|| "-".into(), |w| w.to_string()),
            s.queue.into(),
            format!("{:.3}", s.wall_secs),
            s.events.to_string(),
            format!("{:.0}", s.events_per_sec),
            s.allocs_per_event
                .map_or_else(|| "-".into(), |a| format!("{a:.3}")),
            format!("{:.0}", s.makespan_secs),
            s.switches.to_string(),
            s.latency
                .map_or_else(|| "-".into(), |l| format!("{:.1}", l.p99_secs)),
        ]);
    }
    t
}

/// One scenario's sweep: the scenario plus every sample it produced.
#[derive(Clone, Debug)]
pub struct Sweep {
    /// The driven scenario.
    pub scenario: PerfScenario,
    /// Samples, v2 first per shard count.
    pub samples: Vec<PerfSample>,
}

impl Sweep {
    /// Runs `scenario` over `shard_counts` (see [`perf_sweep`]).
    pub fn run(scenario: PerfScenario, shard_counts: &[usize], opts: SweepOptions) -> Sweep {
        let samples = perf_sweep(&scenario, shard_counts, opts);
        Sweep { scenario, samples }
    }
}

/// Compact arrival-process tag for the scenario block (`null` for the
/// closed-loop sweeps; durations in whole microseconds so the tag is
/// exact).
fn arrival_json(arrival: Option<&ArrivalProcess>) -> String {
    let tag = match arrival {
        None => return "null".into(),
        Some(ArrivalProcess::Closed) => "closed".into(),
        Some(ArrivalProcess::Poisson { mean, seed }) => {
            format!("poisson:mean_us={},seed={}", mean.as_micros(), seed)
        }
        Some(ArrivalProcess::OnOff {
            on_mean,
            on_duration,
            off_duration,
            seed,
        }) => format!(
            "onoff:on_mean_us={},on_us={},off_us={},seed={}",
            on_mean.as_micros(),
            on_duration.as_micros(),
            off_duration.as_micros(),
            seed
        ),
        Some(ArrivalProcess::Diurnal {
            peak_mean,
            period,
            trough,
            seed,
        }) => format!(
            "diurnal:peak_mean_us={},period_us={},trough={},seed={}",
            peak_mean.as_micros(),
            period.as_micros(),
            trough,
            seed
        ),
        Some(ArrivalProcess::TraceReplay(instants)) => {
            format!("trace:{}_instants", instants.len())
        }
    };
    format!("\"{tag}\"")
}

/// The per-sample tail block (`null` for the closed-loop cores).
fn latency_json(latency: Option<&LatencySample>) -> String {
    match latency {
        None => "null".into(),
        Some(l) => format!(
            "{{\"count\": {}, \"mean_secs\": {:.6}, \"max_secs\": {:.6}, \"p50_secs\": {:.6}, \"p95_secs\": {:.6}, \"p99_secs\": {:.6}, \"p999_secs\": {:.6}}}",
            l.count, l.mean_secs, l.max_secs, l.p50_secs, l.p95_secs, l.p99_secs, l.p999_secs
        ),
    }
}

/// Serializes one or more sweeps as the `BENCH_perf.json` document
/// (schema `BENCH_perf/v4`: adds the open-arrival axis — `arrival` per
/// scenario, a `latency` tail block per sample — on top of v3's worker
/// axis: `think_micros` per scenario, `workers` per sample, a
/// `parallel_speedup` section); hand-rolled JSON, no serde in this
/// workspace. The committed artifact carries the classic 115k-request
/// grid (apples-to-apples with the v1 history), the million-request
/// multi-shard drive, the windowed-parallel sweeps, and the
/// bursty-arrival tail-latency sweep.
pub fn to_json(sweeps: &[Sweep]) -> String {
    let mut out = String::from("{\n  \"schema\": \"BENCH_perf/v4\",\n  \"sweeps\": [\n");
    let blocks: Vec<String> = sweeps.iter().map(sweep_json).collect();
    out.push_str(&blocks.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

fn sweep_json(sweep: &Sweep) -> String {
    let sc = &sweep.scenario;
    let samples = &sweep.samples;
    let mut out = String::from("    {\n");
    out.push_str(&format!(
        "      \"scenario\": {{\"tenants\": {}, \"rounds\": {}, \"objects_per_round\": {}, \"groups\": {}, \"requests\": {}, \"policy\": \"{}\", \"streams\": {}, \"think_micros\": {}, \"arrival\": {}}},\n",
        sc.tenants,
        sc.rounds,
        sc.objects_per_round,
        sc.groups,
        sc.total_requests(),
        sc.policy.label(),
        sc.streams,
        sc.think_micros,
        arrival_json(sc.arrival.as_ref()),
    ));
    out.push_str("      \"samples\": [\n");
    let rows: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                "        {{\"core\": \"{}\", \"workers\": {}, \"queue\": \"{}\", \"shards\": {}, \"requests\": {}, \"events\": {}, \"wall_secs\": {:.6}, \"events_per_sec\": {:.1}, \"allocs_per_event\": {}, \"makespan_secs\": {:.3}, \"switches\": {}, \"latency\": {}}}",
                s.core,
                s.workers.map_or_else(|| "null".into(), |w| w.to_string()),
                s.queue,
                s.shards,
                s.requests,
                s.events,
                s.wall_secs,
                s.events_per_sec,
                s.allocs_per_event
                    .map_or_else(|| "null".into(), |a| format!("{a:.4}")),
                s.makespan_secs,
                s.switches,
                latency_json(s.latency.as_ref()),
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n      ],\n");
    let section = |name: &str, rows: Vec<(usize, f64)>| {
        let body: Vec<String> = rows
            .into_iter()
            .map(|(shards, x)| format!("        {{\"shards\": {shards}, \"speedup\": {x:.2}}}"))
            .collect();
        format!("      \"{name}\": [\n{}\n      ]", body.join(",\n"))
    };
    out.push_str(&section("queue_speedup", queue_speedups(samples)));
    out.push_str(",\n");
    out.push_str(&section("core_speedup", core_speedups(samples)));
    out.push_str(",\n");
    let par_body: Vec<String> = parallel_speedups(samples)
        .into_iter()
        .map(|(shards, workers, x)| {
            format!("        {{\"shards\": {shards}, \"workers\": {workers}, \"speedup\": {x:.2}}}")
        })
        .collect();
    out.push_str(&format!(
        "      \"parallel_speedup\": [\n{}\n      ]",
        par_body.join(",\n")
    ));
    out.push_str("\n    }");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_agrees_and_reports() {
        let sc = PerfScenario {
            tenants: 4,
            rounds: 2,
            objects_per_round: 6,
            groups: 2,
            policy: SchedPolicy::RankBased,
            streams: 1,
            think_micros: 0,
            arrival: None,
        };
        let samples = perf_sweep(&sc, &[1, 2], SweepOptions::default());
        assert_eq!(samples.len(), 6); // (v2, v1, naive) × 2 shard counts
                                      // Virtual outcomes are queue- and core-independent.
        for trio in samples.chunks(3) {
            assert_eq!(trio[0].core, "v2");
            assert_eq!(trio[1].core, "v1");
            assert_eq!(trio[2].queue, "naive");
            for s in trio {
                assert_eq!(s.makespan_secs, trio[0].makespan_secs);
                assert_eq!(s.switches, trio[0].switches);
                assert_eq!(s.events, trio[0].events);
                assert_eq!(s.requests, sc.total_requests());
            }
        }
        let json = to_json(&[Sweep {
            scenario: sc.clone(),
            samples: samples.clone(),
        }]);
        assert!(json.contains("\"schema\": \"BENCH_perf/v4\""));
        assert!(json.contains("\"queue\": \"naive\""));
        assert!(json.contains("\"core\": \"v2\""));
        assert!(json.contains("\"allocs_per_event\": null"));
        assert!(json.contains("\"arrival\": null"));
        assert!(json.contains("\"latency\": null"));
        assert_eq!(queue_speedups(&samples).len(), 2);
        assert_eq!(core_speedups(&samples).len(), 2);
        assert_eq!(table(&sc, &samples).rows.len(), 6);
    }

    #[test]
    fn multi_stream_cores_agree() {
        // The earliest-of-K wake-up path: with streams > 1 the v2
        // calendar loop sees superseded (stale) wake-ups and must still
        // reproduce the v1 schedule exactly.
        let sc = PerfScenario {
            tenants: 4,
            rounds: 3,
            objects_per_round: 8,
            groups: 2,
            policy: SchedPolicy::RankBased,
            streams: 4,
            think_micros: 0,
            arrival: None,
        };
        let samples = perf_sweep(
            &sc,
            &[1, 2],
            SweepOptions {
                skip_naive: true,
                ..Default::default()
            },
        );
        assert_eq!(samples.len(), 4);
    }

    #[test]
    fn skip_flags_run_v2_only() {
        let sc = PerfScenario {
            tenants: 2,
            rounds: 1,
            objects_per_round: 4,
            groups: 2,
            policy: SchedPolicy::MaxQueries,
            streams: 1,
            think_micros: 0,
            arrival: None,
        };
        let samples = perf_sweep(
            &sc,
            &[1],
            SweepOptions {
                skip_naive: true,
                skip_v1: true,
                ..Default::default()
            },
        );
        assert_eq!(samples.len(), 1);
        assert_eq!((samples[0].core, samples[0].queue), ("v2", "indexed"));
        assert!(queue_speedups(&samples).is_empty());
        assert!(core_speedups(&samples).is_empty());
    }

    #[test]
    fn million_scenario_is_actually_a_million() {
        assert!(PerfScenario::million().total_requests() >= 1_000_000);
    }

    #[test]
    fn parallel_drive_matches_sequential_reference() {
        // The bench-side differential sweep: with think time (so
        // windows actually drain) every worker count must reproduce
        // the no-window reference bit-for-bit. parallel_sweep asserts
        // the fingerprints internally; this pins the sample metadata
        // and the virtual outcomes on top.
        let sc = PerfScenario {
            tenants: 6,
            rounds: 3,
            objects_per_round: 8,
            groups: 3,
            policy: SchedPolicy::RankBased,
            streams: 2,
            think_micros: 500_000,
            arrival: None,
        };
        let samples = parallel_sweep(&sc, &[1, 4], &[1, 2, 4], SweepOptions::default());
        assert_eq!(samples.len(), 8); // (seq ref + 3 worker counts) × 2
        for quad in samples.chunks(4) {
            assert_eq!(quad[0].workers, Some(0));
            for s in quad {
                assert_eq!(s.core, "par");
                assert_eq!(s.makespan_secs, quad[0].makespan_secs);
                assert_eq!(s.switches, quad[0].switches);
                assert_eq!(s.events, quad[0].events);
                assert_eq!(s.requests, sc.total_requests());
            }
        }
        assert_eq!(parallel_speedups(&samples).len(), 6);
        let json = to_json(&[Sweep {
            scenario: sc.clone(),
            samples,
        }]);
        assert!(json.contains("\"workers\": 4"));
        assert!(json.contains("\"think_micros\": 500000"));
        assert!(json.contains("\"parallel_speedup\""));
    }

    #[test]
    fn parallel_drive_policies_agree_without_think_time() {
        // think 0 collapses every window to nothing — the parallel
        // runs degrade to the sequential event loop and must still
        // agree for every policy.
        for policy in SchedPolicy::all() {
            let sc = PerfScenario {
                tenants: 4,
                rounds: 2,
                objects_per_round: 6,
                groups: 2,
                policy,
                streams: 1,
                think_micros: 0,
                arrival: None,
            };
            parallel_sweep(&sc, &[2], &[2], SweepOptions::default());
        }
    }

    #[test]
    fn fcfs_policies_agree_across_cores() {
        // The window/oldest-query scopes exercise the slab iteration
        // paths; pin v1 ≡ v2 ≡ naive on them too.
        for policy in [SchedPolicy::FcfsObject, SchedPolicy::FcfsSlack(4)] {
            let sc = PerfScenario {
                tenants: 3,
                rounds: 2,
                objects_per_round: 5,
                groups: 3,
                policy,
                streams: 1,
                think_micros: 0,
                arrival: None,
            };
            perf_sweep(&sc, &[1, 2], SweepOptions::default());
        }
    }

    /// A small but genuinely bursty open scenario: releases arrive in
    /// ~5 s ON spurts separated by ~60 s OFF silences while each round
    /// needs multiple seconds of transfer — queues build during bursts.
    fn bursty_scenario() -> PerfScenario {
        PerfScenario {
            tenants: 6,
            rounds: 4,
            objects_per_round: 8,
            groups: 3,
            policy: SchedPolicy::RankBased,
            streams: 2,
            think_micros: 0,
            arrival: Some(ArrivalProcess::OnOff {
                on_mean: SimDuration::from_secs(1),
                on_duration: SimDuration::from_secs(5),
                off_duration: SimDuration::from_secs(60),
                seed: 42,
            }),
        }
    }

    #[test]
    fn open_drive_is_deterministic_and_reports_tails() {
        let sc = bursty_scenario();
        let samples = open_sweep(
            &sc,
            &[1, 2],
            SweepOptions {
                repeats: 2,
                ..Default::default()
            },
        );
        assert_eq!(samples.len(), 2);
        for s in &samples {
            assert_eq!(s.core, "open");
            assert_eq!(s.requests, sc.total_requests());
            let l = s.latency.expect("open samples carry a latency block");
            assert_eq!(l.count, (sc.tenants * sc.rounds) as u64);
            // Quantiles are monotone and bracketed by mean-or-less/max.
            assert!(l.p50_secs <= l.p95_secs);
            assert!(l.p95_secs <= l.p99_secs);
            assert!(l.p99_secs <= l.p999_secs);
            assert!(l.p999_secs <= l.max_secs);
            assert!(l.mean_secs > 0.0 && l.max_secs >= l.mean_secs);
        }
        // Under bursty load the tail must actually see queueing: the
        // worst round waits far longer than the median one.
        let l = samples[0].latency.unwrap();
        assert!(
            l.max_secs > 2.0 * l.p50_secs,
            "no queueing tail: max {} vs p50 {}",
            l.max_secs,
            l.p50_secs
        );
        // The JSON carries the arrival tag and the latency block.
        let json = to_json(&[Sweep {
            scenario: sc.clone(),
            samples: samples.clone(),
        }]);
        assert!(json.contains(
            "\"arrival\": \"onoff:on_mean_us=1000000,on_us=5000000,off_us=60000000,seed=42\""
        ));
        assert!(json.contains("\"p999_secs\""));
        let t = table(&sc, &samples);
        assert_eq!(t.rows.len(), 2);
    }

    #[test]
    fn open_drive_sketch_matches_exact_quantiles_under_compression() {
        // Enough rounds that the sketch genuinely compresses (band =
        // ⌊2εn⌋ = 12 at n = 12 800 completions, well past the exact
        // regime), on a saturating Poisson load so responses spread
        // over a wide queueing range. The sketch's answer must sit
        // within ⌈εn⌉ ranks of the true order statistic.
        let sc = PerfScenario {
            tenants: 32,
            rounds: 400,
            objects_per_round: 4,
            groups: 4,
            policy: SchedPolicy::RankBased,
            streams: 1,
            think_micros: 0,
            arrival: Some(ArrivalProcess::Poisson {
                mean: SimDuration::from_millis(100),
                seed: 7,
            }),
        };
        let mut exact = Vec::new();
        let (sample, _) = drive_open::<RequestQueue>(&sc, 2, "indexed", None, Some(&mut exact));
        let l = sample.latency.unwrap();
        let n = exact.len();
        assert_eq!(n as u64, l.count);
        let epsilon = QuantileSketch::DEFAULT_EPSILON;
        assert!(
            2.0 * epsilon * n as f64 >= 10.0,
            "config too small to force sketch compression"
        );
        exact.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let err = (epsilon * n as f64).ceil() as usize;
        for (phi, got) in [
            (0.50, l.p50_secs),
            (0.95, l.p95_secs),
            (0.99, l.p99_secs),
            (0.999, l.p999_secs),
        ] {
            let rank = ((phi * n as f64).ceil() as usize).clamp(1, n);
            // Every index in `exact` where the sketch's answer appears.
            let lo = exact.partition_point(|&x| x < got) + 1; // 1-based
            let hi = exact.partition_point(|&x| x <= got);
            assert!(
                lo <= hi,
                "sketch answer {got} for phi={phi} is not an observed sample"
            );
            assert!(
                lo <= rank + err && hi + err >= rank,
                "phi={phi}: sketch rank range [{lo}, {hi}] misses target {rank} ± {err}"
            );
        }
    }
}
