//! Wall-clock performance of the device scheduling hot path.
//!
//! Everything else in this harness measures *virtual* time; this
//! experiment measures *simulator throughput* — the wall-clock cost of
//! driving the CSD scheduling loop — because simulator speed bounds how
//! many scenarios the suite can sweep. It drives a large synthetic
//! closed-loop scenario (default: 64 tenants × 12 rounds × 150 objects
//! = 115 200 requests, ~9 600 of them pending at any instant, over a
//! 1→8-shard fleet) twice, once per queue implementation:
//!
//! * **indexed** — the production [`RequestQueue`]: O(log n) per
//!   submit/serve.
//! * **naive** — the pre-index [`NaiveQueue`] reference: O(n) rescans
//!   per decision, O(n²) per run.
//!
//! Both runs must deliver the identical multiset (asserted); the
//! reported events/sec and speedup quantify the indexed queue's win.
//! `skipper-bench --bin perf` emits the results as `BENCH_perf.json`
//! and the recorded baseline lives in `EXPERIMENTS.md`.
//!
//! No engines, caches, or relational work participate: tenants are
//! synthetic closed-loop clients that resubmit their next round the
//! moment the previous one fully arrives, keeping the pending queue
//! deep (tenants × objects-per-round outstanding requests) — exactly
//! the regime the ROADMAP's millions-of-users north star lives in.

use std::time::Instant;

use skipper_csd::sched::{NaiveQueue, RequestIndex, RequestQueue};
use skipper_csd::{
    CsdConfig, CsdDevice, IntraGroupOrder, ObjectId, ObjectStore, QueryId, SchedPolicy, StreamModel,
};
use skipper_sim::{SimDuration, SimTime};

use crate::report::Table;

const MB: u64 = 1 << 20;

/// The synthetic closed-loop scenario driven against both queues.
#[derive(Clone, Debug)]
pub struct PerfScenario {
    /// Closed-loop synthetic tenants.
    pub tenants: usize,
    /// Rounds ("queries") per tenant; a tenant resubmits the next round
    /// when the previous one is fully delivered.
    pub rounds: usize,
    /// GET requests per round.
    pub objects_per_round: u32,
    /// Disk groups per shard (tenant `t` lives in group `t % groups`).
    pub groups: u32,
    /// Scheduling policy under test.
    pub policy: SchedPolicy,
    /// Transfer streams per device (the service pipeline width). The
    /// multi-stream configuration exercises the earliest-of-K wake-up
    /// path and the armed-switch drain in the hot loop.
    pub streams: u32,
}

impl Default for PerfScenario {
    fn default() -> Self {
        PerfScenario {
            tenants: 64,
            rounds: 12,
            objects_per_round: 150,
            groups: 16,
            policy: SchedPolicy::RankBased,
            streams: 1,
        }
    }
}

impl PerfScenario {
    /// Total GET requests the scenario issues.
    pub fn total_requests(&self) -> u64 {
        self.tenants as u64 * self.rounds as u64 * self.objects_per_round as u64
    }
}

/// One timed run of the scenario on one queue implementation.
#[derive(Clone, Debug)]
pub struct PerfSample {
    /// Queue implementation label: `"indexed"` or `"naive"`.
    pub queue: &'static str,
    /// Fleet size.
    pub shards: usize,
    /// Requests submitted (= objects delivered).
    pub requests: u64,
    /// Device events processed (transfer + switch completions).
    pub events: u64,
    /// Wall-clock seconds for the drive loop.
    pub wall_secs: f64,
    /// Device events per wall-clock second — the headline throughput.
    pub events_per_sec: f64,
    /// Virtual makespan of the run (identical across queues).
    pub makespan_secs: f64,
    /// Total paid group switches (identical across queues).
    pub switches: u64,
}

/// Outcome invariants used to cross-check the two queue runs.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    deliveries: Vec<(usize, QueryId, ObjectId)>,
    makespan: SimTime,
    switches: u64,
}

/// Builds the per-shard devices: tenant `t`'s `rounds × objects` GETs
/// target objects `0..rounds*objects` in group `t % groups`, spread
/// round-robin by segment over the shards.
fn build_devices<Q: RequestIndex>(sc: &PerfScenario, shards: usize) -> Vec<CsdDevice<(), Q>> {
    let per_tenant = sc.rounds as u32 * sc.objects_per_round;
    (0..shards)
        .map(|shard| {
            let mut store = ObjectStore::new();
            for t in 0..sc.tenants {
                for seg in 0..per_tenant {
                    if seg as usize % shards == shard {
                        store.put(
                            ObjectId::new(t as u16, 0, seg),
                            100 * MB,
                            t as u32 % sc.groups,
                            (),
                        );
                    }
                }
            }
            CsdDevice::new(
                CsdConfig {
                    switch_latency: SimDuration::from_secs(10),
                    bandwidth_bytes_per_sec: (100 * MB) as f64,
                    initial_load_free: true,
                    parallel_streams: sc.streams,
                    stream_model: StreamModel::Pipeline,
                },
                store,
                sc.policy.build(),
                IntraGroupOrder::SemanticRoundRobin,
            )
        })
        .collect()
}

/// Drives the closed loop to completion on queue `Q`, timing the loop.
fn drive<Q: RequestIndex>(
    sc: &PerfScenario,
    shards: usize,
    queue_label: &'static str,
) -> (PerfSample, Fingerprint) {
    let mut devices = build_devices::<Q>(sc, shards);
    // Per-tenant closed-loop state.
    let mut round = vec![0usize; sc.tenants];
    let mut outstanding = vec![0u32; sc.tenants];
    let mut deliveries = Vec::with_capacity(sc.total_requests() as usize);
    let mut events = 0u64;

    let submit_round = |devices: &mut Vec<CsdDevice<(), Q>>, now: SimTime, t: usize, r: usize| {
        let query = QueryId::new(t as u16, r as u32);
        let base = r as u32 * sc.objects_per_round;
        for seg in base..base + sc.objects_per_round {
            devices[seg as usize % shards].submit(
                now,
                t,
                query,
                &[ObjectId::new(t as u16, 0, seg)],
            );
        }
    };

    let start = Instant::now();
    for (t, out) in outstanding.iter_mut().enumerate() {
        submit_round(&mut devices, SimTime::ZERO, t, 0);
        *out = sc.objects_per_round;
    }
    let mut next: Vec<Option<SimTime>> = (0..shards)
        .map(|s| devices[s].kick(SimTime::ZERO))
        .collect();
    let mut makespan = SimTime::ZERO;
    while let Some((now, s)) = next
        .iter()
        .enumerate()
        .filter_map(|(s, t)| t.map(|t| (t, s)))
        .min()
    {
        makespan = now;
        events += 1;
        let mut resubmitted = false;
        for d in devices[s].complete(now) {
            deliveries.push((d.client, d.query, d.object));
            let t = d.client;
            outstanding[t] -= 1;
            if outstanding[t] == 0 {
                round[t] += 1;
                if round[t] < sc.rounds {
                    submit_round(&mut devices, now, t, round[t]);
                    outstanding[t] = sc.objects_per_round;
                    resubmitted = true;
                }
            }
        }
        if resubmitted {
            // A round spans every shard, and new work can move a busy
            // shard's earliest completion *earlier* (idle pipeline
            // slots fill): re-kick everything, re-arming on mutation.
            for (o, slot) in next.iter_mut().enumerate() {
                *slot = devices[o].kick(now);
            }
        } else {
            next[s] = devices[s].kick(now);
        }
    }
    let wall = start.elapsed().as_secs_f64();

    assert!(
        devices.iter().all(|d| d.is_quiescent()),
        "perf drive loop left work behind"
    );
    let switches: u64 = devices.iter().map(|d| d.metrics().group_switches).sum();
    let requests = deliveries.len() as u64;
    assert_eq!(requests, sc.total_requests(), "lost deliveries");
    let mut sorted = deliveries;
    sorted.sort_unstable();
    (
        PerfSample {
            queue: queue_label,
            shards,
            requests,
            events,
            wall_secs: wall,
            events_per_sec: if wall > 0.0 {
                events as f64 / wall
            } else {
                0.0
            },
            makespan_secs: makespan.as_secs_f64(),
            switches,
        },
        Fingerprint {
            deliveries: sorted,
            makespan,
            switches,
        },
    )
}

/// Runs the scenario on both queue implementations for every shard
/// count, asserting the runs are observationally identical, and
/// returns all samples (indexed first per shard count). With
/// `skip_naive`, only the indexed queue runs (CI smoke mode).
pub fn perf_sweep(sc: &PerfScenario, shard_counts: &[usize], skip_naive: bool) -> Vec<PerfSample> {
    let mut samples = Vec::new();
    for &shards in shard_counts {
        let (indexed, fp_indexed) = drive::<RequestQueue>(sc, shards, "indexed");
        samples.push(indexed);
        if !skip_naive {
            let (naive, fp_naive) = drive::<NaiveQueue>(sc, shards, "naive");
            assert_eq!(
                fp_indexed, fp_naive,
                "queue implementations diverged at {shards} shards"
            );
            samples.push(naive);
        }
    }
    samples
}

/// The per-shard-count `naive wall / indexed wall` speedups.
pub fn speedups(samples: &[PerfSample]) -> Vec<(usize, f64)> {
    let mut out = Vec::new();
    for s in samples.iter().filter(|s| s.queue == "indexed") {
        if let Some(n) = samples
            .iter()
            .find(|n| n.queue == "naive" && n.shards == s.shards)
        {
            if s.wall_secs > 0.0 {
                out.push((s.shards, n.wall_secs / s.wall_secs));
            }
        }
    }
    out
}

/// Renders the sweep as a printable table.
pub fn table(sc: &PerfScenario, samples: &[PerfSample]) -> Table {
    let mut t = Table::new(
        &format!(
            "Scheduling hot path: {} tenants x {} rounds x {} objects ({} requests, {} groups, {}, {} streams)",
            sc.tenants,
            sc.rounds,
            sc.objects_per_round,
            sc.total_requests(),
            sc.groups,
            sc.policy.label(),
            sc.streams,
        ),
        &[
            "shards",
            "queue",
            "wall(s)",
            "events",
            "events/sec",
            "makespan(s)",
            "switches",
        ],
    );
    for s in samples {
        t.push_row(vec![
            s.shards.to_string(),
            s.queue.into(),
            format!("{:.3}", s.wall_secs),
            s.events.to_string(),
            format!("{:.0}", s.events_per_sec),
            format!("{:.0}", s.makespan_secs),
            s.switches.to_string(),
        ]);
    }
    t
}

/// Serializes the sweep as the `BENCH_perf.json` document (schema
/// `BENCH_perf/v1`); hand-rolled JSON, no serde in this workspace.
pub fn to_json(sc: &PerfScenario, samples: &[PerfSample]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"BENCH_perf/v1\",\n");
    out.push_str(&format!(
        "  \"scenario\": {{\"tenants\": {}, \"rounds\": {}, \"objects_per_round\": {}, \"groups\": {}, \"requests\": {}, \"policy\": \"{}\", \"streams\": {}}},\n",
        sc.tenants,
        sc.rounds,
        sc.objects_per_round,
        sc.groups,
        sc.total_requests(),
        sc.policy.label(),
        sc.streams,
    ));
    out.push_str("  \"samples\": [\n");
    let rows: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                "    {{\"queue\": \"{}\", \"shards\": {}, \"requests\": {}, \"events\": {}, \"wall_secs\": {:.6}, \"events_per_sec\": {:.1}, \"makespan_secs\": {:.3}, \"switches\": {}}}",
                s.queue,
                s.shards,
                s.requests,
                s.events,
                s.wall_secs,
                s.events_per_sec,
                s.makespan_secs,
                s.switches,
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ],\n");
    let sp: Vec<String> = speedups(samples)
        .into_iter()
        .map(|(shards, x)| format!("    {{\"shards\": {shards}, \"speedup\": {x:.2}}}"))
        .collect();
    out.push_str("  \"speedup\": [\n");
    out.push_str(&sp.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_agrees_and_reports() {
        let sc = PerfScenario {
            tenants: 4,
            rounds: 2,
            objects_per_round: 6,
            groups: 2,
            policy: SchedPolicy::RankBased,
            streams: 1,
        };
        let samples = perf_sweep(&sc, &[1, 2], false);
        assert_eq!(samples.len(), 4);
        // Virtual outcomes are queue-independent.
        for pair in samples.chunks(2) {
            assert_eq!(pair[0].makespan_secs, pair[1].makespan_secs);
            assert_eq!(pair[0].switches, pair[1].switches);
            assert_eq!(pair[0].events, pair[1].events);
        }
        assert_eq!(samples[0].requests, sc.total_requests());
        let json = to_json(&sc, &samples);
        assert!(json.contains("\"schema\": \"BENCH_perf/v1\""));
        assert!(json.contains("\"queue\": \"naive\""));
        assert_eq!(speedups(&samples).len(), 2);
        assert_eq!(table(&sc, &samples).rows.len(), 4);
    }

    #[test]
    fn skip_naive_runs_indexed_only() {
        let sc = PerfScenario {
            tenants: 2,
            rounds: 1,
            objects_per_round: 4,
            groups: 2,
            policy: SchedPolicy::MaxQueries,
            streams: 1,
        };
        let samples = perf_sweep(&sc, &[1], true);
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].queue, "indexed");
        assert!(speedups(&samples).is_empty());
    }
}
