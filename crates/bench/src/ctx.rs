//! Shared experiment context: memoized dataset generation.
//!
//! The `all` binary runs every experiment in one process; datasets are
//! deterministic in `(benchmark, sf, phys_divisor, seed)`, so they are
//! generated once and shared (`Arc`) across experiments.

use std::collections::HashMap;
use std::sync::Arc;

use skipper_datagen::{mrbench, nref, ssb, tpch, Dataset, GenConfig};

/// The root seed used by all paper experiments.
pub const PAPER_SEED: u64 = 2016;

/// Memoizing dataset factory.
#[derive(Default)]
pub struct Ctx {
    cache: HashMap<(String, u32, u64), Arc<Dataset>>,
}

impl Ctx {
    /// Creates an empty context.
    pub fn new() -> Self {
        Self::default()
    }

    fn get(
        &mut self,
        kind: &str,
        sf: u32,
        divisor: u64,
        gen: impl FnOnce(&GenConfig) -> Dataset,
    ) -> Arc<Dataset> {
        let key = (kind.to_string(), sf, divisor);
        if let Some(d) = self.cache.get(&key) {
            return Arc::clone(d);
        }
        let cfg = GenConfig::new(PAPER_SEED, sf).with_phys_divisor(divisor);
        let ds = Arc::new(gen(&cfg));
        self.cache.insert(key, Arc::clone(&ds));
        ds
    }

    /// TPC-H at the given scale factor and miniaturization.
    pub fn tpch(&mut self, sf: u32, divisor: u64) -> Arc<Dataset> {
        self.get("tpch", sf, divisor, tpch::dataset)
    }

    /// SSB at the given scale factor.
    pub fn ssb(&mut self, sf: u32, divisor: u64) -> Arc<Dataset> {
        self.get("ssb", sf, divisor, ssb::dataset)
    }

    /// MR-bench (Pavlo) at the given scale factor (50 = the paper's
    /// 20 GB database).
    pub fn mrbench(&mut self, sf: u32, divisor: u64) -> Arc<Dataset> {
        self.get("mrbench", sf, divisor, mrbench::dataset)
    }

    /// NREF at the given scale factor (50 = the paper's 13 GB database).
    pub fn nref(&mut self, sf: u32, divisor: u64) -> Arc<Dataset> {
        self.get("nref", sf, divisor, nref::dataset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoizes_datasets() {
        let mut ctx = Ctx::new();
        let a = ctx.tpch(1, 100_000);
        let b = ctx.tpch(1, 100_000);
        assert!(Arc::ptr_eq(&a, &b));
        let c = ctx.tpch(2, 100_000);
        assert!(!Arc::ptr_eq(&a, &c));
    }
}
