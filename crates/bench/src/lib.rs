//! # skipper-bench — the experiment harness
//!
//! One runner per table and figure of the paper's evaluation (§2-§5),
//! each returning structured rows and a printable [`report::Table`].
//! The `src/bin/` binaries are thin wrappers (`cargo run --release -p
//! skipper-bench --bin fig7`); `--bin all` regenerates every experiment
//! in sequence, producing the data recorded in `EXPERIMENTS.md`.
//!
//! | Binary   | Paper artifact | Scenario |
//! |----------|----------------|----------|
//! | `table1` | Table 1        | device pricing + tier fractions |
//! | `fig2`   | Figure 2       | 100 TB DB cost, 7 configurations |
//! | `fig3`   | Figure 3       | CSD-as-cold-tier savings at 3 price points |
//! | `fig4`   | Figure 4       | vanilla on CSD vs HDD, 1-5 clients |
//! | `fig5`   | Figure 5       | vanilla sensitivity to switch latency |
//! | `table2` | Table 2        | layout → subplan enumeration example |
//! | `fig7`   | Figure 7       | Skipper vs vanilla vs ideal, 1-5 clients |
//! | `fig8`   | Figure 8       | mixed workload (TPC-H, MR-bench, NREF, SSB) |
//! | `fig9`   | Figure 9       | execution-time breakdown, 5 clients |
//! | `table3` | Table 3        | component overheads (exec / FUSE / network) |
//! | `fig10`  | Figure 10      | Skipper vs vanilla across switch latencies |
//! | `fig11a` | Figure 11a     | layout sensitivity, 4 clients |
//! | `fig11b` | Figure 11b     | cache sweep, TPC-H SF-50 Q5 (+ GET counts) |
//! | `fig11c` | Figure 11c     | cache sweep, TPC-H SF-100 Q5 (+ GET counts) |
//! | `fig12`  | Figure 12      | scheduler fairness vs efficiency |
//! | `sharding` | beyond the paper | mixed-tenant fleet on 1-8 CSD shards |
//! | `ablations` | §4.2/§4.4/§5.2.4 design choices | eviction / ordering / pruning A-Bs |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ctx;
pub mod experiments;
pub mod report;
pub mod scenarios;

pub use ctx::Ctx;
pub use report::Table;
