//! Shared scenario construction for the bench binaries.
//!
//! The `perf`, `chaos`, and `tiering` bins each drive purpose-built
//! fleets from the command line; the flag parsing and fleet builders
//! they share live here so a scenario tweak lands in one place. The
//! binaries keep only what is genuinely theirs (the perf sweep matrix,
//! the chaos fault plans, the tiering cache grid — and their counting
//! allocators, which need `unsafe` and therefore cannot live in this
//! `forbid(unsafe_code)` crate).

use std::sync::Arc;

use skipper_core::runtime::{
    ArrivalProcess, BasePlacement, PlacementPolicy, Scenario, SkipperFactory, VanillaFactory,
    Workload,
};
use skipper_csd::SchedPolicy;
use skipper_datagen::{tpch, Dataset, GenConfig};
use skipper_relational::catalog::GIB;
use skipper_sim::{SimDuration, SimTime};

/// `s` seconds past the simulation epoch (fault-plan instants).
pub fn secs(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

/// Parses an `--arrival` spec: `poisson:MEAN` |
/// `onoff:ON_MEAN,ON_DUR,OFF_DUR` | `diurnal:PEAK_MEAN,PERIOD,TROUGH` —
/// all durations in (fractional) seconds, with a fixed seed so CI runs
/// are reproducible.
pub fn parse_arrival(s: &str) -> ArrivalProcess {
    const SEED: u64 = 42;
    let secs = |v: &str| -> SimDuration {
        SimDuration::from_secs_f64(v.parse().unwrap_or_else(|_| panic!("bad duration {v:?}")))
    };
    let (kind, rest) = s.split_once(':').unwrap_or((s, ""));
    let parts: Vec<&str> = rest.split(',').filter(|p| !p.is_empty()).collect();
    match (kind, parts.as_slice()) {
        ("poisson", [mean]) => ArrivalProcess::Poisson {
            mean: secs(mean),
            seed: SEED,
        },
        ("onoff", [on_mean, on, off]) => ArrivalProcess::OnOff {
            on_mean: secs(on_mean),
            on_duration: secs(on),
            off_duration: secs(off),
            seed: SEED,
        },
        ("diurnal", [peak, period, trough]) => ArrivalProcess::Diurnal {
            peak_mean: secs(peak),
            period: secs(period),
            trough: trough.parse().expect("--arrival diurnal trough"),
            seed: SEED,
        },
        _ => panic!(
            "unknown arrival spec {s:?} (poisson:MEAN | onoff:ON_MEAN,ON_DUR,OFF_DUR | \
             diurnal:PEAK_MEAN,PERIOD,TROUGH; seconds)"
        ),
    }
}

/// Parses a `--policy` label (as in Figure 12) into a [`SchedPolicy`].
pub fn parse_policy(s: &str) -> SchedPolicy {
    match s {
        "fcfs-object" => SchedPolicy::FcfsObject,
        "fcfs-slack" => SchedPolicy::FcfsSlack(4),
        "fairness" => SchedPolicy::FcfsQuery,
        "maxquery" => SchedPolicy::MaxQueries,
        "ranking" => SchedPolicy::RankBased,
        other => panic!("unknown policy {other:?} (labels as in Figure 12)"),
    }
}

/// Reduced mixed fleet (the chaos smoke scenario): three staggered
/// Skipper tenants and one pull-based Vanilla tenant on a 4-shard
/// `Replicated { k: 2 }` fleet, enough repeat rounds that drive-loop
/// allocation behaviour dominates assembly in a per-delivery gauge.
pub fn mixed_fleet(ds: &Arc<Dataset>, sched: SchedPolicy) -> Scenario {
    let q12 = tpch::q12(ds);
    let mut workloads: Vec<Workload> = (0..3)
        .map(|i| {
            Workload::new(Arc::clone(ds))
                .repeat_query(q12.clone(), 8)
                .engine(SkipperFactory::default().cache_bytes(30 << 30))
                .start_at(SimDuration::from_secs(15 * i as u64))
        })
        .collect();
    workloads.push(
        Workload::new(Arc::clone(ds))
            .repeat_query(q12, 4)
            .engine(VanillaFactory),
    );
    Scenario::from_workloads(workloads)
        .shards(4)
        .placement(PlacementPolicy::Replicated {
            k: 2,
            base: BasePlacement::RoundRobin,
        })
        .scheduler(sched)
}

/// Shape of the [`SkewedFleet`] multi-tenant workload.
#[derive(Clone, Copy, Debug)]
pub struct SkewedSpec {
    /// Hot tenants: small working set, many closed-loop repeat rounds.
    pub hot_tenants: usize,
    /// Q12 rounds per hot tenant (every round re-GETs the same objects).
    pub hot_rounds: usize,
    /// Cold tenants: large working set, one scan each, never repeated.
    pub cold_tenants: usize,
    /// CSD shards behind the fleet (round-robin placement).
    pub shards: usize,
    /// Dataset generator seed.
    pub seed: u64,
}

impl Default for SkewedSpec {
    fn default() -> Self {
        SkewedSpec {
            hot_tenants: 4,
            hot_rounds: 16,
            cold_tenants: 6,
            shards: 4,
            seed: 21,
        }
    }
}

/// A skew-heavy multi-tenant fleet for the cache-tier experiments:
/// a head of hot tenants re-running Q12 over small private datasets
/// (their GET sets repeat every round — exactly what a shard cache
/// absorbs) against a tail of cold tenants each streaming one large
/// Q1 scan (touch-once traffic that only pollutes a cache).
///
/// Datasets are generated once and `Arc`-shared across every
/// [`SkewedFleet::scenario`] call, so a sweep re-running the same fleet
/// under many cache configurations pays generation once.
pub struct SkewedFleet {
    /// The fleet shape.
    pub spec: SkewedSpec,
    /// Hot tenants' small dataset (SF-2).
    pub hot: Arc<Dataset>,
    /// Cold tenants' large dataset (SF-8).
    pub cold: Arc<Dataset>,
}

impl SkewedFleet {
    /// Generates the two datasets for `spec` (miniaturized physical
    /// rows, full logical geometry — like every other bench fleet).
    pub fn new(spec: SkewedSpec) -> Self {
        let hot = Arc::new(tpch::dataset(
            &GenConfig::new(spec.seed, 2).with_phys_divisor(100_000),
        ));
        let cold = Arc::new(tpch::dataset(
            &GenConfig::new(spec.seed, 8).with_phys_divisor(100_000),
        ));
        SkewedFleet { spec, hot, cold }
    }

    /// Total logical bytes stored on the fleet (every tenant's whole
    /// dataset — the denominator for "DRAM at X% of the working set").
    pub fn working_set_bytes(&self) -> u64 {
        let per_hot = self.hot.total_objects() as u64 * GIB;
        let per_cold = self.cold.total_objects() as u64 * GIB;
        self.spec.hot_tenants as u64 * per_hot + self.spec.cold_tenants as u64 * per_cold
    }

    /// Logical bytes the hot tenants re-touch every round (the cache's
    /// target residency: Q12's orders + lineitem objects per tenant).
    pub fn hot_set_bytes(&self) -> u64 {
        let q12 = tpch::q12(&self.hot);
        self.spec.hot_tenants as u64 * self.hot.objects_for_query(&q12) as u64 * GIB
    }

    /// Builds the scenario: hot tenants staggered 5 s apart so their
    /// rounds interleave, cold scans released at t = 0. Deterministic —
    /// no stochastic arrivals — so cached runs replay bit-identically.
    pub fn scenario(&self) -> Scenario {
        let q12 = tpch::q12(&self.hot);
        let q1 = tpch::q1(&self.cold);
        let mut workloads: Vec<Workload> = (0..self.spec.hot_tenants)
            .map(|i| {
                Workload::new(Arc::clone(&self.hot))
                    .repeat_query(q12.clone(), self.spec.hot_rounds)
                    .engine(SkipperFactory::default().cache_bytes(30 << 30))
                    .start_at(SimDuration::from_secs(5 * i as u64))
            })
            .collect();
        for _ in 0..self.spec.cold_tenants {
            workloads.push(
                Workload::new(Arc::clone(&self.cold))
                    .repeat_query(q1.clone(), 1)
                    .engine(SkipperFactory::default().cache_bytes(30 << 30)),
            );
        }
        Scenario::from_workloads(workloads)
            .shards(self.spec.shards)
            .placement(PlacementPolicy::RoundRobin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skewed_fleet_geometry() {
        let fleet = SkewedFleet::new(SkewedSpec::default());
        // SF-2: 9 objects; SF-8: 16 objects (the golden fingerprint).
        assert_eq!(fleet.hot.total_objects(), 9);
        assert_eq!(fleet.cold.total_objects(), 16);
        assert_eq!(fleet.working_set_bytes(), (4 * 9 + 6 * 16) * GIB);
        // Q12 on SF-2 touches orders (1) + lineitem (2).
        assert_eq!(fleet.hot_set_bytes(), 4 * 3 * GIB);
        // The hot head must fit in ~10% of the working set, or the
        // tiering experiment's premise (a small DRAM tier absorbs the
        // repeats) is void.
        assert!(fleet.hot_set_bytes() * 10 <= fleet.working_set_bytes() * 11 / 10);
    }

    #[test]
    fn parse_policy_round_trips_the_figure12_labels() {
        assert_eq!(parse_policy("ranking"), SchedPolicy::RankBased);
        assert_eq!(parse_policy("fcfs-object"), SchedPolicy::FcfsObject);
        assert_eq!(parse_policy("fairness"), SchedPolicy::FcfsQuery);
    }

    #[test]
    fn parse_arrival_poisson() {
        match parse_arrival("poisson:15") {
            ArrivalProcess::Poisson { mean, .. } => {
                assert_eq!(mean, SimDuration::from_secs(15));
            }
            other => panic!("wrong arrival {other:?}"),
        }
    }
}
