//! Plain-text result tables.
//!
//! Experiments return a [`Table`]; the binaries print it. The format is
//! fixed-width aligned text with a tab-separated fallback via
//! [`Table::to_tsv`], so results can be diffed and post-processed without
//! extra dependencies.

use std::fmt;

/// A titled result table.
#[derive(Clone, Debug, PartialEq)]
pub struct Table {
    /// Title, e.g. `"Figure 7: average execution time (s)"`.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of rendered cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity mismatch in table {:?}",
            self.title
        );
        self.rows.push(cells);
    }

    /// Tab-separated rendering (headers + rows).
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join("\t"));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(f, &rule)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Renders seconds with no decimals (the paper reports ×1000 s scales).
pub fn secs(v: f64) -> String {
    format!("{v:.0}")
}

/// Renders a ratio/factor with two decimals.
pub fn factor(v: f64) -> String {
    format!("{v:.2}")
}

/// Renders a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["clients", "secs"]);
        t.push_row(vec!["1".into(), "100".into()]);
        t.push_row(vec!["5".into(), "12345".into()]);
        let s = t.to_string();
        assert!(s.contains("## Demo"));
        assert!(s.contains("clients"));
        assert!(s.contains("12345"));
    }

    #[test]
    fn tsv_roundtrip_shape() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_tsv(), "a\tb\n1\t2\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(1234.56), "1235");
        assert_eq!(factor(1.699), "1.70");
        assert_eq!(pct(0.4153), "41.5%");
    }
}
