//! Quantifies the paper's §7 outlook: Skipper with parallel intra-group
//! request servicing approaches conventional disk-based storage.
use skipper_bench::Ctx;
fn main() {
    let mut ctx = Ctx::new();
    println!("{}", skipper_bench::experiments::outlook::outlook(&mut ctx));
}
