//! Runs the extended TPC-H suite (Q1/Q3/Q5/Q6/Q10/Q12/Q14) at SF-50.
use skipper_bench::Ctx;
fn main() {
    let mut ctx = Ctx::new();
    println!("{}", skipper_bench::experiments::suite::suite(&mut ctx));
}
