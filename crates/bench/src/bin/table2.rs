//! Regenerates Table 2 (layout → subplans example + switch counts).
fn main() {
    println!("{}", skipper_bench::experiments::table2::table2());
}
