//! Runs the MAID energy comparison for the Figure 7 scenario.
use skipper_bench::Ctx;
fn main() {
    let mut ctx = Ctx::new();
    println!("{}", skipper_bench::experiments::power_exp::power(&mut ctx));
}
