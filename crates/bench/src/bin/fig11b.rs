//! Regenerates Figure 11b (cache sensitivity, TPC-H SF-50 Q5).
use skipper_bench::Ctx;
fn main() {
    let mut ctx = Ctx::new();
    println!(
        "{}",
        skipper_bench::experiments::cache_exp::fig11b(&mut ctx)
    );
}
