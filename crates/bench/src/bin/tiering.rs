//! Shard-cache tiering sweep + CI smoke gate.
//!
//! Drives the skewed fleet (hot tenants re-running Q12 against cold
//! one-shot scans) across the cache grid — DRAM sizes from 0 to 40 % of
//! the working set, a DRAM+SSD mix, and the three policies — prints the
//! cost-vs-performance table with its Pareto frontier, and writes
//! `BENCH_tiering.json` (schema `BENCH_tiering/v1`).
//!
//! The smoke gates (any violation exits non-zero):
//!
//! 1. **Zero-size equivalence** — `cache_size(0)` reproduces the
//!    uncached `RunResult` bit for bit: the cache plane is invisible
//!    until switched on.
//! 2. **Conservation** — the cached run delivers exactly the uncached
//!    run's `(client, query, object)` multiset, hits and misses
//!    together: the cache changes *when* bytes arrive, never *which*.
//! 3. **Determinism / mode invariance** — repeating the gated cached
//!    run reproduces it bit for bit, and the windowed-parallel drive
//!    (4 workers) matches sequential exactly.
//! 4. **`--hit-floor F`** — hit rate at the gated config (DRAM = 10 %
//!    of the working set) stays ≥ `F`.
//! 5. **`--speedup-floor X`** — uncached/cached makespan ratio at the
//!    gated config stays ≥ `X` (the ISSUE's ≥ 2× claim).
//! 6. **`--alloc-ceiling C`** — allocations per delivered object on the
//!    gated cached run stay ≤ `C`: the hit fast path must not
//!    re-introduce per-event heap traffic.
//!
//! ```text
//! cargo run --release -p skipper-bench --bin tiering
//! cargo run --release -p skipper-bench --bin tiering -- \
//!     --hit-floor 0.5 --speedup-floor 2.0 --alloc-ceiling 300 \
//!     --out BENCH_tiering.json
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use skipper_bench::experiments::tiering::{
    pareto_frontier, run_config, sweep_grid, table, to_json, GATED_LABEL,
};
use skipper_bench::scenarios::{SkewedFleet, SkewedSpec};
use skipper_core::runtime::ExecutionMode;

/// Counts every allocation (alloc + realloc) on top of the system
/// allocator, as in the perf harness: the gauge is allocator traffic,
/// not net memory.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`, which upholds the GlobalAlloc
// contract; the counter bump has no effect on allocation semantics.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn main() {
    let mut out_path = String::from("BENCH_tiering.json");
    let mut hit_floor: Option<f64> = None;
    let mut speedup_floor: Option<f64> = None;
    let mut alloc_ceiling: Option<f64> = None;
    let mut spec = SkewedSpec::default();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> &str {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| panic!("missing value for {}", args[*i - 1]))
        };
        match args[i].as_str() {
            "--out" => out_path = value(&mut i).to_string(),
            "--hit-floor" => hit_floor = Some(value(&mut i).parse().expect("--hit-floor")),
            "--speedup-floor" => {
                speedup_floor = Some(value(&mut i).parse().expect("--speedup-floor"))
            }
            "--alloc-ceiling" => {
                alloc_ceiling = Some(value(&mut i).parse().expect("--alloc-ceiling"))
            }
            "--hot-tenants" => spec.hot_tenants = value(&mut i).parse().expect("--hot-tenants"),
            "--hot-rounds" => spec.hot_rounds = value(&mut i).parse().expect("--hot-rounds"),
            "--cold-tenants" => spec.cold_tenants = value(&mut i).parse().expect("--cold-tenants"),
            "--shards" => spec.shards = value(&mut i).parse().expect("--shards"),
            other => panic!("unknown flag {other:?}"),
        }
        i += 1;
    }

    let fleet = SkewedFleet::new(spec);
    let ws = fleet.working_set_bytes();
    eprintln!(
        "skewed fleet: {} hot x {} rounds + {} cold scans on {} shards, \
         working set {} GiB (hot head {} GiB)",
        spec.hot_tenants,
        spec.hot_rounds,
        spec.cold_tenants,
        spec.shards,
        ws >> 30,
        fleet.hot_set_bytes() >> 30,
    );

    let grid = sweep_grid(ws);
    let samples: Vec<_> = grid
        .iter()
        .map(|cfg| {
            eprintln!("running {}...", cfg.label);
            run_config(&fleet, cfg, Some(allocation_count))
        })
        .collect();
    println!("{}", table(&fleet, &samples).to_tsv());

    let json = to_json(&fleet, &samples);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");

    let mut failures = 0u32;
    let mut check = |ok: bool, label: &str| {
        if ok {
            println!("ok   {label}");
        } else {
            eprintln!("FAIL {label}");
            failures += 1;
        }
    };

    // Gate 1: a zero-capacity cache is byte-for-byte the uncached
    // machine.
    let uncached = fleet.scenario().run();
    let zero = fleet.scenario().cache_size(0).run();
    check(zero == uncached, "cache_size(0) == uncached, bit for bit");

    // Gates 2-6 run against the gated grid point (DRAM at 10% of the
    // working set).
    let gated = grid
        .iter()
        .find(|c| c.label == GATED_LABEL)
        .expect("gated config in grid");
    let gated_sample = samples
        .iter()
        .find(|s| s.label == GATED_LABEL)
        .expect("gated sample");
    let uncached_sample = samples
        .iter()
        .find(|s| s.label == "uncached")
        .expect("uncached sample");

    let per_shard = skipper_csd::cache::CacheConfig {
        dram: skipper_csd::cache::TierConfig {
            capacity_bytes: gated.cache.dram.capacity_bytes / spec.shards as u64,
            ..gated.cache.dram
        },
        ..gated.cache
    };
    let cached = fleet.scenario().shard_cache(per_shard).run();
    check(
        cached.delivery_multiset() == uncached.delivery_multiset(),
        "cached multiset == uncached multiset (conservation)",
    );
    let repeat = fleet.scenario().shard_cache(per_shard).run();
    check(repeat == cached, "repeated cached run is bit-identical");
    let parallel = fleet
        .scenario()
        .shard_cache(per_shard)
        .execution(ExecutionMode::Parallel { workers: 4 })
        .run();
    check(parallel == cached, "parallel cached run == sequential");

    let speedup = uncached_sample.makespan_secs / gated_sample.makespan_secs;
    println!(
        "     {GATED_LABEL}: hit rate {:.1}%, makespan {:.1}s vs uncached {:.1}s ({speedup:.2}x), \
         {} allocations/delivery",
        gated_sample.hit_rate * 100.0,
        gated_sample.makespan_secs,
        uncached_sample.makespan_secs,
        gated_sample
            .allocs_per_delivery
            .map_or_else(|| "?".into(), |a| format!("{a:.1}")),
    );
    if let Some(floor) = hit_floor {
        check(
            gated_sample.hit_rate >= floor,
            &format!("hit rate {:.3} >= floor {floor:.3}", gated_sample.hit_rate),
        );
    }
    if let Some(floor) = speedup_floor {
        check(
            speedup >= floor,
            &format!("makespan speedup {speedup:.2}x >= floor {floor:.2}x"),
        );
    }
    if let Some(ceiling) = alloc_ceiling {
        let per_delivery = gated_sample
            .allocs_per_delivery
            .expect("allocation probe installed");
        check(
            per_delivery <= ceiling,
            &format!("allocations/delivery {per_delivery:.1} <= {ceiling:.1}"),
        );
    }

    // The frontier must contain a cached configuration: if the uncached
    // point dominates everything, the tiers are economically dead.
    let frontier = pareto_frontier(&samples);
    check(
        frontier.iter().any(|&i| samples[i].label != "uncached"),
        "pareto frontier contains a cached configuration",
    );

    if failures > 0 {
        eprintln!("TIERING REGRESSION: {failures} gate(s) violated");
        std::process::exit(1);
    }
    println!("tiering smoke clean: equivalence, conservation, determinism, economics all hold");
}
