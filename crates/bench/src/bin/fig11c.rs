//! Regenerates Figure 11c (cache sensitivity at SF-100: 127 objects, 14630 subplans).
use skipper_bench::Ctx;
fn main() {
    let mut ctx = Ctx::new();
    println!(
        "{}",
        skipper_bench::experiments::cache_exp::fig11c(&mut ctx)
    );
}
