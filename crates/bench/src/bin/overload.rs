//! Overload/outage protection sweep + CI smoke gate.
//!
//! Drives two fleets through the protection-plane grid and writes
//! `BENCH_overload.json` (schema `BENCH_overload/v1`):
//!
//! * **Burst** — four open-arrival tenants whose synchronized on/off
//!   bursts saturate a 2-shard fleet (one tenant runs at elevated
//!   priority), swept across {unprotected, deadline-only, admission
//!   shed, admission backpressure}. The headline: priority-scaled
//!   shedding holds the survivors' response p99 far under the
//!   unprotected tail while the high-priority tenant keeps its
//!   throughput.
//! * **Outage** — three open-arrival tenants on a 4-shard
//!   `Replicated { k: 2 }` fleet with one shard browned out to 5 %
//!   bandwidth, unhedged vs hedged. The headline: hedging re-issues
//!   the slow shard's reads to the healthy replica and cuts the
//!   brown-out response p99.
//!
//! The smoke gates (any violation exits non-zero — the CI
//! overload-smoke regression gate):
//!
//! 1. **Disabled ⇒ byte-exact** — the burst fleet with every knob at
//!    its default, but a non-default scenario seed and an explicit
//!    `RetryPolicy::None`, reproduces the knob-free `RunResult` bit
//!    for bit, and its [`ProtectionSummary`] is quiet.
//! 2. **Consumption conservation** — the hedged brown-out run consumes
//!    exactly the clean (fault-free, hedge-free) run's delivery
//!    multiset: duplicate hedge copies are cancelled or discarded,
//!    never double-processed.
//! 3. **Determinism / mode invariance** — repeating the hedged run and
//!    the shed run reproduces them bit for bit, and the
//!    windowed-parallel drive (4 workers) matches sequential exactly.
//! 4. **Headline direction** — shed p99 < unprotected p99 under the
//!    burst, hedged p99 < unhedged p99 under the brown-out.
//! 5. **`--alloc-ceiling C`** — allocations per delivered object on
//!    the hedged run stay ≤ `C`: the protection hot path must not
//!    re-introduce per-event heap traffic.
//!
//! ```text
//! cargo run --release -p skipper-bench --bin overload -- \
//!     --alloc-ceiling 300 --out BENCH_overload.json
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use skipper_bench::scenarios::secs;
use skipper_core::runtime::{
    AdmissionPolicy, AdmissionResponse, ArrivalProcess, BasePlacement, ExecutionMode, FaultPlan,
    PlacementPolicy, RetryPolicy, RunResult, Scenario, SkipperFactory, Workload,
};
use skipper_csd::SchedPolicy;
use skipper_datagen::{tpch, Dataset, GenConfig};
use skipper_sim::SimDuration;

/// Counts every allocation (alloc + realloc) on top of the system
/// allocator, as in the perf harness: the gauge is allocator traffic,
/// not net memory.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`, which upholds the GlobalAlloc
// contract; the counter bump has no effect on allocation semantics.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// The saturating burst fleet: four tenants firing synchronized on/off
/// bursts (2 s between releases for 30 s, then 150 s quiet) at a
/// 2-shard fleet whose per-query service time is ~50 s — each burst
/// piles up far more work than the shards can drain before the next.
/// Tenant 0 runs at priority 3; the rest at 0.
fn burst_scenario(ds: &Arc<Dataset>) -> Scenario {
    let q12 = tpch::q12(ds);
    let workloads: Vec<Workload> = (0..4)
        .map(|i| {
            Workload::new(Arc::clone(ds))
                .repeat_query(q12.clone(), 8)
                .engine(SkipperFactory::default().cache_bytes(30 << 30))
                .arrival(ArrivalProcess::OnOff {
                    on_mean: SimDuration::from_secs(2),
                    on_duration: SimDuration::from_secs(30),
                    off_duration: SimDuration::from_secs(150),
                    seed: 42,
                })
                .priority(if i == 0 { 3 } else { 0 })
        })
        .collect();
    Scenario::from_workloads(workloads)
        .shards(2)
        .placement(PlacementPolicy::RoundRobin)
        .scheduler(SchedPolicy::RankBased)
        .slo_target(SimDuration::from_secs(300))
}

/// The admission policy for the burst sweep: a shard over 6 queued
/// requests (priority-scaled) refuses new arrivals.
fn admission(response: AdmissionResponse) -> AdmissionPolicy {
    AdmissionPolicy {
        max_queue_depth: 6,
        max_queued_bytes: u64::MAX >> 8,
        response,
        breaker: None,
    }
}

/// The outage fleet: three Poisson tenants on a 4-shard
/// `Replicated { k: 2 }` fleet; the fault plan browns shard 0 out to
/// 5 % bandwidth for the whole run.
fn outage_scenario(ds: &Arc<Dataset>, faulted: bool) -> Scenario {
    let q12 = tpch::q12(ds);
    let workloads: Vec<Workload> = (0..3)
        .map(|_| {
            Workload::new(Arc::clone(ds))
                .repeat_query(q12.clone(), 8)
                .engine(SkipperFactory::default().cache_bytes(30 << 30))
                .arrival(ArrivalProcess::Poisson {
                    mean: SimDuration::from_secs(25),
                    seed: 42,
                })
        })
        .collect();
    let s = Scenario::from_workloads(workloads)
        .shards(4)
        .placement(PlacementPolicy::Replicated {
            k: 2,
            base: BasePlacement::RoundRobin,
        })
        .scheduler(SchedPolicy::RankBased)
        .slo_target(SimDuration::from_secs(300));
    if faulted {
        s.faults(FaultPlan::new().degraded(0, secs(0), secs(8000), 0.05))
    } else {
        s
    }
}

/// Response p99 in seconds (open-arrival runs always have quantiles).
fn p99(res: &RunResult) -> f64 {
    res.latency
        .fleet
        .response
        .as_ref()
        .expect("open-arrival run has response quantiles")
        .p99
}

/// One JSON sample row for a grid cell.
fn json_row(experiment: &str, label: &str, res: &RunResult) -> String {
    let q = res
        .latency
        .fleet
        .response
        .as_ref()
        .expect("open-arrival run has response quantiles");
    let slo = res.latency.fleet.slo.as_ref().expect("SLO target declared");
    let p = &res.protection;
    let offered: u64 = p.per_tenant.iter().map(|t| t.offered).sum();
    let completed: u64 = p.per_tenant.iter().map(|t| t.completed).sum();
    format!(
        "    {{\"experiment\": \"{experiment}\", \"config\": \"{label}\", \
         \"p50_secs\": {:.6}, \"p99_secs\": {:.6}, \"p999_secs\": {:.6}, \
         \"max_secs\": {:.6}, \"mean_secs\": {:.6}, \"completions\": {}, \
         \"offered\": {offered}, \"completed\": {completed}, \
         \"slo_met\": {}, \"slo_total\": {}, \
         \"deadline_misses\": {}, \"sheds\": {}, \"deferrals\": {}, \
         \"retries\": {}, \"hedges_fired\": {}, \"hedge_wins\": {}, \
         \"breaker_trips\": {}, \"availability\": {:.6}}}",
        q.p50,
        q.p99,
        q.p999,
        res.latency.fleet.max_secs,
        res.latency.fleet.mean_secs,
        res.latency.fleet.count,
        slo.met,
        slo.total,
        p.deadline_misses,
        p.sheds,
        p.backpressure_deferrals,
        p.retries,
        p.hedges_fired,
        p.hedge_wins,
        p.breaker_trips,
        res.availability.availability,
    )
}

fn main() {
    let mut out_path = String::from("BENCH_overload.json");
    let mut alloc_ceiling: Option<f64> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_path = args.get(i).expect("missing value for --out").to_string();
            }
            "--alloc-ceiling" => {
                i += 1;
                let v = args.get(i).expect("missing value for --alloc-ceiling");
                alloc_ceiling = Some(v.parse().expect("--alloc-ceiling"));
            }
            other => panic!("unknown flag {other:?}"),
        }
        i += 1;
    }

    let ds = Arc::new(tpch::dataset(
        &GenConfig::new(21, 4).with_phys_divisor(100_000),
    ));

    let mut failures = 0u32;
    let mut check = |ok: bool, label: &str| {
        if ok {
            println!("ok   {label}");
        } else {
            eprintln!("FAIL {label}");
            failures += 1;
        }
    };

    // ---- burst sweep -------------------------------------------------
    eprintln!("running burst grid...");
    let unprotected = burst_scenario(&ds).run();
    let deadline_only = burst_scenario(&ds)
        .deadline(SimDuration::from_secs(150))
        .run();
    let shed = burst_scenario(&ds)
        .admission(admission(AdmissionResponse::Shed))
        .run();
    let backpressure = burst_scenario(&ds)
        .admission(admission(AdmissionResponse::Backpressure(
            SimDuration::from_secs(45),
        )))
        .run();

    // ---- outage sweep ------------------------------------------------
    eprintln!("running outage grid...");
    let clean = outage_scenario(&ds, false).run();
    let unhedged = outage_scenario(&ds, true).run();
    let hedged = outage_scenario(&ds, true)
        .hedge_after(SimDuration::from_secs(8))
        .run();

    let rows = [
        json_row("burst", "unprotected", &unprotected),
        json_row("burst", "deadline-150s", &deadline_only),
        json_row("burst", "admission-shed", &shed),
        json_row("burst", "admission-backpressure", &backpressure),
        json_row("outage", "clean", &clean),
        json_row("outage", "unhedged", &unhedged),
        json_row("outage", "hedged-8s", &hedged),
    ];
    let json = format!(
        "{{\n  \"schema\": \"BENCH_overload/v1\",\n  \"samples\": [\n{}\n  ],\n  \
         \"headline\": {{\"unprotected_burst_p99_secs\": {:.6}, \
         \"admission_shed_p99_secs\": {:.6}, \"unhedged_outage_p99_secs\": {:.6}, \
         \"hedged_outage_p99_secs\": {:.6}}}\n}}\n",
        rows.join(",\n"),
        p99(&unprotected),
        p99(&shed),
        p99(&unhedged),
        p99(&hedged),
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");

    // Gate 1: every knob disabled — but a non-default seed and an
    // explicit RetryPolicy::None — is byte-for-byte today's machine.
    let explicit = burst_scenario(&ds).seed(7).retry(RetryPolicy::None).run();
    check(
        explicit == unprotected,
        "disabled protection plane is byte-identical (seed + explicit RetryPolicy::None)",
    );
    check(
        unprotected.protection.is_quiet(),
        "unprotected run's protection summary is quiet",
    );

    // Gate 2: hedge duplicates are consumed at most once — the hedged
    // brown-out run consumes exactly the clean run's delivery multiset.
    check(hedged.protection.hedges_fired > 0, "brown-out fires hedges");
    check(
        hedged.consumed_multiset() == clean.delivery_multiset(),
        "hedged consumption multiset == clean delivery multiset (conservation)",
    );

    // Gate 3: determinism and mode invariance on the protected cells.
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let repeat_hedged = outage_scenario(&ds, true)
        .hedge_after(SimDuration::from_secs(8))
        .run();
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;
    let per_delivery = allocs as f64 / repeat_hedged.device.objects_served.max(1) as f64;
    check(
        repeat_hedged == hedged,
        "repeated hedged run is bit-identical",
    );
    let parallel_hedged = outage_scenario(&ds, true)
        .hedge_after(SimDuration::from_secs(8))
        .execution(ExecutionMode::Parallel { workers: 4 })
        .run();
    check(
        parallel_hedged == hedged,
        "parallel hedged run == sequential",
    );
    let repeat_shed = burst_scenario(&ds)
        .admission(admission(AdmissionResponse::Shed))
        .run();
    check(repeat_shed == shed, "repeated shed run is bit-identical");
    let parallel_shed = burst_scenario(&ds)
        .admission(admission(AdmissionResponse::Shed))
        .execution(ExecutionMode::Parallel { workers: 4 })
        .run();
    check(parallel_shed == shed, "parallel shed run == sequential");

    // Gate 4: the headline directions the JSON records.
    check(
        shed.protection.sheds > 0,
        "saturating burst triggers shedding",
    );
    check(
        p99(&shed) < p99(&unprotected),
        &format!(
            "admission shedding holds p99: {:.1}s < unprotected {:.1}s",
            p99(&shed),
            p99(&unprotected)
        ),
    );
    check(
        p99(&hedged) < p99(&unhedged),
        &format!(
            "hedging (k = 2) cuts the brown-out p99: {:.1}s < unhedged {:.1}s",
            p99(&hedged),
            p99(&unhedged)
        ),
    );

    println!(
        "     burst p99: unprotected {:.1}s, deadline {:.1}s, shed {:.1}s \
         ({} sheds), backpressure {:.1}s ({} deferrals)",
        p99(&unprotected),
        p99(&deadline_only),
        p99(&shed),
        shed.protection.sheds,
        p99(&backpressure),
        backpressure.protection.backpressure_deferrals,
    );
    println!(
        "     outage p99: clean {:.1}s, unhedged {:.1}s, hedged {:.1}s \
         ({} hedges, {} wins); {:.1} allocations/delivery on the hedged run",
        p99(&clean),
        p99(&unhedged),
        p99(&hedged),
        hedged.protection.hedges_fired,
        hedged.protection.hedge_wins,
        per_delivery,
    );
    if let Some(ceiling) = alloc_ceiling {
        check(
            per_delivery <= ceiling,
            &format!("allocations/delivery {per_delivery:.1} <= {ceiling:.1}"),
        );
    }

    if failures > 0 {
        eprintln!("OVERLOAD REGRESSION: {failures} gate(s) violated");
        std::process::exit(1);
    }
    println!(
        "overload smoke clean: byte-identity, conservation, determinism, headline gates all hold"
    );
}
