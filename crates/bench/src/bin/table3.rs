//! Regenerates Table 3 (component breakdown: query exec / FUSE / network).
use skipper_bench::Ctx;
fn main() {
    let mut ctx = Ctx::new();
    println!(
        "{}",
        skipper_bench::experiments::skipper_exp::table3(&mut ctx)
    );
}
