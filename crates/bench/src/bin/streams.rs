//! Regenerates the §5.2.1 intra-group parallel-servicing sweep: the
//! mixed-tenant fleet at 1-8 service-pipeline streams × 1-4 CSD shards
//! (plus the bandwidth-multiplier compat A/B), and writes the
//! machine-readable copy to `BENCH_streams.json`.
use skipper_bench::experiments::streams;
use skipper_bench::Ctx;

fn main() {
    let mut ctx = Ctx::new();
    let (table, rows) = streams::streams_with_rows(&mut ctx, 5);
    println!("{table}");
    let json = streams::to_json(&rows);
    std::fs::write("BENCH_streams.json", &json)
        .unwrap_or_else(|e| panic!("writing BENCH_streams.json: {e}"));
    println!("wrote BENCH_streams.json");
}
