//! Regenerates Figure 11a (sensitivity to data layout, 4 clients).
use skipper_bench::Ctx;
fn main() {
    let mut ctx = Ctx::new();
    println!(
        "{}",
        skipper_bench::experiments::layout_exp::fig11a(&mut ctx)
    );
}
