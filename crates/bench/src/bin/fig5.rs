//! Regenerates Figure 5 (vanilla sensitivity to group-switch latency).
use skipper_bench::Ctx;
fn main() {
    let mut ctx = Ctx::new();
    println!("{}", skipper_bench::experiments::baseline::fig5(&mut ctx));
}
