//! Regenerates Figure 4 (vanilla PostgreSQL on CSD vs HDD, 1-5 clients).
use skipper_bench::Ctx;
fn main() {
    let mut ctx = Ctx::new();
    println!("{}", skipper_bench::experiments::baseline::fig4(&mut ctx));
}
