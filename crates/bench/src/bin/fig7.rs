//! Regenerates Figure 7 (Skipper vs PostgreSQL vs ideal, 1-5 clients).
use skipper_bench::Ctx;
fn main() {
    let mut ctx = Ctx::new();
    println!(
        "{}",
        skipper_bench::experiments::skipper_exp::fig7(&mut ctx)
    );
}
