//! Chaos smoke gate for the deterministic fault plane.
//!
//! Drives a reduced mixed-tenant fleet through a fault plan that
//! exercises every episode kind — a mid-run crash with recovery, a
//! brown-out, a dropped wake-up, and a seeded crash stream — on a
//! 4-shard `Replicated { k: 2 }` fleet, and gates the invariants the
//! fault plane guarantees:
//!
//! 1. **Conservation** — the faulted run delivers exactly the
//!    fault-free run's `(client, query, object)` multiset: failover
//!    re-serves displaced work, losing and duplicating nothing.
//! 2. **Determinism** — repeating the faulted run reproduces the
//!    `RunResult` bit for bit.
//! 3. **Mode invariance** — the windowed-parallel drive (4 workers)
//!    matches the sequential `RunResult` exactly.
//! 4. **Allocation ceiling** — allocations per delivered object across
//!    a faulted run stay under `--alloc-ceiling`: a fault-plane change
//!    that re-introduces per-event heap traffic on the drive loop
//!    trips it. (The gauge includes scenario assembly, which is O(data)
//!    not O(requests) — the request count here is large enough that an
//!    O(events) regression dominates.)
//!
//! Any violation exits non-zero — the CI chaos-smoke regression gate.
//! `--out PATH` additionally writes the smoke cells (deliveries,
//! availability, failovers, parked requests, allocations/delivery per
//! scheduling policy) as `BENCH_chaos.json` (schema `BENCH_chaos/v1`).
//!
//! `--sweep` instead prints the EXPERIMENTS.md degraded-mode table:
//! open-arrival tenants (Poisson vs equal-rate bursty) under a ~10%
//! outage, k = 1 vs k = 2, p99/p999 + SLO attainment per policy.
//!
//! ```text
//! cargo run --release -p skipper-bench --bin chaos -- \
//!     --alloc-ceiling 300 --out BENCH_chaos.json
//! cargo run --release -p skipper-bench --bin chaos -- --sweep
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use skipper_bench::scenarios::{mixed_fleet, secs};
use skipper_core::runtime::{
    ArrivalProcess, BasePlacement, ExecutionMode, FaultPlan, PlacementPolicy, RunResult, Scenario,
    SkipperFactory, Workload,
};
use skipper_csd::SchedPolicy;
use skipper_datagen::{tpch, Dataset, GenConfig};
use skipper_sim::SimDuration;

/// Counts every allocation (alloc + realloc) on top of the system
/// allocator, as in the perf harness: the gauge is allocator traffic,
/// not net memory.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`, which upholds the GlobalAlloc
// contract; the counter bump has no effect on allocation semantics.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Every episode kind in one plan: crash + recovery on shard 2, a
/// half-bandwidth brown-out on shard 0, a dropped wake-up on shard 1,
/// and a seeded crash stream on shard 3.
fn chaos_plan() -> FaultPlan {
    FaultPlan::new()
        .shard_down(2, secs(60), secs(600))
        .degraded(0, secs(30), secs(300), 0.5)
        .drop_wakeup(1, 3)
        .seeded_crashes(
            3,
            SimDuration::from_secs(400),
            SimDuration::from_secs(60),
            secs(1200),
            7,
        )
}

/// The smoke scenario: [`mixed_fleet`] from the shared bench builders.
fn fleet(ds: &Arc<Dataset>, sched: SchedPolicy) -> Scenario {
    mixed_fleet(ds, sched)
}

fn deliveries(res: &RunResult) -> u64 {
    res.device.objects_served
}

/// `--sweep`: the degraded-mode serving table for EXPERIMENTS.md.
///
/// Open-arrival tenants (Poisson vs equal-rate bursty on/off) against
/// a ~10%-of-shard-time outage, per scheduling policy, at k = 1
/// (outage parks the down shard's work until recovery) and k = 2
/// (failover re-serves it from replicas immediately). Reports
/// response-time p99/p999 (release → last delivery, queue-wait
/// included) and SLO attainment.
fn degraded_sweep(ds: &Arc<Dataset>) {
    const SEED: u64 = 42;
    let arrivals: [(&str, ArrivalProcess); 2] = [
        (
            "poisson",
            ArrivalProcess::Poisson {
                mean: SimDuration::from_secs(15),
                seed: SEED,
            },
        ),
        (
            "bursty",
            ArrivalProcess::OnOff {
                on_mean: SimDuration::from_secs(2),
                on_duration: SimDuration::from_secs(30),
                off_duration: SimDuration::from_secs(165),
                seed: SEED,
            },
        ),
    ];
    let policies: [(&str, SchedPolicy); 5] = [
        ("fcfs-object", SchedPolicy::FcfsObject),
        ("fcfs-slack", SchedPolicy::FcfsSlack(4)),
        ("fairness", SchedPolicy::FcfsQuery),
        ("maxquery", SchedPolicy::MaxQueries),
        ("ranking", SchedPolicy::RankBased),
    ];
    println!("| policy | arrival | k | fault | p99(s) | p999(s) | SLO met | availability |");
    println!("|--------|---------|---|-------|-------:|--------:|--------:|-------------:|");
    for (pname, policy) in policies {
        for (aname, arrival) in &arrivals {
            for k in [1usize, 2] {
                // The clean reference rides on one policy: the others
                // reproduce it (all-Skipper tenants on private groups
                // leave the policy axis second-order here).
                let plans: &[(&str, FaultPlan)] = if pname == "ranking" {
                    &[("outage", outage()), ("none", FaultPlan::new())]
                } else {
                    &[("outage", outage())]
                };
                for (fname, plan) in plans {
                    let q12 = tpch::q12(ds);
                    let workloads: Vec<Workload> = (0..4)
                        .map(|_| {
                            Workload::new(Arc::clone(ds))
                                .repeat_query(q12.clone(), 16)
                                .engine(SkipperFactory::default().cache_bytes(30 << 30))
                                .arrival(arrival.clone())
                        })
                        .collect();
                    let res = Scenario::from_workloads(workloads)
                        .shards(4)
                        .placement(PlacementPolicy::Replicated {
                            k,
                            base: BasePlacement::RoundRobin,
                        })
                        .scheduler(policy)
                        .slo_target(SimDuration::from_secs(600))
                        .faults(plan.clone())
                        .run();
                    let q = res.latency.fleet.response.expect("open run has responses");
                    let slo = res.latency.fleet.slo.expect("SLO target declared");
                    println!(
                        "| {pname} | {aname} | {k} | {fname} | {:.0} | {:.0} | {}/{} | {:.4} |",
                        q.p99, q.p999, slo.met, slo.total, res.availability.availability
                    );
                }
            }
        }
    }
}

/// The sweep's outage: shard 2 of 4 down for 760 s — ~10% of
/// shard-time over these ~1900 s runs.
fn outage() -> FaultPlan {
    FaultPlan::new().shard_down(2, secs(100), secs(860))
}

fn main() {
    let mut alloc_ceiling: Option<f64> = None;
    let mut sweep = false;
    let mut out_path: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--alloc-ceiling" => {
                i += 1;
                let v = args.get(i).expect("missing value for --alloc-ceiling");
                alloc_ceiling = Some(v.parse().expect("--alloc-ceiling"));
            }
            "--out" => {
                i += 1;
                out_path = Some(args.get(i).expect("missing value for --out").to_string());
            }
            "--sweep" => sweep = true,
            other => panic!("unknown flag {other:?}"),
        }
        i += 1;
    }

    let ds = Arc::new(tpch::dataset(
        &GenConfig::new(21, 4).with_phys_divisor(100_000),
    ));
    if sweep {
        degraded_sweep(&ds);
        return;
    }
    let mut failures = 0u32;
    let mut check = |ok: bool, label: &str| {
        if ok {
            println!("ok   {label}");
        } else {
            eprintln!("FAIL {label}");
            failures += 1;
        }
    };

    let mut json_rows: Vec<String> = Vec::new();
    for sched in [SchedPolicy::RankBased, SchedPolicy::FcfsObject] {
        let clean = fleet(&ds, sched).run();

        let before = ALLOCATIONS.load(Ordering::Relaxed);
        let faulted = fleet(&ds, sched).faults(chaos_plan()).run();
        let allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;
        let per_delivery = allocs as f64 / deliveries(&faulted).max(1) as f64;

        check(
            faulted.delivery_multiset() == clean.delivery_multiset(),
            &format!("{sched:?}: faulted multiset == clean multiset"),
        );
        check(
            faulted.shards[2].fault.downs >= 1 && faulted.availability.availability < 1.0,
            &format!("{sched:?}: outage observed in availability counters"),
        );

        let repeat = fleet(&ds, sched).faults(chaos_plan()).run();
        check(
            repeat == faulted,
            &format!("{sched:?}: repeated faulted run is bit-identical"),
        );

        let parallel = fleet(&ds, sched)
            .faults(chaos_plan())
            .execution(ExecutionMode::Parallel { workers: 4 })
            .run();
        check(
            parallel == faulted,
            &format!("{sched:?}: parallel faulted run == sequential"),
        );

        println!(
            "     {sched:?}: {} deliveries, availability {:.4}, {} failovers, \
             {:.1} allocations/delivery",
            deliveries(&faulted),
            faulted.availability.availability,
            faulted.availability.failovers,
            per_delivery
        );
        if let Some(ceiling) = alloc_ceiling {
            check(
                per_delivery <= ceiling,
                &format!("{sched:?}: allocations/delivery {per_delivery:.1} <= {ceiling:.1}"),
            );
        }
        json_rows.push(format!(
            "    {{\"scheduler\": \"{sched:?}\", \"deliveries\": {}, \
             \"availability\": {:.6}, \"downtime_micros\": {}, \"failovers\": {}, \
             \"parked_requests\": {}, \"evacuated_requests\": {}, \
             \"fault_events\": {}, \"allocs_per_delivery\": {per_delivery:.4}}}",
            deliveries(&faulted),
            faulted.availability.availability,
            faulted.availability.downtime_micros,
            faulted.availability.failovers,
            faulted.availability.parked_requests,
            faulted.availability.evacuated_requests,
            faulted.availability.fault_events,
        ));
    }

    if let Some(path) = out_path {
        let json = format!(
            "{{\n  \"schema\": \"BENCH_chaos/v1\",\n  \"cells\": [\n{}\n  ]\n}}\n",
            json_rows.join(",\n")
        );
        std::fs::write(&path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }

    if failures > 0 {
        eprintln!("CHAOS REGRESSION: {failures} invariant(s) violated");
        std::process::exit(1);
    }
    println!("chaos smoke clean: conservation, determinism, mode invariance all hold");
}
