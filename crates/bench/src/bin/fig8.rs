//! Regenerates Figure 8 (mixed workload cumulative execution time) and
//! the heterogeneous-fleet extension (Skipper + PostgreSQL tenants in
//! one scenario).
use skipper_bench::Ctx;
fn main() {
    let mut ctx = Ctx::new();
    println!("{}", skipper_bench::experiments::mixed::fig8(&mut ctx));
    println!(
        "{}",
        skipper_bench::experiments::mixed::mixed_fleet(&mut ctx)
    );
}
