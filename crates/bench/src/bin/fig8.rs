//! Regenerates Figure 8 (mixed workload cumulative execution time).
use skipper_bench::Ctx;
fn main() {
    let mut ctx = Ctx::new();
    println!("{}", skipper_bench::experiments::mixed::fig8(&mut ctx));
}
