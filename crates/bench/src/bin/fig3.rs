//! Regenerates Figure 3 (CSD-based cold storage tier savings).
fn main() {
    println!("{}", skipper_bench::experiments::costs::fig3());
}
