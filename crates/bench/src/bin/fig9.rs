//! Regenerates Figure 9 (execution-time breakdown, 5 clients).
use skipper_bench::Ctx;
fn main() {
    let mut ctx = Ctx::new();
    println!(
        "{}",
        skipper_bench::experiments::skipper_exp::fig9(&mut ctx)
    );
}
