//! Regenerates Figure 12 (scheduler fairness vs efficiency).
use skipper_bench::Ctx;
fn main() {
    let mut ctx = Ctx::new();
    println!("{}", skipper_bench::experiments::sched_exp::fig12(&mut ctx));
}
