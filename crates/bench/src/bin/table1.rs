//! Regenerates Table 1 (device pricing and tier fractions).
fn main() {
    println!("{}", skipper_bench::experiments::costs::table1());
}
