//! Regenerates the fleet scale-out sweep: the mixed-tenant fleet on
//! 1-8 CSD shards under round-robin and hash placement.
use skipper_bench::Ctx;
fn main() {
    let mut ctx = Ctx::new();
    println!(
        "{}",
        skipper_bench::experiments::sharding::sharding(&mut ctx)
    );
}
