//! Wall-clock perf harness for the simulator's per-event hot path.
//!
//! Drives a large synthetic closed-loop scenario across the queue axis
//! (indexed `RequestQueue` vs the pre-index `NaiveQueue`), the core
//! axis (the pre-rebuild `v1` loop vs the million-request `v2` loop:
//! calendar-queue wake-ups, zero-allocation steady state, counters-mode
//! observability), and — with `--workers` — the execution axis (the
//! windowed-parallel `par` loop at each worker count vs its no-window
//! sequential reference, every run asserted bit-identical), prints the
//! throughput table, and writes `BENCH_perf.json` (schema
//! `BENCH_perf/v4`).
//!
//! ```text
//! cargo run --release -p skipper-bench --bin perf
//! cargo run --release -p skipper-bench --bin perf -- --million --skip-naive
//! cargo run --release -p skipper-bench --bin perf -- \
//!     --tenants 64 --rounds 16 --objects 100 --groups 16 \
//!     --shards 1,2,4,8 --policy ranking --streams 4 \
//!     --workers 1,2,4 --think 200000 \
//!     --arrival onoff:1,30,300 \
//!     --out BENCH_perf.json [--skip-naive] [--skip-v1] \
//!     [--floor <min v2 events/sec>] [--alloc-ceiling <max allocs/event>]
//! ```
//!
//! `--workers W1,W2,...` adds, for every planned sweep, a windowed
//! (`par`-core) sweep over the same scenario; `--think <micros>` sets
//! the client think time those sweeps run with (the parallel loop's
//! lookahead — 0 keeps every window empty). `--arrival <spec>` adds an
//! open-arrival (`open`-core) sweep: rounds are *released* at instants
//! drawn from the given process (`poisson:MEAN`,
//! `onoff:ON_MEAN,ON_DUR,OFF_DUR`, or `diurnal:PEAK,PERIOD,TROUGH`;
//! seconds, fixed seed) instead of on completion of the previous round,
//! and each sample carries a p50/p95/p99/p999 response-time block from
//! the streaming quantile sketch.
//!
//! With `--floor`, the binary exits non-zero when any production-core
//! run on the indexed queue (`v2`, `open`, or `par` at any worker
//! count) falls below the given events/sec; with `--alloc-ceiling`,
//! when any v2 or open run allocates more than the given allocations
//! per event over its drive loop — the CI perf-smoke regression gates.
//! (The ceiling exempts `par` runs: the scoped worker pool allocates
//! per window by design.)
//!
//! This binary installs a counting `#[global_allocator]` (the library
//! crates forbid `unsafe`, so the probe lives here): every heap
//! allocation bumps a relaxed atomic, which the sweep samples around
//! each drive loop to report allocations/event.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use skipper_bench::experiments::perf::{
    core_speedups, open_sweep, parallel_speedups, parallel_sweep, queue_speedups, table, to_json,
    PerfScenario, Sweep, SweepOptions,
};
use skipper_bench::scenarios::{parse_arrival, parse_policy};
use skipper_core::runtime::ArrivalProcess;

/// Counts every allocation (alloc + realloc) on top of the system
/// allocator. Deallocation is not counted: the gauge is "how often does
/// the hot loop hit the allocator", not net memory.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`, which upholds the GlobalAlloc
// contract; the counter bump has no effect on allocation semantics.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn main() {
    let mut sc = PerfScenario::default();
    let mut shard_counts: Vec<usize> = vec![1, 2, 4, 8];
    let mut out_path = String::from("BENCH_perf.json");
    let mut opts = SweepOptions {
        alloc_counter: Some(allocation_count),
        ..Default::default()
    };
    let mut floor: Option<f64> = None;
    let mut alloc_ceiling: Option<f64> = None;
    let mut with_million = false;
    let mut worker_counts: Vec<usize> = Vec::new();
    let mut arrival: Option<ArrivalProcess> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    // --million is a base configuration, not an override: apply it
    // before the flag loop so `--streams 4 --million` and
    // `--million --streams 4` mean the same thing.
    if args.iter().any(|a| a == "--million") {
        sc = PerfScenario::million();
    }
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> &str {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| panic!("missing value for {}", args[*i - 1]))
        };
        match args[i].as_str() {
            "--million" => {} // applied before the loop (order-independent)
            "--tenants" => sc.tenants = value(&mut i).parse().expect("--tenants"),
            "--rounds" => sc.rounds = value(&mut i).parse().expect("--rounds"),
            "--objects" => sc.objects_per_round = value(&mut i).parse().expect("--objects"),
            "--groups" => sc.groups = value(&mut i).parse().expect("--groups"),
            "--policy" => sc.policy = parse_policy(value(&mut i)),
            "--streams" => sc.streams = value(&mut i).parse().expect("--streams"),
            "--shards" => {
                shard_counts = value(&mut i)
                    .split(',')
                    .map(|s| s.parse().expect("--shards"))
                    .collect()
            }
            "--with-million" => with_million = true,
            "--workers" => {
                worker_counts = value(&mut i)
                    .split(',')
                    .map(|s| s.parse().expect("--workers"))
                    .collect()
            }
            "--think" => sc.think_micros = value(&mut i).parse().expect("--think"),
            "--arrival" => arrival = Some(parse_arrival(value(&mut i))),
            "--out" => out_path = value(&mut i).to_string(),
            "--skip-naive" => opts.skip_naive = true,
            "--skip-v1" => opts.skip_v1 = true,
            "--floor" => floor = Some(value(&mut i).parse().expect("--floor")),
            "--alloc-ceiling" => {
                alloc_ceiling = Some(value(&mut i).parse().expect("--alloc-ceiling"))
            }
            "--repeats" => opts.repeats = value(&mut i).parse().expect("--repeats"),
            other => panic!("unknown flag {other:?}"),
        }
        i += 1;
    }
    assert!(
        !shard_counts.is_empty(),
        "--shards needs at least one count"
    );

    // Each plan: scenario, classic-sweep shard counts, options, and the
    // shard counts its windowed (`par`) sweep runs on when --workers is
    // given.
    let mut plans: Vec<(PerfScenario, Vec<usize>, SweepOptions, Vec<usize>)> =
        vec![(sc.clone(), shard_counts.clone(), opts, shard_counts)];
    if with_million {
        // The ≥1M-request drive rides along on multi-shard fleets; the
        // naive queue is O(n²) at this depth and never runs here. Its
        // parallel sweep sticks to the multi-shard configs — windows on
        // a 1-shard fleet have nothing to overlap.
        let mut m = PerfScenario::million();
        m.policy = sc.policy;
        m.think_micros = sc.think_micros;
        let mopts = SweepOptions {
            skip_naive: true,
            ..opts
        };
        plans.push((m, vec![1, 4, 8], mopts, vec![4, 8]));
    }

    let mut sweeps: Vec<Sweep> = Vec::new();
    for (sc, shard_counts, opts, par_shards) in plans {
        eprintln!(
            "driving {} requests ({} tenants x {} rounds x {} objects) on {:?} shard fleets...",
            sc.total_requests(),
            sc.tenants,
            sc.rounds,
            sc.objects_per_round,
            shard_counts
        );
        let sweep = Sweep::run(sc.clone(), &shard_counts, opts);
        println!("{}", table(&sweep.scenario, &sweep.samples));
        for (shards, x) in queue_speedups(&sweep.samples) {
            println!(
                "queue speedup @ {shards} shard(s): {x:.1}x (naive wall / indexed wall, v1 core)"
            );
        }
        for (shards, x) in core_speedups(&sweep.samples) {
            println!(
                "core speedup @ {shards} shard(s): {x:.1}x (v1 wall / v2 wall, indexed queue)"
            );
        }
        sweeps.push(sweep);
        if !worker_counts.is_empty() {
            eprintln!(
                "windowed drive ({} us think) on {:?} shard fleets, workers {:?}...",
                sc.think_micros, par_shards, worker_counts
            );
            let samples = parallel_sweep(&sc, &par_shards, &worker_counts, opts);
            let sweep = Sweep {
                scenario: sc.clone(),
                samples,
            };
            println!("{}", table(&sweep.scenario, &sweep.samples));
            for (shards, workers, x) in parallel_speedups(&sweep.samples) {
                println!(
                    "parallel speedup @ {shards} shard(s), {workers} worker(s): {x:.2}x \
                     (sequential wall / parallel wall, par core)"
                );
            }
            sweeps.push(sweep);
        }
        if let Some(arrival) = &arrival {
            let osc = PerfScenario {
                arrival: Some(arrival.clone()),
                ..sc.clone()
            };
            eprintln!("open-arrival drive ({arrival:?}) on {shard_counts:?} shard fleets...");
            let samples = open_sweep(&osc, &shard_counts, opts);
            let sweep = Sweep {
                scenario: osc,
                samples,
            };
            println!("{}", table(&sweep.scenario, &sweep.samples));
            for s in &sweep.samples {
                if let Some(l) = s.latency {
                    println!(
                        "tail latency @ {} shard(s): p50 {:.1}s p95 {:.1}s p99 {:.1}s p999 {:.1}s max {:.1}s ({} rounds)",
                        s.shards, l.p50_secs, l.p95_secs, l.p99_secs, l.p999_secs, l.max_secs, l.count
                    );
                }
            }
            sweeps.push(sweep);
        }
    }

    let json = to_json(&sweeps);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");

    let production_samples = || {
        sweeps.iter().flat_map(|sw| sw.samples.iter()).filter(|s| {
            (s.core == "v2" || s.core == "par" || s.core == "open") && s.queue == "indexed"
        })
    };
    if let Some(floor) = floor {
        let worst = production_samples()
            .map(|s| s.events_per_sec)
            .fold(f64::INFINITY, f64::min);
        if worst < floor {
            eprintln!("PERF REGRESSION: events/sec {worst:.0} below floor {floor:.0}");
            std::process::exit(1);
        }
        println!("perf floor ok: min production-core events/sec {worst:.0} >= {floor:.0}");
    }
    if let Some(ceiling) = alloc_ceiling {
        // The windowed core is exempt: its scoped worker pool allocates
        // per window by design. The steady-state gauge is v2's — and the
        // open core's, whose quantile sketch must stay O(1) per event.
        let worst = production_samples()
            .filter(|s| s.core == "v2" || s.core == "open")
            .filter_map(|s| s.allocs_per_event)
            .fold(0.0f64, f64::max);
        if worst > ceiling {
            eprintln!(
                "ALLOC REGRESSION: v2/open allocations/event {worst:.3} above ceiling {ceiling:.3}"
            );
            std::process::exit(1);
        }
        println!("alloc ceiling ok: max v2/open allocations/event {worst:.3} <= {ceiling:.3}");
    }
}
