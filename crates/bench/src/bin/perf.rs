//! Wall-clock perf harness for the device scheduling hot path.
//!
//! Drives a large synthetic closed-loop scenario against both queue
//! implementations (the indexed `RequestQueue` and the pre-index
//! `NaiveQueue` baseline), prints the throughput table, and writes
//! `BENCH_perf.json` (schema `BENCH_perf/v1`).
//!
//! ```text
//! cargo run --release -p skipper-bench --bin perf
//! cargo run --release -p skipper-bench --bin perf -- \
//!     --tenants 64 --rounds 16 --objects 100 --groups 16 \
//!     --shards 1,2,4,8 --policy ranking --streams 4 \
//!     --out BENCH_perf.json [--skip-naive] [--floor <min indexed events/sec>]
//! ```
//!
//! With `--floor`, the binary exits non-zero when any indexed run falls
//! below the given events/sec — the CI perf-smoke regression gate.

use skipper_bench::experiments::perf::{perf_sweep, speedups, table, to_json, PerfScenario};
use skipper_csd::SchedPolicy;

fn parse_policy(s: &str) -> SchedPolicy {
    match s {
        "fcfs-object" => SchedPolicy::FcfsObject,
        "fcfs-slack" => SchedPolicy::FcfsSlack(4),
        "fairness" => SchedPolicy::FcfsQuery,
        "maxquery" => SchedPolicy::MaxQueries,
        "ranking" => SchedPolicy::RankBased,
        other => panic!("unknown policy {other:?} (labels as in Figure 12)"),
    }
}

fn main() {
    let mut sc = PerfScenario::default();
    let mut shard_counts: Vec<usize> = vec![1, 2, 4, 8];
    let mut out_path = String::from("BENCH_perf.json");
    let mut skip_naive = false;
    let mut floor: Option<f64> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> &str {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| panic!("missing value for {}", args[*i - 1]))
        };
        match args[i].as_str() {
            "--tenants" => sc.tenants = value(&mut i).parse().expect("--tenants"),
            "--rounds" => sc.rounds = value(&mut i).parse().expect("--rounds"),
            "--objects" => sc.objects_per_round = value(&mut i).parse().expect("--objects"),
            "--groups" => sc.groups = value(&mut i).parse().expect("--groups"),
            "--policy" => sc.policy = parse_policy(value(&mut i)),
            "--streams" => sc.streams = value(&mut i).parse().expect("--streams"),
            "--shards" => {
                shard_counts = value(&mut i)
                    .split(',')
                    .map(|s| s.parse().expect("--shards"))
                    .collect()
            }
            "--out" => out_path = value(&mut i).to_string(),
            "--skip-naive" => skip_naive = true,
            "--floor" => floor = Some(value(&mut i).parse().expect("--floor")),
            other => panic!("unknown flag {other:?}"),
        }
        i += 1;
    }
    assert!(
        !shard_counts.is_empty(),
        "--shards needs at least one count"
    );

    eprintln!(
        "driving {} requests ({} tenants x {} rounds x {} objects) on {:?} shard fleets...",
        sc.total_requests(),
        sc.tenants,
        sc.rounds,
        sc.objects_per_round,
        shard_counts
    );
    let samples = perf_sweep(&sc, &shard_counts, skip_naive);
    println!("{}", table(&sc, &samples));
    for (shards, x) in speedups(&samples) {
        println!("speedup @ {shards} shard(s): {x:.1}x (naive wall / indexed wall)");
    }

    let json = to_json(&sc, &samples);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");

    if let Some(floor) = floor {
        let worst = samples
            .iter()
            .filter(|s| s.queue == "indexed")
            .map(|s| s.events_per_sec)
            .fold(f64::INFINITY, f64::min);
        if worst < floor {
            eprintln!("PERF REGRESSION: indexed events/sec {worst:.0} below floor {floor:.0}");
            std::process::exit(1);
        }
        println!("perf floor ok: min indexed events/sec {worst:.0} >= {floor:.0}");
    }
}
