//! Regenerates Figure 2 (cost of a 100 TB database per configuration).
fn main() {
    println!("{}", skipper_bench::experiments::costs::fig2());
}
