//! Runs the design-choice ablations (eviction / ordering / pruning).
use skipper_bench::Ctx;
fn main() {
    let mut ctx = Ctx::new();
    println!(
        "{}",
        skipper_bench::experiments::ablations::ablations(&mut ctx)
    );
}
