//! Regenerates Figure 10 (sensitivity to group-switch latency, both engines).
use skipper_bench::Ctx;
fn main() {
    let mut ctx = Ctx::new();
    println!(
        "{}",
        skipper_bench::experiments::skipper_exp::fig10(&mut ctx)
    );
}
