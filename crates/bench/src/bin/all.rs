//! Regenerates every table and figure of the paper in sequence — the
//! data source for `EXPERIMENTS.md`.
use std::time::Instant;

use skipper_bench::experiments::*;
use skipper_bench::{Ctx, Table};

fn main() {
    let started = Instant::now();
    let mut ctx = Ctx::new();
    let mut section = |name: &str, run: &mut dyn FnMut(&mut Ctx) -> Table| {
        let t0 = Instant::now();
        let table = run(&mut ctx);
        println!("{table}");
        eprintln!("[{name} done in {:.1}s]", t0.elapsed().as_secs_f64());
    };
    section("table1", &mut |_| costs::table1());
    section("fig2", &mut |_| costs::fig2());
    section("fig3", &mut |_| costs::fig3());
    section("fig4", &mut baseline::fig4);
    section("fig5", &mut baseline::fig5);
    section("table2", &mut |_| table2::table2());
    section("fig7", &mut skipper_exp::fig7);
    section("fig8", &mut mixed::fig8);
    section("mixed-fleet", &mut mixed::mixed_fleet);
    section("fig9", &mut skipper_exp::fig9);
    section("table3", &mut skipper_exp::table3);
    section("fig10", &mut skipper_exp::fig10);
    section("fig11a", &mut layout_exp::fig11a);
    section("fig11b", &mut cache_exp::fig11b);
    section("fig11c", &mut cache_exp::fig11c);
    section("fig12", &mut sched_exp::fig12);
    section("sharding", &mut sharding::sharding);
    section("streams", &mut streams::streams);
    section("ablations", &mut ablations::ablations);
    section("outlook", &mut outlook::outlook);
    section("suite", &mut suite::suite);
    section("power", &mut power_exp::power);
    eprintln!(
        "[all experiments in {:.1}s]",
        started.elapsed().as_secs_f64()
    );
}
