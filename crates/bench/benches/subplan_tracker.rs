//! Microbenchmarks of the subplan tracker — the data structure on
//! Skipper's per-arrival hot path. Sized to the paper's largest
//! experiment: TPC-H SF-100 Q5 with 95×22×7 = 14 630 subplans.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use skipper_core::subplan::SubplanTracker;

/// The SF-100 Q5 geometry.
const Q5_SF100: [u32; 6] = [95, 22, 7, 1, 1, 1];

fn executed_tracker(frac: f64) -> SubplanTracker {
    let mut t = SubplanTracker::new(&Q5_SF100);
    let limit = (14_630.0 * frac) as u64;
    let mut n = 0;
    'outer: for a in 0..95 {
        for b in 0..22 {
            for c in 0..7 {
                if n >= limit {
                    break 'outer;
                }
                t.mark_executed(&[a, b, c, 0, 0, 0]);
                n += 1;
            }
        }
    }
    t
}

fn bench_mark_executed(c: &mut Criterion) {
    c.bench_function("subplan/mark_executed_14630", |b| {
        b.iter(|| {
            let mut t = SubplanTracker::new(&Q5_SF100);
            for a in 0..95 {
                for bb in 0..22 {
                    for cc in 0..7 {
                        t.mark_executed(black_box(&[a, bb, cc, 0, 0, 0]));
                    }
                }
            }
            t.is_complete()
        })
    });
}

fn bench_pending_count(c: &mut Criterion) {
    let t = executed_tracker(0.5);
    c.bench_function("subplan/pending_count", |b| {
        b.iter(|| black_box(&t).pending_count((0, 42)))
    });
}

fn bench_executable_counts(c: &mut Criterion) {
    // The eviction-decision pass: half the subplans executed, a
    // 42-object cache (the Figure 11c sweet spot).
    let t = executed_tracker(0.5);
    let cached: Vec<Vec<u32>> = vec![
        (0..30).collect(),
        (0..7).collect(),
        (0..2).collect(),
        vec![0],
        vec![0],
        vec![0],
    ];
    let candidates: Vec<(usize, u32)> = cached
        .iter()
        .enumerate()
        .flat_map(|(r, segs)| segs.iter().map(move |&s| (r, s)))
        .collect();
    c.bench_function("subplan/executable_counts_42obj_cache", |b| {
        b.iter(|| {
            black_box(&t).executable_counts(
                black_box(&cached),
                Some((0, 31)),
                black_box(&candidates),
            )
        })
    });
}

fn bench_runnable_with(c: &mut Criterion) {
    let t = executed_tracker(0.25);
    let cached: Vec<Vec<u32>> = vec![
        (0..30).collect(),
        (0..7).collect(),
        (0..2).collect(),
        vec![0],
        vec![0],
        vec![0],
    ];
    c.bench_function("subplan/runnable_with", |b| {
        b.iter(|| black_box(&t).runnable_with(black_box(&cached), (0, 5)))
    });
}

fn bench_first_pending(c: &mut Criterion) {
    // Worst-ish case: a long executed prefix before the first gap.
    let t = executed_tracker(0.9);
    c.bench_function("subplan/first_pending_90pct_executed", |b| {
        b.iter(|| black_box(&t).first_pending())
    });
}

criterion_group!(
    benches,
    bench_mark_executed,
    bench_pending_count,
    bench_executable_counts,
    bench_runnable_with,
    bench_first_pending
);
criterion_main!(benches);
