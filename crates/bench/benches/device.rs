//! Device-loop throughput: how many kick/complete cycles per second the
//! CSD state machine sustains (the simulation's inner loop), and the
//! cost of the end-to-end scenario driver at miniature scale.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use skipper_core::driver::{EngineKind, Scenario};
use skipper_csd::{
    CsdConfig, CsdDevice, IntraGroupOrder, ObjectId, ObjectStore, QueryId, SchedPolicy,
    StreamModel,
};
use skipper_datagen::{tpch, GenConfig};
use skipper_sim::{SimDuration, SimTime};

fn bench_device_loop(c: &mut Criterion) {
    c.bench_function("device/serve_200_objects_4_groups", |b| {
        b.iter(|| {
            let mut store = ObjectStore::new();
            for t in 0..4u16 {
                for s in 0..50u32 {
                    store.put(ObjectId::new(t, 0, s), 1 << 20, t as u32, ());
                }
            }
            let mut dev = CsdDevice::new(
                CsdConfig {
                    switch_latency: SimDuration::from_secs(10),
                    bandwidth_bytes_per_sec: (1 << 20) as f64,
                    initial_load_free: true,
                    parallel_streams: 1,
                    stream_model: StreamModel::Pipeline,
                    ..CsdConfig::default()
                },
                store,
                SchedPolicy::RankBased.build(),
                IntraGroupOrder::SemanticRoundRobin,
            );
            let mut now = SimTime::ZERO;
            for t in 0..4u16 {
                let objs: Vec<ObjectId> = (0..50).map(|s| ObjectId::new(t, 0, s)).collect();
                dev.submit(now, t as usize, QueryId::new(t, 0), &objs);
            }
            let mut served = 0usize;
            while let Some(until) = dev.kick(now) {
                now = until;
                served += dev.complete(now).len();
            }
            black_box(served)
        })
    });
}

fn bench_scenario_end_to_end(c: &mut Criterion) {
    let ds = tpch::dataset(&GenConfig::new(1, 2).with_phys_divisor(400_000));
    let q12 = tpch::q12(&ds);
    let mut group = c.benchmark_group("scenario");
    group.sample_size(20);
    for kind in [EngineKind::Vanilla, EngineKind::Skipper] {
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                Scenario::new(ds.clone())
                    .clients(3)
                    .engine(kind)
                    .cache_bytes(4 << 30)
                    .repeat_query(q12.clone(), 1)
                    .run()
                    .makespan
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_device_loop, bench_scenario_end_to_end);
criterion_main!(benches);
