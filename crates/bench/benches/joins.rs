//! Join-kernel microbenchmarks: MJoin's arrival-rooted n-ary probe vs the
//! blocking binary hash join over the same data, plus segment-index build
//! cost. These quantify the "+6 %" query-execution overhead Table 3
//! attributes to out-of-order execution.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use skipper_datagen::{tpch, GenConfig};
use skipper_relational::join_graph::ProbePlan;
use skipper_relational::ops::index::SegmentIndex;
use skipper_relational::ops::{binary, nary, reference};
use skipper_relational::Segment;

fn workload() -> (Vec<Vec<Segment>>, skipper_relational::QuerySpec) {
    let ds = tpch::dataset(&GenConfig::new(1, 8).with_phys_divisor(20_000));
    let q12 = tpch::q12(&ds);
    let tables = ds.materialize_query_tables(&q12);
    (tables, q12)
}

fn bench_binary_hash_join(c: &mut Criterion) {
    let (tables, q12) = workload();
    let slices: Vec<&[Segment]> = tables.iter().map(|t| t.as_slice()).collect();
    c.bench_function("join/binary_left_deep_q12", |b| {
        b.iter(|| binary::execute_left_deep(black_box(&q12), black_box(&slices)))
    });
}

fn bench_reference_nary(c: &mut Criterion) {
    let (tables, q12) = workload();
    let slices: Vec<&[Segment]> = tables.iter().map(|t| t.as_slice()).collect();
    c.bench_function("join/reference_nary_q12", |b| {
        b.iter(|| reference::aggregate(black_box(&q12), black_box(&slices)))
    });
}

fn bench_rooted_probe(c: &mut Criterion) {
    // One arriving lineitem segment probing all cached orders segments —
    // Skipper's per-arrival kernel.
    let (tables, q12) = workload();
    let orders_indexes: Vec<SegmentIndex> = tables[0]
        .iter()
        .map(|s| SegmentIndex::build(s, q12.filters[0].as_ref(), &q12.join_cols(0)))
        .collect();
    let lineitem_index =
        SegmentIndex::build(&tables[1][0], q12.filters[1].as_ref(), &q12.join_cols(1));
    let plan = ProbePlan::plan_rooted(&q12, 1).unwrap();
    c.bench_function("join/rooted_probe_one_arrival", |b| {
        b.iter(|| {
            let candidates: Vec<Vec<(u32, &SegmentIndex)>> = vec![
                orders_indexes
                    .iter()
                    .enumerate()
                    .map(|(i, idx)| (i as u32, idx))
                    .collect(),
                vec![(0, &lineitem_index)],
            ];
            let mut n = 0u64;
            nary::execute_rooted(black_box(&plan), &candidates, &|_| false, &mut |_| n += 1);
            n
        })
    });
}

fn bench_segment_index_build(c: &mut Criterion) {
    let (tables, q12) = workload();
    let seg = &tables[1][0]; // a lineitem segment
    let cols = q12.join_cols(1);
    c.bench_function("join/segment_index_build_lineitem", |b| {
        b.iter(|| SegmentIndex::build(black_box(seg), q12.filters[1].as_ref(), &cols))
    });
}

fn bench_segment_codec(c: &mut Criterion) {
    let (tables, _) = workload();
    let seg = &tables[1][0];
    c.bench_function("segment/encode", |b| b.iter(|| black_box(seg).encode()));
    let bytes = seg.encode();
    c.bench_function("segment/decode", |b| {
        b.iter(|| Segment::decode(seg.schema(), black_box(bytes.clone())).unwrap())
    });
}

criterion_group!(
    benches,
    bench_binary_hash_join,
    bench_reference_nary,
    bench_rooted_probe,
    bench_segment_index_build,
    bench_segment_codec
);
criterion_main!(benches);
