//! Scheduler decision-cost microbenchmarks: how expensive is one
//! group-switch decision at realistic queue depths? (Five Skipper clients
//! submit ~300 upfront GETs; the device re-decides after every service.)

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use skipper_csd::sched::{InFlight, PendingRequest, RequestIndex, RequestQueue};
use skipper_csd::{IntraGroupOrder, ObjectId, QueryId, SchedPolicy};
use skipper_sim::SimTime;

/// A queue shaped like five Skipper tenants with 59-object queries
/// spread over five groups, residency armed on `resident_group`.
fn queue(requests_per_client: u32, resident_group: u32) -> RequestQueue {
    let mut pending = Vec::new();
    let mut seq = 0u64;
    for tenant in 0..5u16 {
        for i in 0..requests_per_client {
            pending.push(PendingRequest {
                object: ObjectId::new(tenant, (i % 3) as u16, i / 3),
                query: QueryId::new(tenant, 0),
                client: tenant as usize,
                group: tenant as u32,
                bytes: 0,
                arrival: SimTime::from_secs(i as u64 / 10),
                seq,
            });
            seq += 1;
        }
    }
    let mut q = RequestQueue::from_requests(IntraGroupOrder::SemanticRoundRobin, pending);
    q.arm_residency(resident_group);
    q
}

fn bench_decide(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler/decide");
    for policy in [
        SchedPolicy::FcfsObject,
        SchedPolicy::FcfsQuery,
        SchedPolicy::MaxQueries,
        SchedPolicy::RankBased,
    ] {
        let queue = queue(59, 0);
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.label()),
            &policy,
            |b, &policy| {
                let mut sched = policy.build();
                b.iter(|| sched.decide(black_box(&queue), Some(0), InFlight::NONE))
            },
        );
    }
    group.finish();
}

fn bench_select(c: &mut Criterion) {
    let queue = queue(59, 2);
    let sched = SchedPolicy::RankBased.build();
    c.bench_function("scheduler/select_295_pending", |b| {
        b.iter(|| queue.select(black_box(sched.serve_scope()), 2))
    });
}

fn bench_on_switch_complete(c: &mut Criterion) {
    let queue = queue(59, 3);
    let mut sched = SchedPolicy::RankBased.build();
    c.bench_function("scheduler/rank_on_switch_complete", |b| {
        b.iter(|| sched.on_switch_complete(black_box(&queue), 3))
    });
}

criterion_group!(benches, bench_decide, bench_select, bench_on_switch_complete);
criterion_main!(benches);
