//! # skipper-core — the Skipper query-execution framework
//!
//! This crate implements the paper's primary contribution: a CSD-driven
//! query execution framework that masks the multi-second group-switch
//! latency of cold storage devices. Its pieces map one-to-one onto §4 of
//! the paper:
//!
//! * [`subplan`] — the subplan bookkeeping behind the cache-aware MJoin:
//!   the cross product of per-relation segment choices (Table 2), with
//!   pending/executed tracking, per-object counts, and the §5.2.4
//!   subplan-pruning optimization.
//! * [`cache`] — the MJoin buffer cache with the two eviction policies of
//!   §4.2: *maximal pending subplans* and the paper's final
//!   *maximal progress* policy.
//! * [`state_manager`] — Algorithm 1: issue-everything-upfront,
//!   out-of-order arrival handling, admission/eviction, runnable-subplan
//!   execution, and reissue cycles.
//! * [`vanilla`] — the pull-based baseline: plan-ordered, one GET at a
//!   time, blocking binary hash joins (vanilla PostgreSQL's behaviour).
//! * [`proxy`] — the client proxy that tags GETs with query identifiers,
//!   making the CSD scheduler query-aware (§4.3).
//! * [`config`] — the calibrated cost model mapping real tuple work to
//!   virtual time (Table 3 anchors).
//! * [`analysis`] — the §5.2.4 closed-form reissue model and a cache
//!   advisor derived from it.
//! * [`driver`] — the multi-tenant discrete-event driver wiring N client
//!   engines to one shared CSD, producing the per-query timings, stall
//!   breakdowns, and GET counts behind every figure in §5.
//!
//! The typical entry point is [`driver::Scenario`]:
//!
//! ```no_run
//! use skipper_core::driver::{Scenario, EngineKind};
//! use skipper_datagen::{tpch, GenConfig};
//!
//! let data = tpch::dataset(&GenConfig::new(42, 50));
//! let q12 = tpch::q12(&data);
//! let result = Scenario::new(data)
//!     .clients(5)
//!     .engine(EngineKind::Skipper)
//!     .repeat_query(q12, 1)
//!     .run();
//! println!("mean exec time: {:.0}s", result.mean_query_secs());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod cache;
pub mod config;
pub mod driver;
pub mod engine;
pub mod proxy;
pub mod state_manager;
pub mod subplan;
pub mod vanilla;

pub use analysis::{CacheAdvisor, ReissueModel};
pub use cache::{BufferCache, EvictionPolicy};
pub use config::CostModel;
pub use driver::{EngineKind, QueryRecord, RunResult, Scenario};
pub use state_manager::SkipperEngine;
pub use subplan::SubplanTracker;
pub use vanilla::VanillaEngine;
