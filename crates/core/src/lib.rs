//! # skipper-core — the Skipper query-execution framework
//!
//! This crate implements the paper's primary contribution: a CSD-driven
//! query execution framework that masks the multi-second group-switch
//! latency of cold storage devices. Its pieces map one-to-one onto §4 of
//! the paper:
//!
//! * [`subplan`] — the subplan bookkeeping behind the cache-aware MJoin:
//!   the cross product of per-relation segment choices (Table 2), with
//!   pending/executed tracking, per-object counts, and the §5.2.4
//!   subplan-pruning optimization.
//! * [`cache`] — the MJoin buffer cache with the two eviction policies of
//!   §4.2: *maximal pending subplans* and the paper's final
//!   *maximal progress* policy.
//! * [`state_manager`] — Algorithm 1: issue-everything-upfront,
//!   out-of-order arrival handling, admission/eviction, runnable-subplan
//!   execution, and reissue cycles.
//! * [`vanilla`] — the pull-based baseline: plan-ordered, one GET at a
//!   time, blocking binary hash joins (vanilla PostgreSQL's behaviour).
//! * [`proxy`] — the client proxy that tags GETs with query identifiers,
//!   making the CSD scheduler query-aware (§4.3).
//! * [`config`] — the calibrated cost model mapping real tuple work to
//!   virtual time (Table 3 anchors).
//! * [`analysis`] — the §5.2.4 closed-form reissue model and a cache
//!   advisor derived from it.
//! * [`runtime`] — the layered multi-tenant runtime: a **workload
//!   layer** ([`runtime::Workload`]: dataset + query mix + engine +
//!   arrival process, including staggered starts and fixed-seed Poisson
//!   open arrivals), an **engine layer**
//!   ([`runtime::EngineFactory`]: per-tenant boxed engine builders, so
//!   one scenario mixes Skipper and Vanilla tenants), and a **driver
//!   layer** (client state machine, device pump, event loop, and
//!   record collector) producing the per-query timings, stall
//!   breakdowns, and GET counts behind every figure in §5.
//! * [`driver`] — thin backward-compatible re-exports of the runtime's
//!   public names for seed-era call sites.
//!
//! The typical entry point is [`runtime::Scenario`]. The one-knob path
//! is unchanged from the seed:
//!
//! ```no_run
//! use skipper_core::driver::{Scenario, EngineKind};
//! use skipper_datagen::{tpch, GenConfig};
//!
//! let data = tpch::dataset(&GenConfig::new(42, 50));
//! let q12 = tpch::q12(&data);
//! let result = Scenario::new(data)
//!     .clients(5)
//!     .engine(EngineKind::Skipper)
//!     .repeat_query(q12, 1)
//!     .run();
//! println!("mean exec time: {:.0}s", result.mean_query_secs());
//! ```
//!
//! while the workload path composes heterogeneous fleets:
//!
//! ```no_run
//! use skipper_core::runtime::{ArrivalProcess, Scenario, SkipperFactory, VanillaFactory, Workload};
//! use skipper_datagen::{tpch, GenConfig};
//! use skipper_sim::SimDuration;
//!
//! let data = tpch::dataset(&GenConfig::new(42, 50));
//! let q12 = tpch::q12(&data);
//! let result = Scenario::from_workloads(vec![
//!     // An interactive Skipper tenant with a private 10 GiB cache...
//!     Workload::new(data.clone())
//!         .repeat_query(q12.clone(), 3)
//!         .engine(SkipperFactory::default().cache_bytes(10 << 30)),
//!     // ...sharing the device with a legacy pull-based tenant...
//!     Workload::new(data.clone())
//!         .repeat_query(q12.clone(), 3)
//!         .engine(VanillaFactory),
//!     // ...and an open-arrival tenant issuing a query every ~10 min.
//!     Workload::new(data)
//!         .repeat_query(q12, 8)
//!         .arrival(ArrivalProcess::Poisson { mean: SimDuration::from_secs(600), seed: 1 }),
//! ])
//! .run();
//! println!("makespan: {:.0}s", result.makespan.as_secs_f64());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod cache;
pub mod config;
pub mod driver;
pub mod engine;
pub mod proxy;
pub mod runtime;
pub mod state_manager;
pub mod subplan;
pub mod vanilla;

pub use analysis::{CacheAdvisor, ReissueModel};
pub use cache::{BufferCache, EvictionPolicy};
pub use config::CostModel;
pub use runtime::{
    ArrivalProcess, EngineFactory, EngineKind, LatencyScope, LatencySummary, Quantiles,
    QueryRecord, RecordMode, RunResult, Scenario, SkipperFactory, SloReport, VanillaFactory,
    Workload,
};
pub use state_manager::SkipperEngine;
pub use subplan::SubplanTracker;
pub use vanilla::VanillaEngine;
