//! The paper's analytical cache/reissue model (§5.2.4), as code.
//!
//! The §5.2.4 analysis derives MJoin's request-reissue behaviour under a
//! cache of capacity `C` objects for a query over `R` relations of
//! average size `S̄` segments:
//!
//! * **Best case** (`C ≥ (R−1)·S̄`): every relation but one is buffered
//!   entirely; each object is fetched once; time complexity `O(S̄·R)`.
//! * **Constrained case**: the query proceeds in cycles; each cycle
//!   evaluates `(C/R)ᴿ · (S̄·R/C)` subplans, so the number of cycles —
//!   and hence the factor by which objects are refetched — is
//!   `(R·S̄/C)^(R−1)`.
//!
//! These closed forms drive [`ReissueModel`], which the experiment suite
//! validates against *measured* GET counts (Figure 11c's 14-object point
//! measures ≈31 k GETs for a 6-relation Q5 at 8 GB; the model predicts
//! the same order of magnitude). [`CacheAdvisor`] inverts the model:
//! given a tolerable reissue factor it recommends the smallest cache.

/// Closed-form reissue estimation for a query shape.
#[derive(Clone, Copy, Debug)]
pub struct ReissueModel {
    /// Number of relations `R`.
    pub relations: u32,
    /// Average segments per relation `S̄`.
    pub avg_segments: f64,
    /// Total objects the query touches (Σ segment counts).
    pub total_objects: u64,
}

impl ReissueModel {
    /// Builds the model from a query's per-relation segment counts.
    pub fn from_segment_counts(counts: &[u32]) -> Self {
        assert!(!counts.is_empty(), "a query joins at least one relation");
        let total: u64 = counts.iter().map(|&c| c as u64).sum();
        ReissueModel {
            relations: counts.len() as u32,
            avg_segments: total as f64 / counts.len() as f64,
            total_objects: total,
        }
    }

    /// The cache capacity (in objects) above which no reissues occur:
    /// `(R−1)·S̄` — all but one relation fully buffered (§5.2.4's hash
    /// join equivalence point).
    pub fn no_reissue_capacity(&self) -> f64 {
        (self.relations as f64 - 1.0) * self.avg_segments
    }

    /// The minimum workable capacity: one object per relation.
    pub fn min_capacity(&self) -> u32 {
        self.relations
    }

    /// The paper's cycle-count estimate `(R·S̄/C)^(R−1)` at capacity
    /// `cache_objects` — the factor by which object fetches amplify.
    /// Clamped below at 1 (a roomy cache fetches everything exactly
    /// once).
    pub fn reissue_factor(&self, cache_objects: u64) -> f64 {
        assert!(cache_objects > 0, "cache must hold at least one object");
        // Above the hash-join-equivalence point everything is fetched
        // once (the cycle formula is an asymptotic estimate for
        // C << (R−1)·S̄ and does not smoothly reach 1).
        if cache_objects as f64 >= self.no_reissue_capacity() {
            return 1.0;
        }
        let r = self.relations as f64;
        let ratio = r * self.avg_segments / cache_objects as f64;
        ratio.powf(r - 1.0).max(1.0)
    }

    /// Estimated total GET requests at the given capacity.
    pub fn estimated_gets(&self, cache_objects: u64) -> f64 {
        self.total_objects as f64 * self.reissue_factor(cache_objects)
    }
}

/// Inverts [`ReissueModel`]: what cache does a target reissue factor
/// require?
#[derive(Clone, Copy, Debug)]
pub struct CacheAdvisor {
    model: ReissueModel,
}

impl CacheAdvisor {
    /// Creates an advisor for the given query shape.
    pub fn new(model: ReissueModel) -> Self {
        CacheAdvisor { model }
    }

    /// The smallest capacity (in objects) whose predicted reissue factor
    /// does not exceed `max_factor` (≥ 1). Derived by inverting
    /// `(R·S̄/C)^(R−1) ≤ f`: `C ≥ R·S̄ / f^(1/(R−1))`.
    pub fn capacity_for_factor(&self, max_factor: f64) -> u64 {
        assert!(max_factor >= 1.0, "reissue factor cannot go below 1");
        let r = self.model.relations as f64;
        if r <= 1.0 {
            return self.model.min_capacity() as u64;
        }
        let c = r * self.model.avg_segments / max_factor.powf(1.0 / (r - 1.0));
        (c.ceil() as u64)
            .min(self.capacity_for_no_reissues()) // the clamp region satisfies any factor
            .max(self.model.min_capacity() as u64)
    }

    /// Capacity for the no-reissue regime.
    pub fn capacity_for_no_reissues(&self) -> u64 {
        (self.model.no_reissue_capacity().ceil() as u64).max(self.model.min_capacity() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's SF-100 Q5 shape: 95/22/7/1/1/1 segments.
    fn q5_sf100() -> ReissueModel {
        ReissueModel::from_segment_counts(&[95, 22, 7, 1, 1, 1])
    }

    #[test]
    fn shape_extraction() {
        let m = q5_sf100();
        assert_eq!(m.relations, 6);
        assert_eq!(m.total_objects, 127);
        assert!((m.avg_segments - 127.0 / 6.0).abs() < 1e-9);
        assert_eq!(m.min_capacity(), 6);
    }

    #[test]
    fn roomy_cache_has_factor_one() {
        let m = q5_sf100();
        assert_eq!(m.reissue_factor(127), 1.0);
        assert_eq!(m.estimated_gets(127), 127.0);
    }

    #[test]
    fn paper_magnitudes_at_figure11c_points() {
        // The closed form assumes R equal-sized relations, so for Q5's
        // skewed shape (95/22/7/1/1/1) it is a conservative *upper
        // bound*: the measured value at 14 objects is 1 763 GETs (paper:
        // 1 787) — pinned single-segment dims make the real system far
        // cheaper than the equal-size estimate.
        let m = q5_sf100();
        let measured_at_14 = 1_763.0;
        assert!(
            m.estimated_gets(14) >= measured_at_14,
            "the bound must dominate the measurement"
        );
        // Monotone: smaller caches always amplify more.
        assert!(m.estimated_gets(14) > m.estimated_gets(21));
        assert!(m.estimated_gets(21) > m.estimated_gets(42));
        // And the bound collapses to exactly one fetch per object in the
        // roomy regime.
        assert_eq!(m.estimated_gets(110), 127.0);
    }

    #[test]
    fn factor_is_monotone_in_cache() {
        let m = q5_sf100();
        let mut prev = f64::INFINITY;
        for c in [6u64, 10, 20, 40, 80, 127] {
            let f = m.reissue_factor(c);
            assert!(f <= prev);
            assert!(f >= 1.0);
            prev = f;
        }
    }

    #[test]
    fn advisor_inverts_the_model() {
        let m = q5_sf100();
        let advisor = CacheAdvisor::new(m);
        for target in [1.5, 2.0, 5.0, 20.0] {
            let c = advisor.capacity_for_factor(target);
            assert!(
                m.reissue_factor(c) <= target + 1e-9,
                "capacity {c} misses target {target}"
            );
            // One object less must violate the target (minimality), except
            // at the min-capacity floor.
            if c > m.min_capacity() as u64 {
                assert!(m.reissue_factor(c - 1) > target);
            }
        }
    }

    #[test]
    fn no_reissue_capacity_matches_hash_join_equivalence() {
        // Two equal relations of S segments: best case needs S objects.
        let m = ReissueModel::from_segment_counts(&[10, 10]);
        assert_eq!(m.no_reissue_capacity(), 10.0);
        let advisor = CacheAdvisor::new(m);
        assert_eq!(advisor.capacity_for_no_reissues(), 10);
    }

    #[test]
    fn single_relation_never_reissues() {
        let m = ReissueModel::from_segment_counts(&[50]);
        assert_eq!(m.reissue_factor(1), 1.0);
        assert_eq!(CacheAdvisor::new(m).capacity_for_factor(1.0), 1);
    }

    #[test]
    #[should_panic(expected = "at least one object")]
    fn zero_cache_rejected() {
        q5_sf100().reissue_factor(0);
    }
}
