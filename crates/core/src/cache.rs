//! The MJoin buffer cache and its eviction policies (§4.2).
//!
//! MJoin under a cache smaller than the input must evict previously
//! fetched objects; evicted objects still needed by pending subplans are
//! refetched in the next reissue cycle, so the eviction policy directly
//! controls the GET-amplification curves of Figures 11b/11c. Two greedy
//! heuristics from the paper:
//!
//! * [`EvictionPolicy::MaxPendingSubplans`] — evict the object with the
//!   fewest pending subplans. The paper's first attempt; it can evict an
//!   object whose partners are all cached (stalling progress) while
//!   keeping one whose partners are long gone.
//! * [`EvictionPolicy::MaximalProgress`] — evict the object with the
//!   fewest *executable* subplans given the current cache contents plus
//!   the arriving object, breaking ties by pending count. This is the
//!   paper's final policy; it automatically pins small dimension tables
//!   (they participate in every subplan) — the star-schema-friendly side
//!   effect called out in §4.2.

use std::collections::BTreeMap;

use skipper_relational::ops::index::SegmentIndex;

use crate::subplan::{RelSeg, SubplanTracker};

/// Cache-eviction policy selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Evict the minimum-pending-subplans object (§4.2 first heuristic).
    MaxPendingSubplans,
    /// Evict the minimum-executable-subplans object, ties broken by
    /// pending count (§4.2 final heuristic).
    MaximalProgress,
}

impl EvictionPolicy {
    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            EvictionPolicy::MaxPendingSubplans => "max-pending",
            EvictionPolicy::MaximalProgress => "max-progress",
        }
    }
}

/// A cached object: its hash indexes plus accounting size.
pub struct CacheSlot {
    /// Filtered rows + hash indexes of the segment.
    pub index: SegmentIndex,
    /// Logical bytes charged against cache capacity.
    pub bytes: u64,
}

/// The MJoin buffer cache: capacity-bounded map from objects to their
/// per-segment hash indexes.
pub struct BufferCache {
    capacity_bytes: u64,
    used_bytes: u64,
    policy: EvictionPolicy,
    /// BTreeMap for deterministic iteration (stable victim tie-breaks).
    slots: BTreeMap<RelSeg, CacheSlot>,
}

impl BufferCache {
    /// Creates a cache of `capacity_bytes` with the given policy.
    pub fn new(capacity_bytes: u64, policy: EvictionPolicy) -> Self {
        BufferCache {
            capacity_bytes,
            used_bytes: 0,
            policy,
            slots: BTreeMap::new(),
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity_bytes
    }

    /// Bytes currently used.
    pub fn used(&self) -> u64 {
        self.used_bytes
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether `obj` is cached.
    pub fn contains(&self, obj: RelSeg) -> bool {
        self.slots.contains_key(&obj)
    }

    /// The cached index of `obj`.
    ///
    /// # Panics
    /// Panics if absent — subplan execution only references cached
    /// objects.
    #[allow(clippy::should_implement_trait)] // returns a SegmentIndex, not Output
    pub fn index(&self, obj: RelSeg) -> &SegmentIndex {
        &self
            .slots
            .get(&obj)
            .unwrap_or_else(|| panic!("object {obj:?} not cached"))
            .index
    }

    /// Cached segments grouped by relation (`out[r]` sorted ascending).
    pub fn cached_by_rel(&self, num_relations: usize) -> Vec<Vec<u32>> {
        let mut out = vec![Vec::new(); num_relations];
        for &(rel, seg) in self.slots.keys() {
            out[rel].push(seg);
        }
        out
    }

    /// Selects eviction victims to make room for `incoming` of
    /// `incoming_bytes`, consulting `tracker` per the configured policy.
    /// Victims are chosen one at a time with scores recomputed after each
    /// choice (objects are usually equal-sized, so this is typically a
    /// single round). `pinned` objects are never evicted (the state
    /// manager pins the target subplan's members during degraded
    /// single-subplan cycles). Does not mutate the cache.
    ///
    /// # Panics
    /// Panics if the cache cannot fit the incoming object even after
    /// evicting every unpinned entry — the paper requires capacity ≥ R
    /// objects, which always leaves room for one pinned combination.
    pub fn select_victims(
        &self,
        tracker: &SubplanTracker,
        incoming: RelSeg,
        incoming_bytes: u64,
        pinned: &[RelSeg],
    ) -> Vec<RelSeg> {
        let mut victims: Vec<RelSeg> = Vec::new();
        let mut freed = 0u64;
        while self.used_bytes - freed + incoming_bytes > self.capacity_bytes {
            // Remaining candidates (not already chosen, not pinned).
            let remaining: Vec<RelSeg> = self
                .slots
                .keys()
                .copied()
                .filter(|o| !victims.contains(o) && !pinned.contains(o))
                .collect();
            // Progress guard: evicting a relation's *only* cached segment
            // stalls every subplan (the paper's B.1 failure in §4.2) and,
            // since reissue cycles are deterministic, can livelock the
            // query at tight caches. A relation's sole representative is
            // therefore protected — unless the incoming object belongs to
            // the same relation and simply replaces it.
            let mut per_rel = vec![0usize; tracker.num_relations()];
            for &(rel, _) in &remaining {
                per_rel[rel] += 1;
            }
            let mut candidates: Vec<RelSeg> = remaining
                .iter()
                .copied()
                .filter(|&(rel, _)| rel == incoming.0 || per_rel[rel] > 1)
                .collect();
            if candidates.is_empty() {
                candidates = remaining;
            }
            assert!(
                !candidates.is_empty(),
                "cache capacity {}B cannot hold object of {}B — the MJoin \
                 cache must hold at least one object per relation",
                self.capacity_bytes,
                incoming_bytes
            );
            let victim = match self.policy {
                EvictionPolicy::MaxPendingSubplans => candidates
                    .iter()
                    .copied()
                    .min_by_key(|&o| (tracker.pending_count(o), o))
                    .expect("non-empty candidates"),
                EvictionPolicy::MaximalProgress => {
                    // Score against the cache minus already-chosen victims,
                    // plus the incoming object.
                    let mut cached = self.cached_by_rel(tracker.num_relations());
                    for &(rel, seg) in &victims {
                        cached[rel].retain(|&s| s != seg);
                    }
                    let exec = tracker.executable_counts(&cached, Some(incoming), &candidates);
                    candidates
                        .iter()
                        .zip(&exec)
                        .min_by_key(|(&o, &e)| (e, tracker.pending_count(o), o))
                        .map(|(&o, _)| o)
                        .expect("non-empty candidates")
                }
            };
            freed += self.slots[&victim].bytes;
            victims.push(victim);
        }
        victims
    }

    /// Inserts `obj`; the caller must have made room first.
    ///
    /// # Panics
    /// Panics on duplicate insertion or capacity overflow.
    pub fn insert(&mut self, obj: RelSeg, slot: CacheSlot) {
        assert!(
            self.used_bytes + slot.bytes <= self.capacity_bytes,
            "cache overflow inserting {obj:?}"
        );
        self.used_bytes += slot.bytes;
        let prev = self.slots.insert(obj, slot);
        assert!(prev.is_none(), "object {obj:?} cached twice");
    }

    /// Removes `obj`, returning its slot.
    ///
    /// # Panics
    /// Panics if absent.
    pub fn remove(&mut self, obj: RelSeg) -> CacheSlot {
        let slot = self
            .slots
            .remove(&obj)
            .unwrap_or_else(|| panic!("evicting uncached object {obj:?}"));
        self.used_bytes -= slot.bytes;
        slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipper_relational::row;
    use skipper_relational::schema::{DataType, Schema};
    use skipper_relational::segment::Segment;

    fn slot(bytes: u64) -> CacheSlot {
        let seg = Segment::new(Schema::of(&[("k", DataType::Int)]), vec![row![1i64]]).unwrap();
        CacheSlot {
            index: SegmentIndex::build(&seg, None, &[0]),
            bytes,
        }
    }

    /// Rebuilds the paper's §4.2 walk-through state: cache
    /// {A.1, B.1, A.2, C.3} of capacity 4 (unit-sized objects), executed
    /// {<A.1,B.1,C.3>, <A.2,B.1,C.3>}, arriving C.1.
    fn paper_state() -> (BufferCache, SubplanTracker) {
        let mut tracker = SubplanTracker::new(&[2, 2, 2]);
        tracker.mark_executed(&[0, 0, 1]);
        tracker.mark_executed(&[1, 0, 1]);
        let mut cache = BufferCache::new(4, EvictionPolicy::MaximalProgress);
        for obj in [(0usize, 0u32), (1, 0), (0, 1), (2, 1)] {
            cache.insert(obj, slot(1));
        }
        (cache, tracker)
    }

    #[test]
    fn paper_example_maximal_progress_evicts_c3() {
        let (cache, tracker) = paper_state();
        // "this policy would pick C.3 as the eviction candidate since it
        // has the lowest number of executable plans".
        let victims = cache.select_victims(&tracker, (2, 0), 1, &[]);
        assert_eq!(victims, vec![(2, 1)]);
    }

    #[test]
    fn paper_example_max_pending_protected_from_b1_stall() {
        let (mut cache, tracker) = paper_state();
        cache.policy = EvictionPolicy::MaxPendingSubplans;
        // Pending counts tie B.1 and C.3 at 2. The paper uses this very
        // case to show max-pending can evict B.1 and stall MJoin (no B
        // object would remain); the progress guard removes B.1 — the sole
        // cached B segment — from the candidate set, so C.3 is evicted.
        let victims = cache.select_victims(&tracker, (2, 0), 1, &[]);
        assert_eq!(victims, vec![(2, 1)]);
    }

    #[test]
    fn sole_representative_of_incoming_relation_is_evictable() {
        // Cache of one object per relation (the C = R minimum): an
        // arriving segment of relation 0 replaces relation 0's cached
        // segment, never a partner's sole representative.
        let tracker = SubplanTracker::new(&[3, 1, 1]);
        let mut cache = BufferCache::new(3, EvictionPolicy::MaxPendingSubplans);
        cache.insert((0, 0), slot(1));
        cache.insert((1, 0), slot(1));
        cache.insert((2, 0), slot(1));
        let victims = cache.select_victims(&tracker, (0, 1), 1, &[]);
        assert_eq!(victims, vec![(0, 0)]);
    }

    #[test]
    fn maximal_progress_pins_dimension_tables() {
        // Star schema: fact with 4 segments, two 1-segment dims. The dims
        // participate in every subplan; the policy must evict fact
        // segments first.
        let mut tracker = SubplanTracker::new(&[4, 1, 1]);
        tracker.mark_executed(&[0, 0, 0]);
        tracker.mark_executed(&[1, 0, 0]);
        let mut cache = BufferCache::new(4, EvictionPolicy::MaximalProgress);
        cache.insert((0, 0), slot(1));
        cache.insert((0, 1), slot(1));
        cache.insert((1, 0), slot(1));
        cache.insert((2, 0), slot(1));
        let victims = cache.select_victims(&tracker, (0, 2), 1, &[]);
        assert_eq!(victims.len(), 1);
        assert_eq!(victims[0].0, 0, "must evict a fact segment, not a dim");
    }

    #[test]
    fn multi_victim_eviction_recomputes() {
        let tracker = SubplanTracker::new(&[3, 1]);
        let mut cache = BufferCache::new(4, EvictionPolicy::MaximalProgress);
        cache.insert((0, 0), slot(2));
        cache.insert((0, 1), slot(1));
        cache.insert((1, 0), slot(1));
        // Incoming needs 3 bytes: must evict two fact segments.
        let victims = cache.select_victims(&tracker, (0, 2), 3, &[]);
        assert_eq!(victims.len(), 2);
        assert!(victims.iter().all(|v| v.0 == 0));
    }

    #[test]
    fn no_eviction_when_room() {
        let tracker = SubplanTracker::new(&[2, 1]);
        let mut cache = BufferCache::new(10, EvictionPolicy::MaximalProgress);
        cache.insert((0, 0), slot(1));
        assert!(cache.select_victims(&tracker, (0, 1), 1, &[]).is_empty());
    }

    #[test]
    fn accounting_roundtrip() {
        let mut cache = BufferCache::new(10, EvictionPolicy::MaximalProgress);
        cache.insert((0, 0), slot(4));
        assert_eq!(cache.used(), 4);
        assert!(cache.contains((0, 0)));
        assert_eq!(cache.len(), 1);
        let s = cache.remove((0, 0));
        assert_eq!(s.bytes, 4);
        assert_eq!(cache.used(), 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn cached_by_rel_sorted() {
        let mut cache = BufferCache::new(10, EvictionPolicy::MaximalProgress);
        cache.insert((1, 5), slot(1));
        cache.insert((0, 2), slot(1));
        cache.insert((1, 1), slot(1));
        assert_eq!(cache.cached_by_rel(2), vec![vec![2], vec![1, 5]]);
    }

    #[test]
    #[should_panic(expected = "cannot hold object")]
    fn oversized_object_panics() {
        let tracker = SubplanTracker::new(&[1, 1]);
        let cache = BufferCache::new(2, EvictionPolicy::MaximalProgress);
        cache.select_victims(&tracker, (0, 0), 5, &[]);
    }

    #[test]
    #[should_panic(expected = "cached twice")]
    fn duplicate_insert_panics() {
        let mut cache = BufferCache::new(10, EvictionPolicy::MaximalProgress);
        cache.insert((0, 0), slot(1));
        cache.insert((0, 0), slot(1));
    }
}
