//! The calibrated cost model: real tuple work → virtual time.
//!
//! Experiments execute *real* joins over miniature data, then charge the
//! resulting work counters (tuples scanned, hash entries built, probes,
//! rows emitted) to the virtual clock at full logical scale: each
//! physical tuple stands for `logical_rows / physical_rows` real tuples
//! (≈ the generator's `phys_divisor`).
//!
//! Defaults are calibrated against Table 3 of the paper (TPC-H Q12,
//! SF-50, single client):
//!
//! * vanilla query execution 407 s over ~375 M scanned tuples
//!   ⇒ ≈ 1 µs/tuple end-to-end scan cost (PostgreSQL-class per-tuple
//!   overhead);
//! * FUSE layer 15.75 s over 59 segments ⇒ ≈ 267 ms/object;
//! * network 550 s for 59 GB through the serializing Swift middleware
//!   ⇒ ≈ 110 MB/s effective bandwidth (a device-config concern; see
//!   [`skipper_csd::CsdConfig`]).

use skipper_sim::SimDuration;

/// Per-operation CPU costs in nanoseconds per *logical* tuple, plus
/// fixed overheads.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Scanning/deserializing one tuple (dominates analytical queries).
    pub scan_ns_per_tuple: f64,
    /// Inserting one tuple into a join hash table.
    pub build_ns_per_tuple: f64,
    /// One hash-table probe.
    pub probe_ns_per_op: f64,
    /// Emitting one joined output row (aggregation update included).
    pub emit_ns_per_row: f64,
    /// Fixed bookkeeping per executed subplan (state-manager overhead;
    /// this is what makes MJoin a few percent slower than a plain hash
    /// join at equal cache, per Table 3).
    pub subplan_overhead: SimDuration,
    /// Per-object overhead of the FUSE interposition layer used by the
    /// *vanilla* PostgreSQL-to-Swift path (Skipper's client proxy
    /// bypasses it, hence "/" in Table 3).
    pub fuse_overhead_per_object: SimDuration,
    /// Whether the FUSE layer is present (disabled for the "local file
    /// system" configuration of the Table 3 component breakdown).
    pub fuse_enabled: bool,
    /// Fixed cost of finalizing the aggregation at query end.
    pub agg_finish: SimDuration,
}

impl CostModel {
    /// The Table 3-calibrated defaults.
    pub fn paper_calibrated() -> Self {
        CostModel {
            scan_ns_per_tuple: 1_000.0,
            build_ns_per_tuple: 500.0,
            probe_ns_per_op: 400.0,
            emit_ns_per_row: 200.0,
            subplan_overhead: SimDuration::from_micros(500),
            fuse_overhead_per_object: SimDuration::from_millis(267),
            fuse_enabled: true,
            agg_finish: SimDuration::from_millis(5),
        }
    }

    /// A copy with the FUSE layer disabled.
    pub fn without_fuse(mut self) -> Self {
        self.fuse_enabled = false;
        self
    }

    /// Virtual time for `count` physical operations at `ns_per_op`,
    /// scaled by the table's logical-to-physical row ratio.
    pub fn scaled(&self, count: u64, scale: f64, ns_per_op: f64) -> SimDuration {
        SimDuration::from_secs_f64(count as f64 * scale * ns_per_op * 1e-9)
    }

    /// The FUSE charge for one object access (zero when disabled).
    pub fn fuse_charge(&self) -> SimDuration {
        if self.fuse_enabled {
            self.fuse_overhead_per_object
        } else {
            SimDuration::ZERO
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::paper_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_charge_arithmetic() {
        let c = CostModel::paper_calibrated();
        // 1300 physical tuples at scale 5000 and 1 µs/tuple = 6.5 s.
        let d = c.scaled(1_300, 5_000.0, c.scan_ns_per_tuple);
        assert_eq!(d, SimDuration::from_secs_f64(6.5));
    }

    #[test]
    fn table3_scan_calibration_lands_near_407s() {
        // Q12 @ SF-50: ~300 M lineitem + 75 M orders tuples scanned, plus
        // the orders build: vanilla query execution should land within
        // 10 % of the paper's 407 s.
        let c = CostModel::paper_calibrated();
        let scan = c.scaled(375_000_000, 1.0, c.scan_ns_per_tuple);
        let build = c.scaled(75_000_000, 1.0, c.build_ns_per_tuple);
        let total = (scan + build).as_secs_f64();
        assert!(
            (370.0..=450.0).contains(&total),
            "calibration drifted: {total}"
        );
    }

    #[test]
    fn fuse_toggle() {
        let on = CostModel::paper_calibrated();
        assert!(!on.fuse_charge().is_zero());
        let off = on.without_fuse();
        assert!(off.fuse_charge().is_zero());
        // ~59 objects ⇒ ≈ 15.75 s (Table 3's FUSE row).
        let total = on.fuse_charge().as_secs_f64() * 59.0;
        assert!((14.0..=18.0).contains(&total), "fuse total {total}");
    }
}
