//! The client proxy (§4.3).
//!
//! In the paper the client proxy is a daemon collocated with each
//! PostgreSQL VM: MJoin hands it a JSON list of object names over a
//! message queue, and the proxy issues the HTTP GETs — crucially tagging
//! each with a *query identifier*, which is what makes the CSD scheduler
//! query-aware. Architecturally it decouples the engine from the storage
//! interface (the paper reuses it unchanged for raw-file foreign-data
//! scans).
//!
//! Here the proxy is the component that translates the engine's
//! relation-local `(rel, seg)` requests into globally addressed, tagged
//! [`ObjectId`]s and keeps the GET accounting that Figures 11b/11c plot.

use skipper_csd::ObjectId;

use crate::subplan::RelSeg;

/// Translates engine-local segment requests into tagged CSD GETs.
#[derive(Clone, Debug)]
pub struct ClientProxy {
    tenant: u16,
    /// Catalog table index per query relation.
    rel_tables: Vec<u16>,
    gets_issued: u64,
    first_issue_done: bool,
    reissued: u64,
}

impl ClientProxy {
    /// Creates a proxy for `tenant` whose query relations map to the
    /// given catalog table indexes.
    pub fn new(tenant: u16, rel_tables: Vec<u16>) -> Self {
        ClientProxy {
            tenant,
            rel_tables,
            gets_issued: 0,
            first_issue_done: false,
            reissued: 0,
        }
    }

    /// The object id for a query-relation segment.
    pub fn object_id(&self, obj: RelSeg) -> ObjectId {
        ObjectId::new(self.tenant, self.rel_tables[obj.0], obj.1)
    }

    /// The query relation for a delivered object, if the object belongs
    /// to this query (deliveries for older queries of the same tenant
    /// return `None`).
    pub fn rel_of(&self, object: ObjectId) -> Option<usize> {
        if object.tenant != self.tenant {
            return None;
        }
        self.rel_tables.iter().position(|&t| t == object.table)
    }

    /// Batches a GET request list, counting issues and (after the first
    /// batch) reissues.
    pub fn issue(&mut self, objects: &[RelSeg]) -> Vec<ObjectId> {
        let ids: Vec<ObjectId> = objects.iter().map(|&o| self.object_id(o)).collect();
        self.gets_issued += ids.len() as u64;
        if self.first_issue_done {
            self.reissued += ids.len() as u64;
        }
        self.first_issue_done = true;
        ids
    }

    /// Total GETs issued.
    pub fn gets_issued(&self) -> u64 {
        self.gets_issued
    }

    /// GETs issued in reissue cycles (beyond the initial batch).
    pub fn reissued(&self) -> u64 {
        self.reissued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_relations_to_catalog_tables() {
        let p = ClientProxy::new(3, vec![4, 5]);
        assert_eq!(p.object_id((0, 7)), ObjectId::new(3, 4, 7));
        assert_eq!(p.object_id((1, 0)), ObjectId::new(3, 5, 0));
        assert_eq!(p.rel_of(ObjectId::new(3, 5, 9)), Some(1));
        assert_eq!(p.rel_of(ObjectId::new(3, 9, 0)), None);
        assert_eq!(p.rel_of(ObjectId::new(2, 4, 0)), None, "wrong tenant");
    }

    #[test]
    fn counts_issues_and_reissues() {
        let mut p = ClientProxy::new(0, vec![0]);
        let batch1 = p.issue(&[(0, 0), (0, 1), (0, 2)]);
        assert_eq!(batch1.len(), 3);
        assert_eq!(p.gets_issued(), 3);
        assert_eq!(p.reissued(), 0);
        p.issue(&[(0, 1)]);
        assert_eq!(p.gets_issued(), 4);
        assert_eq!(p.reissued(), 1);
    }
}
