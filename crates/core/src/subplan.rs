//! Subplan bookkeeping for the cache-aware MJoin.
//!
//! A *subplan* is one choice of segment per relation (Table 2 of the
//! paper): joining tables A, B, C with 2, 2, 1 segments yields
//! 2×2×1 = 4 subplans, each of which can execute independently once all
//! of its segments are cached, and the union of their outputs equals the
//! full join. The state manager tracks which subplans are pending vs
//! executed, and the cache-eviction policies need two derived counts:
//!
//! * **pending count** of an object — how many pending subplans it
//!   participates in (the "maximal pending subplans" policy, and the
//!   tie-breaker of the final policy);
//! * **executable count** of an object — how many *new* subplans could
//!   execute given the current cache contents plus the newly arriving
//!   object (the "maximal progress" policy of §4.2).
//!
//! The tracker also implements the §5.2.4 *subplan pruning*
//! optimization: an object whose segment yields no tuples under the
//! query's filters can be pruned, removing every subplan containing it
//! (a 4-table join with 10 segments each drops 10³ subplans per pruned
//! object).
//!
//! Combinations are packed into a `u128` key (up to 8 relations × 16-bit
//! segment ids), and executed-set scans are the only super-constant
//! operations — both bounded by the number of *actually executed*
//! subplans, never the full cross product.

use skipper_relational::hash::{FxHashMap, FxHashSet};

/// An object within a query: `(relation index, segment index)`.
pub type RelSeg = (usize, u32);

/// Packed subplan key: segment choice per relation, 16 bits each.
pub type SubplanKey = u128;

/// Maximum relations per query (u128 packing limit; the paper's widest
/// query, TPC-H Q5, has 6).
pub const MAX_RELATIONS: usize = 8;

/// Tracks pending/executed subplans over the segment cross product.
pub struct SubplanTracker {
    seg_counts: Vec<u32>,
    /// `alive[r][s]` — segment not pruned.
    alive: Vec<Vec<bool>>,
    /// Live segments per relation.
    alive_counts: Vec<u64>,
    executed: FxHashSet<SubplanKey>,
    /// Executed subplans per object (only fully-alive combos counted).
    executed_per_object: FxHashMap<RelSeg, u64>,
}

impl SubplanTracker {
    /// Creates a tracker for a query whose relation `r` has
    /// `seg_counts[r]` segments.
    ///
    /// # Panics
    /// Panics on more than [`MAX_RELATIONS`] relations, zero-segment
    /// relations, or segment counts beyond 16 bits.
    pub fn new(seg_counts: &[u32]) -> Self {
        assert!(
            (1..=MAX_RELATIONS).contains(&seg_counts.len()),
            "subplan tracker supports 1..={MAX_RELATIONS} relations"
        );
        for &c in seg_counts {
            assert!(c > 0, "relation with zero segments");
            assert!(c <= u16::MAX as u32, "segment count exceeds 16-bit packing");
        }
        SubplanTracker {
            seg_counts: seg_counts.to_vec(),
            alive: seg_counts.iter().map(|&c| vec![true; c as usize]).collect(),
            alive_counts: seg_counts.iter().map(|&c| c as u64).collect(),
            executed: FxHashSet::default(),
            executed_per_object: FxHashMap::default(),
        }
    }

    /// Packs a combination (one segment per relation) into a key.
    pub fn pack(combo: &[u32]) -> SubplanKey {
        let mut key: SubplanKey = 0;
        for (r, &seg) in combo.iter().enumerate() {
            key |= (seg as SubplanKey) << (16 * r);
        }
        key
    }

    /// Unpacks a key into a combination of `n` segment indices.
    pub fn unpack(key: SubplanKey, n: usize) -> Vec<u32> {
        (0..n)
            .map(|r| ((key >> (16 * r)) & 0xFFFF) as u32)
            .collect()
    }

    /// Number of relations.
    pub fn num_relations(&self) -> usize {
        self.seg_counts.len()
    }

    /// Segment count of relation `r` (including pruned segments).
    pub fn seg_count(&self, r: usize) -> u32 {
        self.seg_counts[r]
    }

    /// Whether `(rel, seg)` is still alive (not pruned).
    pub fn is_alive(&self, obj: RelSeg) -> bool {
        self.alive[obj.0][obj.1 as usize]
    }

    /// Total subplans over live segments (`Π alive_r`).
    pub fn total_live_subplans(&self) -> u64 {
        self.alive_counts.iter().product()
    }

    /// Executed subplans so far.
    pub fn executed_count(&self) -> u64 {
        self.executed.len() as u64
    }

    /// Pending (live, unexecuted) subplans.
    pub fn pending_total(&self) -> u64 {
        self.total_live_subplans() - self.executed.len() as u64
    }

    /// True when every live subplan has executed — query complete.
    pub fn is_complete(&self) -> bool {
        self.pending_total() == 0
    }

    /// Number of pending subplans `obj` participates in; 0 for pruned
    /// objects.
    pub fn pending_count(&self, obj: RelSeg) -> u64 {
        if !self.is_alive(obj) {
            return 0;
        }
        let others: u64 = self
            .alive_counts
            .iter()
            .enumerate()
            .filter(|&(r, _)| r != obj.0)
            .map(|(_, &c)| c)
            .product();
        others - self.executed_per_object.get(&obj).copied().unwrap_or(0)
    }

    /// Whether a combination has already executed.
    pub fn is_executed(&self, combo: &[u32]) -> bool {
        self.executed.contains(&Self::pack(combo))
    }

    /// Marks a combination executed. Returns `false` if it was already
    /// executed (callers treat double execution as a bug upstream).
    ///
    /// # Panics
    /// Panics if any coordinate is pruned — the state manager never
    /// caches pruned objects, so this indicates a bookkeeping bug.
    pub fn mark_executed(&mut self, combo: &[u32]) -> bool {
        assert_eq!(combo.len(), self.seg_counts.len());
        for (r, &seg) in combo.iter().enumerate() {
            assert!(
                self.alive[r][seg as usize],
                "executing subplan with pruned segment ({r}, {seg})"
            );
        }
        let key = Self::pack(combo);
        if !self.executed.insert(key) {
            return false;
        }
        for (r, &seg) in combo.iter().enumerate() {
            *self.executed_per_object.entry((r, seg)).or_insert(0) += 1;
        }
        true
    }

    /// Prunes `(rel, seg)`: every subplan containing it is removed from
    /// the pending space. Returns the number of *pending* subplans
    /// eliminated. Pruning an already-pruned object is a no-op returning
    /// 0.
    pub fn prune(&mut self, obj: RelSeg) -> u64 {
        let (rel, seg) = obj;
        if !self.alive[rel][seg as usize] {
            return 0;
        }
        let eliminated = self.pending_count(obj);
        self.alive[rel][seg as usize] = false;
        self.alive_counts[rel] -= 1;
        // Drop executed combos containing the object so per-object counts
        // stay consistent with the shrunken live space.
        let dead: Vec<SubplanKey> = self
            .executed
            .iter()
            .copied()
            .filter(|&k| ((k >> (16 * rel)) & 0xFFFF) as u32 == seg)
            .collect();
        for key in dead {
            self.executed.remove(&key);
            for (r, s) in Self::unpack(key, self.seg_counts.len()).iter().enumerate() {
                let cnt = self
                    .executed_per_object
                    .get_mut(&(r, *s))
                    .expect("executed object has a count");
                *cnt -= 1;
            }
        }
        eliminated
    }

    /// The **maximal-progress** scores of §4.2: for every cached object,
    /// how many new subplans become executable given the cache contents
    /// plus `incoming`. `cached[r]` lists relation `r`'s cached segments
    /// (all alive); `incoming` is the arriving object (counted as present
    /// but not scored).
    ///
    /// Returned in the same object order as `candidates`.
    pub fn executable_counts(
        &self,
        cached: &[Vec<u32>],
        incoming: Option<RelSeg>,
        candidates: &[RelSeg],
    ) -> Vec<u64> {
        assert_eq!(cached.len(), self.seg_counts.len());
        // Effective per-relation cache contents including the newcomer.
        let mut present: Vec<Vec<u32>> = cached.to_vec();
        if let Some((r, s)) = incoming {
            if !present[r].contains(&s) {
                present[r].push(s);
            }
        }
        let sizes: Vec<u64> = present.iter().map(|v| v.len() as u64).collect();
        let membership: Vec<FxHashSet<u32>> = present
            .iter()
            .map(|v| v.iter().copied().collect())
            .collect();

        // Executed combos fully inside the effective cache, counted per
        // coordinate, in one pass over the executed set.
        let mut executed_in_cache: FxHashMap<RelSeg, u64> = FxHashMap::default();
        'combos: for &key in &self.executed {
            let combo = Self::unpack(key, self.seg_counts.len());
            for (r, &s) in combo.iter().enumerate() {
                if !membership[r].contains(&s) {
                    continue 'combos;
                }
            }
            for (r, &s) in combo.iter().enumerate() {
                *executed_in_cache.entry((r, s)).or_insert(0) += 1;
            }
        }

        candidates
            .iter()
            .map(|&(rel, seg)| {
                debug_assert!(membership[rel].contains(&seg), "candidate not cached");
                let others: u64 = sizes
                    .iter()
                    .enumerate()
                    .filter(|&(r, _)| r != rel)
                    .map(|(_, &c)| c)
                    .product();
                others - executed_in_cache.get(&(rel, seg)).copied().unwrap_or(0)
            })
            .collect()
    }

    /// Enumerates the not-yet-executed combinations drawable from the
    /// cache that include `fixed` — the subplans that become runnable
    /// when `fixed` arrives (all other fully-cached combinations were
    /// runnable earlier and have already executed).
    pub fn runnable_with(&self, cached: &[Vec<u32>], fixed: RelSeg) -> Vec<Vec<u32>> {
        assert!(self.is_alive(fixed), "runnable_with on pruned object");
        let n = self.seg_counts.len();
        let mut combo = vec![0u32; n];
        let mut out = Vec::new();
        self.enumerate(cached, fixed, 0, &mut combo, &mut out);
        out
    }

    fn enumerate(
        &self,
        cached: &[Vec<u32>],
        fixed: RelSeg,
        rel: usize,
        combo: &mut Vec<u32>,
        out: &mut Vec<Vec<u32>>,
    ) {
        if rel == combo.len() {
            if !self.executed.contains(&Self::pack(combo)) {
                out.push(combo.clone());
            }
            return;
        }
        if rel == fixed.0 {
            combo[rel] = fixed.1;
            self.enumerate(cached, fixed, rel + 1, combo, out);
        } else {
            for &seg in &cached[rel] {
                debug_assert!(self.is_alive((rel, seg)), "pruned object in cache");
                combo[rel] = seg;
                self.enumerate(cached, fixed, rel + 1, combo, out);
            }
        }
    }

    /// The lexicographically smallest pending combination, if any —
    /// used by the state manager's degraded single-subplan mode at
    /// extreme cache pressure. Cost is bounded by the number of executed
    /// combinations scanned before the first gap.
    pub fn first_pending(&self) -> Option<Vec<u32>> {
        let n = self.seg_counts.len();
        // Odometer over live segments per relation.
        let live: Vec<Vec<u32>> = self
            .alive
            .iter()
            .map(|segs| {
                segs.iter()
                    .enumerate()
                    .filter(|(_, &a)| a)
                    .map(|(s, _)| s as u32)
                    .collect()
            })
            .collect();
        if live.iter().any(|l| l.is_empty()) {
            return None;
        }
        let mut cursor = vec![0usize; n];
        loop {
            let combo: Vec<u32> = cursor
                .iter()
                .enumerate()
                .map(|(r, &i)| live[r][i])
                .collect();
            if !self.is_executed(&combo) {
                return Some(combo);
            }
            // Advance the odometer.
            let mut r = n;
            loop {
                if r == 0 {
                    return None;
                }
                r -= 1;
                cursor[r] += 1;
                if cursor[r] < live[r].len() {
                    break;
                }
                cursor[r] = 0;
            }
        }
    }

    /// All live objects still participating in pending subplans —
    /// the refetch universe for reissue cycles.
    pub fn pending_objects(&self) -> Vec<RelSeg> {
        let mut out = Vec::new();
        for (r, segs) in self.alive.iter().enumerate() {
            for (s, &alive) in segs.iter().enumerate() {
                let obj = (r, s as u32);
                if alive && self.pending_count(obj) > 0 {
                    out.push(obj);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Table 2 configuration: tables A, B, C with 2, 2, 2 segments
    /// (A.1/A.2, B.1/B.2, C.1/C.3 in the paper's naming).
    fn table2_tracker() -> SubplanTracker {
        SubplanTracker::new(&[2, 2, 2])
    }

    #[test]
    fn table2_enumerates_eight_subplans() {
        let t = table2_tracker();
        assert_eq!(t.total_live_subplans(), 8);
        assert_eq!(t.pending_total(), 8);
        assert!(!t.is_complete());
    }

    #[test]
    fn paper_sf100_q5_counts() {
        // §5.2.4: "There are 14630 subplans in total" for 95×22×7 (the
        // three multi-segment tables; single-segment dims do not
        // multiply).
        let t = SubplanTracker::new(&[95, 22, 7, 1, 1, 1]);
        assert_eq!(t.total_live_subplans(), 14_630);
    }

    #[test]
    fn mark_executed_updates_counts() {
        let mut t = table2_tracker();
        assert!(t.mark_executed(&[0, 0, 0]));
        assert!(!t.mark_executed(&[0, 0, 0])); // duplicate
        assert_eq!(t.executed_count(), 1);
        assert_eq!(t.pending_total(), 7);
        assert_eq!(t.pending_count((0, 0)), 3); // 4 combos with A.0, 1 done
        assert_eq!(t.pending_count((0, 1)), 4);
    }

    /// The worked example of §4.2: cache {A.1, B.1, A.2, C.3}, executed
    /// {<A.1,B.1,C.3>, <A.2,B.1,C.3>}, arriving C.1.
    /// (0-based: A=rel0 {0,1}, B=rel1 {0,1}, C=rel2 {C.1=0, C.3=1}.)
    #[test]
    fn paper_eviction_example_pending_counts() {
        let mut t = table2_tracker();
        t.mark_executed(&[0, 0, 1]); // <A.1, B.1, C.3>
        t.mark_executed(&[1, 0, 1]); // <A.2, B.1, C.3>
                                     // "we get 4 for C.1, 3 for A.1 and A.2, and 2 for each B.1 and C.3"
        assert_eq!(t.pending_count((2, 0)), 4); // C.1
        assert_eq!(t.pending_count((0, 0)), 3); // A.1
        assert_eq!(t.pending_count((0, 1)), 3); // A.2
        assert_eq!(t.pending_count((1, 0)), 2); // B.1
        assert_eq!(t.pending_count((2, 1)), 2); // C.3
    }

    #[test]
    fn paper_eviction_example_executable_counts() {
        let mut t = table2_tracker();
        t.mark_executed(&[0, 0, 1]);
        t.mark_executed(&[1, 0, 1]);
        // Cache: A.1, A.2 (rel0: {0,1}), B.1 (rel1: {0}), C.3 (rel2: {1}),
        // incoming C.1 (rel2, 0).
        let cached = vec![vec![0, 1], vec![0], vec![1]];
        let candidates = [(0usize, 0u32), (0, 1), (1, 0), (2, 1)];
        let counts = t.executable_counts(&cached, Some((2, 0)), &candidates);
        // "1 for each A.1 and A.2, and 2 for B.1 ... but 0 for C.3"
        assert_eq!(counts, vec![1, 1, 2, 0]);
    }

    #[test]
    fn runnable_with_lists_new_combinations() {
        let mut t = table2_tracker();
        t.mark_executed(&[0, 0, 1]);
        t.mark_executed(&[1, 0, 1]);
        let cached = vec![vec![0, 1], vec![0], vec![1]];
        // C.1 arrives: runnable = {<A.1,B.1,C.1>, <A.2,B.1,C.1>}.
        let runnable = t.runnable_with(&cached, (2, 0));
        assert_eq!(runnable, vec![vec![0, 0, 0], vec![1, 0, 0]]);
        // C.3 "arrives" again: both its cached combos already executed.
        assert!(t.runnable_with(&cached, (2, 1)).is_empty());
    }

    #[test]
    fn completes_after_all_subplans() {
        let mut t = SubplanTracker::new(&[2, 1]);
        t.mark_executed(&[0, 0]);
        assert!(!t.is_complete());
        t.mark_executed(&[1, 0]);
        assert!(t.is_complete());
        assert_eq!(t.pending_objects(), Vec::<RelSeg>::new());
    }

    #[test]
    fn pruning_removes_whole_slices() {
        // The §5.2.4 example: 4 tables × 10 segments = 10⁴ subplans;
        // pruning one object removes 10³.
        let mut t = SubplanTracker::new(&[10, 10, 10, 10]);
        assert_eq!(t.total_live_subplans(), 10_000);
        let removed = t.prune((0, 3));
        assert_eq!(removed, 1_000);
        assert_eq!(t.total_live_subplans(), 9_000);
        assert!(!t.is_alive((0, 3)));
        assert_eq!(t.pending_count((0, 3)), 0);
        // Re-pruning is a no-op.
        assert_eq!(t.prune((0, 3)), 0);
    }

    #[test]
    fn pruning_adjusts_executed_bookkeeping() {
        let mut t = table2_tracker();
        t.mark_executed(&[0, 0, 0]);
        t.mark_executed(&[0, 1, 0]);
        // Prune C.0: both executed combos contained it.
        let removed = t.prune((2, 0));
        // Pending combos with C.0 were 4 − 2 executed = 2.
        assert_eq!(removed, 2);
        assert_eq!(t.executed_count(), 0);
        assert_eq!(t.total_live_subplans(), 4);
        assert_eq!(t.pending_count((0, 0)), 2);
        // B.0's executed-per-object count was rolled back too.
        assert_eq!(t.pending_count((1, 0)), 2);
    }

    #[test]
    fn pending_objects_tracks_progress() {
        let mut t = SubplanTracker::new(&[2, 1]);
        assert_eq!(t.pending_objects().len(), 3);
        t.mark_executed(&[0, 0]);
        // A.0 is exhausted; A.1 and B.0 still pending.
        assert_eq!(t.pending_objects(), vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let combo = vec![95, 22, 7, 0, 1, 65_535];
        let key = SubplanTracker::pack(&combo);
        assert_eq!(SubplanTracker::unpack(key, 6), combo);
    }

    #[test]
    #[should_panic(expected = "zero segments")]
    fn zero_segment_relation_rejected() {
        SubplanTracker::new(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "relations")]
    fn too_many_relations_rejected() {
        SubplanTracker::new(&[1; 9]);
    }

    #[test]
    #[should_panic(expected = "pruned segment")]
    fn executing_pruned_combo_panics() {
        let mut t = table2_tracker();
        t.prune((0, 0));
        t.mark_executed(&[0, 0, 0]);
    }

    #[test]
    fn single_relation_scan_degenerates() {
        // A pure scan: every segment is its own subplan.
        let mut t = SubplanTracker::new(&[5]);
        assert_eq!(t.total_live_subplans(), 5);
        for s in 0..5 {
            t.mark_executed(&[s]);
        }
        assert!(t.is_complete());
    }
}
