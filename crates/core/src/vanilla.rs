//! The pull-based baseline: vanilla PostgreSQL's execution model.
//!
//! Classic optimize-then-execute: the engine fetches relations strictly
//! in the optimizer's plan order, one segment at a time, requesting the
//! next segment only after processing the current one — the access
//! pattern §3.2 shows collapsing on a shared CSD (every pair of
//! consecutive requests from a client can be separated by a full round
//! of group switches, giving the `S × C × D` blow-up of Figure 4).
//!
//! Each object traverses the FUSE interposition layer (charged per
//! Table 3); scans and hash builds are charged as segments arrive, and
//! the final result is computed with the real left-deep binary hash join
//! over the fetched data.

use std::sync::Arc;

use skipper_csd::ObjectId;
use skipper_datagen::Dataset;
use skipper_relational::ops::{binary, scan};
use skipper_relational::query::QuerySpec;
use skipper_relational::segment::Segment;
use skipper_relational::tuple::Row;
use skipper_relational::value::Value;

use crate::config::CostModel;
use crate::engine::{EngineStats, QueryEngine, Reaction};
use crate::proxy::ClientProxy;

/// Pull-based, plan-ordered baseline engine.
pub struct VanillaEngine {
    spec: QuerySpec,
    proxy: ClientProxy,
    cost: CostModel,
    scales: Vec<f64>,
    /// The strict fetch sequence (plan order × segment order).
    sequence: Vec<ObjectId>,
    next: usize,
    /// Received segments per query relation.
    received: Vec<Vec<Arc<Segment>>>,
    stats: EngineStats,
    finished: bool,
    result: Vec<(Row, Vec<Value>)>,
}

impl VanillaEngine {
    /// Builds the baseline engine for `tenant` running `spec` over
    /// `dataset`.
    pub fn new(tenant: u16, dataset: &Dataset, spec: QuerySpec, cost: CostModel) -> Self {
        spec.validate();
        let rel_tables = dataset.query_table_indexes(&spec);
        let mut scales = Vec::new();
        let mut seg_counts = Vec::new();
        for &t in &rel_tables {
            let def = dataset.catalog.table(t);
            let phys = dataset.segments[t]
                .first()
                .map(|s| s.len().max(1))
                .unwrap_or(1) as f64;
            scales.push(def.logical_rows_per_segment as f64 / phys);
            seg_counts.push(def.segment_count);
        }
        let proxy = ClientProxy::new(tenant, rel_tables.iter().map(|&t| t as u16).collect());
        // Pull order: plan order, each relation's segments in file order —
        // "the database explicitly requests segments in an order
        // determined by the query plan".
        let sequence: Vec<ObjectId> = spec
            .plan_order
            .iter()
            .flat_map(|&rel| (0..seg_counts[rel]).map(move |s| (rel, s)))
            .map(|(rel, seg)| proxy.object_id((rel, seg)))
            .collect();
        let received = vec![Vec::new(); spec.num_relations()];
        VanillaEngine {
            spec,
            proxy,
            cost,
            scales,
            sequence,
            next: 0,
            received,
            stats: EngineStats::default(),
            finished: false,
            result: Vec::new(),
        }
    }

    /// Objects this query will fetch in total.
    pub fn total_objects(&self) -> usize {
        self.sequence.len()
    }
}

impl QueryEngine for VanillaEngine {
    fn name(&self) -> &'static str {
        "vanilla"
    }

    fn start(&mut self) -> Vec<ObjectId> {
        // Pull-based: exactly one outstanding request.
        self.stats.gets_issued = 1;
        self.next = 1;
        vec![self.sequence[0]]
    }

    fn on_object(&mut self, object: ObjectId, payload: &Arc<Segment>) -> Reaction {
        assert!(!self.finished, "delivery after completion");
        assert_eq!(
            object,
            self.sequence[self.next - 1],
            "pull-based delivery out of order"
        );
        let rel = self.proxy.rel_of(object).expect("own delivery");
        self.stats.objects_received += 1;
        self.received[rel].push(payload.clone());

        // FUSE traversal + scan, charged at logical scale.
        let scale = self.scales[rel];
        let mut processing = self.cost.fuse_charge();
        self.stats.scanned_tuples += payload.len() as u64;
        processing += self
            .cost
            .scaled(payload.len() as u64, scale, self.cost.scan_ns_per_tuple);

        // Hash-build (build-side relations) or probe (the last plan
        // relation) over the filter survivors.
        let kept = scan::count_matching(payload, self.spec.filters[rel].as_ref()) as u64;
        let is_probe_side = *self.spec.plan_order.last().unwrap() == rel;
        if is_probe_side {
            self.stats.probe_ops += kept;
            processing += self.cost.scaled(kept, scale, self.cost.probe_ns_per_op);
        } else {
            self.stats.built_tuples += kept;
            processing += self.cost.scaled(kept, scale, self.cost.build_ns_per_tuple);
        }

        let mut requests = Vec::new();
        if self.next < self.sequence.len() {
            requests.push(self.sequence[self.next]);
            self.next += 1;
            self.stats.gets_issued += 1;
        } else {
            // All inputs resident: run the real blocking join for the
            // result and charge the emit cost.
            let slices: Vec<Vec<Segment>> = self
                .received
                .iter()
                .map(|segs| segs.iter().map(|s| Segment::clone(s)).collect())
                .collect();
            let refs: Vec<&[Segment]> = slices.iter().map(|v| v.as_slice()).collect();
            let (agg, work) = binary::execute_left_deep(&self.spec, &refs);
            self.stats.emitted_rows += work.emitted as u64;
            processing += self.cost.scaled(
                work.emitted as u64,
                self.scales[self.spec.driver],
                self.cost.emit_ns_per_row,
            ) + self.cost.agg_finish;
            self.result = agg.finish();
            self.finished = true;
        }

        Reaction {
            processing,
            requests,
            finished: self.finished,
        }
    }

    fn is_finished(&self) -> bool {
        self.finished
    }

    fn result(&self) -> Vec<(Row, Vec<Value>)> {
        self.result.clone()
    }

    fn stats(&self) -> EngineStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipper_datagen::{tpch, GenConfig};
    use skipper_relational::ops::reference;
    use skipper_relational::query::results_approx_eq;
    use skipper_sim::SimDuration;

    fn mini() -> (Dataset, QuerySpec) {
        let cfg = GenConfig::new(9, 4).with_phys_divisor(100_000);
        let ds = tpch::dataset(&cfg);
        let spec = tpch::q12(&ds);
        (ds, spec)
    }

    fn drive(engine: &mut VanillaEngine, ds: &Dataset) -> (u32, SimDuration) {
        let mut queue = engine.start();
        let mut served = 0;
        let mut cpu = SimDuration::ZERO;
        while let Some(next) = queue.pop() {
            assert!(queue.is_empty(), "vanilla must have one outstanding GET");
            let payload = ds.segments[next.table as usize][next.segment as usize].clone();
            let r = engine.on_object(next, &payload);
            cpu += r.processing;
            served += 1;
            queue.extend(r.requests);
            if r.finished {
                break;
            }
        }
        (served, cpu)
    }

    #[test]
    fn fetches_in_plan_order_one_at_a_time() {
        let (ds, spec) = mini();
        let mut engine = VanillaEngine::new(0, &ds, spec.clone(), CostModel::paper_calibrated());
        let orders_segs = ds
            .catalog
            .table(ds.catalog.index_of("orders").unwrap())
            .segment_count;
        // First request must be orders segment 0 (plan order: orders
        // before lineitem), then orders 1..; lineitem only after.
        let first = engine.start();
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].segment, 0);
        let seq = engine.sequence.clone();
        for (i, o) in seq.iter().enumerate() {
            if (i as u32) < orders_segs {
                assert_eq!(o.table as usize, ds.catalog.index_of("orders").unwrap());
            } else {
                assert_eq!(o.table as usize, ds.catalog.index_of("lineitem").unwrap());
            }
        }
    }

    #[test]
    fn result_matches_reference() {
        let (ds, spec) = mini();
        let mut engine = VanillaEngine::new(0, &ds, spec.clone(), CostModel::paper_calibrated());
        let (served, cpu) = drive(&mut engine, &ds);
        assert!(engine.is_finished());
        assert_eq!(served, ds.objects_for_query(&spec));
        assert!(!cpu.is_zero());
        let tables = ds.materialize_query_tables(&spec);
        let slices: Vec<&[Segment]> = tables.iter().map(|t| t.as_slice()).collect();
        assert!(results_approx_eq(
            &engine.result(),
            &reference::execute(&spec, &slices),
            1e-9
        ));
    }

    #[test]
    fn vanilla_never_reissues() {
        let (ds, spec) = mini();
        let mut engine = VanillaEngine::new(0, &ds, spec.clone(), CostModel::paper_calibrated());
        drive(&mut engine, &ds);
        let stats = engine.stats();
        assert_eq!(stats.reissues, 0);
        assert_eq!(stats.gets_issued, ds.objects_for_query(&spec) as u64);
    }

    #[test]
    fn fuse_charge_applies_per_object() {
        let (ds, spec) = mini();
        let with_fuse = {
            let mut e = VanillaEngine::new(0, &ds, spec.clone(), CostModel::paper_calibrated());
            drive(&mut e, &ds).1
        };
        let without = {
            let mut e = VanillaEngine::new(
                0,
                &ds,
                spec.clone(),
                CostModel::paper_calibrated().without_fuse(),
            );
            drive(&mut e, &ds).1
        };
        let diff = with_fuse - without;
        let expected = CostModel::paper_calibrated().fuse_overhead_per_object
            * ds.objects_for_query(&spec) as u64;
        assert_eq!(diff, expected);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn out_of_order_delivery_rejected() {
        let (ds, spec) = mini();
        let mut engine = VanillaEngine::new(0, &ds, spec, CostModel::paper_calibrated());
        let _ = engine.start();
        // Deliver something that was never requested first.
        let bogus = *engine.sequence.last().unwrap();
        let payload = ds.segments[bogus.table as usize][bogus.segment as usize].clone();
        engine.on_object(bogus, &payload);
    }
}
