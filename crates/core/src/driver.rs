//! Backward-compatible facade over the layered runtime.
//!
//! The seed repository exposed the whole execution stack through one
//! monolithic `driver` module. That stack now lives in [`crate::runtime`],
//! split into workload / engine / driver layers; this module re-exports
//! the original names (`Scenario`, `EngineKind`, `RunResult`,
//! `QueryRecord`) so existing experiments, examples, and tests keep
//! compiling unchanged.
//!
//! New code should prefer `skipper_core::runtime`, which additionally
//! offers per-tenant [`Workload`]s, pluggable
//! [`EngineFactory`](crate::runtime::EngineFactory)s, and open arrival
//! processes.
//!
//! [`Workload`]: crate::runtime::Workload

pub use crate::runtime::{EngineKind, QueryRecord, RunResult, Scenario};
