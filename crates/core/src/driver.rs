//! Multi-tenant simulation driver.
//!
//! Wires N client engines (one database VM each) to one shared CSD
//! through the deterministic event loop, reproducing the paper's testbed
//! topology: every client owns a full copy of its benchmark dataset,
//! striped over the device per the configured [`LayoutPolicy`]; clients
//! run their query sequences; the device schedules group switches per the
//! configured policy. The driver records, per query: start/end times,
//! charged processing time, blocked-time attribution against the device's
//! activity trace (switch vs transfer stalls — Figure 9), GET counts
//! (Figures 11b/11c), and the actual query results (cross-checked against
//! the reference executor in the test suite).

use std::collections::VecDeque;
use std::sync::Arc;

use skipper_csd::{
    CsdConfig, CsdDevice, IntraGroupOrder, Layout, LayoutPolicy, ObjectId, ObjectStore, QueryId,
    SchedPolicy,
};
use skipper_csd::metrics::DeviceMetrics;
use skipper_datagen::Dataset;
use skipper_relational::query::QuerySpec;
use skipper_relational::segment::Segment;
use skipper_relational::tuple::Row;
use skipper_relational::value::Value;
use skipper_sim::trace::Span;
use skipper_sim::{ActivityTrace, Attribution, EventQueue, SimDuration, SimTime};

use crate::cache::EvictionPolicy;
use crate::config::CostModel;
use crate::engine::{EngineStats, QueryEngine};
use crate::state_manager::SkipperEngine;
use crate::vanilla::VanillaEngine;

/// Which execution engine the clients run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// Pull-based baseline (vanilla PostgreSQL).
    Vanilla,
    /// Skipper's cache-aware MJoin.
    Skipper,
}

impl EngineKind {
    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Vanilla => "vanilla",
            EngineKind::Skipper => "skipper",
        }
    }
}

/// A complete experiment description; build with the fluent setters and
/// [`Scenario::run`].
pub struct Scenario {
    base: Arc<Dataset>,
    n_clients: usize,
    shared_queries: Vec<QuerySpec>,
    custom_clients: Option<Vec<(Arc<Dataset>, Vec<QuerySpec>)>>,
    engine: EngineKind,
    sched: Option<SchedPolicy>,
    intra: IntraGroupOrder,
    layout: LayoutPolicy,
    switch_latency: SimDuration,
    bandwidth: f64,
    cache_bytes: u64,
    eviction: EvictionPolicy,
    cost: CostModel,
    prune_empty: bool,
    parallel_streams: u32,
    stagger: SimDuration,
}

impl Scenario {
    /// Starts a scenario over a shared dataset with paper-default knobs:
    /// one client, Skipper engine, rank-based scheduling, semantic
    /// intra-group ordering, one-group-per-client layout, 10 s switches,
    /// ~110 MB/s transfers, 30 GiB cache, maximal-progress eviction.
    pub fn new(dataset: Dataset) -> Self {
        Scenario {
            base: Arc::new(dataset),
            n_clients: 1,
            shared_queries: Vec::new(),
            custom_clients: None,
            engine: EngineKind::Skipper,
            sched: None,
            intra: IntraGroupOrder::SemanticRoundRobin,
            layout: LayoutPolicy::OneClientPerGroup,
            switch_latency: SimDuration::from_secs(10),
            bandwidth: 110.0 * 1024.0 * 1024.0,
            cache_bytes: 30 << 30,
            eviction: EvictionPolicy::MaximalProgress,
            cost: CostModel::paper_calibrated(),
            prune_empty: false,
            parallel_streams: 1,
            stagger: SimDuration::ZERO,
        }
    }

    /// Number of identical clients (each gets its own copy of the
    /// dataset on the device, like the paper's per-VM databases).
    pub fn clients(mut self, n: usize) -> Self {
        assert!(n > 0, "at least one client");
        self.n_clients = n;
        self
    }

    /// Every client runs `query` `times` times, back to back.
    pub fn repeat_query(mut self, query: QuerySpec, times: usize) -> Self {
        self.shared_queries = std::iter::repeat_with(|| query.clone()).take(times).collect();
        self
    }

    /// Every client runs this query sequence.
    pub fn queries(mut self, queries: Vec<QuerySpec>) -> Self {
        self.shared_queries = queries;
        self
    }

    /// Heterogeneous tenants: explicit `(dataset, query sequence)` per
    /// client (the Figure 8 mixed workload). Overrides
    /// [`Scenario::clients`]/[`Scenario::queries`].
    pub fn custom_clients(mut self, clients: Vec<(Arc<Dataset>, Vec<QuerySpec>)>) -> Self {
        assert!(!clients.is_empty());
        self.custom_clients = Some(clients);
        self
    }

    /// Execution engine.
    pub fn engine(mut self, kind: EngineKind) -> Self {
        self.engine = kind;
        self
    }

    /// CSD group-switch scheduling policy. When not set, the device
    /// defaults to the engine-appropriate policy: stock CSDs schedule
    /// object-FCFS (what vanilla PostgreSQL runs against, §4.4), while
    /// Skipper deploys its rank-based query-aware scheduler.
    pub fn scheduler(mut self, p: SchedPolicy) -> Self {
        self.sched = Some(p);
        self
    }

    /// Intra-group request ordering.
    pub fn intra_order(mut self, o: IntraGroupOrder) -> Self {
        self.intra = o;
        self
    }

    /// Data placement across disk groups.
    pub fn layout(mut self, l: LayoutPolicy) -> Self {
        self.layout = l;
        self
    }

    /// Group-switch latency `S`.
    pub fn switch_latency(mut self, s: SimDuration) -> Self {
        self.switch_latency = s;
        self
    }

    /// Object streaming bandwidth in bytes/s (≤ 0 ⇒ free transfers).
    pub fn bandwidth(mut self, bytes_per_sec: f64) -> Self {
        self.bandwidth = bytes_per_sec;
        self
    }

    /// MJoin buffer-cache capacity in bytes.
    pub fn cache_bytes(mut self, bytes: u64) -> Self {
        self.cache_bytes = bytes;
        self
    }

    /// MJoin cache-eviction policy.
    pub fn eviction(mut self, p: EvictionPolicy) -> Self {
        self.eviction = p;
        self
    }

    /// CPU cost model.
    pub fn cost(mut self, c: CostModel) -> Self {
        self.cost = c;
        self
    }

    /// Enables the §5.2.4 subplan-pruning optimization.
    pub fn prune_empty_objects(mut self, on: bool) -> Self {
        self.prune_empty = on;
        self
    }

    /// Concurrent transfer streams while a group is loaded (default 1,
    /// the paper's serializing middleware; >1 models the §5.2.1
    /// "parallelize servicing within a group" improvement).
    pub fn parallel_streams(mut self, n: u32) -> Self {
        assert!(n >= 1);
        self.parallel_streams = n;
        self
    }

    /// Staggers client start times: client `i` submits its first query at
    /// `i × delay` (default: everyone at t = 0). This is the arrival-gap
    /// setup of the §4.4 `K` derivation, where query sets arrive `s`
    /// switches apart.
    pub fn stagger(mut self, delay: SimDuration) -> Self {
        self.stagger = delay;
        self
    }

    /// Executes the scenario to completion, returning all measurements.
    pub fn run(self) -> RunResult {
        let clients: Vec<(Arc<Dataset>, Vec<QuerySpec>)> = match self.custom_clients {
            Some(c) => c,
            None => (0..self.n_clients)
                .map(|_| (Arc::clone(&self.base), self.shared_queries.clone()))
                .collect(),
        };
        assert!(
            clients.iter().all(|(_, qs)| !qs.is_empty()),
            "every client needs at least one query"
        );

        // Place every tenant's full dataset on the device.
        let tenant_objects: Vec<Vec<ObjectId>> = clients
            .iter()
            .enumerate()
            .map(|(tenant, (ds, _))| {
                (0..ds.catalog.len())
                    .flat_map(|t| {
                        (0..ds.catalog.table(t).segment_count)
                            .map(move |s| ObjectId::new(tenant as u16, t as u16, s))
                    })
                    .collect()
            })
            .collect();
        let layout = Layout::build(self.layout, &tenant_objects);
        let mut store: ObjectStore<Arc<Segment>> = ObjectStore::new();
        for (tenant, (ds, _)) in clients.iter().enumerate() {
            for t in 0..ds.catalog.len() {
                let def = ds.catalog.table(t);
                for s in 0..def.segment_count {
                    let id = ObjectId::new(tenant as u16, t as u16, s);
                    store.put_with_layout(
                        id,
                        def.logical_bytes_per_segment,
                        &layout,
                        Arc::clone(&ds.segments[t][s as usize]),
                    );
                }
            }
        }
        let sched = self.sched.unwrap_or(match self.engine {
            EngineKind::Vanilla => SchedPolicy::FcfsObject,
            EngineKind::Skipper => SchedPolicy::RankBased,
        });
        let device = CsdDevice::new(
            CsdConfig {
                switch_latency: self.switch_latency,
                bandwidth_bytes_per_sec: self.bandwidth,
                initial_load_free: true,
                parallel_streams: self.parallel_streams,
            },
            store,
            sched.build(),
            self.intra,
        );

        let driver = Driver {
            device,
            clients: clients
                .into_iter()
                .map(|(dataset, queries)| ClientState {
                    dataset,
                    remaining: queries.into(),
                    engine: None,
                    qseq: 0,
                    inbox: VecDeque::new(),
                    busy: false,
                    pending_after: None,
                    draft: RecordDraft::default(),
                    records: Vec::new(),
                })
                .collect(),
            events: EventQueue::new(),
            device_event_pending: false,
            engine_kind: self.engine,
            cache_bytes: self.cache_bytes,
            eviction: self.eviction,
            cost: self.cost,
            prune_empty: self.prune_empty,
            stagger: self.stagger,
        };
        driver.run()
    }
}

/// One query's measurements.
#[derive(Clone, Debug)]
pub struct QueryRecord {
    /// Query name.
    pub query: String,
    /// Client index.
    pub client: usize,
    /// Per-client query sequence number.
    pub seq: u32,
    /// Query start (submission of the first GET batch).
    pub start: SimTime,
    /// Query completion (final processing finished).
    pub end: SimTime,
    /// Charged CPU (processing) time.
    pub processing: SimDuration,
    /// Blocked time attributed against the device trace: switch stalls,
    /// transfer stalls, device-idle waits.
    pub stalls: Attribution,
    /// Engine work counters (GETs, reissues, tuples, subplans).
    pub stats: EngineStats,
    /// The query result, sorted by group key.
    pub result: Vec<(Row, Vec<Value>)>,
}

impl QueryRecord {
    /// End-to-end execution time.
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// Everything measured by one [`Scenario::run`].
pub struct RunResult {
    /// Per-client query records, in execution order.
    pub clients: Vec<Vec<QueryRecord>>,
    /// Device counters (switches, objects served, bytes).
    pub device: DeviceMetrics,
    /// The device's activity spans (switches/transfers), in time order.
    pub device_spans: Vec<Span>,
    /// Virtual time at which the last event fired.
    pub makespan: SimTime,
    /// Scheduler label used.
    pub scheduler: &'static str,
}

impl RunResult {
    /// Iterator over every query record.
    pub fn records(&self) -> impl Iterator<Item = &QueryRecord> {
        self.clients.iter().flatten()
    }

    /// Mean per-query execution time in seconds (the paper's
    /// "average execution time" y-axis).
    pub fn mean_query_secs(&self) -> f64 {
        let (mut total, mut n) = (0.0, 0u32);
        for r in self.records() {
            total += r.duration().as_secs_f64();
            n += 1;
        }
        if n == 0 {
            0.0
        } else {
            total / n as f64
        }
    }

    /// Sum of all query execution times in seconds ("cumulative
    /// execution time").
    pub fn cumulative_secs(&self) -> f64 {
        self.records().map(|r| r.duration().as_secs_f64()).sum()
    }

    /// Total GETs issued across all queries (the Figure 11 right axis).
    pub fn total_gets(&self) -> u64 {
        self.records().map(|r| r.stats.gets_issued).sum()
    }

    /// Per-query stretches against an ideal (single-tenant) time.
    pub fn stretches(&self, ideal: SimDuration) -> Vec<f64> {
        self.records()
            .map(|r| skipper_sim::stats::stretch(r.duration(), ideal))
            .collect()
    }

    /// An ASCII Gantt strip of the device's activity over the whole run:
    /// `S` = group switch, digits = transfer to that client, `.` = idle.
    pub fn timeline(&self, width: usize) -> String {
        let trace = ActivityTrace::from_spans(self.device_spans.iter().copied());
        skipper_sim::timeline::render(&trace, SimTime::ZERO, self.makespan, width)
    }
}

#[derive(Default)]
struct RecordDraft {
    query_name: String,
    start: SimTime,
    processing: SimDuration,
    blocked_from: Option<SimTime>,
    blocked: Vec<(SimTime, SimTime)>,
}

struct ClientState {
    dataset: Arc<Dataset>,
    remaining: VecDeque<QuerySpec>,
    engine: Option<Box<dyn QueryEngine>>,
    qseq: u32,
    inbox: VecDeque<(ObjectId, Arc<Segment>)>,
    busy: bool,
    /// Requests + finished flag from the in-flight `on_object`, applied
    /// when processing completes.
    pending_after: Option<(Vec<ObjectId>, bool)>,
    draft: RecordDraft,
    records: Vec<PendingRecord>,
}

#[derive(Clone, Copy, Debug)]
enum Event {
    Device,
    ClientReady(usize),
    ClientStart(usize),
}

struct Driver {
    device: CsdDevice<Arc<Segment>>,
    clients: Vec<ClientState>,
    events: EventQueue<Event>,
    device_event_pending: bool,
    engine_kind: EngineKind,
    cache_bytes: u64,
    eviction: EvictionPolicy,
    cost: CostModel,
    prune_empty: bool,
    stagger: SimDuration,
}

impl Driver {
    fn run(mut self) -> RunResult {
        let now = SimTime::ZERO;
        for c in 0..self.clients.len() {
            if self.stagger.is_zero() {
                self.start_next_query(c, now);
            } else {
                self.events
                    .schedule(now + self.stagger * c as u64, Event::ClientStart(c));
            }
        }
        self.kick_device(now);

        while let Some((t, ev)) = self.events.pop() {
            match ev {
                Event::Device => {
                    self.device_event_pending = false;
                    if let Some(delivery) = self.device.complete(t) {
                        self.route_delivery(t, delivery.client, delivery.query, delivery.object, delivery.payload);
                    }
                    self.kick_device(t);
                }
                Event::ClientReady(c) => self.client_ready(c, t),
                Event::ClientStart(c) => {
                    self.start_next_query(c, t);
                    self.kick_device(t);
                }
            }
        }

        let makespan = self.events.now();
        for (idx, client) in self.clients.iter().enumerate() {
            assert!(
                client.remaining.is_empty() && client.engine.is_none(),
                "client {idx} did not finish its workload (simulation deadlock)"
            );
        }
        // Post-hoc stall attribution against the device trace.
        let trace = self.device.trace();
        let mut clients_out = Vec::with_capacity(self.clients.len());
        for client in &mut self.clients {
            for rec in &mut client.records {
                let mut attr = Attribution::default();
                for &(a, b) in &rec.blocked_intervals {
                    attr.merge(trace.attribute(a, b));
                }
                rec.record.stalls = attr;
            }
            clients_out.push(
                client
                    .records
                    .drain(..)
                    .map(|r| r.record)
                    .collect::<Vec<_>>(),
            );
        }
        RunResult {
            clients: clients_out,
            device: self.device.metrics().clone(),
            device_spans: self.device.trace().spans().to_vec(),
            makespan,
            scheduler: self.device.scheduler_name(),
        }
    }

    fn build_engine(&self, c: usize, spec: QuerySpec) -> Box<dyn QueryEngine> {
        let ds = &self.clients[c].dataset;
        match self.engine_kind {
            EngineKind::Vanilla => Box::new(VanillaEngine::new(c as u16, ds, spec, self.cost)),
            EngineKind::Skipper => Box::new(SkipperEngine::new(
                c as u16,
                ds,
                spec,
                self.cache_bytes,
                self.eviction,
                self.cost,
                self.prune_empty,
            )),
        }
    }

    fn start_next_query(&mut self, c: usize, now: SimTime) {
        let Some(spec) = self.clients[c].remaining.pop_front() else {
            return;
        };
        let query_name = spec.name.clone();
        let mut engine = self.build_engine(c, spec);
        let requests = engine.start();
        let client = &mut self.clients[c];
        client.engine = Some(engine);
        client.draft = RecordDraft {
            query_name,
            start: now,
            processing: SimDuration::ZERO,
            blocked_from: Some(now),
            blocked: Vec::new(),
        };
        let qid = QueryId::new(c as u16, client.qseq);
        self.device.submit(now, c, qid, &requests);
    }

    fn kick_device(&mut self, now: SimTime) {
        if self.device_event_pending {
            return;
        }
        if let Some(t) = self.device.kick(now) {
            self.events.schedule(t, Event::Device);
            self.device_event_pending = true;
        }
    }

    fn route_delivery(
        &mut self,
        now: SimTime,
        c: usize,
        query: QueryId,
        object: ObjectId,
        payload: Arc<Segment>,
    ) {
        let client = &mut self.clients[c];
        let current = client
            .engine
            .as_ref()
            .map(|e| !e.is_finished() && query.seq == client.qseq)
            .unwrap_or(false);
        if !current {
            return; // stale delivery for a completed query
        }
        client.inbox.push_back((object, payload));
        self.try_process(c, now);
    }

    fn try_process(&mut self, c: usize, now: SimTime) {
        let client = &mut self.clients[c];
        if client.busy || client.engine.is_none() {
            return;
        }
        let Some((object, payload)) = client.inbox.pop_front() else {
            return;
        };
        if let Some(from) = client.draft.blocked_from.take() {
            if now > from {
                client.draft.blocked.push((from, now));
            }
        }
        let reaction = client
            .engine
            .as_mut()
            .expect("engine present")
            .on_object(object, &payload);
        client.draft.processing += reaction.processing;
        client.busy = true;
        client.pending_after = Some((reaction.requests, reaction.finished));
        self.events
            .schedule(now + reaction.processing, Event::ClientReady(c));
    }

    fn client_ready(&mut self, c: usize, now: SimTime) {
        let (requests, finished) = self.clients[c]
            .pending_after
            .take()
            .expect("client_ready without reaction");
        self.clients[c].busy = false;
        if !requests.is_empty() {
            let qid = QueryId::new(c as u16, self.clients[c].qseq);
            self.device.submit(now, c, qid, &requests);
            self.kick_device(now);
        }
        if finished {
            self.finish_query(c, now);
        } else {
            let client = &mut self.clients[c];
            if client.inbox.is_empty() {
                client.draft.blocked_from = Some(now);
            } else {
                self.try_process(c, now);
            }
        }
    }

    fn finish_query(&mut self, c: usize, now: SimTime) {
        let client = &mut self.clients[c];
        let engine = client.engine.take().expect("finishing without engine");
        let draft = std::mem::take(&mut client.draft);
        client.records.push(PendingRecord {
            record: QueryRecord {
                query: draft.query_name.clone(),
                client: c,
                seq: client.qseq,
                start: draft.start,
                end: now,
                processing: draft.processing,
                stalls: Attribution::default(),
                stats: engine.stats(),
                result: engine.result(),
            },
            blocked_intervals: draft.blocked,
        });
        client.inbox.clear();
        client.qseq += 1;
        self.start_next_query(c, now);
        self.kick_device(now);
    }
}

struct PendingRecord {
    record: QueryRecord,
    blocked_intervals: Vec<(SimTime, SimTime)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipper_datagen::{tpch, GenConfig};
    use skipper_relational::ops::reference;
    use skipper_relational::query::results_approx_eq;

    /// SF-4 TPC-H: lineitem 4 + orders 1 = 5 objects per Q12 client.
    fn mini_dataset() -> Dataset {
        tpch::dataset(&GenConfig::new(21, 4).with_phys_divisor(100_000))
    }

    fn gib(n: u64) -> u64 {
        n << 30
    }

    #[test]
    fn single_skipper_client_no_switches() {
        let ds = mini_dataset();
        let q = tpch::q12(&ds);
        let res = Scenario::new(ds)
            .engine(EngineKind::Skipper)
            .repeat_query(q, 1)
            .cache_bytes(gib(10))
            .run();
        assert_eq!(res.device.group_switches, 0);
        assert_eq!(res.clients.len(), 1);
        let rec = &res.clients[0][0];
        assert!(rec.duration().as_secs_f64() > 0.0);
        assert!(rec.stalls.switching.is_zero());
    }

    #[test]
    fn results_match_reference_for_both_engines() {
        let ds = mini_dataset();
        let q = tpch::q12(&ds);
        let tables = ds.materialize_query_tables(&q);
        let slices: Vec<&[Segment]> = tables.iter().map(|t| t.as_slice()).collect();
        let expected = reference::execute(&q, &slices);

        for kind in [EngineKind::Vanilla, EngineKind::Skipper] {
            let res = Scenario::new(ds.clone())
                .clients(2)
                .engine(kind)
                .repeat_query(q.clone(), 1)
                .cache_bytes(gib(10))
                .run();
            for rec in res.records() {
                assert!(
                    results_approx_eq(&rec.result, &expected, 1e-9),
                    "{} produced a wrong result",
                    kind.label()
                );
            }
        }
    }

    #[test]
    fn vanilla_switch_count_scales_with_clients_times_objects() {
        // §3.2: "two consecutive requests from any PostgreSQL client are
        // separated by five group switches" — with C clients on private
        // groups, vanilla forces ≈ C×D switches.
        let ds = mini_dataset();
        let q = tpch::q12(&ds);
        let objects = ds.objects_for_query(&q) as u64; // 5
        let res = Scenario::new(ds)
            .clients(3)
            .engine(EngineKind::Vanilla)
            .repeat_query(q, 1)
            .run();
        let switches = res.device.group_switches;
        // Ideal batching would need ~C switches; vanilla needs ~C×D.
        assert!(
            switches >= 2 * objects,
            "expected ping-pong switching, got {switches}"
        );
    }

    #[test]
    fn skipper_switch_count_is_one_per_client_round() {
        let ds = mini_dataset();
        let q = tpch::q12(&ds);
        let res = Scenario::new(ds)
            .clients(3)
            .engine(EngineKind::Skipper)
            .cache_bytes(gib(10))
            .repeat_query(q, 1)
            .run();
        // All of a client's data is batched per residency: C-1 paid
        // switches for C clients (first load is free).
        assert_eq!(res.device.group_switches, 2);
    }

    #[test]
    fn skipper_beats_vanilla_with_multiple_clients() {
        let ds = mini_dataset();
        let q = tpch::q12(&ds);
        let vanilla = Scenario::new(ds.clone())
            .clients(3)
            .engine(EngineKind::Vanilla)
            .repeat_query(q.clone(), 1)
            .run();
        let skipper = Scenario::new(ds)
            .clients(3)
            .engine(EngineKind::Skipper)
            .cache_bytes(gib(10))
            .repeat_query(q, 1)
            .run();
        assert!(
            skipper.mean_query_secs() < vanilla.mean_query_secs(),
            "skipper {:.0}s !< vanilla {:.0}s",
            skipper.mean_query_secs(),
            vanilla.mean_query_secs()
        );
    }

    #[test]
    fn all_in_one_layout_eliminates_switches() {
        let ds = mini_dataset();
        let q = tpch::q12(&ds);
        let res = Scenario::new(ds)
            .clients(3)
            .engine(EngineKind::Vanilla)
            .layout(LayoutPolicy::AllInOne)
            .repeat_query(q, 1)
            .run();
        assert_eq!(res.device.group_switches, 0);
    }

    #[test]
    fn breakdown_covers_execution_time() {
        let ds = mini_dataset();
        let q = tpch::q12(&ds);
        let res = Scenario::new(ds)
            .clients(2)
            .engine(EngineKind::Vanilla)
            .repeat_query(q, 1)
            .run();
        for rec in res.records() {
            let total = rec.duration();
            let accounted = rec.processing + rec.stalls.total();
            let diff = total.as_secs_f64() - accounted.as_secs_f64();
            assert!(
                diff.abs() < 1e-3,
                "breakdown mismatch: total {total}, accounted {accounted}"
            );
        }
    }

    #[test]
    fn query_sequences_run_back_to_back() {
        let ds = mini_dataset();
        let q = tpch::q12(&ds);
        let res = Scenario::new(ds)
            .engine(EngineKind::Skipper)
            .cache_bytes(gib(10))
            .repeat_query(q, 3)
            .run();
        let recs = &res.clients[0];
        assert_eq!(recs.len(), 3);
        assert!(recs[0].end <= recs[1].start);
        assert!(recs[1].end <= recs[2].start);
        assert_eq!(recs[2].seq, 2);
    }

    #[test]
    fn deterministic_across_runs() {
        let build = || {
            let ds = mini_dataset();
            let q = tpch::q12(&ds);
            Scenario::new(ds)
                .clients(3)
                .engine(EngineKind::Skipper)
                .cache_bytes(gib(10))
                .repeat_query(q, 1)
                .run()
        };
        let a = build();
        let b = build();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.device.group_switches, b.device.group_switches);
        let ta: Vec<_> = a.records().map(|r| (r.start, r.end)).collect();
        let tb: Vec<_> = b.records().map(|r| (r.start, r.end)).collect();
        assert_eq!(ta, tb);
    }
}
