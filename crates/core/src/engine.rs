//! The client-engine abstraction shared by Skipper and the baseline.
//!
//! A [`QueryEngine`] is one query execution inside one tenant's database
//! VM. The simulation driver feeds it object deliveries and it responds
//! with a [`Reaction`]: how long the delivery took to process (charged to
//! virtual time) and which GETs to issue next — one at a time for the
//! pull-based baseline, everything upfront plus reissue cycles for
//! Skipper.

use std::sync::Arc;

use skipper_csd::ObjectId;
use skipper_relational::segment::Segment;
use skipper_relational::tuple::Row;
use skipper_relational::value::Value;
use skipper_sim::SimDuration;

/// The engine's response to one object delivery.
#[derive(Debug, Default)]
pub struct Reaction {
    /// Virtual CPU time consumed processing the delivery. The client is
    /// busy for this long; follow-up requests go out when it ends.
    pub processing: SimDuration,
    /// GET requests to submit after processing completes. Must be empty
    /// when `finished` is set — a finished query has nothing left to
    /// fetch, and the runtime's single fleet poke per reaction relies
    /// on it (enforced by the driver).
    pub requests: Vec<ObjectId>,
    /// True when the query finished with this delivery.
    pub finished: bool,
}

/// Work/behaviour counters exposed by every engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Total GET requests issued (initial + reissues) — the y-axis of
    /// Figures 11b/11c.
    pub gets_issued: u64,
    /// GETs beyond the first issue of each object (cache-thrash refetches).
    pub reissues: u64,
    /// Objects received.
    pub objects_received: u64,
    /// Physical tuples scanned.
    pub scanned_tuples: u64,
    /// Physical hash-table entries built.
    pub built_tuples: u64,
    /// Physical probe operations.
    pub probe_ops: u64,
    /// Physical joined rows emitted.
    pub emitted_rows: u64,
    /// Subplans executed (MJoin only).
    pub subplans_executed: u64,
    /// Objects pruned via the §5.2.4 optimization (MJoin only).
    pub pruned_objects: u64,
    /// Reissue cycles completed (MJoin only).
    pub cycles: u64,
}

/// One query execution against the CSD.
pub trait QueryEngine {
    /// Engine name for reports ("skipper" / "vanilla").
    fn name(&self) -> &'static str;

    /// The initial GET batch. Called exactly once, at query start.
    fn start(&mut self) -> Vec<ObjectId>;

    /// Handles one delivered object.
    fn on_object(&mut self, object: ObjectId, payload: &Arc<Segment>) -> Reaction;

    /// Whether the query has completed.
    fn is_finished(&self) -> bool;

    /// The final `(group key, aggregates)` rows, sorted by key.
    /// Meaningful only after [`QueryEngine::is_finished`].
    fn result(&self) -> Vec<(Row, Vec<Value>)>;

    /// Work counters.
    fn stats(&self) -> EngineStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reaction_default_is_inert() {
        let r = Reaction::default();
        assert!(r.processing.is_zero());
        assert!(r.requests.is_empty());
        assert!(!r.finished);
    }

    #[test]
    fn stats_default_zeroed() {
        assert_eq!(EngineStats::default().gets_issued, 0);
    }
}
