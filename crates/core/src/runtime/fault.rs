//! The deterministic fault plane: seeded shard failures, brown-outs,
//! and lost-wakeup injection.
//!
//! A production cold-storage fleet loses devices. [`FaultPlan`] is the
//! `Scenario`-level description of *when and how*: explicit episodes
//! plus seeded stochastic outage streams, expanded **at assembly time**
//! — exactly like [`ArrivalProcess`](super::ArrivalProcess) — into a
//! sorted list of concrete, timestamped [`FaultEpisode`]s. Nothing is
//! drawn during the run: the driver schedules every fault instant as a
//! first-class calendar event up front, so Sequential and Parallel
//! execution see identical fault timings and the safe-horizon
//! computation can treat fault instants as window barriers.
//!
//! Three episode kinds:
//!
//! * [`FaultEpisode::ShardDown`] — the shard crashes at `at` and
//!   recovers at `until`: its queue is evacuated (re-routed to
//!   surviving replicas or parked), in-flight transfers are aborted
//!   and retried, and the spun-up group is lost (the first load after
//!   recovery pays a full switch even under `initial_load_free`).
//! * [`FaultEpisode::Degraded`] — a brown-out: transfers *dispatched*
//!   inside `[at, until)` run at `bandwidth_factor` × the configured
//!   per-stream bandwidth (in-flight completion instants are already
//!   committed), so schedulers see honest completion times.
//! * [`FaultEpisode::DropWakeup`] — the shard's `nth` live wake-up
//!   notification is lost: the device's transfers still complete on
//!   time internally, but their deliveries are parked in the pump until
//!   a watchdog redelivers them `redeliver_after` later.
//!
//! Intervals on the same shard must not overlap (loud assembly-time
//! panic); an empty plan expands to nothing and leaves every run
//! byte-identical to a fault-free scenario.

use skipper_sim::rng::derive_seed;
use skipper_sim::{SimDuration, SimTime};

use super::workload::exponential_gap;

/// A concrete, timestamped fault episode — the expanded form a
/// [`FaultPlan`] produces at assembly time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultEpisode {
    /// Shard `shard` is down over `[at, until)`: queued requests are
    /// evacuated to surviving replicas (or parked until recovery when
    /// none is live), in-flight transfers are aborted and retried.
    ShardDown {
        /// Failing shard index.
        shard: usize,
        /// Crash instant.
        at: SimTime,
        /// Recovery instant (exclusive end of the outage).
        until: SimTime,
    },
    /// Shard `shard` serves at `bandwidth_factor` × its configured
    /// per-stream bandwidth over `[at, until)`.
    Degraded {
        /// Degraded shard index.
        shard: usize,
        /// Brown-out start.
        at: SimTime,
        /// Brown-out end.
        until: SimTime,
        /// Effective-bandwidth multiplier in `(0, 1]`.
        bandwidth_factor: f64,
    },
    /// The shard's `nth` live wake-up notification (1-based, counted
    /// from run start) is lost; its deliveries are redelivered by a
    /// watchdog `redeliver_after` later.
    DropWakeup {
        /// Shard whose wake-up is dropped.
        shard: usize,
        /// 1-based ordinal of the live wake-up to drop.
        nth: u64,
        /// Watchdog redelivery delay.
        redeliver_after: SimDuration,
    },
}

impl FaultEpisode {
    fn shard(&self) -> usize {
        match *self {
            FaultEpisode::ShardDown { shard, .. }
            | FaultEpisode::Degraded { shard, .. }
            | FaultEpisode::DropWakeup { shard, .. } => shard,
        }
    }

    /// The episode's active interval, if it occupies one.
    fn interval(&self) -> Option<(SimTime, SimTime)> {
        match *self {
            FaultEpisode::ShardDown { at, until, .. }
            | FaultEpisode::Degraded { at, until, .. } => Some((at, until)),
            FaultEpisode::DropWakeup { .. } => None,
        }
    }
}

/// A seeded stochastic outage stream, expanded at assembly time from a
/// labeled SplitMix64 stream (one label per shard, so adding a stream
/// never perturbs another's draws).
#[derive(Clone, Debug, PartialEq)]
enum FaultProcess {
    /// Crash/repair cycles: exponential up-times (mean `mtbf`) and
    /// exponential repair times (mean `mttr`) over `[0, horizon)`.
    Crashes {
        shard: usize,
        mtbf: SimDuration,
        mttr: SimDuration,
        horizon: SimTime,
        seed: u64,
    },
    /// Brown-out cycles: exponential healthy periods (mean `mtbf`) and
    /// exponential degraded periods (mean `duration`) at
    /// `bandwidth_factor` over `[0, horizon)`.
    Brownouts {
        shard: usize,
        mtbf: SimDuration,
        duration: SimDuration,
        bandwidth_factor: f64,
        horizon: SimTime,
        seed: u64,
    },
}

/// The `Scenario`-level fault schedule: explicit episodes plus seeded
/// stochastic outage streams. See the module docs for semantics.
///
/// The default plan is empty and injects nothing.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    episodes: Vec<FaultEpisode>,
    random: Vec<FaultProcess>,
}

/// Default watchdog redelivery delay for [`FaultPlan::drop_wakeup`].
pub const DEFAULT_REDELIVERY: SimDuration = SimDuration::from_secs(1);

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.episodes.is_empty() && self.random.is_empty()
    }

    /// Adds an explicit outage: `shard` is down over `[at, until)`.
    pub fn shard_down(mut self, shard: usize, at: SimTime, until: SimTime) -> Self {
        self.episodes
            .push(FaultEpisode::ShardDown { shard, at, until });
        self
    }

    /// Adds an explicit brown-out: `shard` serves at `bandwidth_factor`
    /// × its configured bandwidth over `[at, until)`.
    pub fn degraded(
        mut self,
        shard: usize,
        at: SimTime,
        until: SimTime,
        bandwidth_factor: f64,
    ) -> Self {
        self.episodes.push(FaultEpisode::Degraded {
            shard,
            at,
            until,
            bandwidth_factor,
        });
        self
    }

    /// Drops the shard's `nth` live wake-up (1-based), redelivered
    /// after [`DEFAULT_REDELIVERY`].
    pub fn drop_wakeup(self, shard: usize, nth: u64) -> Self {
        self.drop_wakeup_after(shard, nth, DEFAULT_REDELIVERY)
    }

    /// Drops the shard's `nth` live wake-up (1-based), redelivered
    /// `redeliver_after` later by the watchdog.
    pub fn drop_wakeup_after(
        mut self,
        shard: usize,
        nth: u64,
        redeliver_after: SimDuration,
    ) -> Self {
        self.episodes.push(FaultEpisode::DropWakeup {
            shard,
            nth,
            redeliver_after,
        });
        self
    }

    /// Adds a seeded crash/repair stream on `shard`: exponential
    /// up-times (mean `mtbf`) alternating with exponential outages
    /// (mean `mttr`), drawn from the labeled stream
    /// `fault-crashes/{shard}` until `horizon`.
    pub fn seeded_crashes(
        mut self,
        shard: usize,
        mtbf: SimDuration,
        mttr: SimDuration,
        horizon: SimTime,
        seed: u64,
    ) -> Self {
        self.random.push(FaultProcess::Crashes {
            shard,
            mtbf,
            mttr,
            horizon,
            seed,
        });
        self
    }

    /// Adds a seeded brown-out stream on `shard`: exponential healthy
    /// periods (mean `mtbf`) alternating with exponential degraded
    /// episodes (mean `duration`, at `bandwidth_factor`), drawn from
    /// the labeled stream `fault-brownouts/{shard}` until `horizon`.
    pub fn seeded_brownouts(
        mut self,
        shard: usize,
        mtbf: SimDuration,
        duration: SimDuration,
        bandwidth_factor: f64,
        horizon: SimTime,
        seed: u64,
    ) -> Self {
        self.random.push(FaultProcess::Brownouts {
            shard,
            mtbf,
            duration,
            bandwidth_factor,
            horizon,
            seed,
        });
        self
    }

    /// Expands the plan into concrete episodes for a `shards`-wide
    /// fleet, drawing every stochastic stream to completion. The result
    /// is deterministically ordered (by start instant, then shard) and
    /// validated: in-range shards, well-formed intervals, factors in
    /// `(0, 1]`, and no overlapping intervals on the same shard.
    ///
    /// # Panics
    /// Panics with a descriptive message on any malformed episode.
    pub fn expand(&self, shards: usize) -> Vec<FaultEpisode> {
        let mut out = self.episodes.clone();
        for process in &self.random {
            match *process {
                FaultProcess::Crashes {
                    shard,
                    mtbf,
                    mttr,
                    horizon,
                    seed,
                } => {
                    let mut state = derive_seed(seed, &format!("fault-crashes/{shard}"));
                    let mut at = SimTime::ZERO + exponential_gap(&mut state, mtbf);
                    while at < horizon {
                        let until = at + exponential_gap(&mut state, mttr);
                        out.push(FaultEpisode::ShardDown { shard, at, until });
                        at = until + exponential_gap(&mut state, mtbf);
                    }
                }
                FaultProcess::Brownouts {
                    shard,
                    mtbf,
                    duration,
                    bandwidth_factor,
                    horizon,
                    seed,
                } => {
                    let mut state = derive_seed(seed, &format!("fault-brownouts/{shard}"));
                    let mut at = SimTime::ZERO + exponential_gap(&mut state, mtbf);
                    while at < horizon {
                        let until = at + exponential_gap(&mut state, duration);
                        out.push(FaultEpisode::Degraded {
                            shard,
                            at,
                            until,
                            bandwidth_factor,
                        });
                        at = until + exponential_gap(&mut state, mtbf);
                    }
                }
            }
        }
        // Deterministic order: start instant, then shard, then a stable
        // kind rank (DropWakeup episodes sort by ordinal at time zero).
        out.sort_by_key(|e| {
            let (at, rank, tie) = match *e {
                FaultEpisode::ShardDown { at, .. } => (at, 0u8, 0),
                FaultEpisode::Degraded { at, .. } => (at, 1, 0),
                FaultEpisode::DropWakeup { nth, .. } => (SimTime::ZERO, 2, nth),
            };
            (at, e.shard(), rank, tie)
        });
        validate(&out, shards);
        out
    }
}

/// One shard-state flip the driver schedules as a calendar event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum FaultAction {
    /// The shard crashes: evacuate its queue, abort in-flight transfers.
    Down,
    /// The shard comes back (cold: the first load pays a full switch).
    Recover,
    /// Effective per-stream bandwidth drops to the carried factor.
    Degrade(f64),
    /// Bandwidth returns to the configured nominal.
    Restore,
}

/// A concrete `(instant, shard, action)` triple ready for the calendar.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) struct TimedFault {
    pub at: SimTime,
    pub shard: usize,
    pub action: FaultAction,
}

/// Flattens expanded episodes into calendar-ready actions, ordered by
/// `(instant, shard, ends-before-starts)` — an interval ending at `t`
/// applies before an adjacent one starting at `t` on the same shard,
/// matching the disjoint-interval validation.
pub(crate) fn timed_actions(episodes: &[FaultEpisode]) -> Vec<TimedFault> {
    let mut out = Vec::new();
    for e in episodes {
        match *e {
            FaultEpisode::ShardDown { shard, at, until } => {
                out.push(TimedFault {
                    at,
                    shard,
                    action: FaultAction::Down,
                });
                out.push(TimedFault {
                    at: until,
                    shard,
                    action: FaultAction::Recover,
                });
            }
            FaultEpisode::Degraded {
                shard,
                at,
                until,
                bandwidth_factor,
            } => {
                out.push(TimedFault {
                    at,
                    shard,
                    action: FaultAction::Degrade(bandwidth_factor),
                });
                out.push(TimedFault {
                    at: until,
                    shard,
                    action: FaultAction::Restore,
                });
            }
            FaultEpisode::DropWakeup { .. } => {}
        }
    }
    out.sort_by_key(|f| {
        let rank = match f.action {
            FaultAction::Recover | FaultAction::Restore => 0u8,
            FaultAction::Down | FaultAction::Degrade(_) => 1,
        };
        (f.at, f.shard, rank)
    });
    out
}

/// The drop-wakeup injections of an expanded plan, per shard in
/// ordinal order: `(shard, nth, redeliver_after)`.
pub(crate) fn drop_plans(episodes: &[FaultEpisode]) -> Vec<(usize, u64, SimDuration)> {
    episodes
        .iter()
        .filter_map(|e| match *e {
            FaultEpisode::DropWakeup {
                shard,
                nth,
                redeliver_after,
            } => Some((shard, nth, redeliver_after)),
            _ => None,
        })
        .collect()
}

fn validate(episodes: &[FaultEpisode], shards: usize) {
    let mut intervals: Vec<(usize, SimTime, SimTime)> = Vec::new();
    for e in episodes {
        assert!(
            e.shard() < shards,
            "fault episode targets shard {} but the fleet has {shards}",
            e.shard()
        );
        match *e {
            FaultEpisode::ShardDown { at, until, .. } => {
                assert!(
                    until > at,
                    "ShardDown interval is empty ({at:?} >= {until:?})"
                );
            }
            FaultEpisode::Degraded {
                at,
                until,
                bandwidth_factor,
                ..
            } => {
                assert!(
                    until > at,
                    "Degraded interval is empty ({at:?} >= {until:?})"
                );
                assert!(
                    bandwidth_factor > 0.0 && bandwidth_factor <= 1.0,
                    "Degraded bandwidth_factor {bandwidth_factor} outside (0, 1]"
                );
            }
            FaultEpisode::DropWakeup { nth, .. } => {
                assert!(nth >= 1, "DropWakeup ordinals are 1-based");
            }
        }
        if let Some((at, until)) = e.interval() {
            intervals.push((e.shard(), at, until));
        }
    }
    // Intervals on the same shard must be pairwise disjoint: the
    // fleet's down/degraded state machine is a simple toggle per shard.
    intervals.sort_unstable();
    for pair in intervals.windows(2) {
        let (s0, _, end0) = pair[0];
        let (s1, start1, _) = pair[1];
        assert!(
            s0 != s1 || start1 >= end0,
            "fault episodes overlap on shard {s0} ({end0:?} > {start1:?})"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn empty_plan_expands_to_nothing() {
        assert!(FaultPlan::new().is_empty());
        assert!(FaultPlan::new().expand(4).is_empty());
    }

    #[test]
    fn explicit_episodes_survive_expansion_sorted() {
        let plan = FaultPlan::new()
            .degraded(1, secs(50), secs(60), 0.5)
            .shard_down(0, secs(10), secs(20))
            .drop_wakeup(2, 3);
        let episodes = plan.expand(4);
        assert_eq!(
            episodes,
            vec![
                FaultEpisode::DropWakeup {
                    shard: 2,
                    nth: 3,
                    redeliver_after: DEFAULT_REDELIVERY,
                },
                FaultEpisode::ShardDown {
                    shard: 0,
                    at: secs(10),
                    until: secs(20),
                },
                FaultEpisode::Degraded {
                    shard: 1,
                    at: secs(50),
                    until: secs(60),
                    bandwidth_factor: 0.5,
                },
            ]
        );
    }

    #[test]
    fn seeded_crashes_are_deterministic_and_alternating() {
        let plan = FaultPlan::new().seeded_crashes(
            1,
            SimDuration::from_secs(100),
            SimDuration::from_secs(10),
            secs(1000),
            7,
        );
        let a = plan.expand(2);
        let b = plan.expand(2);
        assert_eq!(a, b, "same seed, same episodes");
        assert!(!a.is_empty(), "a 1000 s horizon at 100 s MTBF should crash");
        let mut last_end = SimTime::ZERO;
        for e in &a {
            let FaultEpisode::ShardDown { shard, at, until } = *e else {
                panic!("crash stream produced {e:?}");
            };
            assert_eq!(shard, 1);
            assert!(at >= last_end && until > at);
            last_end = until;
        }
        // A different seed draws a different schedule.
        let other = FaultPlan::new()
            .seeded_crashes(
                1,
                SimDuration::from_secs(100),
                SimDuration::from_secs(10),
                secs(1000),
                8,
            )
            .expand(2);
        assert_ne!(a, other);
    }

    #[test]
    fn seeded_brownouts_carry_the_factor() {
        let episodes = FaultPlan::new()
            .seeded_brownouts(
                0,
                SimDuration::from_secs(200),
                SimDuration::from_secs(20),
                0.25,
                secs(2000),
                9,
            )
            .expand(1);
        assert!(!episodes.is_empty());
        for e in &episodes {
            let FaultEpisode::Degraded {
                bandwidth_factor, ..
            } = *e
            else {
                panic!("brownout stream produced {e:?}");
            };
            assert_eq!(bandwidth_factor, 0.25);
        }
    }

    #[test]
    #[should_panic(expected = "targets shard 3")]
    fn out_of_range_shard_rejected() {
        FaultPlan::new().shard_down(3, secs(1), secs(2)).expand(2);
    }

    #[test]
    #[should_panic(expected = "interval is empty")]
    fn empty_interval_rejected() {
        FaultPlan::new().shard_down(0, secs(5), secs(5)).expand(1);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn bad_bandwidth_factor_rejected() {
        FaultPlan::new()
            .degraded(0, secs(1), secs(2), 1.5)
            .expand(1);
    }

    #[test]
    #[should_panic(expected = "overlap on shard 0")]
    fn overlapping_intervals_rejected() {
        FaultPlan::new()
            .shard_down(0, secs(10), secs(30))
            .degraded(0, secs(20), secs(40), 0.5)
            .expand(1);
    }

    #[test]
    #[should_panic(expected = "overlap on shard 0")]
    fn overlapping_downtime_windows_on_one_shard_rejected() {
        // Two ShardDown windows on the same shard must not compose
        // silently (a shard cannot crash while already down): validation
        // rejects the plan loudly at assembly time, exactly like the
        // down-vs-degraded overlap above.
        FaultPlan::new()
            .shard_down(0, secs(10), secs(100))
            .shard_down(0, secs(50), secs(150))
            .expand(2);
    }

    #[test]
    fn overlapping_downtime_on_different_shards_composes() {
        // Overlap is only illegal per shard: concurrent outages on
        // different shards are a first-class chaos shape.
        let episodes = FaultPlan::new()
            .shard_down(0, secs(10), secs(100))
            .shard_down(1, secs(50), secs(150))
            .expand(2);
        assert_eq!(episodes.len(), 2);
    }

    #[test]
    fn timed_actions_order_recovery_before_adjacent_start() {
        let episodes = FaultPlan::new()
            .shard_down(0, secs(10), secs(20))
            .degraded(0, secs(20), secs(30), 0.5)
            .expand(1);
        let actions = timed_actions(&episodes);
        assert_eq!(actions.len(), 4);
        assert_eq!(
            (actions[1].at, actions[1].action),
            (secs(20), FaultAction::Recover)
        );
        assert_eq!(
            (actions[2].at, actions[2].action),
            (secs(20), FaultAction::Degrade(0.5))
        );
        // DropWakeups flatten separately.
        let dropped = FaultPlan::new().drop_wakeup(1, 2).expand(2);
        assert!(timed_actions(&dropped).is_empty());
        assert_eq!(drop_plans(&dropped), vec![(1, 2, DEFAULT_REDELIVERY)]);
    }

    #[test]
    fn adjacent_intervals_are_fine() {
        let episodes = FaultPlan::new()
            .shard_down(0, secs(10), secs(20))
            .degraded(0, secs(20), secs(30), 0.5)
            .expand(1);
        assert_eq!(episodes.len(), 2);
    }
}
