//! The device fleet: N pumps over N independently configured CSDs.
//!
//! One cold storage device tops out at a rack; the production path is a
//! *fleet* of CSD shards behind a single scenario. [`DeviceFleet`] owns
//! one [`DevicePump`] per shard plus the object → shard map fixed at
//! layout time by a
//! [`PlacementPolicy`](skipper_csd::PlacementPolicy): `submit` fans a
//! GET batch out to the owning shards (preserving relative order within
//! each shard), and each shard keeps its own wake-up protocol, so the
//! event loop interleaves devices deterministically — shard index breaks
//! every tie.
//!
//! A 1-shard fleet is byte-for-byte the old single-device runtime: the
//! whole batch goes to pump 0 in submission order and the event
//! schedule is unchanged.
//!
//! ## Replication and failover
//!
//! Under `PlacementPolicy::Replicated { k, .. }` every object carries a
//! replica list (preferred shard first; see
//! [`DeviceFleet::with_replicas`]) and each request routes to the
//! *first live replica*. With every replica down — or on a k = 1 fleet
//! whose only shard is down — the request parks at the fleet and is
//! re-submitted, in arrival order, when a replica recovers. A crash
//! ([`DeviceFleet::fail_shard`]) evacuates the dead shard's queue and
//! aborts its in-flight transfers; every displaced request re-routes
//! through the same first-live-replica rule immediately, so the
//! delivery multiset is conserved through every failover path: aborted
//! transfers log nothing, and each query object is served exactly once
//! by whichever replica completes it. Re-routed and un-parked requests
//! re-enter the destination queue at the tail with a fresh arrival
//! stamp — failover is a requeue, not a splice.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use skipper_csd::sched::PendingRequest;
use skipper_csd::{CsdDevice, Delivery, ObjectId, QueryId};
use skipper_relational::segment::Segment;
use skipper_sim::parallel::drain_parallel;
use skipper_sim::{SimDuration, SimTime};

use super::collector::ShardFaultStats;
use super::protect::BreakerPolicy;
use super::pump::DevicePump;

/// N device pumps + the object → shard map.
pub struct DeviceFleet {
    pumps: Vec<DevicePump>,
    /// Preferred (primary) shard per object — the k = 1 routing map.
    shard_of: HashMap<ObjectId, usize>,
    /// Full replica lists (preferred first) when the placement
    /// replicates; empty for single-replica fleets, which route
    /// through `shard_of` alone.
    replicas_of: HashMap<ObjectId, Vec<usize>>,
    /// Reusable per-shard fan-out buffers for `submit` — pooled so a
    /// multi-shard batch costs no allocation once warm, matching the
    /// 1-shard path (the 8-shard allocs/event regression fix).
    fanout: Vec<Vec<ObjectId>>,
    /// Fault plane: per-shard down flags (`true` between `fail_shard`
    /// and `recover_shard`).
    down: Vec<bool>,
    /// Crash instant of each currently-down shard (downtime accrual).
    down_since: Vec<Option<SimTime>>,
    /// Per-shard fault counters for the run result.
    stats: Vec<ShardFaultStats>,
    /// Requests with no live replica, awaiting a recovery, in arrival
    /// order: `(client, query, object)`.
    parked: VecDeque<(usize, QueryId, ObjectId)>,
    /// Requests ever parked (availability summary).
    parked_total: u64,
    /// Reusable evacuation scratch for `fail_shard`.
    displaced: Vec<PendingRequest>,
    /// Protection plane: clients whose no-live-replica requests are
    /// handed back to the driver for backoff retries instead of parking
    /// (empty unless a retry policy is configured — the parked path
    /// stays byte-identical).
    retry_clients: Vec<bool>,
    /// Requests from retry-enabled clients that found no live replica,
    /// awaiting a driver-scheduled re-submission.
    unroutable: Vec<(usize, QueryId, ObjectId)>,
    /// Protection plane: the per-shard breaker policy, `None` (the
    /// default) leaving routing byte-identical.
    breaker: Option<BreakerPolicy>,
    /// Breaker state: shard open due to repeated deadline timeouts
    /// until this instant.
    breaker_open_until: Vec<SimTime>,
    /// Breaker state: shard open due to a deep brown-out.
    breaker_brownout: Vec<bool>,
    /// Deadline timeouts charged per shard since its last trip.
    breaker_timeouts: Vec<u32>,
    /// Breaker openings over the run (brown-out + timeout trips).
    breaker_trips: u64,
}

impl DeviceFleet {
    /// Assembles a fleet from per-shard devices and the placement map
    /// (single-replica: each object lives on exactly one shard).
    ///
    /// # Panics
    /// Panics on an empty fleet or a map entry pointing outside it.
    pub fn new(devices: Vec<CsdDevice<Arc<Segment>>>, shard_of: HashMap<ObjectId, usize>) -> Self {
        assert!(!devices.is_empty(), "a fleet needs at least one device");
        assert!(
            shard_of.values().all(|&s| s < devices.len()),
            "placement map points outside the fleet"
        );
        let n = devices.len();
        DeviceFleet {
            pumps: devices.into_iter().map(DevicePump::new).collect(),
            shard_of,
            replicas_of: HashMap::new(),
            fanout: vec![Vec::new(); n],
            down: vec![false; n],
            down_since: vec![None; n],
            stats: vec![ShardFaultStats::default(); n],
            parked: VecDeque::new(),
            parked_total: 0,
            displaced: Vec::new(),
            retry_clients: Vec::new(),
            unroutable: Vec::new(),
            breaker: None,
            breaker_open_until: vec![SimTime::ZERO; n],
            breaker_brownout: vec![false; n],
            breaker_timeouts: vec![0; n],
            breaker_trips: 0,
        }
    }

    /// Assembles a replicated fleet: every object carries its full
    /// replica list, preferred shard first (the
    /// `PlacementPolicy::assign_replicas` output). A fault-free run
    /// routes every request to the preferred replica, byte-identical
    /// to the equivalent single-replica fleet.
    ///
    /// # Panics
    /// Panics on an empty fleet, an empty replica list, or a replica
    /// outside the fleet.
    pub fn with_replicas(
        devices: Vec<CsdDevice<Arc<Segment>>>,
        replicas_of: HashMap<ObjectId, Vec<usize>>,
    ) -> Self {
        assert!(
            replicas_of
                .values()
                .all(|r| !r.is_empty() && r.iter().all(|&s| s < devices.len())),
            "replica list empty or pointing outside the fleet"
        );
        let shard_of = replicas_of.iter().map(|(&o, r)| (o, r[0])).collect();
        let mut fleet = DeviceFleet::new(devices, shard_of);
        fleet.replicas_of = replicas_of;
        fleet
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.pumps.len()
    }

    /// The preferred shard storing `object` (shard 0 when the fleet
    /// has one device and no explicit map).
    ///
    /// # Panics
    /// Panics for objects never placed on a multi-shard fleet.
    pub fn shard_for(&self, object: ObjectId) -> usize {
        if self.pumps.len() == 1 {
            return 0;
        }
        *self
            .shard_of
            .get(&object)
            .unwrap_or_else(|| panic!("object {object} was never placed on any shard"))
    }

    /// Protection plane: true while `shard`'s breaker holds it out of
    /// preferred routing (brown-out, or a recent timeout trip still in
    /// cooldown). Always false without a [`BreakerPolicy`].
    fn breaker_open(&self, shard: usize, now: SimTime) -> bool {
        self.breaker.is_some()
            && (self.breaker_brownout[shard] || self.breaker_open_until[shard] > now)
    }

    /// The first live replica for `object`, counting a failover receipt
    /// on the serving shard when it is not the preferred one. With a
    /// breaker installed, replicas whose breaker is open are skipped
    /// when a closed live replica exists (and used anyway when not —
    /// the breaker degrades preference, never availability). `None`
    /// when every replica is down (the caller parks the request).
    fn route(&mut self, now: SimTime, object: ObjectId) -> Option<usize> {
        if !self.replicas_of.is_empty() {
            let replicas = self
                .replicas_of
                .get(&object)
                .unwrap_or_else(|| panic!("object {object} was never placed on any shard"));
            let choice = replicas
                .iter()
                .enumerate()
                .find(|&(_, &s)| !self.down[s] && !self.breaker_open(s, now))
                .or_else(|| replicas.iter().enumerate().find(|&(_, &s)| !self.down[s]))
                .map(|(i, &s)| (i, s));
            return match choice {
                Some((ordinal, shard)) => {
                    if ordinal > 0 {
                        self.stats[shard].failover_receipts += 1;
                    }
                    Some(shard)
                }
                None => None,
            };
        }
        let shard = self.shard_for(object);
        (!self.down[shard]).then_some(shard)
    }

    /// Fans GET requests out to the owning shards (first live replica
    /// each; see the module docs). Objects keep their relative order
    /// within each shard's batch; shards are submitted in shard order
    /// for determinism. Requests with no live replica park until a
    /// recovery.
    pub fn submit(&mut self, now: SimTime, client: usize, query: QueryId, objects: &[ObjectId]) {
        if self.pumps.len() == 1 && !self.down[0] {
            self.pumps[0].submit(now, client, query, objects);
            return;
        }
        for &obj in objects {
            match self.route(now, obj) {
                Some(shard) => self.fanout[shard].push(obj),
                None => self.park_or_defer(client, query, obj),
            }
        }
        for (pump, batch) in self.pumps.iter_mut().zip(self.fanout.iter_mut()) {
            if !batch.is_empty() {
                pump.submit(now, client, query, batch);
                batch.clear();
            }
        }
    }

    /// A request with no live replica either parks (the historical
    /// path) or, for retry-enabled clients, lands in the unroutable
    /// buffer for the driver to schedule a backoff re-submission.
    fn park_or_defer(&mut self, client: usize, query: QueryId, obj: ObjectId) {
        if self.retry_clients.get(client).copied().unwrap_or(false) {
            self.unroutable.push((client, query, obj));
        } else {
            self.parked_total += 1;
            self.parked.push_back((client, query, obj));
        }
    }

    /// Crashes shard `shard` (a fault-plane `ShardDown` start): aborts
    /// its in-flight transfers, evacuates its queue, and re-routes
    /// every displaced request to the first live replica (or parks it).
    /// Transfers that completed but whose wake-up notification was
    /// dropped are flushed into `completed` — the driver routes them
    /// like any retired batch (the data already arrived).
    pub fn fail_shard(
        &mut self,
        shard: usize,
        now: SimTime,
        completed: &mut Vec<Delivery<Arc<Segment>>>,
    ) {
        assert!(
            !self.down[shard],
            "shard {shard} crashed while already down"
        );
        self.down[shard] = true;
        self.down_since[shard] = Some(now);
        self.stats[shard].downs += 1;
        let mut displaced = std::mem::take(&mut self.displaced);
        displaced.clear();
        let aborted = self.pumps[shard].fail(now, &mut displaced, completed);
        self.stats[shard].aborted_transfers += aborted as u64;
        self.stats[shard].evacuated_requests += (displaced.len() - aborted) as u64;
        // Re-route in evacuation order: aborted in-flight requests
        // first (slot order), then the queue (arrival order). Each
        // re-submission is a fresh single-object batch — a requeue at
        // the destination's tail.
        for req in displaced.drain(..) {
            match self.route(now, req.object) {
                Some(live) => self.pumps[live].submit(now, req.client, req.query, &[req.object]),
                None => self.park_or_defer(req.client, req.query, req.object),
            }
        }
        self.displaced = displaced;
    }

    /// Recovers shard `shard` (a fault-plane `ShardDown` end): accrues
    /// its downtime, reopens it for routing, and re-submits every
    /// parked request that now has a live replica, in arrival order.
    pub fn recover_shard(&mut self, shard: usize, now: SimTime) {
        assert!(self.down[shard], "shard {shard} recovered while up");
        self.down[shard] = false;
        let since = self.down_since[shard]
            .take()
            .expect("down shard has a crash instant");
        self.stats[shard].downtime_micros += now.since(since).as_micros();
        self.pumps[shard].recover(now);
        for _ in 0..self.parked.len() {
            let (client, query, obj) = self.parked.pop_front().expect("len checked");
            match self.route(now, obj) {
                Some(live) => self.pumps[live].submit(now, client, query, &[obj]),
                None => self.parked.push_back((client, query, obj)),
            }
        }
    }

    /// Scales shard `shard`'s effective per-stream bandwidth (a
    /// fault-plane brown-out; `1.0` restores nominal). With a breaker
    /// installed, a factor below its `brownout_below` threshold opens
    /// the shard's breaker until service is restored.
    pub fn set_bandwidth_factor(&mut self, shard: usize, factor: f64) {
        self.pumps[shard].set_bandwidth_factor(factor);
        if let Some(policy) = self.breaker {
            if factor < policy.brownout_below {
                if !self.breaker_brownout[shard] {
                    self.breaker_brownout[shard] = true;
                    self.breaker_trips += 1;
                }
            } else {
                self.breaker_brownout[shard] = false;
            }
        }
    }

    /// Installs the per-client retry flags (assembly time): requests of
    /// flagged clients with no live replica go to the unroutable buffer
    /// instead of parking.
    pub(crate) fn set_retry_clients(&mut self, flags: Vec<bool>) {
        self.retry_clients = flags;
    }

    /// Installs the breaker policy (assembly time).
    pub(crate) fn set_breaker(&mut self, policy: BreakerPolicy) {
        self.breaker = Some(policy);
    }

    /// Charges one deadline timeout against `shard`; at the policy's
    /// `trip_timeouts` the shard's breaker opens for the cooldown and
    /// the counter resets. No-op without a breaker.
    pub(crate) fn record_timeout(&mut self, shard: usize, now: SimTime) {
        let Some(policy) = self.breaker else { return };
        self.breaker_timeouts[shard] += 1;
        if self.breaker_timeouts[shard] >= policy.trip_timeouts {
            self.breaker_timeouts[shard] = 0;
            self.breaker_open_until[shard] = now + policy.cooldown;
            self.breaker_trips += 1;
        }
    }

    /// Breaker openings over the run (for the protection summary).
    pub(crate) fn breaker_trips(&self) -> u64 {
        self.breaker_trips
    }

    /// True when the unroutable buffer holds requests awaiting a
    /// driver-scheduled retry (O(1); the driver polls after every
    /// fleet call that can route).
    pub(crate) fn has_unroutable(&self) -> bool {
        !self.unroutable.is_empty()
    }

    /// Drains the unroutable buffer into `out` (preserving order).
    pub(crate) fn take_unroutable(&mut self, out: &mut Vec<(usize, QueryId, ObjectId)>) {
        out.append(&mut self.unroutable);
    }

    /// Protection plane: dequeues every still-queued request of `query`
    /// across the fleet — pumps, the parked buffer, and the unroutable
    /// buffer. When `charge_timeout` (a deadline cancel), every shard
    /// that still held queued work for the query is charged a breaker
    /// timeout. Returns the number of requests removed from device
    /// queues.
    pub(crate) fn cancel_query(
        &mut self,
        query: QueryId,
        now: SimTime,
        charge_timeout: bool,
    ) -> usize {
        let mut total = 0;
        for shard in 0..self.pumps.len() {
            let n = self.pumps[shard].cancel_query(query);
            if n > 0 && charge_timeout {
                self.record_timeout(shard, now);
            }
            total += n;
        }
        self.parked.retain(|&(_, q, _)| q != query);
        self.unroutable.retain(|&(_, q, _)| q != query);
        total
    }

    /// Protection plane: dequeues every still-queued copy of
    /// `(query, object)` across the fleet (hedge losers — the winning
    /// replica already delivered, so at most the loser copies remain
    /// queued). Returns the number of copies removed.
    pub(crate) fn cancel_object(&mut self, query: QueryId, object: ObjectId) -> usize {
        let mut n = 0;
        for pump in &mut self.pumps {
            if pump.cancel_object(query, object) {
                n += 1;
            }
        }
        n
    }

    /// The hedge target for `object`: the first live replica *after*
    /// the one routing currently prefers, or `None` when no distinct
    /// live replica exists (single-replica placements never hedge).
    pub(crate) fn hedge_target(&self, object: ObjectId) -> Option<usize> {
        let replicas = self.replicas_of.get(&object)?;
        let mut live = replicas.iter().filter(|&&s| !self.down[s]);
        let _primary = live.next()?;
        live.next().copied()
    }

    /// Submits one request directly to `shard`, bypassing routing (the
    /// hedge duplicate — the caller picked the target).
    pub(crate) fn submit_to(
        &mut self,
        shard: usize,
        now: SimTime,
        client: usize,
        query: QueryId,
        object: ObjectId,
    ) {
        debug_assert!(!self.down[shard], "hedge duplicate sent to a down shard");
        self.pumps[shard].submit(now, client, query, &[object]);
    }

    /// The deepest backlog across live shards, as `(max queued
    /// requests, max queued logical bytes)` — the admission-control
    /// load signal. O(shards); called only when an admission policy is
    /// configured.
    pub(crate) fn max_live_load(&self) -> (usize, u64) {
        let (mut depth, mut bytes) = (0usize, 0u64);
        for (shard, pump) in self.pumps.iter().enumerate() {
            if self.down[shard] {
                continue;
            }
            depth = depth.max(pump.device().pending_len());
            bytes = bytes.max(pump.device().queued_bytes());
        }
        (depth, bytes)
    }

    /// True under replicated placement (hedging needs a second copy).
    pub(crate) fn replicated(&self) -> bool {
        !self.replicas_of.is_empty()
    }

    /// Installs shard `shard`'s cache tiers (assembly time; a disabled
    /// config installs nothing — see [`DevicePump::set_cache`]).
    pub fn set_cache(&mut self, shard: usize, config: skipper_csd::cache::CacheConfig) {
        self.pumps[shard].set_cache(config);
    }

    /// Installs a drop-wakeup injection on shard `shard` (assembly
    /// time; see [`DevicePump::plan_drop`]).
    pub fn plan_drop(&mut self, shard: usize, nth: u64, redeliver_after: SimDuration) {
        self.pumps[shard].plan_drop(nth, redeliver_after);
    }

    /// Accrues downtime for shards still down when the run ends.
    pub fn close_downtime(&mut self, end: SimTime) {
        for shard in 0..self.pumps.len() {
            if let Some(since) = self.down_since[shard].take() {
                self.stats[shard].downtime_micros += end.since(since).as_micros();
            }
        }
    }

    /// Per-shard fault counters, in shard order.
    pub fn fault_stats(&self) -> &[ShardFaultStats] {
        &self.stats
    }

    /// Requests that ever parked for lack of a live replica.
    pub fn parked_total(&self) -> u64 {
        self.parked_total
    }

    /// Requests currently parked (non-zero only mid-outage).
    pub fn parked_len(&self) -> usize {
        self.parked.len()
    }

    /// Pokes every shard in shard order, invoking `armed` with
    /// `(shard, wake-up)` for each newly armed (or re-armed) wake-up —
    /// including watchdog redelivery wake-ups for dropped batches.
    /// Allocation-free: this runs once per event on the loop's hot
    /// path. A re-arm supersedes the shard's previous wake-up, which
    /// then fires as a stale no-op.
    pub fn poke_all(&mut self, now: SimTime, mut armed: impl FnMut(usize, SimTime)) {
        for (shard, pump) in self.pumps.iter_mut().enumerate() {
            if let Some(at) = pump.take_redelivery_arm() {
                armed(shard, at);
            }
            if let Some(at) = pump.take_cache_arm() {
                armed(shard, at);
            }
            if let Some(at) = pump.poke(now) {
                armed(shard, at);
            }
        }
    }

    /// Handles shard `shard`'s wake-up firing at `now`: every transfer
    /// the shard retired at that instant (empty for switch completions
    /// and stale, superseded wake-ups).
    pub fn on_wakeup(&mut self, shard: usize, now: SimTime) -> Vec<Delivery<Arc<Segment>>> {
        self.pumps[shard].on_wakeup(now)
    }

    /// Zero-allocation form of [`DeviceFleet::on_wakeup`]: retired
    /// transfers are appended to the caller's reusable scratch buffer.
    pub fn on_wakeup_into(
        &mut self,
        shard: usize,
        now: SimTime,
        out: &mut Vec<Delivery<Arc<Segment>>>,
    ) {
        self.pumps[shard].on_wakeup_into(now, out);
    }

    /// The earliest armed wake-up across the fleet ([`SimTime::MAX`]
    /// when no shard has one): the soonest any delivery can reach any
    /// client — device completions and watchdog redeliveries alike —
    /// used by the safe-horizon computation.
    pub fn min_armed(&self) -> SimTime {
        self.pumps
            .iter()
            .filter_map(|p| p.next_wakeup())
            .min()
            .unwrap_or(SimTime::MAX)
    }

    /// Drains every shard's private completion chain strictly below
    /// `horizon` into its replay log, on `workers` scoped threads (the
    /// windowed-parallel execution barrier). Shards drain
    /// independently — per-shard output is identical for every worker
    /// count, so parallelism never changes the run. Fault-affected
    /// shards skip pre-execution and take the live path (see
    /// [`DevicePump`]'s fault-plane docs).
    pub fn drain_window_parallel(&mut self, horizon: SimTime, workers: usize) {
        drain_parallel(&mut self.pumps, horizon, workers);
    }

    /// Read access to every pump, in shard order.
    pub fn pumps(&self) -> &[DevicePump] {
        &self.pumps
    }

    /// Consumes the fleet into its pumps, in shard order (end-of-run
    /// result assembly).
    pub fn into_pumps(self) -> Vec<DevicePump> {
        self.pumps
    }

    /// True when every shard is idle with an empty queue, nothing is
    /// parked at the fleet, no watchdog batch is pending, and no
    /// unroutable request awaits a retry.
    pub fn is_quiescent(&self) -> bool {
        self.pumps.iter().all(|p| p.is_quiescent())
            && self.parked.is_empty()
            && self.unroutable.is_empty()
    }
}
