//! The device fleet: N pumps over N independently configured CSDs.
//!
//! One cold storage device tops out at a rack; the production path is a
//! *fleet* of CSD shards behind a single scenario. [`DeviceFleet`] owns
//! one [`DevicePump`] per shard plus the object → shard map fixed at
//! layout time by a
//! [`PlacementPolicy`](skipper_csd::PlacementPolicy): `submit` fans a
//! GET batch out to the owning shards (preserving relative order within
//! each shard), and each shard keeps its own wake-up protocol, so the
//! event loop interleaves devices deterministically — shard index breaks
//! every tie.
//!
//! A 1-shard fleet is byte-for-byte the old single-device runtime: the
//! whole batch goes to pump 0 in submission order and the event
//! schedule is unchanged.
//!
//! ## Replication and failover
//!
//! Under `PlacementPolicy::Replicated { k, .. }` every object carries a
//! replica list (preferred shard first; see
//! [`DeviceFleet::with_replicas`]) and each request routes to the
//! *first live replica*. With every replica down — or on a k = 1 fleet
//! whose only shard is down — the request parks at the fleet and is
//! re-submitted, in arrival order, when a replica recovers. A crash
//! ([`DeviceFleet::fail_shard`]) evacuates the dead shard's queue and
//! aborts its in-flight transfers; every displaced request re-routes
//! through the same first-live-replica rule immediately, so the
//! delivery multiset is conserved through every failover path: aborted
//! transfers log nothing, and each query object is served exactly once
//! by whichever replica completes it. Re-routed and un-parked requests
//! re-enter the destination queue at the tail with a fresh arrival
//! stamp — failover is a requeue, not a splice.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use skipper_csd::sched::PendingRequest;
use skipper_csd::{CsdDevice, Delivery, ObjectId, QueryId};
use skipper_relational::segment::Segment;
use skipper_sim::parallel::drain_parallel;
use skipper_sim::{SimDuration, SimTime};

use super::collector::ShardFaultStats;
use super::pump::DevicePump;

/// N device pumps + the object → shard map.
pub struct DeviceFleet {
    pumps: Vec<DevicePump>,
    /// Preferred (primary) shard per object — the k = 1 routing map.
    shard_of: HashMap<ObjectId, usize>,
    /// Full replica lists (preferred first) when the placement
    /// replicates; empty for single-replica fleets, which route
    /// through `shard_of` alone.
    replicas_of: HashMap<ObjectId, Vec<usize>>,
    /// Reusable per-shard fan-out buffers for `submit` — pooled so a
    /// multi-shard batch costs no allocation once warm, matching the
    /// 1-shard path (the 8-shard allocs/event regression fix).
    fanout: Vec<Vec<ObjectId>>,
    /// Fault plane: per-shard down flags (`true` between `fail_shard`
    /// and `recover_shard`).
    down: Vec<bool>,
    /// Crash instant of each currently-down shard (downtime accrual).
    down_since: Vec<Option<SimTime>>,
    /// Per-shard fault counters for the run result.
    stats: Vec<ShardFaultStats>,
    /// Requests with no live replica, awaiting a recovery, in arrival
    /// order: `(client, query, object)`.
    parked: VecDeque<(usize, QueryId, ObjectId)>,
    /// Requests ever parked (availability summary).
    parked_total: u64,
    /// Reusable evacuation scratch for `fail_shard`.
    displaced: Vec<PendingRequest>,
}

impl DeviceFleet {
    /// Assembles a fleet from per-shard devices and the placement map
    /// (single-replica: each object lives on exactly one shard).
    ///
    /// # Panics
    /// Panics on an empty fleet or a map entry pointing outside it.
    pub fn new(devices: Vec<CsdDevice<Arc<Segment>>>, shard_of: HashMap<ObjectId, usize>) -> Self {
        assert!(!devices.is_empty(), "a fleet needs at least one device");
        assert!(
            shard_of.values().all(|&s| s < devices.len()),
            "placement map points outside the fleet"
        );
        let n = devices.len();
        DeviceFleet {
            pumps: devices.into_iter().map(DevicePump::new).collect(),
            shard_of,
            replicas_of: HashMap::new(),
            fanout: vec![Vec::new(); n],
            down: vec![false; n],
            down_since: vec![None; n],
            stats: vec![ShardFaultStats::default(); n],
            parked: VecDeque::new(),
            parked_total: 0,
            displaced: Vec::new(),
        }
    }

    /// Assembles a replicated fleet: every object carries its full
    /// replica list, preferred shard first (the
    /// `PlacementPolicy::assign_replicas` output). A fault-free run
    /// routes every request to the preferred replica, byte-identical
    /// to the equivalent single-replica fleet.
    ///
    /// # Panics
    /// Panics on an empty fleet, an empty replica list, or a replica
    /// outside the fleet.
    pub fn with_replicas(
        devices: Vec<CsdDevice<Arc<Segment>>>,
        replicas_of: HashMap<ObjectId, Vec<usize>>,
    ) -> Self {
        assert!(
            replicas_of
                .values()
                .all(|r| !r.is_empty() && r.iter().all(|&s| s < devices.len())),
            "replica list empty or pointing outside the fleet"
        );
        let shard_of = replicas_of.iter().map(|(&o, r)| (o, r[0])).collect();
        let mut fleet = DeviceFleet::new(devices, shard_of);
        fleet.replicas_of = replicas_of;
        fleet
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.pumps.len()
    }

    /// The preferred shard storing `object` (shard 0 when the fleet
    /// has one device and no explicit map).
    ///
    /// # Panics
    /// Panics for objects never placed on a multi-shard fleet.
    pub fn shard_for(&self, object: ObjectId) -> usize {
        if self.pumps.len() == 1 {
            return 0;
        }
        *self
            .shard_of
            .get(&object)
            .unwrap_or_else(|| panic!("object {object} was never placed on any shard"))
    }

    /// The first live replica for `object`, counting a failover receipt
    /// on the serving shard when it is not the preferred one. `None`
    /// when every replica is down (the caller parks the request).
    fn route(&mut self, object: ObjectId) -> Option<usize> {
        if !self.replicas_of.is_empty() {
            let replicas = self
                .replicas_of
                .get(&object)
                .unwrap_or_else(|| panic!("object {object} was never placed on any shard"));
            let choice = replicas
                .iter()
                .enumerate()
                .find(|&(_, &s)| !self.down[s])
                .map(|(i, &s)| (i, s));
            return match choice {
                Some((ordinal, shard)) => {
                    if ordinal > 0 {
                        self.stats[shard].failover_receipts += 1;
                    }
                    Some(shard)
                }
                None => None,
            };
        }
        let shard = self.shard_for(object);
        (!self.down[shard]).then_some(shard)
    }

    /// Fans GET requests out to the owning shards (first live replica
    /// each; see the module docs). Objects keep their relative order
    /// within each shard's batch; shards are submitted in shard order
    /// for determinism. Requests with no live replica park until a
    /// recovery.
    pub fn submit(&mut self, now: SimTime, client: usize, query: QueryId, objects: &[ObjectId]) {
        if self.pumps.len() == 1 && !self.down[0] {
            self.pumps[0].submit(now, client, query, objects);
            return;
        }
        for &obj in objects {
            match self.route(obj) {
                Some(shard) => self.fanout[shard].push(obj),
                None => {
                    self.parked_total += 1;
                    self.parked.push_back((client, query, obj));
                }
            }
        }
        for (pump, batch) in self.pumps.iter_mut().zip(self.fanout.iter_mut()) {
            if !batch.is_empty() {
                pump.submit(now, client, query, batch);
                batch.clear();
            }
        }
    }

    /// Crashes shard `shard` (a fault-plane `ShardDown` start): aborts
    /// its in-flight transfers, evacuates its queue, and re-routes
    /// every displaced request to the first live replica (or parks it).
    /// Transfers that completed but whose wake-up notification was
    /// dropped are flushed into `completed` — the driver routes them
    /// like any retired batch (the data already arrived).
    pub fn fail_shard(
        &mut self,
        shard: usize,
        now: SimTime,
        completed: &mut Vec<Delivery<Arc<Segment>>>,
    ) {
        assert!(
            !self.down[shard],
            "shard {shard} crashed while already down"
        );
        self.down[shard] = true;
        self.down_since[shard] = Some(now);
        self.stats[shard].downs += 1;
        let mut displaced = std::mem::take(&mut self.displaced);
        displaced.clear();
        let aborted = self.pumps[shard].fail(now, &mut displaced, completed);
        self.stats[shard].aborted_transfers += aborted as u64;
        self.stats[shard].evacuated_requests += (displaced.len() - aborted) as u64;
        // Re-route in evacuation order: aborted in-flight requests
        // first (slot order), then the queue (arrival order). Each
        // re-submission is a fresh single-object batch — a requeue at
        // the destination's tail.
        for req in displaced.drain(..) {
            match self.route(req.object) {
                Some(live) => self.pumps[live].submit(now, req.client, req.query, &[req.object]),
                None => {
                    self.parked_total += 1;
                    self.parked.push_back((req.client, req.query, req.object));
                }
            }
        }
        self.displaced = displaced;
    }

    /// Recovers shard `shard` (a fault-plane `ShardDown` end): accrues
    /// its downtime, reopens it for routing, and re-submits every
    /// parked request that now has a live replica, in arrival order.
    pub fn recover_shard(&mut self, shard: usize, now: SimTime) {
        assert!(self.down[shard], "shard {shard} recovered while up");
        self.down[shard] = false;
        let since = self.down_since[shard]
            .take()
            .expect("down shard has a crash instant");
        self.stats[shard].downtime_micros += now.since(since).as_micros();
        self.pumps[shard].recover(now);
        for _ in 0..self.parked.len() {
            let (client, query, obj) = self.parked.pop_front().expect("len checked");
            match self.route(obj) {
                Some(live) => self.pumps[live].submit(now, client, query, &[obj]),
                None => self.parked.push_back((client, query, obj)),
            }
        }
    }

    /// Scales shard `shard`'s effective per-stream bandwidth (a
    /// fault-plane brown-out; `1.0` restores nominal).
    pub fn set_bandwidth_factor(&mut self, shard: usize, factor: f64) {
        self.pumps[shard].set_bandwidth_factor(factor);
    }

    /// Installs shard `shard`'s cache tiers (assembly time; a disabled
    /// config installs nothing — see [`DevicePump::set_cache`]).
    pub fn set_cache(&mut self, shard: usize, config: skipper_csd::cache::CacheConfig) {
        self.pumps[shard].set_cache(config);
    }

    /// Installs a drop-wakeup injection on shard `shard` (assembly
    /// time; see [`DevicePump::plan_drop`]).
    pub fn plan_drop(&mut self, shard: usize, nth: u64, redeliver_after: SimDuration) {
        self.pumps[shard].plan_drop(nth, redeliver_after);
    }

    /// Accrues downtime for shards still down when the run ends.
    pub fn close_downtime(&mut self, end: SimTime) {
        for shard in 0..self.pumps.len() {
            if let Some(since) = self.down_since[shard].take() {
                self.stats[shard].downtime_micros += end.since(since).as_micros();
            }
        }
    }

    /// Per-shard fault counters, in shard order.
    pub fn fault_stats(&self) -> &[ShardFaultStats] {
        &self.stats
    }

    /// Requests that ever parked for lack of a live replica.
    pub fn parked_total(&self) -> u64 {
        self.parked_total
    }

    /// Requests currently parked (non-zero only mid-outage).
    pub fn parked_len(&self) -> usize {
        self.parked.len()
    }

    /// Pokes every shard in shard order, invoking `armed` with
    /// `(shard, wake-up)` for each newly armed (or re-armed) wake-up —
    /// including watchdog redelivery wake-ups for dropped batches.
    /// Allocation-free: this runs once per event on the loop's hot
    /// path. A re-arm supersedes the shard's previous wake-up, which
    /// then fires as a stale no-op.
    pub fn poke_all(&mut self, now: SimTime, mut armed: impl FnMut(usize, SimTime)) {
        for (shard, pump) in self.pumps.iter_mut().enumerate() {
            if let Some(at) = pump.take_redelivery_arm() {
                armed(shard, at);
            }
            if let Some(at) = pump.take_cache_arm() {
                armed(shard, at);
            }
            if let Some(at) = pump.poke(now) {
                armed(shard, at);
            }
        }
    }

    /// Handles shard `shard`'s wake-up firing at `now`: every transfer
    /// the shard retired at that instant (empty for switch completions
    /// and stale, superseded wake-ups).
    pub fn on_wakeup(&mut self, shard: usize, now: SimTime) -> Vec<Delivery<Arc<Segment>>> {
        self.pumps[shard].on_wakeup(now)
    }

    /// Zero-allocation form of [`DeviceFleet::on_wakeup`]: retired
    /// transfers are appended to the caller's reusable scratch buffer.
    pub fn on_wakeup_into(
        &mut self,
        shard: usize,
        now: SimTime,
        out: &mut Vec<Delivery<Arc<Segment>>>,
    ) {
        self.pumps[shard].on_wakeup_into(now, out);
    }

    /// The earliest armed wake-up across the fleet ([`SimTime::MAX`]
    /// when no shard has one): the soonest any delivery can reach any
    /// client — device completions and watchdog redeliveries alike —
    /// used by the safe-horizon computation.
    pub fn min_armed(&self) -> SimTime {
        self.pumps
            .iter()
            .filter_map(|p| p.next_wakeup())
            .min()
            .unwrap_or(SimTime::MAX)
    }

    /// Drains every shard's private completion chain strictly below
    /// `horizon` into its replay log, on `workers` scoped threads (the
    /// windowed-parallel execution barrier). Shards drain
    /// independently — per-shard output is identical for every worker
    /// count, so parallelism never changes the run. Fault-affected
    /// shards skip pre-execution and take the live path (see
    /// [`DevicePump`]'s fault-plane docs).
    pub fn drain_window_parallel(&mut self, horizon: SimTime, workers: usize) {
        drain_parallel(&mut self.pumps, horizon, workers);
    }

    /// Read access to every pump, in shard order.
    pub fn pumps(&self) -> &[DevicePump] {
        &self.pumps
    }

    /// Consumes the fleet into its pumps, in shard order (end-of-run
    /// result assembly).
    pub fn into_pumps(self) -> Vec<DevicePump> {
        self.pumps
    }

    /// True when every shard is idle with an empty queue, nothing is
    /// parked at the fleet, and no watchdog batch is pending.
    pub fn is_quiescent(&self) -> bool {
        self.pumps.iter().all(|p| p.is_quiescent()) && self.parked.is_empty()
    }
}
