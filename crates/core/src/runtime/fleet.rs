//! The device fleet: N pumps over N independently configured CSDs.
//!
//! One cold storage device tops out at a rack; the production path is a
//! *fleet* of CSD shards behind a single scenario. [`DeviceFleet`] owns
//! one [`DevicePump`] per shard plus the object → shard map fixed at
//! layout time by a
//! [`PlacementPolicy`](skipper_csd::PlacementPolicy): `submit` fans a
//! GET batch out to the owning shards (preserving relative order within
//! each shard), and each shard keeps its own wake-up protocol, so the
//! event loop interleaves devices deterministically — shard index breaks
//! every tie.
//!
//! A 1-shard fleet is byte-for-byte the old single-device runtime: the
//! whole batch goes to pump 0 in submission order and the event
//! schedule is unchanged.

use std::collections::HashMap;
use std::sync::Arc;

use skipper_csd::{CsdDevice, Delivery, ObjectId, QueryId};
use skipper_relational::segment::Segment;
use skipper_sim::parallel::drain_parallel;
use skipper_sim::SimTime;

use super::pump::DevicePump;

/// N device pumps + the object → shard map.
pub struct DeviceFleet {
    pumps: Vec<DevicePump>,
    shard_of: HashMap<ObjectId, usize>,
    /// Reusable per-shard fan-out buffers for `submit` — pooled so a
    /// multi-shard batch costs no allocation once warm, matching the
    /// 1-shard path (the 8-shard allocs/event regression fix).
    fanout: Vec<Vec<ObjectId>>,
}

impl DeviceFleet {
    /// Assembles a fleet from per-shard devices and the placement map.
    ///
    /// # Panics
    /// Panics on an empty fleet or a map entry pointing outside it.
    pub fn new(devices: Vec<CsdDevice<Arc<Segment>>>, shard_of: HashMap<ObjectId, usize>) -> Self {
        assert!(!devices.is_empty(), "a fleet needs at least one device");
        assert!(
            shard_of.values().all(|&s| s < devices.len()),
            "placement map points outside the fleet"
        );
        let fanout = vec![Vec::new(); devices.len()];
        DeviceFleet {
            pumps: devices.into_iter().map(DevicePump::new).collect(),
            shard_of,
            fanout,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.pumps.len()
    }

    /// The shard storing `object` (shard 0 when the fleet has one
    /// device and no explicit map).
    ///
    /// # Panics
    /// Panics for objects never placed on a multi-shard fleet.
    pub fn shard_for(&self, object: ObjectId) -> usize {
        if self.pumps.len() == 1 {
            return 0;
        }
        *self
            .shard_of
            .get(&object)
            .unwrap_or_else(|| panic!("object {object} was never placed on any shard"))
    }

    /// Fans GET requests out to the owning shards. Objects keep their
    /// relative order within each shard's batch; shards are submitted in
    /// shard order for determinism.
    pub fn submit(&mut self, now: SimTime, client: usize, query: QueryId, objects: &[ObjectId]) {
        if self.pumps.len() == 1 {
            self.pumps[0].submit(now, client, query, objects);
            return;
        }
        for &obj in objects {
            let shard = *self
                .shard_of
                .get(&obj)
                .unwrap_or_else(|| panic!("object {obj} was never placed on any shard"));
            self.fanout[shard].push(obj);
        }
        for (pump, batch) in self.pumps.iter_mut().zip(self.fanout.iter_mut()) {
            if !batch.is_empty() {
                pump.submit(now, client, query, batch);
                batch.clear();
            }
        }
    }

    /// Pokes every shard in shard order, invoking `armed` with
    /// `(shard, wake-up)` for each newly armed (or re-armed) wake-up.
    /// Allocation-free: this runs once per event on the loop's hot
    /// path. A re-arm supersedes the shard's previous wake-up, which
    /// then fires as a stale no-op.
    pub fn poke_all(&mut self, now: SimTime, mut armed: impl FnMut(usize, SimTime)) {
        for (shard, pump) in self.pumps.iter_mut().enumerate() {
            if let Some(at) = pump.poke(now) {
                armed(shard, at);
            }
        }
    }

    /// Handles shard `shard`'s wake-up firing at `now`: every transfer
    /// the shard retired at that instant (empty for switch completions
    /// and stale, superseded wake-ups).
    pub fn on_wakeup(&mut self, shard: usize, now: SimTime) -> Vec<Delivery<Arc<Segment>>> {
        self.pumps[shard].on_wakeup(now)
    }

    /// Zero-allocation form of [`DeviceFleet::on_wakeup`]: retired
    /// transfers are appended to the caller's reusable scratch buffer.
    pub fn on_wakeup_into(
        &mut self,
        shard: usize,
        now: SimTime,
        out: &mut Vec<Delivery<Arc<Segment>>>,
    ) {
        self.pumps[shard].on_wakeup_into(now, out);
    }

    /// The earliest armed wake-up across the fleet ([`SimTime::MAX`]
    /// when no shard has one): the soonest any delivery can reach any
    /// client, used by the safe-horizon computation.
    pub fn min_armed(&self) -> SimTime {
        self.pumps
            .iter()
            .filter_map(|p| p.armed_at())
            .min()
            .unwrap_or(SimTime::MAX)
    }

    /// Drains every shard's private completion chain strictly below
    /// `horizon` into its replay log, on `workers` scoped threads (the
    /// windowed-parallel execution barrier). Shards drain
    /// independently — per-shard output is identical for every worker
    /// count, so parallelism never changes the run.
    pub fn drain_window_parallel(&mut self, horizon: SimTime, workers: usize) {
        drain_parallel(&mut self.pumps, horizon, workers);
    }

    /// Read access to every pump, in shard order.
    pub fn pumps(&self) -> &[DevicePump] {
        &self.pumps
    }

    /// Consumes the fleet into its pumps, in shard order (end-of-run
    /// result assembly).
    pub fn into_pumps(self) -> Vec<DevicePump> {
        self.pumps
    }

    /// True when every shard is idle with an empty queue.
    pub fn is_quiescent(&self) -> bool {
        self.pumps.iter().all(|p| p.device().is_quiescent())
    }
}
