//! The record/metrics collector: per-query measurement drafts, finished
//! records, and the [`RunResult`] returned by every scenario.
//!
//! During the run each client accumulates a [`RecordDraft`] (start time,
//! charged processing, blocked intervals); when a query finishes the
//! draft becomes a [`PendingRecord`]. Stall attribution is post-hoc:
//! once the run is over, every blocked interval is matched against the
//! device's activity trace to split waiting into switch vs transfer vs
//! idle stalls (the Figure 9 breakdown).

use skipper_csd::metrics::DeviceMetrics;
use skipper_csd::{ObjectId, QueryId};
use skipper_relational::tuple::Row;
use skipper_relational::value::Value;
use skipper_sim::trace::Span;
use skipper_sim::{ActivityTrace, Attribution, MergedTimeline, SimDuration, SimTime};

use crate::engine::EngineStats;

/// One query's measurements.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryRecord {
    /// Query name.
    pub query: String,
    /// Client index.
    pub client: usize,
    /// Per-client query sequence number.
    pub seq: u32,
    /// Engine label ("skipper" / "vanilla" / custom factory label).
    pub engine: &'static str,
    /// Query start (submission of the first GET batch).
    pub start: SimTime,
    /// Query completion (final processing finished).
    pub end: SimTime,
    /// Charged CPU (processing) time.
    pub processing: SimDuration,
    /// GETs in the initial batch issued at query start — the whole
    /// working set for Skipper's issue-everything-upfront strategy, one
    /// for a pull-based engine.
    pub upfront_gets: u64,
    /// Blocked time attributed against the device trace: switch stalls,
    /// transfer stalls, device-idle waits.
    pub stalls: Attribution,
    /// Engine work counters (GETs, reissues, tuples, subplans).
    pub stats: EngineStats,
    /// The query result, sorted by group key.
    pub result: Vec<(Row, Vec<Value>)>,
}

impl QueryRecord {
    /// End-to-end execution time.
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// In-flight measurement state for one query.
#[derive(Default)]
pub struct RecordDraft {
    /// Query name.
    pub query_name: String,
    /// Submission instant.
    pub start: SimTime,
    /// Charged processing so far.
    pub processing: SimDuration,
    /// Size of the initial GET batch.
    pub upfront_gets: u64,
    /// Start of the current blocked interval, if blocked.
    pub blocked_from: Option<SimTime>,
    /// Completed blocked intervals.
    pub blocked: Vec<(SimTime, SimTime)>,
}

impl RecordDraft {
    /// Opens a draft at query submission.
    pub fn begin(query_name: String, now: SimTime) -> Self {
        RecordDraft {
            query_name,
            start: now,
            processing: SimDuration::ZERO,
            upfront_gets: 0,
            blocked_from: Some(now),
            blocked: Vec::new(),
        }
    }

    /// Closes the current blocked interval (delivery arrived).
    pub fn unblock(&mut self, now: SimTime) {
        if let Some(from) = self.blocked_from.take() {
            if now > from {
                self.blocked.push((from, now));
            }
        }
    }
}

/// A finished record awaiting post-hoc stall attribution.
pub struct PendingRecord {
    /// The record (with `stalls` still zeroed).
    pub record: QueryRecord,
    /// The raw blocked intervals to attribute.
    pub blocked_intervals: Vec<(SimTime, SimTime)>,
}

/// Attributes every blocked interval of `records` against the device
/// trace and returns the finished records.
pub fn attribute_stalls(trace: &ActivityTrace, records: Vec<PendingRecord>) -> Vec<QueryRecord> {
    attribute_stalls_fleet(&[trace], records)
}

/// Fleet-aware stall attribution: blocked intervals are sliced against
/// the *union* of every shard's activity trace (transfer beats switch
/// beats idle at each instant), so the Figure 9 breakdown stays exact —
/// `processing + stalls == duration` — on any shard count.
///
/// The shard span lists are flattened once into a
/// [`MergedTimeline`] (a single k-way merge), so whole-run attribution
/// costs O((spans + intervals)·log) total; the property suite pins the
/// result equal to the per-interval `attribute_union` reference.
pub fn attribute_stalls_fleet(
    traces: &[&ActivityTrace],
    records: Vec<PendingRecord>,
) -> Vec<QueryRecord> {
    let lists: Vec<&[Span]> = traces.iter().map(|tr| tr.spans()).collect();
    let timeline = MergedTimeline::build(&lists);
    attribute_stalls_merged(&timeline, records)
}

/// Attribution against a pre-built fleet timeline: the runtime builds
/// the [`MergedTimeline`] once per run and reuses it for every
/// client's records (building per client would repeat the k-way merge
/// C times).
pub fn attribute_stalls_merged(
    timeline: &MergedTimeline,
    records: Vec<PendingRecord>,
) -> Vec<QueryRecord> {
    records
        .into_iter()
        .map(|mut rec| {
            let mut attr = Attribution::default();
            for &(a, b) in &rec.blocked_intervals {
                attr.merge(timeline.attribute(a, b));
            }
            rec.record.stalls = attr;
            rec.record
        })
        .collect()
}

/// One CSD shard's share of a run: its own counters, per-stream
/// activity spans, scheduler, and delivery ledger.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardResult {
    /// Shard index within the fleet.
    pub shard: usize,
    /// This shard's device counters.
    pub metrics: DeviceMetrics,
    /// The control stream's activity spans, in time order: every switch
    /// plus stream 0's transfers. For a serial (1-stream) device this
    /// is the whole activity log, exactly as it always was.
    pub spans: Vec<Span>,
    /// The remaining streams' transfer spans (stream `k+1` at index
    /// `k`), each list sequential in time; spans overlap *across* lists
    /// while transfers run in parallel. Empty for a serial device.
    pub extra_stream_spans: Vec<Vec<Span>>,
    /// Scheduler deployed on this shard.
    pub scheduler: &'static str,
    /// Completed transfers in service order: `(client, query, object)`.
    pub deliveries: Vec<(usize, QueryId, ObjectId)>,
}

impl ShardResult {
    /// Every stream's span list, control stream first.
    pub fn stream_span_lists(&self) -> impl Iterator<Item = &[Span]> {
        std::iter::once(self.spans.as_slice())
            .chain(self.extra_stream_spans.iter().map(|s| s.as_slice()))
    }

    /// This shard's transfer overlap/utilization rollup.
    pub fn stream_rollup(&self) -> StreamRollup {
        let mut rollup = StreamRollup {
            streams: 1 + self.extra_stream_spans.len(),
            peak_streams: self.metrics.peak_concurrent_streams.max(1),
            // Stream-occupancy time comes from the device's own
            // accounting (one source of truth); the spans below only
            // contribute the wall-clock union and the switch wall.
            transfer_stream_secs: self.metrics.transfer_busy_micros as f64 / 1e6,
            ..StreamRollup::default()
        };
        let mut transfers: Vec<(SimTime, SimTime)> = Vec::new();
        for list in self.stream_span_lists() {
            for span in list {
                match span.activity {
                    skipper_sim::Activity::Transferring { .. } => {
                        transfers.push((span.start, span.end));
                    }
                    skipper_sim::Activity::Switching => {
                        rollup.switching_secs += span.end.since(span.start).as_secs_f64();
                    }
                    skipper_sim::Activity::Idle => {}
                }
            }
        }
        // Union of the transfer intervals across streams: the wall-clock
        // time at least one stream was busy.
        transfers.sort_unstable();
        let mut cursor: Option<(SimTime, SimTime)> = None;
        for (start, end) in transfers {
            match &mut cursor {
                Some((_, open_end)) if start <= *open_end => *open_end = (*open_end).max(end),
                _ => {
                    if let Some((s, e)) = cursor.take() {
                        rollup.transfer_wall_secs += e.since(s).as_secs_f64();
                    }
                    cursor = Some((start, end));
                }
            }
        }
        if let Some((s, e)) = cursor {
            rollup.transfer_wall_secs += e.since(s).as_secs_f64();
        }
        rollup
    }
}

/// The §5.2.1 overlap/utilization rollup: how much intra-group transfer
/// work overlapped in time. `transfer_stream_secs` is stream-occupancy
/// time (Σ per-transfer durations); `transfer_wall_secs` is the
/// wall-clock time at least one stream was transferring. Their ratio —
/// [`StreamRollup::overlap`] — is 1.0 for the serialized middleware and
/// approaches the stream count as the pipeline saturates, which is
/// exactly the "parallelize servicing within a group" win: the same
/// stream-seconds of work compressed into `1/overlap` of the wall time.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StreamRollup {
    /// Configured transfer slots (for a fleet: the max over shards).
    pub streams: usize,
    /// Peak simultaneously busy streams observed.
    pub peak_streams: u32,
    /// Stream-occupancy transfer time in seconds (Σ over transfers).
    pub transfer_stream_secs: f64,
    /// Wall-clock seconds with ≥ 1 stream transferring (per shard,
    /// summed across shards for the run-level rollup).
    pub transfer_wall_secs: f64,
    /// Wall-clock seconds spent switching groups (summed across shards).
    pub switching_secs: f64,
}

impl StreamRollup {
    /// Mean transfer concurrency while transferring:
    /// `transfer_stream_secs / transfer_wall_secs` (1.0 when idle).
    pub fn overlap(&self) -> f64 {
        if self.transfer_wall_secs > 0.0 {
            self.transfer_stream_secs / self.transfer_wall_secs
        } else {
            1.0
        }
    }

    /// Fraction of the available stream-slots actually busy while the
    /// device was transferring: `overlap / streams`.
    pub fn utilization(&self) -> f64 {
        if self.streams > 0 {
            self.overlap() / self.streams as f64
        } else {
            0.0
        }
    }

    /// Merges another shard's rollup into this one.
    pub fn absorb(&mut self, other: &StreamRollup) {
        self.streams = self.streams.max(other.streams);
        self.peak_streams = self.peak_streams.max(other.peak_streams);
        self.transfer_stream_secs += other.transfer_stream_secs;
        self.transfer_wall_secs += other.transfer_wall_secs;
        self.switching_secs += other.switching_secs;
    }
}

/// Everything measured by one scenario run.
///
/// `PartialEq`/`Debug` cover every field, so a whole run can be
/// compared byte-for-byte — the determinism tests assert parallel
/// runs at different worker counts produce equal `RunResult`s.
#[derive(Debug, PartialEq)]
pub struct RunResult {
    /// Per-client query records, in execution order.
    pub clients: Vec<Vec<QueryRecord>>,
    /// Device counters, rolled up across every shard of the fleet
    /// (identical to shard 0's counters for a single-device run).
    pub device: DeviceMetrics,
    /// Per-shard breakdowns, in shard order (length = fleet size).
    pub shards: Vec<ShardResult>,
    /// Virtual time at which the last event fired.
    pub makespan: SimTime,
    /// Scheduler label used (shard 0's scheduler for a fleet).
    pub scheduler: &'static str,
}

impl RunResult {
    /// Iterator over every query record.
    pub fn records(&self) -> impl Iterator<Item = &QueryRecord> {
        self.clients.iter().flatten()
    }

    /// Shard 0's activity spans (the whole device's spans for a
    /// single-device run; see [`RunResult::shards`] for the rest).
    /// Borrows the shard breakdown instead of keeping a duplicate copy.
    pub fn device_spans(&self) -> &[Span] {
        &self.shards[0].spans
    }

    /// Mean per-query execution time in seconds (the paper's
    /// "average execution time" y-axis).
    pub fn mean_query_secs(&self) -> f64 {
        let (mut total, mut n) = (0.0, 0u32);
        for r in self.records() {
            total += r.duration().as_secs_f64();
            n += 1;
        }
        if n == 0 {
            0.0
        } else {
            total / n as f64
        }
    }

    /// Sum of all query execution times in seconds ("cumulative
    /// execution time").
    pub fn cumulative_secs(&self) -> f64 {
        self.records().map(|r| r.duration().as_secs_f64()).sum()
    }

    /// Total GETs issued across all queries (the Figure 11 right axis).
    pub fn total_gets(&self) -> u64 {
        self.records().map(|r| r.stats.gets_issued).sum()
    }

    /// Per-query stretches against an ideal (single-tenant) time.
    pub fn stretches(&self, ideal: SimDuration) -> Vec<f64> {
        self.records()
            .map(|r| skipper_sim::stats::stretch(r.duration(), ideal))
            .collect()
    }

    /// An ASCII Gantt strip of shard 0's activity over the whole run:
    /// `S` = group switch, digits = transfer to that client, `.` = idle.
    /// Renders straight off the borrowed span list — no trace rebuild,
    /// no span copies. For fleets, see [`RunResult::shard_timeline`].
    pub fn timeline(&self, width: usize) -> String {
        skipper_sim::timeline::render_spans(
            self.device_spans(),
            SimTime::ZERO,
            self.makespan,
            width,
        )
    }

    /// The ASCII Gantt strip of one shard's activity.
    pub fn shard_timeline(&self, shard: usize, width: usize) -> String {
        skipper_sim::timeline::render_spans(
            &self.shards[shard].spans,
            SimTime::ZERO,
            self.makespan,
            width,
        )
    }

    /// The fleet-wide transfer overlap/utilization rollup (§5.2.1):
    /// stream-seconds vs wall-seconds of intra-group transfer across
    /// every shard. `overlap()` reads 1.0 for the paper's serialized
    /// middleware and approaches the stream count as the service
    /// pipeline saturates.
    pub fn stream_rollup(&self) -> StreamRollup {
        let mut total = StreamRollup::default();
        for shard in &self.shards {
            total.absorb(&shard.stream_rollup());
        }
        total
    }

    /// The fleet's delivery ledger as a sorted multiset of
    /// `(client, query, object)` triples: the work-conservation
    /// invariant — a sharded run must produce exactly the multiset of
    /// the equivalent 1-shard run.
    pub fn delivery_multiset(&self) -> Vec<(usize, QueryId, ObjectId)> {
        let mut all: Vec<(usize, QueryId, ObjectId)> = self
            .shards
            .iter()
            .flat_map(|s| s.deliveries.iter().copied())
            .collect();
        all.sort_unstable();
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipper_sim::Activity;

    #[test]
    fn draft_tracks_blocked_intervals() {
        let mut d = RecordDraft::begin("q".into(), SimTime::from_secs(5));
        assert_eq!(d.start, SimTime::from_secs(5));
        d.unblock(SimTime::from_secs(8));
        assert_eq!(
            d.blocked,
            vec![(SimTime::from_secs(5), SimTime::from_secs(8))]
        );
        // Zero-length blocks are dropped.
        d.blocked_from = Some(SimTime::from_secs(9));
        d.unblock(SimTime::from_secs(9));
        assert_eq!(d.blocked.len(), 1);
        // Unblocking while not blocked is a no-op.
        d.unblock(SimTime::from_secs(10));
        assert_eq!(d.blocked.len(), 1);
    }

    #[test]
    fn attribution_splits_by_trace() {
        let mut trace = ActivityTrace::new();
        trace.record(SimTime::ZERO, SimTime::from_secs(10), Activity::Switching);
        trace.record(
            SimTime::from_secs(10),
            SimTime::from_secs(14),
            Activity::Transferring { client: 0 },
        );
        let rec = PendingRecord {
            record: QueryRecord {
                query: "q".into(),
                client: 0,
                seq: 0,
                engine: "skipper",
                start: SimTime::ZERO,
                end: SimTime::from_secs(14),
                processing: SimDuration::ZERO,
                upfront_gets: 1,
                stalls: Attribution::default(),
                stats: EngineStats::default(),
                result: Vec::new(),
            },
            blocked_intervals: vec![(SimTime::ZERO, SimTime::from_secs(14))],
        };
        let out = attribute_stalls(&trace, vec![rec]);
        assert_eq!(out[0].stalls.switching, SimDuration::from_secs(10));
        assert_eq!(out[0].stalls.transfer, SimDuration::from_secs(4));
    }
}
