//! The record/metrics collector: per-query measurement drafts, finished
//! records, and the [`RunResult`] returned by every scenario.
//!
//! During the run each client accumulates a [`RecordDraft`] (start time,
//! charged processing, blocked intervals); when a query finishes the
//! draft becomes a [`PendingRecord`]. Stall attribution is post-hoc:
//! once the run is over, every blocked interval is matched against the
//! device's activity trace to split waiting into switch vs transfer vs
//! idle stalls (the Figure 9 breakdown).

use skipper_cost::CostReport;
use skipper_csd::cache::CacheStats;
use skipper_csd::metrics::DeviceMetrics;
use skipper_csd::{EnergyReport, ObjectId, QueryId};
use skipper_relational::tuple::Row;
use skipper_relational::value::Value;
use skipper_sim::trace::Span;
use skipper_sim::{
    ActivityTrace, Attribution, MergedTimeline, QuantileSketch, SimDuration, SimTime,
};

use crate::engine::EngineStats;

use super::protect::ProtectionSummary;

/// One query's measurements.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryRecord {
    /// Query name.
    pub query: String,
    /// Client index.
    pub client: usize,
    /// Per-client query sequence number.
    pub seq: u32,
    /// Engine label ("skipper" / "vanilla" / custom factory label).
    pub engine: &'static str,
    /// Arrival-process release instant, when the query came from an
    /// open arrival process (`None` for closed-loop queries, which by
    /// definition release the moment the tenant frees up). A release
    /// landing while the tenant is busy precedes `start` — the gap is
    /// queue-wait, and it counts toward [`QueryRecord::response_time`].
    pub release: Option<SimTime>,
    /// Query start (submission of the first GET batch).
    pub start: SimTime,
    /// Query completion (final processing finished).
    pub end: SimTime,
    /// Charged CPU (processing) time.
    pub processing: SimDuration,
    /// GETs in the initial batch issued at query start — the whole
    /// working set for Skipper's issue-everything-upfront strategy, one
    /// for a pull-based engine.
    pub upfront_gets: u64,
    /// Blocked time attributed against the device trace: switch stalls,
    /// transfer stalls, device-idle waits.
    pub stalls: Attribution,
    /// Engine work counters (GETs, reissues, tuples, subplans).
    pub stats: EngineStats,
    /// The query result, sorted by group key.
    pub result: Vec<(Row, Vec<Value>)>,
}

impl QueryRecord {
    /// End-to-end execution time (first GET batch → completion).
    /// Excludes queue-wait; the open-system latency a client observes
    /// is [`QueryRecord::response_time`].
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }

    /// Open-system response time: release → completion, queue-wait
    /// included. Equals [`QueryRecord::duration`] for closed-loop
    /// queries (no release instant ⇒ no queueing to account for).
    pub fn response_time(&self) -> SimDuration {
        self.end.since(self.release.unwrap_or(self.start))
    }

    /// Time spent queued behind the tenant's earlier queries: release
    /// → first GET batch. Zero for closed-loop queries.
    pub fn queue_wait(&self) -> SimDuration {
        match self.release {
            Some(release) => self.start.saturating_since(release),
            None => SimDuration::ZERO,
        }
    }
}

/// In-flight measurement state for one query.
#[derive(Default)]
pub struct RecordDraft {
    /// Query name.
    pub query_name: String,
    /// Release instant, for open-arrival queries.
    pub release: Option<SimTime>,
    /// Submission instant.
    pub start: SimTime,
    /// Charged processing so far.
    pub processing: SimDuration,
    /// Size of the initial GET batch.
    pub upfront_gets: u64,
    /// Start of the current blocked interval, if blocked.
    pub blocked_from: Option<SimTime>,
    /// Completed blocked intervals.
    pub blocked: Vec<(SimTime, SimTime)>,
}

impl RecordDraft {
    /// Opens a draft at query submission. `release` is the arrival
    /// instant for open-arrival queries (`None` for closed-loop), which
    /// the finished record keeps so queue-wait survives into
    /// [`QueryRecord::response_time`].
    pub fn begin(query_name: String, release: Option<SimTime>, now: SimTime) -> Self {
        RecordDraft {
            query_name,
            release,
            start: now,
            processing: SimDuration::ZERO,
            upfront_gets: 0,
            blocked_from: Some(now),
            blocked: Vec::new(),
        }
    }

    /// Closes the current blocked interval (delivery arrived).
    pub fn unblock(&mut self, now: SimTime) {
        if let Some(from) = self.blocked_from.take() {
            if now > from {
                self.blocked.push((from, now));
            }
        }
    }
}

/// A finished record awaiting post-hoc stall attribution.
pub struct PendingRecord {
    /// The record (with `stalls` still zeroed).
    pub record: QueryRecord,
    /// The raw blocked intervals to attribute.
    pub blocked_intervals: Vec<(SimTime, SimTime)>,
}

/// Attributes every blocked interval of `records` against the device
/// trace and returns the finished records.
pub fn attribute_stalls(trace: &ActivityTrace, records: Vec<PendingRecord>) -> Vec<QueryRecord> {
    attribute_stalls_fleet(&[trace], records)
}

/// Fleet-aware stall attribution: blocked intervals are sliced against
/// the *union* of every shard's activity trace (transfer beats switch
/// beats idle at each instant), so the Figure 9 breakdown stays exact —
/// `processing + stalls == duration` — on any shard count.
///
/// The shard span lists are flattened once into a
/// [`MergedTimeline`] (a single k-way merge), so whole-run attribution
/// costs O((spans + intervals)·log) total; the property suite pins the
/// result equal to the per-interval `attribute_union` reference.
pub fn attribute_stalls_fleet(
    traces: &[&ActivityTrace],
    records: Vec<PendingRecord>,
) -> Vec<QueryRecord> {
    let lists: Vec<&[Span]> = traces.iter().map(|tr| tr.spans()).collect();
    let timeline = MergedTimeline::build(&lists);
    attribute_stalls_merged(&timeline, records)
}

/// Attribution against a pre-built fleet timeline: the runtime builds
/// the [`MergedTimeline`] once per run and reuses it for every
/// client's records (building per client would repeat the k-way merge
/// C times).
pub fn attribute_stalls_merged(
    timeline: &MergedTimeline,
    records: Vec<PendingRecord>,
) -> Vec<QueryRecord> {
    records
        .into_iter()
        .map(|mut rec| {
            let mut attr = Attribution::default();
            for &(a, b) in &rec.blocked_intervals {
                attr.merge(timeline.attribute(a, b));
            }
            rec.record.stalls = attr;
            rec.record
        })
        .collect()
}

/// Per-shard fault-plane counters: what the deterministic fault
/// schedule did to one shard over the run. All-zero on fault-free runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardFaultStats {
    /// Crash episodes applied to this shard.
    pub downs: u64,
    /// Total virtual time spent down, in microseconds (outages still
    /// open at run end accrue up to the makespan).
    pub downtime_micros: u64,
    /// Queued requests evacuated from this shard by its crashes
    /// (re-routed to surviving replicas or parked until recovery).
    pub evacuated_requests: u64,
    /// In-flight transfers aborted on this shard by its crashes (the
    /// bytes never arrived; the requests were re-served elsewhere).
    pub aborted_transfers: u64,
    /// Requests this shard served *as a failover target* — routed here
    /// because the preferred replica was down.
    pub failover_receipts: u64,
}

/// Fleet-wide fault-plane summary of a run. On a fault-free run every
/// counter is zero and [`AvailabilitySummary::availability`] is 1.0.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AvailabilitySummary {
    /// Fault-plane calendar actions applied (crashes, recoveries,
    /// brown-out starts and ends).
    pub fault_events: u64,
    /// Σ per-shard downtime, in microseconds.
    pub downtime_micros: u64,
    /// Σ per-shard evacuated requests.
    pub evacuated_requests: u64,
    /// Σ per-shard aborted in-flight transfers.
    pub aborted_transfers: u64,
    /// Σ per-shard failover receipts (requests served by a non-preferred
    /// replica).
    pub failovers: u64,
    /// Requests that ever parked at the fleet for lack of any live
    /// replica (k = 1 outages, or every replica down at once).
    pub parked_requests: u64,
    /// Fraction of shard-time the fleet was up:
    /// `1 − downtime / (shards × makespan)` (1.0 on an empty run).
    pub availability: f64,
}

impl AvailabilitySummary {
    /// Rolls per-shard fault counters up into the fleet summary.
    pub fn from_shards(
        stats: &[ShardFaultStats],
        fault_events: u64,
        parked_requests: u64,
        makespan: SimTime,
    ) -> AvailabilitySummary {
        let downtime_micros: u64 = stats.iter().map(|s| s.downtime_micros).sum();
        let shard_time = (stats.len() as u64).saturating_mul(makespan.as_micros());
        AvailabilitySummary {
            fault_events,
            downtime_micros,
            evacuated_requests: stats.iter().map(|s| s.evacuated_requests).sum(),
            aborted_transfers: stats.iter().map(|s| s.aborted_transfers).sum(),
            failovers: stats.iter().map(|s| s.failover_receipts).sum(),
            parked_requests,
            availability: if shard_time == 0 {
                1.0
            } else {
                1.0 - downtime_micros as f64 / shard_time as f64
            },
        }
    }
}

/// One CSD shard's share of a run: its own counters, per-stream
/// activity spans, scheduler, and delivery ledger.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardResult {
    /// Shard index within the fleet.
    pub shard: usize,
    /// This shard's device counters.
    pub metrics: DeviceMetrics,
    /// This shard's fault-plane counters (all-zero without faults).
    pub fault: ShardFaultStats,
    /// The control stream's activity spans, in time order: every switch
    /// plus stream 0's transfers. For a serial (1-stream) device this
    /// is the whole activity log, exactly as it always was.
    pub spans: Vec<Span>,
    /// The remaining streams' transfer spans (stream `k+1` at index
    /// `k`), each list sequential in time; spans overlap *across* lists
    /// while transfers run in parallel. Empty for a serial device.
    pub extra_stream_spans: Vec<Vec<Span>>,
    /// Scheduler deployed on this shard.
    pub scheduler: &'static str,
    /// Completed transfers in service order: `(client, query, object)`.
    pub deliveries: Vec<(usize, QueryId, ObjectId)>,
    /// Shard-cache counters (all-zero when the shard runs uncached).
    pub cache: CacheStats,
    /// GETs served from the cache tiers, in service order (recorded
    /// under `LedgerMode::Full`, like [`ShardResult::deliveries`]).
    pub cache_deliveries: Vec<(usize, QueryId, ObjectId)>,
}

impl ShardResult {
    /// Every stream's span list, control stream first.
    pub fn stream_span_lists(&self) -> impl Iterator<Item = &[Span]> {
        std::iter::once(self.spans.as_slice())
            .chain(self.extra_stream_spans.iter().map(|s| s.as_slice()))
    }

    /// This shard's transfer overlap/utilization rollup.
    pub fn stream_rollup(&self) -> StreamRollup {
        let mut rollup = StreamRollup {
            streams: 1 + self.extra_stream_spans.len(),
            peak_streams: self.metrics.peak_concurrent_streams.max(1),
            // Stream-occupancy time comes from the device's own
            // accounting (one source of truth); the spans below only
            // contribute the wall-clock union and the switch wall.
            transfer_stream_secs: self.metrics.transfer_busy_micros as f64 / 1e6,
            ..StreamRollup::default()
        };
        let mut transfers: Vec<(SimTime, SimTime)> = Vec::new();
        for list in self.stream_span_lists() {
            for span in list {
                match span.activity {
                    skipper_sim::Activity::Transferring { .. } => {
                        transfers.push((span.start, span.end));
                    }
                    skipper_sim::Activity::Switching => {
                        rollup.switching_secs += span.end.since(span.start).as_secs_f64();
                    }
                    skipper_sim::Activity::Idle => {}
                }
            }
        }
        // Union of the transfer intervals across streams: the wall-clock
        // time at least one stream was busy.
        transfers.sort_unstable();
        let mut cursor: Option<(SimTime, SimTime)> = None;
        for (start, end) in transfers {
            match &mut cursor {
                Some((_, open_end)) if start <= *open_end => *open_end = (*open_end).max(end),
                _ => {
                    if let Some((s, e)) = cursor.take() {
                        rollup.transfer_wall_secs += e.since(s).as_secs_f64();
                    }
                    cursor = Some((start, end));
                }
            }
        }
        if let Some((s, e)) = cursor {
            rollup.transfer_wall_secs += e.since(s).as_secs_f64();
        }
        rollup
    }
}

/// The §5.2.1 overlap/utilization rollup: how much intra-group transfer
/// work overlapped in time. `transfer_stream_secs` is stream-occupancy
/// time (Σ per-transfer durations); `transfer_wall_secs` is the
/// wall-clock time at least one stream was transferring. Their ratio —
/// [`StreamRollup::overlap`] — is 1.0 for the serialized middleware and
/// approaches the stream count as the pipeline saturates, which is
/// exactly the "parallelize servicing within a group" win: the same
/// stream-seconds of work compressed into `1/overlap` of the wall time.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StreamRollup {
    /// Configured transfer slots (for a fleet: the max over shards).
    pub streams: usize,
    /// Peak simultaneously busy streams observed.
    pub peak_streams: u32,
    /// Stream-occupancy transfer time in seconds (Σ over transfers).
    pub transfer_stream_secs: f64,
    /// Wall-clock seconds with ≥ 1 stream transferring (per shard,
    /// summed across shards for the run-level rollup).
    pub transfer_wall_secs: f64,
    /// Wall-clock seconds spent switching groups (summed across shards).
    pub switching_secs: f64,
}

impl StreamRollup {
    /// Mean transfer concurrency while transferring:
    /// `transfer_stream_secs / transfer_wall_secs` (1.0 when idle).
    pub fn overlap(&self) -> f64 {
        if self.transfer_wall_secs > 0.0 {
            self.transfer_stream_secs / self.transfer_wall_secs
        } else {
            1.0
        }
    }

    /// Fraction of the available stream-slots actually busy while the
    /// device was transferring: `overlap / streams`.
    pub fn utilization(&self) -> f64 {
        if self.streams > 0 {
            self.overlap() / self.streams as f64
        } else {
            0.0
        }
    }

    /// Merges another shard's rollup into this one.
    pub fn absorb(&mut self, other: &StreamRollup) {
        self.streams = self.streams.max(other.streams);
        self.peak_streams = self.peak_streams.max(other.peak_streams);
        self.transfer_stream_secs += other.transfer_stream_secs;
        self.transfer_wall_secs += other.transfer_wall_secs;
        self.switching_secs += other.switching_secs;
    }
}

/// Whether finished [`QueryRecord`]s are retained in the run result.
///
/// The streaming [`LatencySummary`] is computed either way, so
/// `Counters` keeps tail-latency observability on runs too large to
/// hold per-query records (pairs with `TraceMode::Counters` /
/// `LedgerMode::Counters` for a fully bounded-memory drive).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RecordMode {
    /// Keep every per-query record (the default; required by stall
    /// attribution and the golden comparisons).
    #[default]
    Full,
    /// Drop records as they finish; [`RunResult::clients`] comes back
    /// with empty per-client lists and only the streaming summaries
    /// (latency, device counters, makespan) survive.
    Counters,
}

/// The four tail percentiles reported throughout the latency summary.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Quantiles {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
}

impl Quantiles {
    fn from_sketch(sketch: &QuantileSketch) -> Option<Quantiles> {
        Some(Quantiles {
            p50: sketch.quantile(0.50)?,
            p95: sketch.quantile(0.95)?,
            p99: sketch.quantile(0.99)?,
            p999: sketch.quantile(0.999)?,
        })
    }
}

/// SLO attainment for one scope: how many queries finished within the
/// declared response-time target.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloReport {
    /// The target in seconds. `None` on the fleet scope when tenants
    /// declare different targets (the counters still aggregate).
    pub target_secs: Option<f64>,
    /// Queries that met their target.
    pub met: u64,
    /// Queries measured against a target.
    pub total: u64,
}

impl SloReport {
    /// Fraction of measured queries within target (1.0 when none were
    /// measured — an empty scope violates nothing).
    pub fn attainment(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.met as f64 / self.total as f64
        }
    }
}

/// Latency digest of one scope (one tenant, or the whole fleet).
///
/// Response time is release → completion (queue-wait included; equals
/// execution time for closed-loop queries). Stretch is response time
/// over the declared ideal, present only when the scope declared one
/// via [`Workload::ideal_time`](super::workload::Workload::ideal_time).
#[derive(Clone, Debug, PartialEq)]
pub struct LatencyScope {
    /// Queries observed.
    pub count: u64,
    /// Mean response time in seconds.
    pub mean_secs: f64,
    /// Worst response time in seconds.
    pub max_secs: f64,
    /// Response-time percentiles (`None` when the scope saw nothing).
    pub response: Option<Quantiles>,
    /// Stretch percentiles (`None` without a declared ideal).
    pub stretch: Option<Quantiles>,
    /// SLO attainment (`None` without a declared target anywhere in
    /// the scope).
    pub slo: Option<SloReport>,
}

/// Streaming tail-latency report of a run: response-time and stretch
/// percentiles plus SLO attainment, fleet-wide and per tenant.
///
/// Built from [`QuantileSketch`]es fed as queries finish, so it is
/// O(1) memory per tenant in the observation count and fully populated
/// even in [`RecordMode::Counters`] / `LedgerMode::Counters` where no
/// per-query records survive. Quantile values carry the sketch
/// guarantee: true rank within `epsilon`·n of the requested rank.
#[derive(Clone, Debug, PartialEq)]
pub struct LatencySummary {
    /// Rank-error bound of every percentile in this summary.
    pub epsilon: f64,
    /// All queries of the run.
    pub fleet: LatencyScope,
    /// One scope per tenant, in client order.
    pub tenants: Vec<LatencyScope>,
}

impl LatencySummary {
    /// An empty summary (zero tenants, nothing observed).
    pub fn empty() -> LatencySummary {
        LatencySummary {
            epsilon: QuantileSketch::DEFAULT_EPSILON,
            fleet: ScopeAcc::new(None, None).finish(),
            tenants: Vec::new(),
        }
    }
}

/// One scope's streaming state inside [`LatencyAccumulator`].
struct ScopeAcc {
    slo: Option<SimDuration>,
    ideal: Option<SimDuration>,
    response: QuantileSketch,
    stretch: Option<QuantileSketch>,
    sum_secs: f64,
    max_secs: f64,
    slo_met: u64,
    slo_total: u64,
}

impl ScopeAcc {
    fn new(slo: Option<SimDuration>, ideal: Option<SimDuration>) -> ScopeAcc {
        ScopeAcc {
            slo,
            ideal,
            response: QuantileSketch::default_epsilon(),
            stretch: ideal.map(|_| QuantileSketch::default_epsilon()),
            sum_secs: 0.0,
            max_secs: 0.0,
            slo_met: 0,
            slo_total: 0,
        }
    }

    fn observe(&mut self, response: SimDuration) {
        let secs = response.as_secs_f64();
        self.response.push(secs);
        self.sum_secs += secs;
        self.max_secs = self.max_secs.max(secs);
        if let Some(target) = self.slo {
            self.slo_total += 1;
            if response <= target {
                self.slo_met += 1;
            }
        }
        if let (Some(sketch), Some(ideal)) = (&mut self.stretch, self.ideal) {
            sketch.push(skipper_sim::stats::stretch(response, ideal));
        }
    }

    fn finish(&self) -> LatencyScope {
        let count = self.response.count();
        LatencyScope {
            count,
            mean_secs: if count == 0 {
                0.0
            } else {
                self.sum_secs / count as f64
            },
            max_secs: self.max_secs,
            response: Quantiles::from_sketch(&self.response),
            stretch: self.stretch.as_ref().and_then(Quantiles::from_sketch),
            slo: (self.slo_total > 0).then_some(SloReport {
                target_secs: self.slo.map(|t| t.as_secs_f64()),
                met: self.slo_met,
                total: self.slo_total,
            }),
        }
    }
}

/// Streaming builder of a [`LatencySummary`]: one sketch pair per
/// tenant plus one fleet-wide pair, fed by the driver as each query
/// completes. Memory is bounded by the sketch (O((1/ε)·log(εn)) per
/// scope), independent of how many queries the run retires — this is
/// what keeps tail latency observable on million-request counter-mode
/// drives.
pub struct LatencyAccumulator {
    fleet: ScopeAcc,
    tenants: Vec<ScopeAcc>,
}

impl LatencyAccumulator {
    /// One scope per tenant, each with its optional SLO target and
    /// ideal time (for stretch). The fleet scope aggregates SLO
    /// counters across every tenant that declared a target and tracks
    /// stretch when at least one tenant declared an ideal.
    pub fn new(tenants: &[(Option<SimDuration>, Option<SimDuration>)]) -> LatencyAccumulator {
        let any_ideal = tenants.iter().any(|(_, ideal)| ideal.is_some());
        let mut fleet = ScopeAcc::new(None, None);
        if any_ideal {
            fleet.stretch = Some(QuantileSketch::default_epsilon());
        }
        LatencyAccumulator {
            fleet,
            tenants: tenants
                .iter()
                .map(|&(slo, ideal)| ScopeAcc::new(slo, ideal))
                .collect(),
        }
    }

    /// Records one finished query's response time (release →
    /// completion) for `tenant`.
    pub fn observe(&mut self, tenant: usize, response: SimDuration) {
        let scope = &mut self.tenants[tenant];
        scope.observe(response);
        let secs = response.as_secs_f64();
        self.fleet.response.push(secs);
        self.fleet.sum_secs += secs;
        self.fleet.max_secs = self.fleet.max_secs.max(secs);
        if let Some(target) = scope.slo {
            self.fleet.slo_total += 1;
            if response <= target {
                self.fleet.slo_met += 1;
            }
        }
        if let (Some(sketch), Some(ideal)) = (&mut self.fleet.stretch, scope.ideal) {
            sketch.push(skipper_sim::stats::stretch(response, ideal));
        }
    }

    /// Closes the accumulator into the run's summary.
    pub fn finish(&self) -> LatencySummary {
        LatencySummary {
            epsilon: QuantileSketch::DEFAULT_EPSILON,
            fleet: self.fleet.finish(),
            tenants: self.tenants.iter().map(ScopeAcc::finish).collect(),
        }
    }
}

/// Everything measured by one scenario run.
///
/// `PartialEq`/`Debug` cover every field, so a whole run can be
/// compared byte-for-byte — the determinism tests assert parallel
/// runs at different worker counts produce equal `RunResult`s.
#[derive(Debug, PartialEq)]
pub struct RunResult {
    /// Per-client query records, in execution order.
    pub clients: Vec<Vec<QueryRecord>>,
    /// Device counters, rolled up across every shard of the fleet
    /// (identical to shard 0's counters for a single-device run).
    pub device: DeviceMetrics,
    /// Per-shard breakdowns, in shard order (length = fleet size).
    pub shards: Vec<ShardResult>,
    /// Virtual time at which the last event fired.
    pub makespan: SimTime,
    /// Scheduler label used (shard 0's scheduler for a fleet).
    pub scheduler: &'static str,
    /// Streaming tail-latency report: response-time / stretch
    /// percentiles and SLO attainment, fleet-wide and per tenant.
    /// Populated in every [`RecordMode`] (the sketches stream).
    pub latency: LatencySummary,
    /// Fault-plane summary: downtime, evacuations, failovers, and the
    /// fleet's availability fraction (1.0 on fault-free runs).
    pub availability: AvailabilitySummary,
    /// Shard-cache counters rolled up across the fleet (all-zero on an
    /// uncached run).
    pub cache: CacheStats,
    /// MAID energy estimate for the run (watt-hours vs the always-on
    /// baseline), from the scenario's `PowerModel`.
    pub energy: EnergyReport,
    /// Dollar breakdown of the run — amortized tier capex plus energy,
    /// per completed query — from the scenario's `FleetPricing`.
    pub economics: CostReport,
    /// Protection-plane counters: deadline misses, sheds, retries,
    /// hedges, breaker trips, and per-tenant goodput vs offered load.
    /// All-zero (`ProtectionSummary::is_quiet`) when every protection
    /// knob is disabled.
    pub protection: ProtectionSummary,
    /// Consumed-delivery ledger under hedging: one `(client, query,
    /// object)` entry per delivery a client actually consumed
    /// (duplicates from the losing replica are excluded at routing).
    /// Recorded only when hedging is enabled and records are
    /// [`RecordMode::Full`]; empty otherwise.
    pub consumed: Vec<(usize, QueryId, ObjectId)>,
}

impl RunResult {
    /// Iterator over every query record.
    pub fn records(&self) -> impl Iterator<Item = &QueryRecord> {
        self.clients.iter().flatten()
    }

    /// Shard 0's activity spans (the whole device's spans for a
    /// single-device run; see [`RunResult::shards`] for the rest).
    /// Borrows the shard breakdown instead of keeping a duplicate copy.
    pub fn device_spans(&self) -> &[Span] {
        &self.shards[0].spans
    }

    /// Mean per-query execution time in seconds (the paper's
    /// "average execution time" y-axis).
    pub fn mean_query_secs(&self) -> f64 {
        let (mut total, mut n) = (0.0, 0u32);
        for r in self.records() {
            total += r.duration().as_secs_f64();
            n += 1;
        }
        if n == 0 {
            0.0
        } else {
            total / n as f64
        }
    }

    /// Sum of all query execution times in seconds ("cumulative
    /// execution time").
    pub fn cumulative_secs(&self) -> f64 {
        self.records().map(|r| r.duration().as_secs_f64()).sum()
    }

    /// Total GETs issued across all queries (the Figure 11 right axis).
    pub fn total_gets(&self) -> u64 {
        self.records().map(|r| r.stats.gets_issued).sum()
    }

    /// Per-query stretches against one uniform ideal (single-tenant)
    /// time. Only meaningful for homogeneous query mixes — for
    /// heterogeneous mixes a single divisor mis-ranks queries, so use
    /// [`RunResult::stretches_with`] with per-query ideals instead.
    pub fn stretches(&self, ideal: SimDuration) -> Vec<f64> {
        self.stretches_with(|_| ideal)
    }

    /// Per-query stretches with a per-record ideal: `ideal(record)`
    /// returns the single-tenant execution time the record is measured
    /// against (typically keyed on `record.query` or `record.client`).
    pub fn stretches_with(&self, ideal: impl Fn(&QueryRecord) -> SimDuration) -> Vec<f64> {
        self.records()
            .map(|r| skipper_sim::stats::stretch(r.duration(), ideal(r)))
            .collect()
    }

    /// An ASCII Gantt strip of shard 0's activity over the whole run:
    /// `S` = group switch, digits = transfer to that client, `.` = idle.
    /// Renders straight off the borrowed span list — no trace rebuild,
    /// no span copies. For fleets, see [`RunResult::shard_timeline`].
    pub fn timeline(&self, width: usize) -> String {
        skipper_sim::timeline::render_spans(
            self.device_spans(),
            SimTime::ZERO,
            self.makespan,
            width,
        )
    }

    /// The ASCII Gantt strip of one shard's activity.
    pub fn shard_timeline(&self, shard: usize, width: usize) -> String {
        skipper_sim::timeline::render_spans(
            &self.shards[shard].spans,
            SimTime::ZERO,
            self.makespan,
            width,
        )
    }

    /// The fleet-wide transfer overlap/utilization rollup (§5.2.1):
    /// stream-seconds vs wall-seconds of intra-group transfer across
    /// every shard. `overlap()` reads 1.0 for the paper's serialized
    /// middleware and approaches the stream count as the service
    /// pipeline saturates.
    pub fn stream_rollup(&self) -> StreamRollup {
        let mut total = StreamRollup::default();
        for shard in &self.shards {
            total.absorb(&shard.stream_rollup());
        }
        total
    }

    /// The fleet's delivery ledger as a sorted multiset of
    /// `(client, query, object)` triples: the work-conservation
    /// invariant — a sharded run must produce exactly the multiset of
    /// the equivalent 1-shard run.
    pub fn delivery_multiset(&self) -> Vec<(usize, QueryId, ObjectId)> {
        let mut all: Vec<(usize, QueryId, ObjectId)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.deliveries
                    .iter()
                    .chain(s.cache_deliveries.iter())
                    .copied()
            })
            .collect();
        all.sort_unstable();
        all
    }

    /// The *consumed* multiset under hedging, sorted: conservation is
    /// re-pinned on consumption — each requested object is consumed at
    /// most once per query, with duplicate (losing-replica) deliveries
    /// discarded at routing. A hedged run's consumed multiset equals
    /// the unhedged run's delivery multiset. Empty unless hedging was
    /// enabled with [`RecordMode::Full`].
    pub fn consumed_multiset(&self) -> Vec<(usize, QueryId, ObjectId)> {
        let mut all = self.consumed.clone();
        all.sort_unstable();
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipper_sim::Activity;

    #[test]
    fn draft_tracks_blocked_intervals() {
        let mut d = RecordDraft::begin("q".into(), None, SimTime::from_secs(5));
        assert_eq!(d.start, SimTime::from_secs(5));
        d.unblock(SimTime::from_secs(8));
        assert_eq!(
            d.blocked,
            vec![(SimTime::from_secs(5), SimTime::from_secs(8))]
        );
        // Zero-length blocks are dropped.
        d.blocked_from = Some(SimTime::from_secs(9));
        d.unblock(SimTime::from_secs(9));
        assert_eq!(d.blocked.len(), 1);
        // Unblocking while not blocked is a no-op.
        d.unblock(SimTime::from_secs(10));
        assert_eq!(d.blocked.len(), 1);
    }

    #[test]
    fn attribution_splits_by_trace() {
        let mut trace = ActivityTrace::new();
        trace.record(SimTime::ZERO, SimTime::from_secs(10), Activity::Switching);
        trace.record(
            SimTime::from_secs(10),
            SimTime::from_secs(14),
            Activity::Transferring { client: 0 },
        );
        let rec = PendingRecord {
            record: QueryRecord {
                query: "q".into(),
                client: 0,
                seq: 0,
                engine: "skipper",
                release: None,
                start: SimTime::ZERO,
                end: SimTime::from_secs(14),
                processing: SimDuration::ZERO,
                upfront_gets: 1,
                stalls: Attribution::default(),
                stats: EngineStats::default(),
                result: Vec::new(),
            },
            blocked_intervals: vec![(SimTime::ZERO, SimTime::from_secs(14))],
        };
        let out = attribute_stalls(&trace, vec![rec]);
        assert_eq!(out[0].stalls.switching, SimDuration::from_secs(10));
        assert_eq!(out[0].stalls.transfer, SimDuration::from_secs(4));
    }

    fn record_with_release(release: Option<SimTime>, start: u64, end: u64) -> QueryRecord {
        QueryRecord {
            query: "q".into(),
            client: 0,
            seq: 0,
            engine: "skipper",
            release,
            start: SimTime::from_secs(start),
            end: SimTime::from_secs(end),
            processing: SimDuration::ZERO,
            upfront_gets: 0,
            stalls: Attribution::default(),
            stats: EngineStats::default(),
            result: Vec::new(),
        }
    }

    #[test]
    fn response_time_includes_queue_wait() {
        // Released at t=10, started at t=25 (queued 15s), done at t=40.
        let rec = record_with_release(Some(SimTime::from_secs(10)), 25, 40);
        assert_eq!(rec.duration(), SimDuration::from_secs(15));
        assert_eq!(rec.queue_wait(), SimDuration::from_secs(15));
        assert_eq!(rec.response_time(), SimDuration::from_secs(30));
        // Closed-loop: response == duration, no queue-wait.
        let closed = record_with_release(None, 25, 40);
        assert_eq!(closed.response_time(), closed.duration());
        assert_eq!(closed.queue_wait(), SimDuration::ZERO);
    }

    #[test]
    fn latency_accumulator_scopes_and_slo() {
        // Tenant 0: SLO 20s, ideal 10s. Tenant 1: neither.
        let mut acc = LatencyAccumulator::new(&[
            (
                Some(SimDuration::from_secs(20)),
                Some(SimDuration::from_secs(10)),
            ),
            (None, None),
        ]);
        acc.observe(0, SimDuration::from_secs(10)); // met, stretch 1.0
        acc.observe(0, SimDuration::from_secs(30)); // missed, stretch 3.0
        acc.observe(1, SimDuration::from_secs(50));
        let summary = acc.finish();
        assert_eq!(summary.fleet.count, 3);
        assert_eq!(summary.tenants[0].count, 2);
        let slo0 = summary.tenants[0].slo.unwrap();
        assert_eq!((slo0.met, slo0.total), (1, 2));
        assert_eq!(slo0.target_secs, Some(20.0));
        assert_eq!(slo0.attainment(), 0.5);
        // Fleet aggregates only the two queries that had a target.
        let fleet_slo = summary.fleet.slo.unwrap();
        assert_eq!((fleet_slo.met, fleet_slo.total), (1, 2));
        assert_eq!(fleet_slo.target_secs, None);
        // Stretch only where an ideal was declared.
        let st = summary.tenants[0].stretch.unwrap();
        assert_eq!((st.p50, st.p999), (1.0, 3.0));
        assert!(summary.tenants[1].stretch.is_none());
        assert!(summary.fleet.stretch.is_some());
        // Small scopes answer exactly.
        let resp = summary.fleet.response.unwrap();
        assert_eq!((resp.p50, resp.p999), (30.0, 50.0));
        assert_eq!(summary.fleet.max_secs, 50.0);
        assert!((summary.fleet.mean_secs - 30.0).abs() < 1e-12);
    }

    #[test]
    fn empty_scopes_report_nothing() {
        let acc = LatencyAccumulator::new(&[(None, None)]);
        let summary = acc.finish();
        assert_eq!(summary.fleet.count, 0);
        assert!(summary.fleet.response.is_none());
        assert!(summary.fleet.slo.is_none());
        assert_eq!(summary.fleet.mean_secs, 0.0);
        assert_eq!(LatencySummary::empty().tenants.len(), 0);
    }
}
