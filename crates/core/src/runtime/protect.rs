//! The overload-and-outage protection plane: knob types and counters.
//!
//! The paper serves analytics from devices with *seconds*-scale access
//! latencies, so tail behavior under bursts and outages is the product:
//! without protection, a k=1 outage parks requests indefinitely and a
//! saturating open-arrival burst grows queues without bound. This
//! module holds the configuration surface and the observability rollup
//! for the four defenses the driver threads through the machine:
//!
//! * **Deadlines** — a per-tenant response-time bound; a query that
//!   cannot finish inside it is cancelled (dequeued if waiting, its
//!   deliveries discarded if in flight) and counted as a miss.
//! * **Retry with capped exponential backoff + jitter**
//!   ([`RetryPolicy::Backoff`]) — cancelled queries and outage-parked
//!   requests re-submit at instants computed from a labeled SplitMix
//!   stream instead of parking forever. [`RetryPolicy::None`] preserves
//!   the historical parking behavior byte-exactly.
//! * **Hedged requests** — under replicated placement, a per-tenant
//!   hedge delay after which still-undelivered reads are re-issued to
//!   the next live replica; first completion wins, the loser's queued
//!   copy is cancelled and its late delivery discarded (at-most-once
//!   *consumption*).
//! * **Admission control** ([`AdmissionPolicy`]) — per-shard backlog
//!   thresholds that shed the lowest-priority arrivals (or push
//!   backpressure into closed-loop think time), plus a per-shard
//!   breaker ([`BreakerPolicy`]) that routes around shards in brown-out
//!   or repeated-timeout state.
//!
//! Every knob defaults to *off*, and a fully-disabled configuration
//! takes none of the new code paths — today's machine is reproduced
//! byte-exactly (see the invariants section in
//! [`runtime`](crate::runtime)).

use skipper_sim::rng::uniform01;
use skipper_sim::SimDuration;

/// Re-submission policy for cancelled queries and requests that find no
/// live replica.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum RetryPolicy {
    /// No retries: requests with no live replica park until a recovery
    /// re-submits them (the historical behavior, byte-identical), and a
    /// deadline-cancelled query is simply dropped.
    #[default]
    None,
    /// Seeded capped exponential backoff with jitter: attempt `k`
    /// (1-based) re-submits after `min(cap, base·2^(k−1))` scaled by a
    /// uniform jitter in `[0.5, 1.0)` drawn from the per-client
    /// `"retry/{client}"` SplitMix stream.
    Backoff {
        /// First-attempt delay (before jitter).
        base: SimDuration,
        /// Upper bound on the un-jittered delay.
        cap: SimDuration,
        /// Total re-submission attempts before giving up; exhaustion
        /// cancels the query so the run still drains.
        max_attempts: u32,
    },
}

impl RetryPolicy {
    /// True when retries are enabled.
    pub fn enabled(&self) -> bool {
        !matches!(self, RetryPolicy::None)
    }

    /// The jittered delay before re-submission attempt `attempt`
    /// (1-based), or `None` when the policy is [`RetryPolicy::None`] or
    /// the attempt budget is exhausted. `state` is the client's
    /// dedicated SplitMix stream; one draw per computed delay.
    pub(crate) fn delay(&self, attempt: u32, state: &mut u64) -> Option<SimDuration> {
        match *self {
            RetryPolicy::None => None,
            RetryPolicy::Backoff {
                base,
                cap,
                max_attempts,
            } => {
                if attempt > max_attempts {
                    return None;
                }
                let doubled = base
                    .as_micros()
                    .saturating_mul(1u64 << (attempt - 1).min(62));
                let capped = doubled.min(cap.as_micros());
                let jitter = 0.5 + 0.5 * uniform01(state);
                Some(SimDuration::from_micros(
                    ((capped as f64 * jitter) as u64).max(1),
                ))
            }
        }
    }
}

/// What the fleet seam does with an arrival that would push a shard's
/// backlog past the [`AdmissionPolicy`] thresholds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AdmissionResponse {
    /// Drop the query outright (no record, counted per tenant) and move
    /// on to the tenant's next planned query.
    Shed,
    /// Defer the query: push its release this far into the future,
    /// stretching a closed-loop client's think time instead of losing
    /// work.
    Backpressure(SimDuration),
}

/// Per-shard breaker: routes reads around shards that are browned out
/// or repeatedly blowing deadlines.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BreakerPolicy {
    /// A brown-out below this bandwidth factor opens the shard's
    /// breaker until the fault plane restores nominal service.
    pub brownout_below: f64,
    /// Deadline-cancellations charged to a shard before its breaker
    /// opens for [`BreakerPolicy::cooldown`].
    pub trip_timeouts: u32,
    /// How long a timeout-tripped breaker stays open.
    pub cooldown: SimDuration,
}

/// Fleet-seam admission control: per-shard backlog thresholds plus the
/// optional breaker. Thresholds are scaled by tenant priority — a
/// tenant with priority `p` is admitted until `limit × (p + 1)` — so
/// saturation sheds the lowest-priority arrivals first.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdmissionPolicy {
    /// Per-shard queued-request ceiling (priority-scaled).
    pub max_queue_depth: usize,
    /// Per-shard queued logical-byte ceiling (priority-scaled).
    pub max_queued_bytes: u64,
    /// Shed or defer when a target shard is over its ceiling.
    pub response: AdmissionResponse,
    /// Optional per-shard breaker.
    pub breaker: Option<BreakerPolicy>,
}

impl AdmissionPolicy {
    /// True when `depth`/`bytes` exceed the ceilings scaled for a
    /// tenant of `priority`.
    pub(crate) fn over_limit(&self, priority: u32, depth: usize, bytes: u64) -> bool {
        let scale = priority as u64 + 1;
        depth as u64 >= (self.max_queue_depth as u64).saturating_mul(scale)
            || bytes >= self.max_queued_bytes.saturating_mul(scale)
    }
}

/// One tenant's offered-vs-attained ledger.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TenantProtection {
    /// Queries the tenant's plan released (including shed ones).
    pub offered: u64,
    /// Queries that ran to completion — the tenant's goodput.
    pub completed: u64,
    /// Queries cancelled (or abandoned unstarted) past their deadline.
    pub deadline_misses: u64,
    /// Queries dropped by admission control before starting.
    pub shed: u64,
}

/// Protection-plane counters for a run, rolled into
/// [`RunResult::protection`](crate::runtime::RunResult::protection).
/// Every event counter is zero ([`ProtectionSummary::is_quiet`]) when
/// every knob is disabled; the per-tenant offered/completed ledger is
/// populated on every run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProtectionSummary {
    /// Queries cancelled or abandoned past their deadline.
    pub deadline_misses: u64,
    /// Queries dropped at the admission seam.
    pub sheds: u64,
    /// Query releases deferred by backpressure.
    pub backpressure_deferrals: u64,
    /// Re-submission attempts scheduled by [`RetryPolicy::Backoff`].
    pub retries: u64,
    /// Queries cancelled because their retry budget ran out.
    pub retry_exhausted: u64,
    /// Hedge duplicates issued to a secondary replica.
    pub hedges_fired: u64,
    /// Consumed deliveries that arrived from the hedge copy (the
    /// duplicate beat the primary).
    pub hedge_wins: u64,
    /// Queued loser copies cancelled before service once the winning
    /// replica delivered.
    pub hedge_losers_cancelled: u64,
    /// Loser deliveries that completed anyway and were discarded at
    /// routing (at-most-once consumption).
    pub hedge_losers_discarded: u64,
    /// Breaker openings (brown-out or repeated timeouts).
    pub breaker_trips: u64,
    /// Per-tenant goodput vs offered load, indexed by client.
    pub per_tenant: Vec<TenantProtection>,
}

impl ProtectionSummary {
    /// An all-zero summary with one [`TenantProtection`] slot per
    /// client. The per-tenant offered/completed tallies populate on
    /// every run (they are behavior-neutral); the event counters stay
    /// zero whenever every knob is disabled.
    pub(crate) fn sized(clients: usize) -> Self {
        ProtectionSummary {
            per_tenant: vec![TenantProtection::default(); clients],
            ..ProtectionSummary::default()
        }
    }

    /// True when no protection mechanism ever acted (trivially true for
    /// a disabled configuration).
    pub fn is_quiet(&self) -> bool {
        let ProtectionSummary {
            deadline_misses,
            sheds,
            backpressure_deferrals,
            retries,
            retry_exhausted,
            hedges_fired,
            hedge_wins,
            hedge_losers_cancelled,
            hedge_losers_discarded,
            breaker_trips,
            per_tenant: _,
        } = self;
        *deadline_misses == 0
            && *sheds == 0
            && *backpressure_deferrals == 0
            && *retries == 0
            && *retry_exhausted == 0
            && *hedges_fired == 0
            && *hedge_wins == 0
            && *hedge_losers_cancelled == 0
            && *hedge_losers_discarded == 0
            && *breaker_trips == 0
    }
}

/// One client's assembled protection knobs, resolved from its
/// [`Workload`](crate::runtime::Workload) with scenario-wide defaults
/// filled in (mirroring how SLO targets resolve).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub(crate) struct ClientProtection {
    /// Response-time deadline (anchored at release, like SLO targets).
    pub deadline: Option<SimDuration>,
    /// Re-submission policy for cancelled / unroutable work.
    pub retry: RetryPolicy,
    /// Hedge delay: re-issue undelivered reads to the next live replica
    /// this long after submission.
    pub hedge: Option<SimDuration>,
    /// Admission priority (0 = lowest, shed first).
    pub priority: u32,
}

impl ClientProtection {
    /// True when no knob is set — the client takes only historical code
    /// paths.
    pub fn disabled(&self) -> bool {
        self.deadline.is_none() && !self.retry.enabled() && self.hedge.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipper_sim::rng::derive_seed;

    #[test]
    fn backoff_delays_double_cap_and_jitter() {
        let policy = RetryPolicy::Backoff {
            base: SimDuration::from_secs(1),
            cap: SimDuration::from_secs(4),
            max_attempts: 5,
        };
        let mut state = derive_seed(42, "retry/0");
        for attempt in 1..=5u32 {
            let d = policy.delay(attempt, &mut state).unwrap().as_micros();
            let unjittered = (1u64 << (attempt - 1)).min(4) * 1_000_000;
            assert!(
                d >= unjittered / 2 && d < unjittered,
                "attempt {attempt}: {d} outside [{}, {})",
                unjittered / 2,
                unjittered
            );
        }
        assert_eq!(policy.delay(6, &mut state), None);
        assert_eq!(RetryPolicy::None.delay(1, &mut state), None);
    }

    #[test]
    fn backoff_stream_is_reproducible() {
        let policy = RetryPolicy::Backoff {
            base: SimDuration::from_millis(100),
            cap: SimDuration::from_secs(10),
            max_attempts: 8,
        };
        let mut a = derive_seed(7, "retry/3");
        let mut b = derive_seed(7, "retry/3");
        for attempt in 1..=8 {
            assert_eq!(policy.delay(attempt, &mut a), policy.delay(attempt, &mut b));
        }
    }

    #[test]
    fn admission_limits_scale_with_priority() {
        let policy = AdmissionPolicy {
            max_queue_depth: 10,
            max_queued_bytes: 1000,
            response: AdmissionResponse::Shed,
            breaker: None,
        };
        assert!(policy.over_limit(0, 10, 0));
        assert!(!policy.over_limit(0, 9, 999));
        assert!(policy.over_limit(0, 0, 1000));
        // Priority 1 gets double the headroom.
        assert!(!policy.over_limit(1, 10, 1000));
        assert!(policy.over_limit(1, 20, 0));
    }

    #[test]
    fn disabled_protection_is_quiet() {
        assert!(ClientProtection::default().disabled());
        assert!(ProtectionSummary::default().is_quiet());
        let s = ProtectionSummary {
            sheds: 1,
            ..ProtectionSummary::default()
        };
        assert!(!s.is_quiet());
    }
}
