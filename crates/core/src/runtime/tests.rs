//! Runtime unit tests (ported from the seed's `driver.rs` plus
//! runtime-specific coverage).

use super::*;
use skipper_csd::LayoutPolicy;
use skipper_datagen::{tpch, Dataset, GenConfig};
use skipper_relational::ops::reference;
use skipper_relational::query::results_approx_eq;
use skipper_sim::SimDuration;

/// SF-4 TPC-H: lineitem 4 + orders 1 = 5 objects per Q12 client.
fn mini_dataset() -> Dataset {
    tpch::dataset(&GenConfig::new(21, 4).with_phys_divisor(100_000))
}

fn gib(n: u64) -> u64 {
    n << 30
}

#[test]
fn single_skipper_client_no_switches() {
    let ds = mini_dataset();
    let q = tpch::q12(&ds);
    let res = Scenario::new(ds)
        .engine(EngineKind::Skipper)
        .repeat_query(q, 1)
        .cache_bytes(gib(10))
        .run();
    assert_eq!(res.device.group_switches, 0);
    assert_eq!(res.clients.len(), 1);
    let rec = &res.clients[0][0];
    assert!(rec.duration().as_secs_f64() > 0.0);
    assert!(rec.stalls.switching.is_zero());
    assert_eq!(rec.engine, "skipper");
}

#[test]
fn results_match_reference_for_both_engines() {
    let ds = mini_dataset();
    let q = tpch::q12(&ds);
    let tables = ds.materialize_query_tables(&q);
    let slices: Vec<&[skipper_relational::segment::Segment]> =
        tables.iter().map(|t| t.as_slice()).collect();
    let expected = reference::execute(&q, &slices);

    for kind in [EngineKind::Vanilla, EngineKind::Skipper] {
        let res = Scenario::new(ds.clone())
            .clients(2)
            .engine(kind)
            .repeat_query(q.clone(), 1)
            .cache_bytes(gib(10))
            .run();
        for rec in res.records() {
            assert!(
                results_approx_eq(&rec.result, &expected, 1e-9),
                "{} produced a wrong result",
                kind.label()
            );
        }
    }
}

#[test]
fn vanilla_switch_count_scales_with_clients_times_objects() {
    // §3.2: "two consecutive requests from any PostgreSQL client are
    // separated by five group switches" — with C clients on private
    // groups, vanilla forces ≈ C×D switches.
    let ds = mini_dataset();
    let q = tpch::q12(&ds);
    let objects = ds.objects_for_query(&q) as u64; // 5
    let res = Scenario::new(ds)
        .clients(3)
        .engine(EngineKind::Vanilla)
        .repeat_query(q, 1)
        .run();
    let switches = res.device.group_switches;
    // Ideal batching would need ~C switches; vanilla needs ~C×D.
    assert!(
        switches >= 2 * objects,
        "expected ping-pong switching, got {switches}"
    );
}

#[test]
fn skipper_switch_count_is_one_per_client_round() {
    let ds = mini_dataset();
    let q = tpch::q12(&ds);
    let res = Scenario::new(ds)
        .clients(3)
        .engine(EngineKind::Skipper)
        .cache_bytes(gib(10))
        .repeat_query(q, 1)
        .run();
    // All of a client's data is batched per residency: C-1 paid
    // switches for C clients (first load is free).
    assert_eq!(res.device.group_switches, 2);
}

#[test]
fn skipper_beats_vanilla_with_multiple_clients() {
    let ds = mini_dataset();
    let q = tpch::q12(&ds);
    let vanilla = Scenario::new(ds.clone())
        .clients(3)
        .engine(EngineKind::Vanilla)
        .repeat_query(q.clone(), 1)
        .run();
    let skipper = Scenario::new(ds)
        .clients(3)
        .engine(EngineKind::Skipper)
        .cache_bytes(gib(10))
        .repeat_query(q, 1)
        .run();
    assert!(
        skipper.mean_query_secs() < vanilla.mean_query_secs(),
        "skipper {:.0}s !< vanilla {:.0}s",
        skipper.mean_query_secs(),
        vanilla.mean_query_secs()
    );
}

#[test]
fn all_in_one_layout_eliminates_switches() {
    let ds = mini_dataset();
    let q = tpch::q12(&ds);
    let res = Scenario::new(ds)
        .clients(3)
        .engine(EngineKind::Vanilla)
        .layout(LayoutPolicy::AllInOne)
        .repeat_query(q, 1)
        .run();
    assert_eq!(res.device.group_switches, 0);
}

#[test]
fn breakdown_covers_execution_time() {
    let ds = mini_dataset();
    let q = tpch::q12(&ds);
    let res = Scenario::new(ds)
        .clients(2)
        .engine(EngineKind::Vanilla)
        .repeat_query(q, 1)
        .run();
    for rec in res.records() {
        let total = rec.duration();
        let accounted = rec.processing + rec.stalls.total();
        let diff = total.as_secs_f64() - accounted.as_secs_f64();
        assert!(
            diff.abs() < 1e-3,
            "breakdown mismatch: total {total}, accounted {accounted}"
        );
    }
}

#[test]
fn query_sequences_run_back_to_back() {
    let ds = mini_dataset();
    let q = tpch::q12(&ds);
    let res = Scenario::new(ds)
        .engine(EngineKind::Skipper)
        .cache_bytes(gib(10))
        .repeat_query(q, 3)
        .run();
    let recs = &res.clients[0];
    assert_eq!(recs.len(), 3);
    assert!(recs[0].end <= recs[1].start);
    assert!(recs[1].end <= recs[2].start);
    assert_eq!(recs[2].seq, 2);
}

#[test]
fn deterministic_across_runs() {
    let build = || {
        let ds = mini_dataset();
        let q = tpch::q12(&ds);
        Scenario::new(ds)
            .clients(3)
            .engine(EngineKind::Skipper)
            .cache_bytes(gib(10))
            .repeat_query(q, 1)
            .run()
    };
    let a = build();
    let b = build();
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.device.group_switches, b.device.group_switches);
    let ta: Vec<_> = a.records().map(|r| (r.start, r.end)).collect();
    let tb: Vec<_> = b.records().map(|r| (r.start, r.end)).collect();
    assert_eq!(ta, tb);
}

#[test]
fn mixed_fleet_runs_both_engines_in_one_scenario() {
    let ds = std::sync::Arc::new(mini_dataset());
    let q = tpch::q12(&ds);
    let res = Scenario::from_workloads(vec![
        Workload::new(std::sync::Arc::clone(&ds))
            .repeat_query(q.clone(), 1)
            .engine(SkipperFactory::default().cache_bytes(gib(10))),
        Workload::new(std::sync::Arc::clone(&ds))
            .repeat_query(q, 1)
            .engine(VanillaFactory),
    ])
    .run();
    assert_eq!(res.clients[0][0].engine, "skipper");
    assert_eq!(res.clients[1][0].engine, "vanilla");
    // One shared device served both: the query-aware scheduler is
    // deployed because a Skipper tenant is present.
    assert_eq!(res.scheduler, "ranking");
    // Results agree across the two engines.
    assert_eq!(res.clients[0][0].result, res.clients[1][0].result);
}

#[test]
fn all_vanilla_fleet_defaults_to_stock_fcfs_scheduler() {
    let ds = std::sync::Arc::new(mini_dataset());
    let q = tpch::q12(&ds);
    let res = Scenario::from_workloads(vec![
        Workload::new(std::sync::Arc::clone(&ds))
            .repeat_query(q.clone(), 1)
            .engine(VanillaFactory),
        Workload::new(ds).repeat_query(q, 1).engine(VanillaFactory),
    ])
    .run();
    assert!(
        res.scheduler.contains("fcfs"),
        "stock fleet got {}",
        res.scheduler
    );
}

#[test]
fn poisson_arrivals_queue_behind_busy_tenant_and_complete() {
    let ds = mini_dataset();
    let q = tpch::q12(&ds);
    // Mean gap far below the query duration: arrivals pile up and the
    // tenant drains them back-to-back.
    let res = Scenario::from_workloads(vec![Workload::new(ds)
        .repeat_query(q, 4)
        .engine(SkipperFactory::default().cache_bytes(gib(10)))
        .arrival(ArrivalProcess::Poisson {
            mean: SimDuration::from_secs(1),
            seed: 3,
        })])
    .run();
    let recs = &res.clients[0];
    assert_eq!(recs.len(), 4);
    for pair in recs.windows(2) {
        assert!(pair[0].end <= pair[1].start, "queries overlapped");
    }
    // First arrival is an open release: the tenant starts strictly
    // after t = 0.
    assert!(recs[0].start.as_micros() > 0);
}

#[test]
fn staggered_workload_offsets_shift_first_submissions() {
    let ds = std::sync::Arc::new(mini_dataset());
    let q = tpch::q12(&ds);
    let mk = |offset_secs: u64| {
        Workload::new(std::sync::Arc::clone(&ds))
            .repeat_query(q.clone(), 1)
            .engine(SkipperFactory::default().cache_bytes(gib(10)))
            .start_at(SimDuration::from_secs(offset_secs))
    };
    let res = Scenario::from_workloads(vec![mk(0), mk(500), mk(1000)]).run();
    for (c, recs) in res.clients.iter().enumerate() {
        assert_eq!(recs[0].start.as_micros(), c as u64 * 500_000_000);
    }
}
