//! Runtime unit tests (ported from the seed's `driver.rs` plus
//! runtime-specific coverage: the pump wake-up protocol and the
//! sharded device fleet).

use std::sync::Arc;

use super::fleet::DeviceFleet;
use super::pump::DevicePump;
use super::*;
use skipper_csd::{
    CsdConfig, CsdDevice, IntraGroupOrder, LayoutPolicy, ObjectId, ObjectStore, QueryId,
    SchedPolicy, StreamModel,
};
use skipper_datagen::{tpch, Dataset, GenConfig};
use skipper_relational::ops::reference;
use skipper_relational::query::results_approx_eq;
use skipper_relational::segment::Segment;
use skipper_sim::{SimDuration, SimTime};

/// SF-4 TPC-H: lineitem 4 + orders 1 = 5 objects per Q12 client.
fn mini_dataset() -> Dataset {
    tpch::dataset(&GenConfig::new(21, 4).with_phys_divisor(100_000))
}

fn gib(n: u64) -> u64 {
    n << 30
}

#[test]
fn single_skipper_client_no_switches() {
    let ds = mini_dataset();
    let q = tpch::q12(&ds);
    let res = Scenario::new(ds)
        .engine(EngineKind::Skipper)
        .repeat_query(q, 1)
        .cache_bytes(gib(10))
        .run();
    assert_eq!(res.device.group_switches, 0);
    assert_eq!(res.clients.len(), 1);
    let rec = &res.clients[0][0];
    assert!(rec.duration().as_secs_f64() > 0.0);
    assert!(rec.stalls.switching.is_zero());
    assert_eq!(rec.engine, "skipper");
}

#[test]
fn results_match_reference_for_both_engines() {
    let ds = mini_dataset();
    let q = tpch::q12(&ds);
    let tables = ds.materialize_query_tables(&q);
    let slices: Vec<&[skipper_relational::segment::Segment]> =
        tables.iter().map(|t| t.as_slice()).collect();
    let expected = reference::execute(&q, &slices);

    for kind in [EngineKind::Vanilla, EngineKind::Skipper] {
        let res = Scenario::new(ds.clone())
            .clients(2)
            .engine(kind)
            .repeat_query(q.clone(), 1)
            .cache_bytes(gib(10))
            .run();
        for rec in res.records() {
            assert!(
                results_approx_eq(&rec.result, &expected, 1e-9),
                "{} produced a wrong result",
                kind.label()
            );
        }
    }
}

#[test]
fn vanilla_switch_count_scales_with_clients_times_objects() {
    // §3.2: "two consecutive requests from any PostgreSQL client are
    // separated by five group switches" — with C clients on private
    // groups, vanilla forces ≈ C×D switches.
    let ds = mini_dataset();
    let q = tpch::q12(&ds);
    let objects = ds.objects_for_query(&q) as u64; // 5
    let res = Scenario::new(ds)
        .clients(3)
        .engine(EngineKind::Vanilla)
        .repeat_query(q, 1)
        .run();
    let switches = res.device.group_switches;
    // Ideal batching would need ~C switches; vanilla needs ~C×D.
    assert!(
        switches >= 2 * objects,
        "expected ping-pong switching, got {switches}"
    );
}

#[test]
fn skipper_switch_count_is_one_per_client_round() {
    let ds = mini_dataset();
    let q = tpch::q12(&ds);
    let res = Scenario::new(ds)
        .clients(3)
        .engine(EngineKind::Skipper)
        .cache_bytes(gib(10))
        .repeat_query(q, 1)
        .run();
    // All of a client's data is batched per residency: C-1 paid
    // switches for C clients (first load is free).
    assert_eq!(res.device.group_switches, 2);
}

#[test]
fn skipper_beats_vanilla_with_multiple_clients() {
    let ds = mini_dataset();
    let q = tpch::q12(&ds);
    let vanilla = Scenario::new(ds.clone())
        .clients(3)
        .engine(EngineKind::Vanilla)
        .repeat_query(q.clone(), 1)
        .run();
    let skipper = Scenario::new(ds)
        .clients(3)
        .engine(EngineKind::Skipper)
        .cache_bytes(gib(10))
        .repeat_query(q, 1)
        .run();
    assert!(
        skipper.mean_query_secs() < vanilla.mean_query_secs(),
        "skipper {:.0}s !< vanilla {:.0}s",
        skipper.mean_query_secs(),
        vanilla.mean_query_secs()
    );
}

#[test]
fn all_in_one_layout_eliminates_switches() {
    let ds = mini_dataset();
    let q = tpch::q12(&ds);
    let res = Scenario::new(ds)
        .clients(3)
        .engine(EngineKind::Vanilla)
        .layout(LayoutPolicy::AllInOne)
        .repeat_query(q, 1)
        .run();
    assert_eq!(res.device.group_switches, 0);
}

#[test]
fn breakdown_covers_execution_time() {
    let ds = mini_dataset();
    let q = tpch::q12(&ds);
    let res = Scenario::new(ds)
        .clients(2)
        .engine(EngineKind::Vanilla)
        .repeat_query(q, 1)
        .run();
    for rec in res.records() {
        let total = rec.duration();
        let accounted = rec.processing + rec.stalls.total();
        let diff = total.as_secs_f64() - accounted.as_secs_f64();
        assert!(
            diff.abs() < 1e-3,
            "breakdown mismatch: total {total}, accounted {accounted}"
        );
    }
}

#[test]
fn query_sequences_run_back_to_back() {
    let ds = mini_dataset();
    let q = tpch::q12(&ds);
    let res = Scenario::new(ds)
        .engine(EngineKind::Skipper)
        .cache_bytes(gib(10))
        .repeat_query(q, 3)
        .run();
    let recs = &res.clients[0];
    assert_eq!(recs.len(), 3);
    assert!(recs[0].end <= recs[1].start);
    assert!(recs[1].end <= recs[2].start);
    assert_eq!(recs[2].seq, 2);
}

#[test]
fn deterministic_across_runs() {
    let build = || {
        let ds = mini_dataset();
        let q = tpch::q12(&ds);
        Scenario::new(ds)
            .clients(3)
            .engine(EngineKind::Skipper)
            .cache_bytes(gib(10))
            .repeat_query(q, 1)
            .run()
    };
    let a = build();
    let b = build();
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.device.group_switches, b.device.group_switches);
    let ta: Vec<_> = a.records().map(|r| (r.start, r.end)).collect();
    let tb: Vec<_> = b.records().map(|r| (r.start, r.end)).collect();
    assert_eq!(ta, tb);
}

#[test]
fn mixed_fleet_runs_both_engines_in_one_scenario() {
    let ds = std::sync::Arc::new(mini_dataset());
    let q = tpch::q12(&ds);
    let res = Scenario::from_workloads(vec![
        Workload::new(std::sync::Arc::clone(&ds))
            .repeat_query(q.clone(), 1)
            .engine(SkipperFactory::default().cache_bytes(gib(10))),
        Workload::new(std::sync::Arc::clone(&ds))
            .repeat_query(q, 1)
            .engine(VanillaFactory),
    ])
    .run();
    assert_eq!(res.clients[0][0].engine, "skipper");
    assert_eq!(res.clients[1][0].engine, "vanilla");
    // One shared device served both: the query-aware scheduler is
    // deployed because a Skipper tenant is present.
    assert_eq!(res.scheduler, "ranking");
    // Results agree across the two engines.
    assert_eq!(res.clients[0][0].result, res.clients[1][0].result);
}

#[test]
fn all_vanilla_fleet_defaults_to_stock_fcfs_scheduler() {
    let ds = std::sync::Arc::new(mini_dataset());
    let q = tpch::q12(&ds);
    let res = Scenario::from_workloads(vec![
        Workload::new(std::sync::Arc::clone(&ds))
            .repeat_query(q.clone(), 1)
            .engine(VanillaFactory),
        Workload::new(ds).repeat_query(q, 1).engine(VanillaFactory),
    ])
    .run();
    assert!(
        res.scheduler.contains("fcfs"),
        "stock fleet got {}",
        res.scheduler
    );
}

#[test]
fn poisson_arrivals_queue_behind_busy_tenant_and_complete() {
    let ds = mini_dataset();
    let q = tpch::q12(&ds);
    // Mean gap far below the query duration: arrivals pile up and the
    // tenant drains them back-to-back.
    let res = Scenario::from_workloads(vec![Workload::new(ds)
        .repeat_query(q, 4)
        .engine(SkipperFactory::default().cache_bytes(gib(10)))
        .arrival(ArrivalProcess::Poisson {
            mean: SimDuration::from_secs(1),
            seed: 3,
        })])
    .run();
    let recs = &res.clients[0];
    assert_eq!(recs.len(), 4);
    for pair in recs.windows(2) {
        assert!(pair[0].end <= pair[1].start, "queries overlapped");
    }
    // First arrival is an open release: the tenant starts strictly
    // after t = 0.
    assert!(recs[0].start.as_micros() > 0);
}

/// Two 1 GiB objects on different groups, 1 GiB/s bandwidth (1 s per
/// transfer), 10 s switches, free initial load — wrapped in a pump.
fn mini_pump() -> DevicePump {
    mini_pump_with_streams(1)
}

/// Like [`mini_pump`] but with both objects in ONE group and `streams`
/// pipeline slots, for the earliest-of-K re-arm protocol tests.
fn mini_pump_same_group(streams: u32) -> DevicePump {
    let ds = mini_dataset();
    let payload: Arc<Segment> = Arc::clone(&ds.segments[0][0]);
    let mut store: ObjectStore<Arc<Segment>> = ObjectStore::new();
    store.put(ObjectId::new(0, 0, 0), 1 << 30, 0, Arc::clone(&payload));
    store.put(ObjectId::new(0, 0, 1), 2 << 30, 0, payload);
    DevicePump::new(CsdDevice::new(
        CsdConfig {
            switch_latency: SimDuration::from_secs(10),
            bandwidth_bytes_per_sec: (1u64 << 30) as f64,
            initial_load_free: true,
            parallel_streams: streams,
            stream_model: StreamModel::Pipeline,
            ..CsdConfig::default()
        },
        store,
        SchedPolicy::RankBased.build(),
        IntraGroupOrder::SemanticRoundRobin,
    ))
}

/// Two equal 1 GiB objects in ONE group: with 2 streams both transfers
/// start together and retire in the same wake-up (the batch path).
fn mini_pump_equal_group(streams: u32) -> DevicePump {
    let ds = mini_dataset();
    let payload: Arc<Segment> = Arc::clone(&ds.segments[0][0]);
    let mut store: ObjectStore<Arc<Segment>> = ObjectStore::new();
    store.put(ObjectId::new(0, 0, 0), 1 << 30, 0, Arc::clone(&payload));
    store.put(ObjectId::new(0, 0, 1), 1 << 30, 0, payload);
    DevicePump::new(CsdDevice::new(
        CsdConfig {
            switch_latency: SimDuration::from_secs(10),
            bandwidth_bytes_per_sec: (1u64 << 30) as f64,
            initial_load_free: true,
            parallel_streams: streams,
            stream_model: StreamModel::Pipeline,
            ..CsdConfig::default()
        },
        store,
        SchedPolicy::RankBased.build(),
        IntraGroupOrder::SemanticRoundRobin,
    ))
}

fn mini_pump_with_streams(streams: u32) -> DevicePump {
    let ds = mini_dataset();
    let payload: Arc<Segment> = Arc::clone(&ds.segments[0][0]);
    let mut store: ObjectStore<Arc<Segment>> = ObjectStore::new();
    store.put(ObjectId::new(0, 0, 0), 1 << 30, 0, Arc::clone(&payload));
    store.put(ObjectId::new(0, 0, 1), 1 << 30, 1, payload);
    DevicePump::new(CsdDevice::new(
        CsdConfig {
            switch_latency: SimDuration::from_secs(10),
            bandwidth_bytes_per_sec: (1u64 << 30) as f64,
            initial_load_free: true,
            parallel_streams: streams,
            stream_model: StreamModel::Pipeline,
            ..CsdConfig::default()
        },
        store,
        SchedPolicy::RankBased.build(),
        IntraGroupOrder::SemanticRoundRobin,
    ))
}

fn t(s: u64) -> SimTime {
    SimTime::from_secs(s)
}

#[test]
fn pump_poke_with_quiescent_device_stays_unarmed() {
    let mut pump = mini_pump();
    // Nothing submitted: poke must not arm anything, ever.
    assert_eq!(pump.poke(t(0)), None);
    assert_eq!(pump.poke(t(5)), None);
    assert!(pump.device().is_quiescent());
}

#[test]
fn pump_double_poke_while_armed_is_a_no_op() {
    let mut pump = mini_pump();
    pump.submit(t(0), 0, QueryId::new(0, 0), &[ObjectId::new(0, 0, 0)]);
    let at = pump.poke(t(0)).expect("first poke arms the wake-up");
    assert_eq!(at, t(1));
    // Re-poking while armed must not double-schedule — even later in
    // virtual time, and even after more work arrives.
    assert_eq!(pump.poke(t(0)), None);
    pump.submit(t(0), 0, QueryId::new(0, 0), &[ObjectId::new(0, 0, 1)]);
    assert_eq!(pump.poke(t(0)), None);
    // The armed wake-up still completes normally.
    let d = pump.on_wakeup(t(1));
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].object, ObjectId::new(0, 0, 0));
}

#[test]
fn pump_repoke_after_delivery_resumes_the_protocol() {
    let mut pump = mini_pump();
    pump.submit(
        t(0),
        0,
        QueryId::new(0, 0),
        &[ObjectId::new(0, 0, 0), ObjectId::new(0, 0, 1)],
    );
    // Transfer of object 0 (group 0 loads free).
    assert_eq!(pump.poke(t(0)), Some(t(1)));
    assert_eq!(pump.on_wakeup(t(1)).len(), 1);
    // Re-poke arms the paid switch to group 1; its wake-up completes the
    // switch and delivers nothing.
    assert_eq!(pump.poke(t(1)), Some(t(11)));
    assert!(pump.on_wakeup(t(11)).is_empty(), "switch is not a delivery");
    // Re-poke after the non-delivery wake-up arms the final transfer.
    assert_eq!(pump.poke(t(11)), Some(t(12)));
    let d = pump.on_wakeup(t(12));
    assert_eq!(d.len(), 1);
    assert_eq!(d[0].object, ObjectId::new(0, 0, 1));
    // Drained: poke goes quiet again.
    assert_eq!(pump.poke(t(12)), None);
    assert!(pump.device().is_quiescent());
}

#[test]
fn pump_wakeup_without_armed_operation_is_a_stale_no_op() {
    // Under the earliest-of-K protocol a wake-up whose instant no
    // longer matches the armed one is *stale* (superseded by a
    // re-arm): it must be ignored without touching the device.
    let mut pump = mini_pump();
    assert!(pump.on_wakeup(t(0)).is_empty());
    pump.submit(t(0), 0, QueryId::new(0, 0), &[ObjectId::new(0, 0, 0)]);
    assert_eq!(pump.poke(t(0)), Some(t(1)));
    // A wake-up at the wrong instant is stale; the armed one still fires.
    assert!(pump.on_wakeup(t(0)).is_empty());
    assert_eq!(pump.on_wakeup(t(1)).len(), 1);
}

#[test]
fn pump_rearms_when_new_work_moves_the_earliest_completion() {
    // Both objects in group 0, 2 streams. The 2 GiB object (2 s) is
    // dispatched first; an armed wake-up points at t=2. Submitting the
    // 1 GiB object fills the second slot, finishing at t=1 — poke must
    // RE-ARM at the earlier instant, and the superseded t=2 wake-up
    // fires... except the transfer really is still due at t=2 here, so
    // the re-poke after the t=1 batch arms t=2 again: the original
    // event is consumed by the re-armed instant matching it.
    let mut pump = mini_pump_same_group(2);
    pump.submit(t(0), 0, QueryId::new(0, 0), &[ObjectId::new(0, 0, 1)]);
    assert_eq!(pump.poke(t(0)), Some(t(2)), "2 GiB transfer alone");
    pump.submit(t(0), 0, QueryId::new(0, 1), &[ObjectId::new(0, 0, 0)]);
    assert_eq!(
        pump.poke(t(0)),
        Some(t(1)),
        "the 1 GiB transfer moved the earliest completion earlier"
    );
    // Double-poke stays a no-op at the new instant.
    assert_eq!(pump.poke(t(0)), None);
    let first = pump.on_wakeup(t(1));
    assert_eq!(first.len(), 1);
    assert_eq!(first[0].object, ObjectId::new(0, 0, 0));
    // Re-poke re-arms at the still-pending t=2 completion, which the
    // superseded event (also at t=2) then legitimately consumes.
    assert_eq!(pump.poke(t(1)), Some(t(2)));
    let second = pump.on_wakeup(t(2));
    assert_eq!(second.len(), 1);
    assert_eq!(second[0].object, ObjectId::new(0, 0, 1));
    assert!(pump.device().is_quiescent());
}

#[test]
fn pump_multi_stream_wakeup_retires_the_whole_batch() {
    let mut pump = mini_pump_with_streams(2);
    // Objects on different groups: only group 0's transfer can start;
    // same-group batches retire together instead.
    pump.submit(
        t(0),
        0,
        QueryId::new(0, 0),
        &[ObjectId::new(0, 0, 0), ObjectId::new(0, 0, 1)],
    );
    assert_eq!(pump.poke(t(0)), Some(t(1)));
    assert_eq!(pump.device().in_flight(), 1, "second object is off-group");
    assert_eq!(pump.on_wakeup(t(1)).len(), 1);
    // Unequal same-group pair: both slots fill but retire separately.
    let mut pair = mini_pump_same_group(2);
    pair.submit(
        t(0),
        0,
        QueryId::new(0, 0),
        &[ObjectId::new(0, 0, 0), ObjectId::new(0, 0, 1)],
    );
    assert_eq!(pair.poke(t(0)), Some(t(1)), "earliest of the two transfers");
    assert_eq!(pair.device().in_flight(), 2);
    let batch = pair.on_wakeup(t(1));
    assert_eq!(batch.len(), 1, "only the 1 GiB transfer is due at t=1");
    assert_eq!(pair.poke(t(1)), Some(t(2)));
    assert_eq!(pair.on_wakeup(t(2)).len(), 1);
    assert!(pair.device().is_quiescent());
    // Equal same-group pair: one wake-up really does retire a batch of
    // two through the pump (the multi-delivery path the driver routes).
    let mut equal = mini_pump_equal_group(2);
    equal.submit(
        t(0),
        0,
        QueryId::new(0, 0),
        &[ObjectId::new(0, 0, 0), ObjectId::new(0, 0, 1)],
    );
    assert_eq!(equal.poke(t(0)), Some(t(1)));
    assert_eq!(equal.device().in_flight(), 2);
    let batch = equal.on_wakeup(t(1));
    assert_eq!(batch.len(), 2, "same-instant completions retire together");
    assert_eq!(batch[0].object, ObjectId::new(0, 0, 0));
    assert_eq!(batch[1].object, ObjectId::new(0, 0, 1));
    assert_eq!(equal.poke(t(1)), None);
    assert!(equal.device().is_quiescent());
}

#[test]
fn fleet_routes_submissions_by_shard_map_and_interleaves() {
    // Two single-object shards; one batch touching both.
    let ds = mini_dataset();
    let payload: Arc<Segment> = Arc::clone(&ds.segments[0][0]);
    let mk_dev = |obj: ObjectId| {
        let mut store: ObjectStore<Arc<Segment>> = ObjectStore::new();
        store.put(obj, 1 << 30, 0, Arc::clone(&payload));
        CsdDevice::new(
            CsdConfig {
                switch_latency: SimDuration::from_secs(10),
                bandwidth_bytes_per_sec: (1u64 << 30) as f64,
                initial_load_free: true,
                parallel_streams: 1,
                stream_model: StreamModel::Pipeline,
                ..CsdConfig::default()
            },
            store,
            SchedPolicy::RankBased.build(),
            IntraGroupOrder::SemanticRoundRobin,
        )
    };
    let a = ObjectId::new(0, 0, 0);
    let b = ObjectId::new(0, 0, 1);
    let mut fleet = DeviceFleet::new(
        vec![mk_dev(a), mk_dev(b)],
        [(a, 0), (b, 1)].into_iter().collect(),
    );
    assert_eq!(fleet.shard_count(), 2);
    assert_eq!(fleet.shard_for(a), 0);
    assert_eq!(fleet.shard_for(b), 1);
    fleet.submit(t(0), 0, QueryId::new(0, 0), &[b, a]);
    // Both shards arm independently and serve in parallel virtual time.
    let mut armed = Vec::new();
    fleet.poke_all(t(0), |s, at| armed.push((s, at)));
    assert_eq!(armed, vec![(0, t(1)), (1, t(1))]);
    // Nothing re-arms while both are armed.
    let mut rearmed = Vec::new();
    fleet.poke_all(t(0), |s, at| rearmed.push((s, at)));
    assert!(rearmed.is_empty());
    let d0 = fleet.on_wakeup(0, t(1));
    let d1 = fleet.on_wakeup(1, t(1));
    assert_eq!(d0[0].object, a);
    assert_eq!(d1[0].object, b);
    assert!(fleet.is_quiescent());
}

#[test]
#[should_panic(expected = "never placed on any shard")]
fn fleet_rejects_unplaced_objects() {
    let mk_dev = || {
        CsdDevice::<Arc<Segment>>::new(
            CsdConfig::default(),
            ObjectStore::new(),
            SchedPolicy::RankBased.build(),
            IntraGroupOrder::SemanticRoundRobin,
        )
    };
    // Two shards, empty placement map: any submission must panic loudly
    // instead of silently dropping the request.
    let mut fleet = DeviceFleet::new(vec![mk_dev(), mk_dev()], Default::default());
    fleet.submit(t(0), 0, QueryId::new(0, 0), &[ObjectId::new(0, 0, 0)]);
}

#[test]
fn sharded_scenario_reports_per_shard_breakdowns() {
    let ds = mini_dataset();
    let q = tpch::q12(&ds);
    let res = Scenario::new(ds)
        .clients(3)
        .engine(EngineKind::Skipper)
        .cache_bytes(gib(10))
        .shards(2)
        .placement(PlacementPolicy::RoundRobin)
        .repeat_query(q, 1)
        .run();
    assert_eq!(res.shards.len(), 2);
    // The roll-up equals the per-shard sum.
    let total: u64 = res.shards.iter().map(|s| s.metrics.objects_served).sum();
    assert_eq!(res.device.objects_served, total);
    assert!(total > 0);
    // Every shard actually served something under round-robin.
    for s in &res.shards {
        assert!(s.metrics.objects_served > 0, "shard {} idle", s.shard);
        assert_eq!(s.deliveries.len() as u64, s.metrics.objects_served);
    }
    // device_spans mirrors shard 0.
    assert_eq!(res.device_spans().to_vec(), res.shards[0].spans);
    // Per-query breakdowns stay exact on a fleet.
    for rec in res.records() {
        let accounted = rec.processing + rec.stalls.total();
        assert_eq!(accounted.as_micros(), rec.duration().as_micros());
    }
}

#[test]
fn heterogeneous_shard_overrides_change_only_their_shard() {
    let ds = mini_dataset();
    let q = tpch::q12(&ds);
    let run = |slow_shard_1: bool| {
        let mut s = Scenario::new(ds.clone())
            .clients(2)
            .engine(EngineKind::Skipper)
            .cache_bytes(gib(10))
            .shards(2)
            .repeat_query(q.clone(), 1);
        if slow_shard_1 {
            s = s.shard_switch_latency(1, SimDuration::from_secs(40));
        }
        s.run()
    };
    let base = run(false);
    let slow = run(true);
    // Slowing shard 1's switches cannot speed the run up.
    assert!(slow.makespan >= base.makespan);
    // Both shards ran their own scheduler instance.
    assert_eq!(base.shards.len(), 2);
    assert_eq!(base.shards[0].scheduler, base.shards[1].scheduler);
}

#[test]
fn staggered_workload_offsets_shift_first_submissions() {
    let ds = std::sync::Arc::new(mini_dataset());
    let q = tpch::q12(&ds);
    let mk = |offset_secs: u64| {
        Workload::new(std::sync::Arc::clone(&ds))
            .repeat_query(q.clone(), 1)
            .engine(SkipperFactory::default().cache_bytes(gib(10)))
            .start_at(SimDuration::from_secs(offset_secs))
    };
    let res = Scenario::from_workloads(vec![mk(0), mk(500), mk(1000)]).run();
    for (c, recs) in res.clients.iter().enumerate() {
        assert_eq!(recs[0].start.as_micros(), c as u64 * 500_000_000);
    }
}

// ---------------------------------------------------------------------
// Windowed-parallel execution: the differential sweep pinning
// `ExecutionMode::Parallel` bit-identical to the sequential reference.
// Whole `RunResult`s are compared with `==`: delivery ledgers, switch
// counts, makespans, per-shard metrics, spans, and every query record.

/// One scenario per (policy, placement, streams) cell, multi-shard and
/// staggered so Release events, fleet fan-out, and same-instant ties
/// are all exercised.
fn sweep_scenario(policy: SchedPolicy, placement: PlacementPolicy, streams: u32) -> Scenario {
    let ds = mini_dataset();
    let q = tpch::q12(&ds);
    Scenario::new(ds)
        .clients(3)
        .engine(EngineKind::Skipper)
        .cache_bytes(gib(10))
        .scheduler(policy)
        .shards(4)
        .placement(placement)
        .streams(streams)
        .stagger(SimDuration::from_secs(30))
        .repeat_query(q, 2)
}

#[test]
fn parallel_matches_sequential_across_policies() {
    for policy in SchedPolicy::all() {
        for placement in [
            PlacementPolicy::RoundRobin,
            PlacementPolicy::HashObject,
            PlacementPolicy::TableAffinity,
        ] {
            for streams in [1, 4] {
                let reference = sweep_scenario(policy, placement, streams).run();
                for workers in [1, 2, 4] {
                    let parallel = sweep_scenario(policy, placement, streams)
                        .execution(ExecutionMode::Parallel { workers })
                        .run();
                    assert_eq!(
                        parallel, reference,
                        "parallel(workers={workers}) diverged from sequential \
                         for {policy:?}/{placement:?}/streams={streams}"
                    );
                }
            }
        }
    }
}

#[test]
fn parallel_identical_across_worker_counts() {
    // Determinism: the same scenario at different worker counts must
    // produce byte-identical results — parallelism is structural
    // (shards never share state inside a window), so the thread
    // interleaving cannot be observed.
    let runs: Vec<RunResult> = [1usize, 2, 4]
        .iter()
        .map(|&workers| {
            sweep_scenario(SchedPolicy::RankBased, PlacementPolicy::RoundRobin, 4)
                .execution(ExecutionMode::Parallel { workers })
                .run()
        })
        .collect();
    assert_eq!(runs[0], runs[1]);
    assert_eq!(runs[1], runs[2]);
}

#[test]
fn parallel_matches_sequential_for_mixed_engines() {
    // A pull-based Vanilla tenant makes every round-trip an
    // interaction (degenerate windows), while the Skipper tenant's
    // upfront batches leave wide ones — the mix exercises both the
    // replay path and the inert-ClientReady promotion rule.
    let ds = std::sync::Arc::new(mini_dataset());
    let q = tpch::q12(&ds);
    let build = || {
        Scenario::from_workloads(vec![
            Workload::new(std::sync::Arc::clone(&ds))
                .repeat_query(q.clone(), 2)
                .engine(SkipperFactory::default().cache_bytes(gib(10))),
            Workload::new(std::sync::Arc::clone(&ds))
                .repeat_query(q.clone(), 1)
                .engine(VanillaFactory),
            Workload::new(std::sync::Arc::clone(&ds))
                .repeat_query(q.clone(), 1)
                .engine(SkipperFactory::default().cache_bytes(gib(10)))
                .start_at(SimDuration::from_secs(200)),
        ])
        .shards(2)
        .placement(PlacementPolicy::RoundRobin)
        .streams(2)
    };
    let reference = build().run();
    for workers in [1, 2, 4] {
        let parallel = build().execution(ExecutionMode::Parallel { workers }).run();
        assert_eq!(
            parallel, reference,
            "mixed-engine parallel(workers={workers}) diverged from sequential"
        );
    }
}

#[test]
fn parallel_single_shard_replays_single_device_schedule() {
    // The 1-shard fleet is the seed's single-device runtime; windowed
    // execution must preserve it exactly too.
    let build = || {
        let ds = mini_dataset();
        let q = tpch::q12(&ds);
        Scenario::new(ds)
            .clients(2)
            .engine(EngineKind::Vanilla)
            .repeat_query(q, 1)
    };
    let reference = build().run();
    let parallel = build()
        .execution(ExecutionMode::Parallel { workers: 4 })
        .run();
    assert_eq!(parallel, reference);
}

// ---------------------------------------------------------------------
// Open-arrival latency: queue-wait in response time, the internet-scale
// traffic shapes, and the streaming tail-latency summary.

/// The headline regression: a Poisson release landing while the tenant
/// is busy must surface its queueing delay — response time (release →
/// end) strictly exceeds execution time (start → end). Before the fix,
/// `start` was the only timestamp and queue-wait silently vanished
/// from every latency number.
#[test]
fn queued_release_makes_response_time_exceed_duration() {
    let ds = mini_dataset();
    let q = tpch::q12(&ds);
    // Mean gap far below the query duration ⇒ releases pile up.
    let res = Scenario::from_workloads(vec![Workload::new(ds)
        .repeat_query(q, 4)
        .engine(SkipperFactory::default().cache_bytes(gib(10)))
        .arrival(ArrivalProcess::Poisson {
            mean: SimDuration::from_secs(1),
            seed: 3,
        })])
    .run();
    let recs = &res.clients[0];
    assert!(recs.iter().all(|r| r.release.is_some()));
    // Identity: response = queue-wait + execution, record by record.
    for r in recs {
        assert_eq!(r.response_time(), r.queue_wait() + r.duration());
    }
    // At least the later arrivals queued behind the first query.
    let queued: Vec<_> = recs
        .iter()
        .filter(|r| r.queue_wait() > SimDuration::ZERO)
        .collect();
    assert!(!queued.is_empty(), "no query ever queued at 1s mean gaps");
    for r in &queued {
        assert!(
            r.response_time() > r.duration(),
            "queue-wait missing from response time (seq {})",
            r.seq
        );
    }
    // The summary is fed response times, not execution times: its mean
    // must match the records exactly.
    let expect_mean = recs
        .iter()
        .map(|r| r.response_time().as_secs_f64())
        .sum::<f64>()
        / recs.len() as f64;
    assert!((res.latency.fleet.mean_secs - expect_mean).abs() < 1e-12);
}

/// Every new arrival shape × {Sequential, Parallel} must produce
/// byte-equal `RunResult`s — the differential battery extended over the
/// traffic vocabulary (the latency summary is part of the equality).
#[test]
fn arrival_shapes_are_execution_mode_invariant() {
    let shapes: Vec<(&str, ArrivalProcess)> = vec![
        (
            "poisson",
            ArrivalProcess::Poisson {
                mean: SimDuration::from_secs(30),
                seed: 9,
            },
        ),
        (
            "onoff",
            ArrivalProcess::OnOff {
                on_mean: SimDuration::from_secs(5),
                on_duration: SimDuration::from_secs(60),
                off_duration: SimDuration::from_secs(600),
                seed: 9,
            },
        ),
        (
            "diurnal",
            ArrivalProcess::Diurnal {
                peak_mean: SimDuration::from_secs(20),
                period: SimDuration::from_secs(3600),
                trough: 0.2,
                seed: 9,
            },
        ),
        (
            "trace",
            ArrivalProcess::TraceReplay(vec![
                SimTime::from_secs(700),
                SimTime::from_secs(1),
                SimTime::from_secs(30),
                SimTime::from_secs(30),
            ]),
        ),
    ];
    let ds = std::sync::Arc::new(mini_dataset());
    let q = tpch::q12(&ds);
    for (label, arrival) in shapes {
        let build = |arrival: ArrivalProcess| {
            Scenario::from_workloads(vec![
                Workload::new(std::sync::Arc::clone(&ds))
                    .repeat_query(q.clone(), 4)
                    .engine(SkipperFactory::default().cache_bytes(gib(10)))
                    .arrival(arrival)
                    .slo_target(SimDuration::from_secs(600))
                    .ideal_time(SimDuration::from_secs(60)),
                Workload::new(std::sync::Arc::clone(&ds))
                    .repeat_query(q.clone(), 2)
                    .engine(VanillaFactory),
            ])
            .shards(2)
            .placement(PlacementPolicy::RoundRobin)
            .streams(2)
        };
        let reference = build(arrival.clone()).run();
        for workers in [2, 4] {
            let parallel = build(arrival.clone())
                .execution(ExecutionMode::Parallel { workers })
                .run();
            assert_eq!(
                parallel, reference,
                "{label} arrivals diverged under Parallel {{ workers: {workers} }}"
            );
        }
    }
}

/// `RecordMode::Counters` drops every per-query record yet reports the
/// identical streaming latency summary — tail latency stays observable
/// with bounded memory.
#[test]
fn counters_record_mode_keeps_the_latency_summary() {
    let ds = std::sync::Arc::new(mini_dataset());
    let q = tpch::q12(&ds);
    let build = || {
        Scenario::from_workloads(vec![Workload::new(std::sync::Arc::clone(&ds))
            .repeat_query(q.clone(), 6)
            .engine(SkipperFactory::default().cache_bytes(gib(10)))
            .arrival(ArrivalProcess::OnOff {
                on_mean: SimDuration::from_secs(2),
                on_duration: SimDuration::from_secs(120),
                off_duration: SimDuration::from_secs(300),
                seed: 5,
            })
            .slo_target(SimDuration::from_secs(400))])
    };
    let full = build().run();
    let lean = build().record_mode(RecordMode::Counters).run();
    assert!(lean.clients.iter().all(|c| c.is_empty()), "records kept");
    assert!(!full.clients[0].is_empty());
    assert_eq!(lean.latency, full.latency);
    assert_eq!(lean.makespan, full.makespan);
    assert_eq!(lean.device, full.device);
    assert!(lean.latency.fleet.response.is_some());
    assert_eq!(lean.latency.fleet.count, 6);
}

/// The summary's percentiles against exact sorted quantiles of the same
/// Full-mode run: below the sketch's compression threshold the answers
/// are exact; the rank-error bound at scale is pinned in
/// `skipper_sim::stats` and re-checked on the bench's open drive.
#[test]
fn latency_summary_quantiles_match_exact_records() {
    let ds = mini_dataset();
    let q = tpch::q12(&ds);
    let res = Scenario::from_workloads(vec![Workload::new(ds)
        .repeat_query(q, 12)
        .engine(SkipperFactory::default().cache_bytes(gib(10)))
        .arrival(ArrivalProcess::Poisson {
            mean: SimDuration::from_secs(20),
            seed: 17,
        })])
    .run();
    let mut exact: Vec<f64> = res.clients[0]
        .iter()
        .map(|r| r.response_time().as_secs_f64())
        .collect();
    exact.sort_by(f64::total_cmp);
    let n = exact.len();
    let resp = res.latency.fleet.response.unwrap();
    for (phi, got) in [
        (0.50, resp.p50),
        (0.95, resp.p95),
        (0.99, resp.p99),
        (0.999, resp.p999),
    ] {
        let rank = ((phi * n as f64).ceil() as usize).clamp(1, n);
        assert_eq!(
            got,
            exact[rank - 1],
            "p{} diverged from the exact order statistic",
            phi * 100.0
        );
    }
    assert_eq!(res.latency.fleet.max_secs, *exact.last().unwrap());
}

// ---------------------------------------------------------------------
// Fault plane: seeded failures, k-replica failover, degraded serving.
// The chaos battery pins (1) delivery-multiset conservation through
// every failover path, (2) byte-equal determinism across repeated runs
// and execution modes, (3) the empty plan leaving runs untouched.

/// The chaos cell: 3 staggered Skipper tenants over 4 shards, with a
/// configurable placement and fault plan.
fn chaos_scenario(placement: PlacementPolicy, plan: FaultPlan) -> Scenario {
    let ds = mini_dataset();
    let q = tpch::q12(&ds);
    Scenario::new(ds)
        .clients(3)
        .engine(EngineKind::Skipper)
        .cache_bytes(gib(10))
        .shards(4)
        .placement(placement)
        .stagger(SimDuration::from_secs(30))
        .repeat_query(q, 2)
        .faults(plan)
}

fn replicated_rr(k: usize) -> PlacementPolicy {
    PlacementPolicy::Replicated {
        k,
        base: BasePlacement::RoundRobin,
    }
}

#[test]
fn empty_fault_plan_leaves_runs_byte_identical() {
    let base = chaos_scenario(PlacementPolicy::RoundRobin, FaultPlan::new()).run();
    let mut explicit = chaos_scenario(PlacementPolicy::RoundRobin, FaultPlan::new());
    explicit = explicit.faults(FaultPlan::new());
    assert_eq!(explicit.run(), base);
    assert_eq!(
        base.availability,
        AvailabilitySummary::from_shards(&[ShardFaultStats::default(); 4], 0, 0, base.makespan,)
    );
    assert_eq!(base.availability.availability, 1.0);
}

#[test]
fn replicated_placement_without_faults_serves_from_primaries() {
    // Fault-free, the first (preferred) replica serves everything: no
    // failovers, no parking, and the delivery multiset matches the
    // same scenario at k = 1 over the same base policy (the replica
    // copies only change which shards *store* objects, never which
    // serve them).
    let k1 = chaos_scenario(replicated_rr(1), FaultPlan::new()).run();
    let k2 = chaos_scenario(replicated_rr(2), FaultPlan::new()).run();
    assert_eq!(k2.availability.failovers, 0);
    assert_eq!(k2.availability.parked_requests, 0);
    assert_eq!(k1.delivery_multiset(), k2.delivery_multiset());
}

#[test]
fn mid_run_crash_fails_over_with_multiset_conserved() {
    // Shard 2 dies mid-run and recovers late; with k = 2 every object
    // on shard 2 has a live replica, so every query completes via
    // failover and the delivery multiset equals the fault-free run's.
    let plan = FaultPlan::new().shard_down(2, t(20), t(500));
    let clean = chaos_scenario(replicated_rr(2), FaultPlan::new()).run();
    let faulted = chaos_scenario(replicated_rr(2), plan).run();
    assert_eq!(faulted.delivery_multiset(), clean.delivery_multiset());
    for (c, recs) in faulted.clients.iter().enumerate() {
        assert_eq!(recs.len(), 2, "client {c} lost queries to the crash");
    }
    assert_eq!(faulted.shards[2].fault.downs, 1);
    assert!(
        faulted.availability.failovers > 0,
        "no request ever failed over"
    );
    assert!(faulted.availability.downtime_micros > 0);
    assert!(faulted.availability.availability < 1.0);
    assert_eq!(faulted.availability.fault_events, 2);
}

#[test]
fn chaos_grid_is_deterministic_and_execution_mode_invariant() {
    // The differential battery's fault cells: explicit crash + seeded
    // crash stream + brown-out + dropped wake-up, all in one plan,
    // across Sequential and Parallel at several worker counts, plus a
    // repeated-run determinism check. Whole RunResults compare with
    // `==` — availability summary and per-shard fault counters
    // included.
    let plan = || {
        FaultPlan::new()
            .shard_down(2, t(20), t(300))
            .degraded(0, t(40), t(200), 0.5)
            .drop_wakeup(1, 2)
            .seeded_crashes(
                3,
                SimDuration::from_secs(120),
                SimDuration::from_secs(30),
                t(600),
                11,
            )
    };
    let reference = chaos_scenario(replicated_rr(2), plan()).run();
    let repeat = chaos_scenario(replicated_rr(2), plan()).run();
    assert_eq!(repeat, reference, "same seeded plan, different run");
    for workers in [1, 2, 4] {
        let parallel = chaos_scenario(replicated_rr(2), plan())
            .execution(ExecutionMode::Parallel { workers })
            .run();
        assert_eq!(
            parallel, reference,
            "chaos run diverged under Parallel {{ workers: {workers} }}"
        );
    }
    // The plan really did something.
    assert!(reference.availability.fault_events >= 4);
    // And conserved the work anyway.
    let clean = chaos_scenario(replicated_rr(2), FaultPlan::new()).run();
    assert_eq!(reference.delivery_multiset(), clean.delivery_multiset());
}

#[test]
fn unreplicated_outage_parks_requests_until_recovery() {
    // k = 1 and the only shard down: nothing can serve, so requests
    // park at the fleet and re-submit at recovery — late, but exactly
    // once each.
    let ds = mini_dataset();
    let q = tpch::q12(&ds);
    let build = |plan: FaultPlan| {
        Scenario::new(ds.clone())
            .clients(2)
            .engine(EngineKind::Vanilla)
            .repeat_query(q.clone(), 1)
            .faults(plan)
    };
    let clean = build(FaultPlan::new()).run();
    let faulted = build(FaultPlan::new().shard_down(0, t(15), t(60))).run();
    assert_eq!(faulted.delivery_multiset(), clean.delivery_multiset());
    assert!(
        faulted.availability.parked_requests > 0,
        "a 45 s outage on the only shard parked nothing"
    );
    assert_eq!(faulted.availability.failovers, 0, "nowhere to fail over");
    assert_eq!(
        faulted.availability.downtime_micros,
        SimDuration::from_secs(45).as_micros()
    );
    assert!(faulted.makespan >= clean.makespan);
    for recs in &faulted.clients {
        assert_eq!(recs.len(), 1);
    }
}

#[test]
fn crash_recovery_pays_the_reload_switch() {
    // The spun-up group is lost with the crash: even under
    // `initial_load_free`, the first post-recovery load pays a full
    // switch, so the faulted run can never undercut the clean one's
    // switch count.
    let ds = mini_dataset();
    let q = tpch::q12(&ds);
    let build = |plan: FaultPlan| {
        Scenario::new(ds.clone())
            .clients(2)
            .engine(EngineKind::Vanilla)
            .repeat_query(q.clone(), 1)
            .faults(plan)
    };
    let clean = build(FaultPlan::new()).run();
    let faulted = build(FaultPlan::new().shard_down(0, t(15), t(60))).run();
    assert!(
        faulted.device.group_switches > clean.device.group_switches,
        "recovery reload did not pay a switch ({} vs {})",
        faulted.device.group_switches,
        clean.device.group_switches
    );
}

#[test]
fn brownout_slows_transfers_but_conserves_deliveries() {
    let ds = mini_dataset();
    let q = tpch::q12(&ds);
    let build = |plan: FaultPlan| {
        Scenario::new(ds.clone())
            .clients(2)
            .engine(EngineKind::Skipper)
            .cache_bytes(gib(10))
            .repeat_query(q.clone(), 2)
            .faults(plan)
    };
    let clean = build(FaultPlan::new()).run();
    let slowed = build(FaultPlan::new().degraded(0, t(0), t(100_000), 0.25)).run();
    assert_eq!(slowed.delivery_multiset(), clean.delivery_multiset());
    assert!(
        slowed.makespan > clean.makespan,
        "quartering the bandwidth did not slow the run"
    );
    assert_eq!(slowed.availability.downtime_micros, 0, "degraded ≠ down");
    assert_eq!(slowed.availability.availability, 1.0);
}

#[test]
fn dropped_wakeup_is_redelivered_by_the_watchdog() {
    let ds = mini_dataset();
    let q = tpch::q12(&ds);
    let build = |plan: FaultPlan| {
        Scenario::new(ds.clone())
            .clients(2)
            .engine(EngineKind::Skipper)
            .cache_bytes(gib(10))
            .repeat_query(q.clone(), 1)
            .faults(plan)
    };
    let clean = build(FaultPlan::new()).run();
    // Wake-up #5 carries client 0's last object (5 objects per Q12
    // client, one transfer stream): parking it makes the watchdog
    // delay visible in the query's end time instead of being absorbed
    // by pipeline slack.
    let dropped = build(FaultPlan::new().drop_wakeup(0, 5)).run();
    // The lost notification delays its batch by the watchdog interval
    // but loses nothing.
    assert_eq!(dropped.delivery_multiset(), clean.delivery_multiset());
    assert!(
        dropped.clients[0][0].end >= clean.clients[0][0].end + DEFAULT_REDELIVERY,
        "redelivered batch arrived on time ({:?} vs {:?})",
        dropped.clients[0][0].end,
        clean.clients[0][0].end
    );
    for recs in &dropped.clients {
        assert_eq!(recs.len(), 1);
    }
}

/// SLO attainment and stretch flow through the scenario facade:
/// scenario-wide targets apply to tenants without their own.
#[test]
fn scenario_slo_target_feeds_attainment_counters() {
    let ds = std::sync::Arc::new(mini_dataset());
    let q = tpch::q12(&ds);
    let res = Scenario::from_workloads(vec![
        Workload::new(std::sync::Arc::clone(&ds))
            .repeat_query(q.clone(), 2)
            .engine(SkipperFactory::default().cache_bytes(gib(10)))
            .ideal_time(SimDuration::from_secs(30)),
        Workload::new(std::sync::Arc::clone(&ds))
            .repeat_query(q.clone(), 2)
            .engine(VanillaFactory)
            .slo_target(SimDuration::from_micros(1)), // unmeetable
    ])
    .slo_target(SimDuration::from_secs(100_000)) // generous default
    .run();
    // Tenant 0 inherits the generous scenario target: all met.
    let t0 = res.latency.tenants[0].slo.unwrap();
    assert_eq!((t0.met, t0.total), (2, 2));
    assert_eq!(t0.attainment(), 1.0);
    // Tenant 1's own 1 µs target wins over the default: none met.
    let t1 = res.latency.tenants[1].slo.unwrap();
    assert_eq!((t1.met, t1.total), (0, 2));
    // Fleet counters aggregate both tenants, target left unstated.
    let fleet = res.latency.fleet.slo.unwrap();
    assert_eq!((fleet.met, fleet.total), (2, 4));
    assert_eq!(fleet.target_secs, None);
    // Stretch only where an ideal was declared.
    assert!(res.latency.tenants[0].stretch.is_some());
    assert!(res.latency.tenants[1].stretch.is_none());
    assert!(res.latency.fleet.stretch.is_some());
}

#[test]
fn parallel_matches_sequential_with_shard_caches() {
    // The cache extends the differential battery: hit completions are
    // pump-local wake-ups that never enter the replay log, so the
    // windowed drive must reproduce the sequential schedule exactly in
    // every cache configuration — DRAM-only, two-tier, every policy.
    use skipper_csd::cache::{CacheConfig, CachePolicy};
    let configs = [
        CacheConfig::dram_only(2 << 30),
        CacheConfig::dram_only(6 << 30).with_policy(CachePolicy::Clock),
        CacheConfig::two_tier(2 << 30, 4 << 30).with_policy(CachePolicy::GroupAware),
    ];
    for config in configs {
        let reference = sweep_scenario(SchedPolicy::RankBased, PlacementPolicy::RoundRobin, 2)
            .shard_cache(config)
            .run();
        assert!(
            reference.cache.hits() > 0,
            "{config:?}: repeat rounds never hit the cache"
        );
        for workers in [1, 2, 4] {
            let parallel = sweep_scenario(SchedPolicy::RankBased, PlacementPolicy::RoundRobin, 2)
                .shard_cache(config)
                .execution(ExecutionMode::Parallel { workers })
                .run();
            assert_eq!(
                parallel, reference,
                "cached parallel(workers={workers}) diverged for {config:?}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Protection plane: deadlines, seeded retry/backoff, hedged requests,
// admission control. The battery pins (1) the disabled configuration
// reproducing the unprotected machine byte-exactly, (2) each mechanism's
// behavior and accounting, (3) conservation under hedging (at-most-once
// *consumption*), and (4) bit-identity across execution modes and
// repeats for every protection feature.

fn backoff(base_s: u64, cap_s: u64, max_attempts: u32) -> RetryPolicy {
    RetryPolicy::Backoff {
        base: SimDuration::from_secs(base_s),
        cap: SimDuration::from_secs(cap_s),
        max_attempts,
    }
}

#[test]
fn disabled_protection_plane_is_byte_identical() {
    // No knobs set: the protection plumbing (always installed) must not
    // perturb a single byte — and the seed is inert without retries.
    let base = chaos_scenario(replicated_rr(2), FaultPlan::new()).run();
    let reseeded = chaos_scenario(replicated_rr(2), FaultPlan::new())
        .seed(7)
        .run();
    assert_eq!(reseeded, base);
    let explicit = chaos_scenario(replicated_rr(2), FaultPlan::new())
        .retry(RetryPolicy::None)
        .run();
    assert_eq!(explicit, base);
    assert!(base.protection.is_quiet());
    // The per-tenant ledger populates on every run (behavior-neutral).
    for t in &base.protection.per_tenant {
        assert_eq!((t.offered, t.completed), (2, 2));
        assert_eq!((t.deadline_misses, t.shed), (0, 0));
    }
    assert!(base.consumed.is_empty(), "consumption log without hedging");
}

#[test]
fn generous_deadline_leaves_the_run_byte_identical() {
    // Deadlines nobody misses schedule cancel events that all pop
    // stale: the run — makespan included — must not move.
    let base = chaos_scenario(replicated_rr(2), FaultPlan::new()).run();
    let protected = chaos_scenario(replicated_rr(2), FaultPlan::new())
        .deadline(SimDuration::from_secs(10_000))
        .run();
    assert_eq!(protected, base);
}

#[test]
fn tight_deadline_cancels_and_counts_misses() {
    // A 5 s deadline is unmeetable for ~53 s queries: every query is
    // cancelled (in flight or unstarted), nothing completes, and the
    // run still drains instead of deadlocking.
    let res = chaos_scenario(replicated_rr(2), FaultPlan::new())
        .deadline(SimDuration::from_secs(5))
        .run();
    assert_eq!(res.protection.deadline_misses, 6, "2 queries × 3 tenants");
    assert_eq!(res.latency.fleet.count, 0);
    for t in &res.protection.per_tenant {
        assert_eq!((t.offered, t.completed, t.deadline_misses), (2, 0, 2));
    }
    assert!(
        res.device.requests_cancelled > 0,
        "cancels never reached the device queues"
    );
    // Much shorter than the ~181 s unprotected run: cancelled queries
    // release the fleet.
    let base = chaos_scenario(replicated_rr(2), FaultPlan::new()).run();
    assert!(res.makespan < base.makespan);
}

#[test]
fn deadline_retry_replays_missed_queries_to_completion() {
    // 65 s sits between the solo and the contended response time: early
    // queries miss under contention, their retries re-run after the
    // fleet drains and beat the deadline. Everything completes.
    let res = chaos_scenario(replicated_rr(2), FaultPlan::new())
        .deadline(SimDuration::from_secs(65))
        .retry(backoff(20, 60, 10))
        .run();
    assert!(res.protection.deadline_misses > 0, "nothing ever missed");
    assert!(res.protection.retries > 0);
    assert_eq!(res.protection.retry_exhausted, 0, "a retry budget ran dry");
    for (c, t) in res.protection.per_tenant.iter().enumerate() {
        assert_eq!(
            (t.offered, t.completed),
            (2, 2),
            "tenant {c} lost queries despite retries"
        );
    }
    // Completed-query latencies all beat the deadline (misses are
    // cancelled before they can report).
    assert!(res.latency.fleet.max_secs <= 65.0);
}

#[test]
fn retry_replaces_parking_during_outage() {
    // k = 1 and the only shard down: without retry the requests park at
    // the fleet; with backoff they re-submit on their own schedule and
    // complete after recovery — same deliveries, no parking.
    let ds = mini_dataset();
    let q = tpch::q12(&ds);
    let build = |plan: FaultPlan| {
        Scenario::new(ds.clone())
            .clients(2)
            .engine(EngineKind::Vanilla)
            .repeat_query(q.clone(), 1)
            .faults(plan)
    };
    let clean = build(FaultPlan::new()).run();
    let outage = || FaultPlan::new().shard_down(0, t(15), t(60));
    let parked = build(outage()).run();
    let retried = build(outage()).retry(backoff(5, 20, 50)).run();
    assert_eq!(retried.delivery_multiset(), clean.delivery_multiset());
    assert_eq!(
        retried.availability.parked_requests, 0,
        "retry tenants must bypass the parking lot"
    );
    assert!(retried.protection.retries > 0);
    assert!(parked.availability.parked_requests > 0);
    for recs in &retried.clients {
        assert_eq!(recs.len(), 1);
    }
}

#[test]
fn hedged_requests_cut_brownout_tails_and_conserve_consumption() {
    // Shard 0 crawls at 5% bandwidth; its queries would dominate the
    // tail. Hedging re-issues its reads to the healthy replica after
    // 5 s — first copy wins, the loser is cancelled or discarded, and
    // every (client, query, object) is consumed exactly once.
    let slow = || FaultPlan::new().degraded(0, t(0), t(2_000), 0.05);
    let clean = chaos_scenario(replicated_rr(2), FaultPlan::new()).run();
    let unhedged = chaos_scenario(replicated_rr(2), slow()).run();
    let hedged = chaos_scenario(replicated_rr(2), slow())
        .hedge_after(SimDuration::from_secs(5))
        .run();
    assert!(hedged.protection.hedges_fired > 0, "no hedge ever fired");
    assert!(
        hedged.latency.fleet.max_secs < unhedged.latency.fleet.max_secs,
        "hedging did not beat the degraded shard ({} s vs {} s)",
        hedged.latency.fleet.max_secs,
        unhedged.latency.fleet.max_secs
    );
    // At-most-once consumption: the consumed multiset equals the clean
    // run's delivery multiset — duplicates were discarded, not eaten.
    assert_eq!(hedged.consumed_multiset(), clean.delivery_multiset());
    // Every hedged object consumes exactly one copy; the other copy is
    // the loser — cancelled in-queue, discarded at delivery, or (for
    // the last objects of a query) dropped as stale when it lands
    // after the query already finished. (Wins overlap with these: a
    // win just says *which* copy was consumed.)
    let losers =
        hedged.protection.hedge_losers_cancelled + hedged.protection.hedge_losers_discarded;
    assert!(
        losers > 0 && losers <= hedged.protection.hedges_fired,
        "loser accounting out of range: {losers} of {} duplicates",
        hedged.protection.hedges_fired
    );
    assert!(hedged.protection.hedge_wins > 0, "no duplicate ever won");
    assert!(hedged.protection.hedge_wins <= hedged.protection.hedges_fired);
    for t in &hedged.protection.per_tenant {
        assert_eq!((t.offered, t.completed), (2, 2));
    }
}

#[test]
fn admission_sheds_lowest_priority_under_saturation() {
    // One shard, four tenants submitting together: tenant 0 (priority
    // 5) fills the queue, tenants 1–2 (priority 0) are over the ceiling
    // and shed everything, tenant 3 (priority 9) rides its 10× headroom.
    let ds = mini_dataset();
    let q = tpch::q12(&ds);
    let mk = |priority: u32| {
        Workload::new(Arc::new(ds.clone()))
            .repeat_query(q.clone(), 2)
            .engine(SkipperFactory::default().cache_bytes(gib(10)))
            .priority(priority)
    };
    let res = Scenario::from_workloads(vec![mk(5), mk(0), mk(0), mk(3)])
        .admission(AdmissionPolicy {
            max_queue_depth: 3,
            max_queued_bytes: u64::MAX,
            response: AdmissionResponse::Shed,
            breaker: None,
        })
        .run();
    assert_eq!(res.protection.sheds, 4, "tenants 1 and 2 shed everything");
    for c in [1, 2] {
        let t = &res.protection.per_tenant[c];
        assert_eq!((t.offered, t.completed, t.shed), (2, 0, 2));
    }
    for c in [0, 3] {
        let t = &res.protection.per_tenant[c];
        assert_eq!((t.offered, t.completed, t.shed), (2, 2, 0));
    }
    assert_eq!(res.latency.fleet.count, 4);
}

#[test]
fn backpressure_defers_but_completes_everything() {
    // Same saturation, Backpressure response: over-ceiling arrivals are
    // pushed back in 20 s steps instead of dropped — goodput is
    // preserved at the price of latency.
    let ds = mini_dataset();
    let q = tpch::q12(&ds);
    let mk = || {
        Workload::new(Arc::new(ds.clone()))
            .repeat_query(q.clone(), 2)
            .engine(SkipperFactory::default().cache_bytes(gib(10)))
    };
    let res = Scenario::from_workloads(vec![mk(), mk(), mk(), mk()])
        .admission(AdmissionPolicy {
            max_queue_depth: 3,
            max_queued_bytes: u64::MAX,
            response: AdmissionResponse::Backpressure(SimDuration::from_secs(20)),
            breaker: None,
        })
        .run();
    assert!(res.protection.backpressure_deferrals > 0);
    assert_eq!(res.protection.sheds, 0);
    for t in &res.protection.per_tenant {
        assert_eq!((t.offered, t.completed), (2, 2));
    }
    assert_eq!(res.latency.fleet.count, 8);
}

#[test]
fn breaker_routes_reads_around_a_browned_out_shard() {
    // With the breaker armed, a brown-out below the threshold diverts
    // reads to the healthy replica for the whole episode; without it
    // the primary crawls. Both conserve deliveries.
    let slow = || FaultPlan::new().degraded(0, t(0), t(2_000), 0.1);
    let admission = AdmissionPolicy {
        max_queue_depth: usize::MAX,
        max_queued_bytes: u64::MAX,
        response: AdmissionResponse::Shed,
        breaker: Some(BreakerPolicy {
            brownout_below: 0.5,
            trip_timeouts: u32::MAX,
            cooldown: SimDuration::from_secs(60),
        }),
    };
    let clean = chaos_scenario(replicated_rr(2), FaultPlan::new()).run();
    let unprotected = chaos_scenario(replicated_rr(2), slow()).run();
    let shielded = chaos_scenario(replicated_rr(2), slow())
        .admission(admission)
        .run();
    assert!(shielded.protection.breaker_trips >= 1);
    assert_eq!(shielded.protection.sheds, 0, "ceilings were unreachable");
    // The fault window itself pins both makespans (the Restore event
    // at t = 2000 s is the last calendar entry), so the win shows in
    // the response-time tail instead.
    assert!(
        shielded.latency.fleet.max_secs < unprotected.latency.fleet.max_secs,
        "breaker failed to route around the brown-out ({} s vs {} s)",
        shielded.latency.fleet.max_secs,
        unprotected.latency.fleet.max_secs
    );
    assert_eq!(shielded.delivery_multiset(), clean.delivery_multiset());
}

#[test]
fn protection_grid_is_deterministic_and_execution_mode_invariant() {
    // The differential battery extended over the protection plane: each
    // cell runs the full feature set it names, and whole RunResults —
    // protection counters and consumption log included — must be
    // byte-equal across repeats and execution modes.
    type Cell = (&'static str, Box<dyn Fn() -> Scenario>);
    let cells: Vec<Cell> = vec![
        (
            "deadline+retry under crash",
            Box::new(|| {
                chaos_scenario(
                    replicated_rr(2),
                    FaultPlan::new().shard_down(2, t(20), t(300)),
                )
                .deadline(SimDuration::from_secs(65))
                .retry(backoff(20, 60, 10))
            }),
        ),
        (
            "hedge under brown-out",
            Box::new(|| {
                chaos_scenario(
                    replicated_rr(2),
                    FaultPlan::new().degraded(0, t(0), t(2_000), 0.05),
                )
                .hedge_after(SimDuration::from_secs(5))
            }),
        ),
        (
            "admission+breaker under degrade",
            Box::new(|| {
                chaos_scenario(
                    replicated_rr(2),
                    FaultPlan::new().degraded(1, t(10), t(400), 0.25),
                )
                .admission(AdmissionPolicy {
                    max_queue_depth: 6,
                    max_queued_bytes: u64::MAX,
                    response: AdmissionResponse::Backpressure(SimDuration::from_secs(15)),
                    breaker: Some(BreakerPolicy {
                        brownout_below: 0.5,
                        trip_timeouts: 3,
                        cooldown: SimDuration::from_secs(60),
                    }),
                })
            }),
        ),
        (
            "retry instead of parking",
            Box::new(|| {
                chaos_scenario(
                    PlacementPolicy::RoundRobin,
                    FaultPlan::new().shard_down(1, t(10), t(120)),
                )
                .retry(backoff(5, 30, 50))
            }),
        ),
    ];
    for (name, build) in &cells {
        let reference = build().run();
        let repeat = build().run();
        assert_eq!(repeat, reference, "{name}: same config, different run");
        for workers in [1, 2, 4] {
            let parallel = build().execution(ExecutionMode::Parallel { workers }).run();
            assert_eq!(
                parallel, reference,
                "{name}: diverged under Parallel {{ workers: {workers} }}"
            );
        }
    }
}

#[test]
fn overlapping_outages_resubmit_parked_requests_in_arrival_order() {
    // Two shards fail in overlapping windows and recover one at a time.
    // Requests parked while both were down must re-submit at each
    // recovery in original arrival order — the fleet's parking lot is
    // FIFO per recovery, never a LIFO or an interleaving artifact.
    let ds = mini_dataset();
    let payload: Arc<Segment> = Arc::clone(&ds.segments[0][0]);
    let mk_dev = |objs: &[ObjectId]| {
        let mut store: ObjectStore<Arc<Segment>> = ObjectStore::new();
        for &o in objs {
            store.put(o, 1 << 20, 0, Arc::clone(&payload));
        }
        CsdDevice::new(
            CsdConfig {
                switch_latency: SimDuration::from_secs(1),
                bandwidth_bytes_per_sec: (1u64 << 30) as f64,
                initial_load_free: true,
                parallel_streams: 1,
                stream_model: StreamModel::Pipeline,
                ..CsdConfig::default()
            },
            store,
            SchedPolicy::FcfsObject.build(),
            IntraGroupOrder::SemanticRoundRobin,
        )
    };
    // Shard 0 owns a0..a2, shard 1 owns b0..b2.
    let a: Vec<ObjectId> = (0..3).map(|s| ObjectId::new(0, 0, s)).collect();
    let b: Vec<ObjectId> = (0..3).map(|s| ObjectId::new(0, 1, s)).collect();
    let mut map = std::collections::HashMap::new();
    for &o in &a {
        map.insert(o, 0);
    }
    for &o in &b {
        map.insert(o, 1);
    }
    let mut fleet = DeviceFleet::new(vec![mk_dev(&a), mk_dev(&b)], map);
    let mut flushed = Vec::new();
    fleet.fail_shard(0, t(1), &mut flushed);
    fleet.fail_shard(1, t(2), &mut flushed);
    assert!(flushed.is_empty());
    // Six requests from three clients while both shards are down, in a
    // deliberately shard-interleaved arrival order.
    let arrivals = [
        (0usize, a[0]),
        (1usize, b[0]),
        (2usize, a[1]),
        (0usize, b[1]),
        (1usize, a[2]),
        (2usize, b[2]),
    ];
    for (i, &(client, obj)) in arrivals.iter().enumerate() {
        fleet.submit(
            t(10 + i as u64),
            client,
            QueryId::new(client as u16, 0),
            &[obj],
        );
    }
    assert_eq!(fleet.parked_total(), 6);
    // Shard 0 recovers first: its three parked requests re-submit (in
    // arrival order), shard 1's re-park untouched.
    fleet.recover_shard(0, t(100));
    // Drain shard 0 and collect its service order.
    fn drain(fleet: &mut DeviceFleet, start: SimTime, served: &mut [Vec<(usize, ObjectId)>; 2]) {
        let mut now = start;
        loop {
            let mut armed = Vec::new();
            fleet.poke_all(now, |s, at| armed.push((s, at)));
            if armed.is_empty() {
                break;
            }
            for (s, at) in armed {
                for d in fleet.on_wakeup(s, at) {
                    served[s].push((d.client, d.object));
                }
                now = now.max(at);
            }
        }
    }
    let mut served: [Vec<(usize, ObjectId)>; 2] = [Vec::new(), Vec::new()];
    drain(&mut fleet, t(100), &mut served);
    assert_eq!(
        served[0],
        vec![(0, a[0]), (2, a[1]), (1, a[2])],
        "shard 0 recovery re-submitted out of arrival order"
    );
    assert!(served[1].is_empty(), "shard 1 served while down");
    // Shard 1 recovers later: same FIFO property for its survivors.
    fleet.recover_shard(1, t(1_000));
    drain(&mut fleet, t(1_000), &mut served);
    assert_eq!(
        served[1],
        vec![(1, b[0]), (0, b[1]), (2, b[2])],
        "shard 1 recovery re-submitted out of arrival order"
    );
    assert!(fleet.is_quiescent());
}
