//! The device pump: tracks the device's earliest pending completion.
//!
//! The CSD model is passive — it must be `kick`ed whenever it might
//! have work and `complete`d exactly at the earliest instant it
//! reported. With the multi-stream service pipeline that instant is the
//! *earliest of K completions*, and it can move **earlier** whenever new
//! work fills an idle slot — so the historical "one armed wake-up, poke
//! is a no-op while armed" protocol is re-derived as *re-arm on every
//! mutation*:
//!
//! * [`DevicePump::poke`] kicks the device and, when the earliest
//!   completion differs from the armed instant, arms a fresh wake-up at
//!   the new time. The superseded wake-up event stays in the caller's
//!   queue — events cannot be unscheduled — and is recognized as stale
//!   when it fires.
//! * [`DevicePump::on_wakeup`] fires a wake-up: a stale one (the armed
//!   instant moved) is ignored and returns no deliveries; a live one
//!   completes *everything* due at that instant and returns the batch.
//!   Callers must poke again afterwards.
//!
//! A pump only re-kicks when *its* device mutated since the last poke
//! (a submit or a live wake-up — tracked by a dirty flag): the fleet
//! pokes every shard after every event, and nothing can move an
//! untouched shard's earliest completion, so clean shards stay O(1) on
//! the hot path instead of re-running a scheduler decision.
//!
//! With one stream the earliest completion never changes while armed
//! (the single slot is busy), so no wake-up is ever superseded and the
//! protocol reduces exactly to the historical one-armed-flag behaviour —
//! same events, same order.
//!
//! The pump is the per-shard unit of the
//! [`DeviceFleet`](super::fleet::DeviceFleet): a fleet is N pumps, each
//! running this protocol independently against its own device.
//!
//! ## Windowed (parallel) execution
//!
//! Under `ExecutionMode::Parallel` the pump additionally implements
//! [`WindowDrain`]: [`DevicePump::drain_window`] pre-executes the
//! device's completion chain strictly below the safe horizon — the
//! *same* `complete`/`kick` calls the sequential loop would make, in
//! the same order — into a [`WindowBuffer`] replay log. The event loop
//! then answers in-window `Device` events from the log: the front
//! entry's instant matches ⇒ consume it (deliver the recorded batch,
//! hand the recorded re-arm to the next `poke`), otherwise the event
//! is a stale superseded wake-up and a no-op — exactly the sequential
//! armed-flag rule, which is why a windowed run is bit-identical.
//! `submit` asserts the log is drained: the horizon guarantees no
//! cross-shard interaction fires inside a window, so a submit landing
//! mid-replay would mean the horizon was unsound.
//!
//! ## Fault plane
//!
//! The pump is also where per-shard fault state lives:
//!
//! * **Crash** ([`DevicePump::fail`]) — in-flight transfers abort and
//!   the queue evacuates into the caller's buffer (the fleet re-routes
//!   or parks them); the pump rejects submits and kicks until
//!   [`DevicePump::recover`]. Fault instants are safe-horizon
//!   barriers, so a crash never lands mid-replay (asserted).
//! * **Brown-out** ([`DevicePump::set_bandwidth_factor`]) — forwarded
//!   to the device; only newly dispatched transfers see the factor.
//! * **Dropped wake-up** ([`DevicePump::plan_drop`]) — the `nth` live
//!   wake-up's deliveries are parked instead of routed (the transfers
//!   *did* complete on time inside the device — only the notification
//!   is lost) and a watchdog redelivers them a fixed delay later.
//!   Shards with drop state pending skip window pre-execution and run
//!   the live sequential path, which keeps ordinal counting exact and
//!   the run bit-identical across execution modes.

use std::collections::VecDeque;
use std::sync::Arc;

use skipper_csd::sched::PendingRequest;
use skipper_csd::{CsdDevice, Delivery, ObjectId, QueryId};
use skipper_relational::segment::Segment;
use skipper_sim::parallel::{drain_chain, WindowBuffer, WindowDrain};
use skipper_sim::{SimDuration, SimTime};

/// Wrapper pairing the device with its armed-wake-up instant.
pub struct DevicePump {
    device: CsdDevice<Arc<Segment>>,
    /// The earliest pending completion a wake-up is armed for.
    /// Invariant: `Some(t)` ⇔ the device reported `t` as its earliest
    /// completion and no `on_wakeup(t)` has consumed it yet.
    armed_at: Option<SimTime>,
    /// Set on every device mutation (submit / live wake-up), cleared
    /// by `poke`. Only a mutation can move the device's earliest
    /// completion, so a clean pump skips the kick entirely — the fleet
    /// pokes every shard after every event, and untouched shards must
    /// stay O(1) on that hot path.
    dirty: bool,
    /// Replay log of the window drained ahead of the event loop
    /// (always empty under sequential execution).
    replay: WindowBuffer<Delivery<Arc<Segment>>>,
    /// Staging buffer for one drained completion batch (reused).
    stage: Vec<Delivery<Arc<Segment>>>,
    /// Re-arm instant recorded with the replay entry just consumed,
    /// handed out by the next `poke` so the wake-up chain stays
    /// scheduled in the sequential order (deliveries route first).
    pending_rearm: Option<SimTime>,
    /// Fault plane: the shard is crashed — no submits, no kicks.
    down: bool,
    /// Remaining drop-wakeup injections, in ordinal order:
    /// `(nth live wake-up, redelivery delay)`.
    drops: VecDeque<(u64, SimDuration)>,
    /// Live wake-ups handled so far (drop-ordinal matching).
    wakeup_count: u64,
    /// Deliveries withheld by a dropped wake-up, awaiting the watchdog.
    parked: Vec<Delivery<Arc<Segment>>>,
    /// Watchdog redelivery instant for the parked batch.
    redeliver_at: Option<SimTime>,
    /// Whether the redelivery wake-up event has been scheduled.
    redeliver_armed: bool,
}

impl DevicePump {
    /// Wraps `device`.
    pub fn new(device: CsdDevice<Arc<Segment>>) -> Self {
        DevicePump {
            device,
            armed_at: None,
            dirty: true,
            replay: WindowBuffer::new(),
            stage: Vec::new(),
            pending_rearm: None,
            down: false,
            drops: VecDeque::new(),
            wakeup_count: 0,
            parked: Vec::new(),
            redeliver_at: None,
            redeliver_armed: false,
        }
    }

    /// Submits GET requests from `client` tagged with `query`.
    pub fn submit(&mut self, now: SimTime, client: usize, query: QueryId, objects: &[ObjectId]) {
        assert!(
            self.replay.is_empty() && self.pending_rearm.is_none(),
            "submit landed inside a drained window (unsound safe horizon): \
             a cross-shard interaction fired before the drained horizon"
        );
        assert!(
            !self.down,
            "submit landed on a crashed shard (fleet routing bug)"
        );
        self.dirty = true;
        self.device.submit(now, client, query, objects);
    }

    /// Kicks the device (filling idle pipeline slots) and re-arms the
    /// wake-up if the earliest pending completion changed. Returns the
    /// instant to schedule, or `None` when the armed wake-up is still
    /// accurate (or the device has nothing to do). A pump untouched
    /// since its last poke is a no-op: nothing can have moved its
    /// earliest completion.
    pub fn poke(&mut self, now: SimTime) -> Option<SimTime> {
        if !self.replay.is_empty() || self.pending_rearm.is_some() {
            // Mid-replay: the device already executed this window; the
            // only wake-up to schedule is the re-arm recorded with the
            // entry just consumed (None while other shards' events
            // fire — this shard's chain is already fully scheduled).
            return self.pending_rearm.take();
        }
        if !self.dirty {
            return None;
        }
        if self.down {
            // Crashed: the device was failed empty and the fleet routes
            // around it; nothing to kick until recovery.
            return None;
        }
        self.dirty = false;
        match self.device.kick(now) {
            Some(at) if self.armed_at == Some(at) => None,
            Some(at) => {
                // Either nothing was armed, or new work moved the
                // earliest completion: arm (or re-arm) at the new
                // instant. A superseded event becomes stale.
                self.armed_at = Some(at);
                Some(at)
            }
            None => {
                debug_assert!(
                    self.armed_at.is_none(),
                    "armed wake-up with nothing in flight"
                );
                self.armed_at = None;
                None
            }
        }
    }

    /// Handles a wake-up firing at `now`: completes everything due and
    /// returns the finished transfers (empty for a switch completion or
    /// a stale, superseded wake-up). Callers must [`DevicePump::poke`]
    /// again afterwards. Allocating convenience form of
    /// [`DevicePump::on_wakeup_into`].
    pub fn on_wakeup(&mut self, now: SimTime) -> Vec<Delivery<Arc<Segment>>> {
        let mut out = Vec::new();
        self.on_wakeup_into(now, &mut out);
        out
    }

    /// Handles a wake-up firing at `now`, appending the finished
    /// transfers to `out` — a caller-owned scratch buffer the event
    /// loop reuses across wake-ups, so the steady state allocates
    /// nothing. Appends nothing for a switch completion or a stale,
    /// superseded wake-up. Callers must [`DevicePump::poke`] again
    /// afterwards.
    pub fn on_wakeup_into(&mut self, now: SimTime, out: &mut Vec<Delivery<Arc<Segment>>>) {
        if !self.replay.is_empty() {
            // Windowed execution: the device already ran this instant
            // during the drain. The front replay entry matching `now`
            // is the live wake-up (its batch routes now, its re-arm
            // goes out on the next poke); any other in-window event is
            // a stale superseded wake-up, exactly as in the sequential
            // armed-flag protocol. The device itself is untouched, so
            // the pump stays clean.
            if self.replay.next_at() == Some(now) {
                debug_assert!(self.pending_rearm.is_none());
                self.pending_rearm = self.replay.consume_into(now, out);
            }
            return;
        }
        if self.redeliver_at == Some(now) {
            // The watchdog fires: release the batch withheld by the
            // dropped wake-up. The device completed these transfers on
            // time internally — only their *notification* was lost —
            // so nothing is kicked and nothing is re-served.
            self.redeliver_at = None;
            self.redeliver_armed = false;
            out.append(&mut self.parked);
            // Fall through: the device's own completion may be due at
            // the same instant (two events, first one handles both,
            // the second fires stale).
        }
        if self.armed_at != Some(now) {
            // Stale: this wake-up was superseded by a re-arm at an
            // earlier instant (whose firing already completed the
            // device past this point), or nothing is armed at all.
            // The device is untouched, so the pump stays clean.
            return;
        }
        self.armed_at = None;
        self.dirty = true;
        self.wakeup_count += 1;
        let start = out.len();
        self.device.complete_into(now, out);
        if self
            .drops
            .front()
            .is_some_and(|&(nth, _)| nth == self.wakeup_count)
        {
            // This live wake-up's notification is lost: the device
            // completed (above, on time), but its deliveries go to the
            // parked buffer until the watchdog redelivers them.
            let (_, delay) = self.drops.pop_front().expect("front checked");
            debug_assert!(
                self.parked.is_empty() && self.redeliver_at.is_none(),
                "overlapping drop-wakeup episodes on one shard"
            );
            self.parked.extend(out.drain(start..));
            self.redeliver_at = Some(now + delay);
            self.redeliver_armed = false;
        }
    }

    /// The watchdog redelivery instant to schedule, handed out exactly
    /// once per dropped batch (the fleet polls this on every poke
    /// pass, alongside the device wake-up from [`DevicePump::poke`]).
    pub fn take_redelivery_arm(&mut self) -> Option<SimTime> {
        match self.redeliver_at {
            Some(at) if !self.redeliver_armed => {
                self.redeliver_armed = true;
                Some(at)
            }
            _ => None,
        }
    }

    /// Installs a drop-wakeup injection: the `nth` live wake-up
    /// (1-based, from run start) is dropped and redelivered
    /// `redeliver_after` later. Must be installed in increasing
    /// ordinal order before the run starts.
    pub fn plan_drop(&mut self, nth: u64, redeliver_after: SimDuration) {
        assert!(
            self.drops.back().is_none_or(|&(last, _)| last < nth),
            "DropWakeup ordinals on one shard must be distinct and increasing"
        );
        self.drops.push_back((nth, redeliver_after));
    }

    /// Crashes the shard: aborts in-flight transfers and evacuates the
    /// queue into `displaced` (in slot order, then arrival order),
    /// flushes any watchdog-parked deliveries into `completed` (their
    /// transfers finished before the crash — crash detection reveals
    /// them), and marks the pump down. Returns the number of aborted
    /// in-flight transfers. The spun-up group is lost: the first load
    /// after recovery pays a full switch even under `initial_load_free`.
    pub fn fail(
        &mut self,
        now: SimTime,
        displaced: &mut Vec<PendingRequest>,
        completed: &mut Vec<Delivery<Arc<Segment>>>,
    ) -> usize {
        assert!(
            self.replay.is_empty() && self.pending_rearm.is_none(),
            "shard crashed inside a drained window: fault instants must \
             bound the safe horizon"
        );
        assert!(!self.down, "shard crashed while already down");
        self.down = true;
        // Any armed wake-up event becomes stale; the watchdog event
        // (if armed) goes stale too — the crash flushes its batch now.
        self.armed_at = None;
        self.redeliver_at = None;
        self.redeliver_armed = false;
        completed.append(&mut self.parked);
        self.dirty = true;
        self.device.fail(now, displaced)
    }

    /// Recovers a crashed shard: the pump accepts submits and kicks
    /// again (cold — see [`DevicePump::fail`] on the lost group).
    pub fn recover(&mut self, _now: SimTime) {
        assert!(self.down, "recovering a shard that is not down");
        self.down = false;
        self.dirty = true;
    }

    /// Scales the device's effective per-stream bandwidth (fault-plane
    /// brown-outs); transfers dispatched from now on see the factor,
    /// committed in-flight completion instants do not move.
    pub fn set_bandwidth_factor(&mut self, factor: f64) {
        self.device.set_bandwidth_factor(factor);
    }

    /// True while the shard is crashed.
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// The earliest instant this pump needs the event loop: the armed
    /// device completion or the watchdog redelivery, whichever first.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        match (self.armed_at, self.redeliver_at) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// True when the device is idle with an empty queue and the fault
    /// plane holds nothing back (no parked batch, no pending watchdog).
    pub fn is_quiescent(&self) -> bool {
        self.device.is_quiescent() && self.parked.is_empty() && self.redeliver_at.is_none()
    }

    /// True while fault state forces this shard onto the live
    /// sequential path inside parallel windows: crashed, a drop
    /// pending (live wake-ups must be counted), or a parked batch
    /// awaiting its watchdog.
    fn fault_bound(&self) -> bool {
        self.down
            || !self.drops.is_empty()
            || !self.parked.is_empty()
            || self.redeliver_at.is_some()
    }

    /// True when the pump's replay log still holds drained wake-ups
    /// the event loop has not consumed yet.
    pub fn replaying(&self) -> bool {
        !self.replay.is_empty() || self.pending_rearm.is_some()
    }

    /// The armed wake-up instant, if any (the device's earliest
    /// pending completion).
    pub fn armed_at(&self) -> Option<SimTime> {
        self.armed_at
    }

    /// Read access to the wrapped device (metrics, trace, scheduler).
    pub fn device(&self) -> &CsdDevice<Arc<Segment>> {
        &self.device
    }

    /// Unwraps the device (end-of-run result assembly: the runtime takes
    /// spans and ledgers by move instead of cloning).
    pub fn into_device(self) -> CsdDevice<Arc<Segment>> {
        self.device
    }
}

impl WindowDrain for DevicePump {
    /// Pre-executes the device's completion chain strictly below
    /// `horizon` into the replay log: the same `complete_into` +
    /// `kick` pair the sequential loop runs at each wake-up, at the
    /// same instants, so the log is exactly the sequential execution.
    /// Pumps are always clean (poked) when a window opens — the loop
    /// pokes after every mutating event — so no catch-up kick is
    /// needed, and completion chains are time-monotone, keeping the
    /// log ordered.
    fn drain_window(&mut self, horizon: SimTime) {
        if self.fault_bound() {
            // Fault-affected shards skip pre-execution and take the
            // live sequential path for every in-window event: a crashed
            // shard has nothing to drain, and drop-wakeup accounting
            // (ordinal counting, parking, watchdog) lives on the live
            // path only. Sound because in-window deliveries land only
            // on busy clients' inboxes (the horizon is bounded by
            // `min_armed` — which includes this shard's wake-ups —
            // whenever an idle live client exists), so the event order
            // and results stay bit-identical to sequential.
            return;
        }
        debug_assert!(!self.dirty, "window opened on an unpoked pump");
        let device = &mut self.device;
        drain_chain(
            &mut self.armed_at,
            horizon,
            &mut self.replay,
            &mut self.stage,
            |at, out| {
                device.complete_into(at, out);
                device.kick(at)
            },
        );
    }
}
