//! The device pump: tracks the device's earliest pending completion.
//!
//! The CSD model is passive — it must be `kick`ed whenever it might
//! have work and `complete`d exactly at the earliest instant it
//! reported. With the multi-stream service pipeline that instant is the
//! *earliest of K completions*, and it can move **earlier** whenever new
//! work fills an idle slot — so the historical "one armed wake-up, poke
//! is a no-op while armed" protocol is re-derived as *re-arm on every
//! mutation*:
//!
//! * [`DevicePump::poke`] kicks the device and, when the earliest
//!   completion differs from the armed instant, arms a fresh wake-up at
//!   the new time. The superseded wake-up event stays in the caller's
//!   queue — events cannot be unscheduled — and is recognized as stale
//!   when it fires.
//! * [`DevicePump::on_wakeup`] fires a wake-up: a stale one (the armed
//!   instant moved) is ignored and returns no deliveries; a live one
//!   completes *everything* due at that instant and returns the batch.
//!   Callers must poke again afterwards.
//!
//! A pump only re-kicks when *its* device mutated since the last poke
//! (a submit or a live wake-up — tracked by a dirty flag): the fleet
//! pokes every shard after every event, and nothing can move an
//! untouched shard's earliest completion, so clean shards stay O(1) on
//! the hot path instead of re-running a scheduler decision.
//!
//! With one stream the earliest completion never changes while armed
//! (the single slot is busy), so no wake-up is ever superseded and the
//! protocol reduces exactly to the historical one-armed-flag behaviour —
//! same events, same order.
//!
//! The pump is the per-shard unit of the
//! [`DeviceFleet`](super::fleet::DeviceFleet): a fleet is N pumps, each
//! running this protocol independently against its own device.
//!
//! ## Windowed (parallel) execution
//!
//! Under `ExecutionMode::Parallel` the pump additionally implements
//! [`WindowDrain`]: [`DevicePump::drain_window`] pre-executes the
//! device's completion chain strictly below the safe horizon — the
//! *same* `complete`/`kick` calls the sequential loop would make, in
//! the same order — into a [`WindowBuffer`] replay log. The event loop
//! then answers in-window `Device` events from the log: the front
//! entry's instant matches ⇒ consume it (deliver the recorded batch,
//! hand the recorded re-arm to the next `poke`), otherwise the event
//! is a stale superseded wake-up and a no-op — exactly the sequential
//! armed-flag rule, which is why a windowed run is bit-identical.
//! `submit` asserts the log is drained: the horizon guarantees no
//! cross-shard interaction fires inside a window, so a submit landing
//! mid-replay would mean the horizon was unsound.
//!
//! ## Fault plane
//!
//! The pump is also where per-shard fault state lives:
//!
//! * **Crash** ([`DevicePump::fail`]) — in-flight transfers abort and
//!   the queue evacuates into the caller's buffer (the fleet re-routes
//!   or parks them); the pump rejects submits and kicks until
//!   [`DevicePump::recover`]. Fault instants are safe-horizon
//!   barriers, so a crash never lands mid-replay (asserted).
//! * **Brown-out** ([`DevicePump::set_bandwidth_factor`]) — forwarded
//!   to the device; only newly dispatched transfers see the factor.
//! * **Dropped wake-up** ([`DevicePump::plan_drop`]) — the `nth` live
//!   wake-up's deliveries are parked instead of routed (the transfers
//!   *did* complete on time inside the device — only the notification
//!   is lost) and a watchdog redelivers them a fixed delay later.
//!   Shards with drop state pending skip window pre-execution and run
//!   the live sequential path, which keeps ordinal counting exact and
//!   the run bit-identical across execution modes.

//!
//! ## Shard cache
//!
//! With a [`CacheConfig`] installed ([`DevicePump::set_cache`]) the
//! pump fronts the device with DRAM/SSD tiers: `submit` consults the
//! cache first, schedules hits as *cache completions* at tier
//! bandwidth (a pending min-heap, armed through
//! [`DevicePump::take_cache_arm`] exactly like the watchdog), and
//! forwards only the misses to the device — a hit never touches the
//! CSD queue, the scheduler, or a group switch. Miss deliveries fill
//! the tiers at consumption time on *both* the live and the replay
//! path, so windowed execution stays bit-identical, and a crash
//! invalidates the whole cache (pending hits are displaced like
//! aborted transfers and re-routed by the fleet — a dead shard can
//! never serve a stale hit). No cache installed (or zero capacity)
//! leaves every structure `None`: the machine is byte-exactly the
//! uncached one.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

use skipper_csd::cache::{CacheConfig, CacheStats, ShardCache};
use skipper_csd::sched::PendingRequest;
use skipper_csd::{CsdDevice, Delivery, GroupId, LedgerMode, ObjectId, QueryId};
use skipper_relational::segment::Segment;
use skipper_sim::parallel::{drain_chain, WindowBuffer, WindowDrain};
use skipper_sim::{SimDuration, SimTime};

/// One cache hit awaiting its tier-bandwidth completion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct CachePending {
    /// Delivery-ready instant (tier pipe reservation).
    ready: SimTime,
    /// Per-shard issue sequence (deterministic tie-break).
    seq: u64,
    client: usize,
    query: QueryId,
    object: ObjectId,
    group: GroupId,
    bytes: u64,
}

impl Ord for CachePending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.ready, self.seq).cmp(&(other.ready, other.seq))
    }
}

impl PartialOrd for CachePending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Everything the pump keeps per installed shard cache. Boxed behind
/// an `Option` so the uncached pump pays one pointer-null test per
/// operation and nothing else.
struct CacheState {
    cache: ShardCache,
    config: CacheConfig,
    /// Hits in flight on the tier pipes, earliest-ready first.
    pending: BinaryHeap<Reverse<CachePending>>,
    /// Issue counter (heap tie-break).
    seq: u64,
    /// The pending-hit instant a wake-up is armed for (re-armed when a
    /// new hit becomes the earliest, like the device protocol).
    armed: Option<SimTime>,
    /// Reusable submit-partition scratch (the miss batch).
    miss_scratch: Vec<ObjectId>,
    /// Cache-served deliveries `(client, query, object)`, recorded
    /// only under `LedgerMode::Full` (mirrors the device ledger).
    served_log: Vec<(usize, QueryId, ObjectId)>,
    ledger: bool,
}

/// Wrapper pairing the device with its armed-wake-up instant.
pub struct DevicePump {
    device: CsdDevice<Arc<Segment>>,
    /// The earliest pending completion a wake-up is armed for.
    /// Invariant: `Some(t)` ⇔ the device reported `t` as its earliest
    /// completion and no `on_wakeup(t)` has consumed it yet.
    armed_at: Option<SimTime>,
    /// Set on every device mutation (submit / live wake-up), cleared
    /// by `poke`. Only a mutation can move the device's earliest
    /// completion, so a clean pump skips the kick entirely — the fleet
    /// pokes every shard after every event, and untouched shards must
    /// stay O(1) on that hot path.
    dirty: bool,
    /// Replay log of the window drained ahead of the event loop
    /// (always empty under sequential execution).
    replay: WindowBuffer<Delivery<Arc<Segment>>>,
    /// Staging buffer for one drained completion batch (reused).
    stage: Vec<Delivery<Arc<Segment>>>,
    /// Re-arm instant recorded with the replay entry just consumed,
    /// handed out by the next `poke` so the wake-up chain stays
    /// scheduled in the sequential order (deliveries route first).
    pending_rearm: Option<SimTime>,
    /// Fault plane: the shard is crashed — no submits, no kicks.
    down: bool,
    /// Remaining drop-wakeup injections, in ordinal order:
    /// `(nth live wake-up, redelivery delay)`.
    drops: VecDeque<(u64, SimDuration)>,
    /// Live wake-ups handled so far (drop-ordinal matching).
    wakeup_count: u64,
    /// Deliveries withheld by a dropped wake-up, awaiting the watchdog.
    parked: Vec<Delivery<Arc<Segment>>>,
    /// Watchdog redelivery instant for the parked batch.
    redeliver_at: Option<SimTime>,
    /// Whether the redelivery wake-up event has been scheduled.
    redeliver_armed: bool,
    /// Shard cache tiers, `None` when uncached (the byte-exact legacy
    /// machine).
    cache: Option<Box<CacheState>>,
}

impl DevicePump {
    /// Wraps `device`.
    pub fn new(device: CsdDevice<Arc<Segment>>) -> Self {
        DevicePump {
            device,
            armed_at: None,
            dirty: true,
            replay: WindowBuffer::new(),
            stage: Vec::new(),
            pending_rearm: None,
            down: false,
            drops: VecDeque::new(),
            wakeup_count: 0,
            parked: Vec::new(),
            redeliver_at: None,
            redeliver_armed: false,
            cache: None,
        }
    }

    /// Installs the shard cache tiers (assembly time, before the run).
    /// A disabled config installs nothing — the pump stays byte-exactly
    /// the uncached machine.
    pub fn set_cache(&mut self, config: CacheConfig) {
        self.cache = ShardCache::new(config).map(|cache| {
            Box::new(CacheState {
                cache,
                config,
                pending: BinaryHeap::new(),
                seq: 0,
                armed: None,
                miss_scratch: Vec::new(),
                served_log: Vec::new(),
                ledger: self.device.ledger_mode() == LedgerMode::Full,
            })
        });
    }

    /// Submits GET requests from `client` tagged with `query`. With a
    /// cache installed the batch is partitioned first: hits are
    /// scheduled as cache completions at tier bandwidth (the fast path
    /// — no CSD queue, no scheduler, no switch) and only misses reach
    /// the device.
    pub fn submit(&mut self, now: SimTime, client: usize, query: QueryId, objects: &[ObjectId]) {
        assert!(
            self.replay.is_empty() && self.pending_rearm.is_none(),
            "submit landed inside a drained window (unsound safe horizon): \
             a cross-shard interaction fired before the drained horizon"
        );
        assert!(
            !self.down,
            "submit landed on a crashed shard (fleet routing bug)"
        );
        let Some(state) = self.cache.as_deref_mut() else {
            self.dirty = true;
            self.device.submit(now, client, query, objects);
            return;
        };
        state.miss_scratch.clear();
        for &object in objects {
            let meta = self
                .device
                .store()
                .meta(object)
                .unwrap_or_else(|| panic!("unknown object {object} submitted to shard cache"));
            let (bytes, group) = (meta.logical_bytes, meta.group);
            match state.cache.lookup(now, object, bytes, group) {
                Some(ready) => {
                    state.seq += 1;
                    state.pending.push(Reverse(CachePending {
                        ready,
                        seq: state.seq,
                        client,
                        query,
                        object,
                        group,
                        bytes,
                    }));
                }
                None => state.miss_scratch.push(object),
            }
        }
        if !state.miss_scratch.is_empty() {
            self.dirty = true;
            let misses = std::mem::take(&mut state.miss_scratch);
            self.device.submit(now, client, query, &misses);
            self.cache
                .as_deref_mut()
                .expect("cache installed")
                .miss_scratch = misses;
        }
    }

    /// Kicks the device (filling idle pipeline slots) and re-arms the
    /// wake-up if the earliest pending completion changed. Returns the
    /// instant to schedule, or `None` when the armed wake-up is still
    /// accurate (or the device has nothing to do). A pump untouched
    /// since its last poke is a no-op: nothing can have moved its
    /// earliest completion.
    pub fn poke(&mut self, now: SimTime) -> Option<SimTime> {
        if !self.replay.is_empty() || self.pending_rearm.is_some() {
            // Mid-replay: the device already executed this window; the
            // only wake-up to schedule is the re-arm recorded with the
            // entry just consumed (None while other shards' events
            // fire — this shard's chain is already fully scheduled).
            return self.pending_rearm.take();
        }
        if !self.dirty {
            return None;
        }
        if self.down {
            // Crashed: the device was failed empty and the fleet routes
            // around it; nothing to kick until recovery.
            return None;
        }
        self.dirty = false;
        match self.device.kick(now) {
            Some(at) if self.armed_at == Some(at) => None,
            Some(at) => {
                // Either nothing was armed, or new work moved the
                // earliest completion: arm (or re-arm) at the new
                // instant. A superseded event becomes stale.
                self.armed_at = Some(at);
                Some(at)
            }
            None => {
                debug_assert!(
                    self.armed_at.is_none(),
                    "armed wake-up with nothing in flight"
                );
                self.armed_at = None;
                None
            }
        }
    }

    /// Handles a wake-up firing at `now`: completes everything due and
    /// returns the finished transfers (empty for a switch completion or
    /// a stale, superseded wake-up). Callers must [`DevicePump::poke`]
    /// again afterwards. Allocating convenience form of
    /// [`DevicePump::on_wakeup_into`].
    pub fn on_wakeup(&mut self, now: SimTime) -> Vec<Delivery<Arc<Segment>>> {
        let mut out = Vec::new();
        self.on_wakeup_into(now, &mut out);
        out
    }

    /// Handles a wake-up firing at `now`, appending the finished
    /// transfers to `out` — a caller-owned scratch buffer the event
    /// loop reuses across wake-ups, so the steady state allocates
    /// nothing. Appends nothing for a switch completion or a stale,
    /// superseded wake-up. Callers must [`DevicePump::poke`] again
    /// afterwards.
    pub fn on_wakeup_into(&mut self, now: SimTime, out: &mut Vec<Delivery<Arc<Segment>>>) {
        // Cache completions fire first, on the live path in *both*
        // execution modes — they never enter the replay log, so their
        // position relative to same-instant device deliveries is
        // identical either way.
        self.pop_cache_ready(now, out);
        if !self.replay.is_empty() {
            // Windowed execution: the device already ran this instant
            // during the drain. The front replay entry matching `now`
            // is the live wake-up (its batch routes now, its re-arm
            // goes out on the next poke); any other in-window event is
            // a stale superseded wake-up, exactly as in the sequential
            // armed-flag protocol. The device itself is untouched, so
            // the pump stays clean.
            if self.replay.next_at() == Some(now) {
                debug_assert!(self.pending_rearm.is_none());
                let start = out.len();
                self.pending_rearm = self.replay.consume_into(now, out);
                self.fill_from(now, out, start);
            }
            return;
        }
        if self.redeliver_at == Some(now) {
            // The watchdog fires: release the batch withheld by the
            // dropped wake-up. The device completed these transfers on
            // time internally — only their *notification* was lost —
            // so nothing is kicked and nothing is re-served. The cache
            // fills at notification time, like every delivery.
            self.redeliver_at = None;
            self.redeliver_armed = false;
            let start = out.len();
            out.append(&mut self.parked);
            self.fill_from(now, out, start);
            // Fall through: the device's own completion may be due at
            // the same instant (two events, first one handles both,
            // the second fires stale).
        }
        if self.armed_at != Some(now) {
            // Stale: this wake-up was superseded by a re-arm at an
            // earlier instant (whose firing already completed the
            // device past this point), or nothing is armed at all.
            // The device is untouched, so the pump stays clean.
            return;
        }
        self.armed_at = None;
        self.dirty = true;
        self.wakeup_count += 1;
        let start = out.len();
        self.device.complete_into(now, out);
        if self
            .drops
            .front()
            .is_some_and(|&(nth, _)| nth == self.wakeup_count)
        {
            // This live wake-up's notification is lost: the device
            // completed (above, on time), but its deliveries go to the
            // parked buffer until the watchdog redelivers them. They
            // fill the cache when the watchdog *delivers* them, so
            // nothing fills here.
            let (_, delay) = self.drops.pop_front().expect("front checked");
            debug_assert!(
                self.parked.is_empty() && self.redeliver_at.is_none(),
                "overlapping drop-wakeup episodes on one shard"
            );
            self.parked.extend(out.drain(start..));
            self.redeliver_at = Some(now + delay);
            self.redeliver_armed = false;
        }
        self.fill_from(now, out, start);
    }

    /// Delivers every pending cache hit due at `now` (no-op while the
    /// cache wake-up armed for this instant is absent or superseded).
    /// Payloads clone out of the device store — an `Arc` bump, so the
    /// hit path allocates nothing once the heap and ledger are warm.
    fn pop_cache_ready(&mut self, now: SimTime, out: &mut Vec<Delivery<Arc<Segment>>>) {
        let Some(state) = self.cache.as_deref_mut() else {
            return;
        };
        if state.armed != Some(now) {
            return;
        }
        state.armed = None;
        while state.pending.peek().is_some_and(|p| p.0.ready == now) {
            let Reverse(p) = state.pending.pop().expect("peeked entry");
            let payload = self
                .device
                .store()
                .get(p.object)
                .expect("cache-resident object lives in the shard store")
                .clone();
            if state.ledger {
                state.served_log.push((p.client, p.query, p.object));
            }
            out.push(Delivery {
                client: p.client,
                query: p.query,
                object: p.object,
                payload,
            });
        }
    }

    /// Fills the cache tiers from the miss deliveries in `out[start..]`
    /// (no-op when uncached). Runs at delivery-consumption time on both
    /// the live and the replay path, so the cache state at every
    /// barrier is identical across execution modes.
    fn fill_from(&mut self, now: SimTime, out: &[Delivery<Arc<Segment>>], start: usize) {
        let Some(state) = self.cache.as_deref_mut() else {
            return;
        };
        for d in &out[start..] {
            let meta = self
                .device
                .store()
                .meta(d.object)
                .expect("delivered object has store metadata");
            state
                .cache
                .fill(now, d.object, meta.logical_bytes, meta.group);
        }
    }

    /// The earliest-pending cache completion to schedule, handed out
    /// once per distinct instant (re-armed when a new hit becomes the
    /// earliest; the superseded event fires stale). The fleet polls
    /// this on every poke pass, alongside the device and watchdog
    /// wake-ups.
    pub fn take_cache_arm(&mut self) -> Option<SimTime> {
        let state = self.cache.as_deref_mut()?;
        let next = state.pending.peek()?.0.ready;
        if state.armed == Some(next) {
            None
        } else {
            state.armed = Some(next);
            Some(next)
        }
    }

    /// The watchdog redelivery instant to schedule, handed out exactly
    /// once per dropped batch (the fleet polls this on every poke
    /// pass, alongside the device wake-up from [`DevicePump::poke`]).
    pub fn take_redelivery_arm(&mut self) -> Option<SimTime> {
        match self.redeliver_at {
            Some(at) if !self.redeliver_armed => {
                self.redeliver_armed = true;
                Some(at)
            }
            _ => None,
        }
    }

    /// Installs a drop-wakeup injection: the `nth` live wake-up
    /// (1-based, from run start) is dropped and redelivered
    /// `redeliver_after` later. Must be installed in increasing
    /// ordinal order before the run starts.
    pub fn plan_drop(&mut self, nth: u64, redeliver_after: SimDuration) {
        assert!(
            self.drops.back().is_none_or(|&(last, _)| last < nth),
            "DropWakeup ordinals on one shard must be distinct and increasing"
        );
        self.drops.push_back((nth, redeliver_after));
    }

    /// Crashes the shard: aborts in-flight transfers and evacuates the
    /// queue into `displaced` (in slot order, then arrival order),
    /// flushes any watchdog-parked deliveries into `completed` (their
    /// transfers finished before the crash — crash detection reveals
    /// them), and marks the pump down. Returns the number of aborted
    /// in-flight transfers. The spun-up group is lost: the first load
    /// after recovery pays a full switch even under `initial_load_free`.
    pub fn fail(
        &mut self,
        now: SimTime,
        displaced: &mut Vec<PendingRequest>,
        completed: &mut Vec<Delivery<Arc<Segment>>>,
    ) -> usize {
        assert!(
            self.replay.is_empty() && self.pending_rearm.is_none(),
            "shard crashed inside a drained window: fault instants must \
             bound the safe horizon"
        );
        assert!(!self.down, "shard crashed while already down");
        self.down = true;
        // Any armed wake-up event becomes stale; the watchdog event
        // (if armed) goes stale too — the crash flushes its batch now.
        self.armed_at = None;
        self.redeliver_at = None;
        self.redeliver_armed = false;
        completed.append(&mut self.parked);
        self.dirty = true;
        let mut aborted = self.device.fail(now, displaced);
        if let Some(state) = self.cache.as_deref_mut() {
            // The crash wipes the tiers — nothing survives a failover,
            // so no stale hit can ever be served — and every pending
            // hit is displaced like an aborted in-flight transfer (in
            // ready order, after the device's evacuation) for the
            // fleet to re-route to a live replica.
            state.armed = None;
            while let Some(Reverse(p)) = state.pending.pop() {
                aborted += 1;
                displaced.push(PendingRequest {
                    object: p.object,
                    query: p.query,
                    client: p.client,
                    group: p.group,
                    bytes: p.bytes,
                    arrival: now,
                    seq: p.seq,
                });
            }
            state.cache.invalidate_all();
        }
        aborted
    }

    /// Recovers a crashed shard: the pump accepts submits and kicks
    /// again (cold — see [`DevicePump::fail`] on the lost group).
    pub fn recover(&mut self, _now: SimTime) {
        assert!(self.down, "recovering a shard that is not down");
        self.down = false;
        self.dirty = true;
    }

    /// Protection plane: dequeues every still-queued request of `query`
    /// (a deadline cancel or exhausted retry). In-flight transfers are
    /// left to complete — their deliveries arrive stale and are dropped
    /// at routing — and pending cache hits likewise deliver-and-drop,
    /// so the wake-up protocol is untouched. Returns the number of
    /// requests removed. Cancel instants are noted interactions, so
    /// this can never land mid-replay (asserted).
    pub fn cancel_query(&mut self, query: QueryId) -> usize {
        assert!(
            self.replay.is_empty() && self.pending_rearm.is_none(),
            "cancel landed inside a drained window (unsound safe horizon)"
        );
        if self.down {
            return 0; // failed empty: nothing queued on a crashed shard
        }
        let n = self.device.cancel_query(query);
        if n > 0 {
            self.dirty = true;
        }
        n
    }

    /// Protection plane: dequeues one still-queued `(query, object)`
    /// request (a hedge loser whose winning replica delivered first).
    /// Returns whether a copy was found and removed; an in-flight or
    /// already-served copy delivers stale instead.
    pub fn cancel_object(&mut self, query: QueryId, object: ObjectId) -> bool {
        assert!(
            self.replay.is_empty() && self.pending_rearm.is_none(),
            "cancel landed inside a drained window (unsound safe horizon)"
        );
        if self.down {
            return false;
        }
        let removed = self.device.cancel_object(query, object);
        if removed {
            self.dirty = true;
        }
        removed
    }

    /// Scales the device's effective per-stream bandwidth (fault-plane
    /// brown-outs); transfers dispatched from now on see the factor,
    /// committed in-flight completion instants do not move.
    pub fn set_bandwidth_factor(&mut self, factor: f64) {
        self.device.set_bandwidth_factor(factor);
    }

    /// True while the shard is crashed.
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// The earliest instant this pump needs the event loop: the armed
    /// device completion, the watchdog redelivery, or the earliest
    /// pending cache completion, whichever first. The safe-horizon
    /// computation relies on this covering *every* delivery source.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        let cache_next = self
            .cache
            .as_ref()
            .and_then(|s| s.pending.peek().map(|p| p.0.ready));
        [self.armed_at, self.redeliver_at, cache_next]
            .into_iter()
            .flatten()
            .min()
    }

    /// True when the device is idle with an empty queue and the fault
    /// plane holds nothing back (no parked batch, no pending watchdog,
    /// no cache hit awaiting delivery).
    pub fn is_quiescent(&self) -> bool {
        self.device.is_quiescent()
            && self.parked.is_empty()
            && self.redeliver_at.is_none()
            && self.cache.as_ref().is_none_or(|s| s.pending.is_empty())
    }

    /// Counter snapshot of the shard cache (zeros when uncached).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache
            .as_ref()
            .map(|s| s.cache.stats())
            .unwrap_or_default()
    }

    /// The installed cache configuration, if any (economics reporting).
    pub fn cache_config(&self) -> Option<CacheConfig> {
        self.cache.as_ref().map(|s| s.config)
    }

    /// Takes the cache-served delivery ledger (end-of-run assembly;
    /// empty when uncached or under `LedgerMode::Counters`).
    pub fn take_cache_served_log(&mut self) -> Vec<(usize, QueryId, ObjectId)> {
        self.cache
            .as_deref_mut()
            .map(|s| std::mem::take(&mut s.served_log))
            .unwrap_or_default()
    }

    /// True while fault state forces this shard onto the live
    /// sequential path inside parallel windows: crashed, a drop
    /// pending (live wake-ups must be counted), or a parked batch
    /// awaiting its watchdog.
    fn fault_bound(&self) -> bool {
        self.down
            || !self.drops.is_empty()
            || !self.parked.is_empty()
            || self.redeliver_at.is_some()
    }

    /// True when the pump's replay log still holds drained wake-ups
    /// the event loop has not consumed yet.
    pub fn replaying(&self) -> bool {
        !self.replay.is_empty() || self.pending_rearm.is_some()
    }

    /// The armed wake-up instant, if any (the device's earliest
    /// pending completion).
    pub fn armed_at(&self) -> Option<SimTime> {
        self.armed_at
    }

    /// Read access to the wrapped device (metrics, trace, scheduler).
    pub fn device(&self) -> &CsdDevice<Arc<Segment>> {
        &self.device
    }

    /// Unwraps the device (end-of-run result assembly: the runtime takes
    /// spans and ledgers by move instead of cloning).
    pub fn into_device(self) -> CsdDevice<Arc<Segment>> {
        self.device
    }
}

impl WindowDrain for DevicePump {
    /// Pre-executes the device's completion chain strictly below
    /// `horizon` into the replay log: the same `complete_into` +
    /// `kick` pair the sequential loop runs at each wake-up, at the
    /// same instants, so the log is exactly the sequential execution.
    /// Pumps are always clean (poked) when a window opens — the loop
    /// pokes after every mutating event — so no catch-up kick is
    /// needed, and completion chains are time-monotone, keeping the
    /// log ordered.
    fn drain_window(&mut self, horizon: SimTime) {
        if self.fault_bound() {
            // Fault-affected shards skip pre-execution and take the
            // live sequential path for every in-window event: a crashed
            // shard has nothing to drain, and drop-wakeup accounting
            // (ordinal counting, parking, watchdog) lives on the live
            // path only. Sound because in-window deliveries land only
            // on busy clients' inboxes (the horizon is bounded by
            // `min_armed` — which includes this shard's wake-ups —
            // whenever an idle live client exists), so the event order
            // and results stay bit-identical to sequential.
            return;
        }
        debug_assert!(!self.dirty, "window opened on an unpoked pump");
        let device = &mut self.device;
        drain_chain(
            &mut self.armed_at,
            horizon,
            &mut self.replay,
            &mut self.stage,
            |at, out| {
                device.complete_into(at, out);
                device.kick(at)
            },
        );
    }
}
