//! The device pump: keeps exactly one device wake-up event in flight.
//!
//! The CSD model is passive — it must be `kick`ed whenever it might
//! have work and `complete`d exactly at the returned instant. The pump
//! owns that protocol so the event loop cannot double-schedule or miss
//! a wake-up: `poke` arms a wake-up if none is pending; `on_wakeup`
//! completes the due operation and returns the delivery, if any.
//!
//! The pump is the per-shard unit of the
//! [`DeviceFleet`](super::fleet::DeviceFleet): a fleet is N pumps, each
//! running this protocol independently against its own device.

use std::sync::Arc;

use skipper_csd::{CsdDevice, Delivery, ObjectId, QueryId};
use skipper_relational::segment::Segment;
use skipper_sim::SimTime;

/// Wrapper pairing the device with its pending-wake-up flag.
pub struct DevicePump {
    device: CsdDevice<Arc<Segment>>,
    wakeup_armed: bool,
}

impl DevicePump {
    /// Wraps `device`.
    pub fn new(device: CsdDevice<Arc<Segment>>) -> Self {
        DevicePump {
            device,
            wakeup_armed: false,
        }
    }

    /// Submits GET requests from `client` tagged with `query`.
    pub fn submit(&mut self, now: SimTime, client: usize, query: QueryId, objects: &[ObjectId]) {
        self.device.submit(now, client, query, objects);
    }

    /// Starts the next device operation if idle. Returns the wake-up
    /// instant to schedule, or `None` when one is already armed (or the
    /// device has nothing to do).
    pub fn poke(&mut self, now: SimTime) -> Option<SimTime> {
        if self.wakeup_armed {
            return None;
        }
        let at = self.device.kick(now)?;
        self.wakeup_armed = true;
        Some(at)
    }

    /// Handles the armed wake-up firing at `now`: completes the due
    /// operation and returns the finished transfer, if it was one.
    /// Callers must [`DevicePump::poke`] again afterwards.
    pub fn on_wakeup(&mut self, now: SimTime) -> Option<Delivery<Arc<Segment>>> {
        self.wakeup_armed = false;
        self.device.complete(now)
    }

    /// Read access to the wrapped device (metrics, trace, scheduler).
    pub fn device(&self) -> &CsdDevice<Arc<Segment>> {
        &self.device
    }

    /// Unwraps the device (end-of-run result assembly: the runtime takes
    /// spans and ledgers by move instead of cloning).
    pub fn into_device(self) -> CsdDevice<Arc<Segment>> {
        self.device
    }
}
