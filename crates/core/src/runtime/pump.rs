//! The device pump: tracks the device's earliest pending completion.
//!
//! The CSD model is passive — it must be `kick`ed whenever it might
//! have work and `complete`d exactly at the earliest instant it
//! reported. With the multi-stream service pipeline that instant is the
//! *earliest of K completions*, and it can move **earlier** whenever new
//! work fills an idle slot — so the historical "one armed wake-up, poke
//! is a no-op while armed" protocol is re-derived as *re-arm on every
//! mutation*:
//!
//! * [`DevicePump::poke`] kicks the device and, when the earliest
//!   completion differs from the armed instant, arms a fresh wake-up at
//!   the new time. The superseded wake-up event stays in the caller's
//!   queue — events cannot be unscheduled — and is recognized as stale
//!   when it fires.
//! * [`DevicePump::on_wakeup`] fires a wake-up: a stale one (the armed
//!   instant moved) is ignored and returns no deliveries; a live one
//!   completes *everything* due at that instant and returns the batch.
//!   Callers must poke again afterwards.
//!
//! A pump only re-kicks when *its* device mutated since the last poke
//! (a submit or a live wake-up — tracked by a dirty flag): the fleet
//! pokes every shard after every event, and nothing can move an
//! untouched shard's earliest completion, so clean shards stay O(1) on
//! the hot path instead of re-running a scheduler decision.
//!
//! With one stream the earliest completion never changes while armed
//! (the single slot is busy), so no wake-up is ever superseded and the
//! protocol reduces exactly to the historical one-armed-flag behaviour —
//! same events, same order.
//!
//! The pump is the per-shard unit of the
//! [`DeviceFleet`](super::fleet::DeviceFleet): a fleet is N pumps, each
//! running this protocol independently against its own device.
//!
//! ## Windowed (parallel) execution
//!
//! Under `ExecutionMode::Parallel` the pump additionally implements
//! [`WindowDrain`]: [`DevicePump::drain_window`] pre-executes the
//! device's completion chain strictly below the safe horizon — the
//! *same* `complete`/`kick` calls the sequential loop would make, in
//! the same order — into a [`WindowBuffer`] replay log. The event loop
//! then answers in-window `Device` events from the log: the front
//! entry's instant matches ⇒ consume it (deliver the recorded batch,
//! hand the recorded re-arm to the next `poke`), otherwise the event
//! is a stale superseded wake-up and a no-op — exactly the sequential
//! armed-flag rule, which is why a windowed run is bit-identical.
//! `submit` asserts the log is drained: the horizon guarantees no
//! cross-shard interaction fires inside a window, so a submit landing
//! mid-replay would mean the horizon was unsound.

use std::sync::Arc;

use skipper_csd::{CsdDevice, Delivery, ObjectId, QueryId};
use skipper_relational::segment::Segment;
use skipper_sim::parallel::{drain_chain, WindowBuffer, WindowDrain};
use skipper_sim::SimTime;

/// Wrapper pairing the device with its armed-wake-up instant.
pub struct DevicePump {
    device: CsdDevice<Arc<Segment>>,
    /// The earliest pending completion a wake-up is armed for.
    /// Invariant: `Some(t)` ⇔ the device reported `t` as its earliest
    /// completion and no `on_wakeup(t)` has consumed it yet.
    armed_at: Option<SimTime>,
    /// Set on every device mutation (submit / live wake-up), cleared
    /// by `poke`. Only a mutation can move the device's earliest
    /// completion, so a clean pump skips the kick entirely — the fleet
    /// pokes every shard after every event, and untouched shards must
    /// stay O(1) on that hot path.
    dirty: bool,
    /// Replay log of the window drained ahead of the event loop
    /// (always empty under sequential execution).
    replay: WindowBuffer<Delivery<Arc<Segment>>>,
    /// Staging buffer for one drained completion batch (reused).
    stage: Vec<Delivery<Arc<Segment>>>,
    /// Re-arm instant recorded with the replay entry just consumed,
    /// handed out by the next `poke` so the wake-up chain stays
    /// scheduled in the sequential order (deliveries route first).
    pending_rearm: Option<SimTime>,
}

impl DevicePump {
    /// Wraps `device`.
    pub fn new(device: CsdDevice<Arc<Segment>>) -> Self {
        DevicePump {
            device,
            armed_at: None,
            dirty: true,
            replay: WindowBuffer::new(),
            stage: Vec::new(),
            pending_rearm: None,
        }
    }

    /// Submits GET requests from `client` tagged with `query`.
    pub fn submit(&mut self, now: SimTime, client: usize, query: QueryId, objects: &[ObjectId]) {
        assert!(
            self.replay.is_empty() && self.pending_rearm.is_none(),
            "submit landed inside a drained window (unsound safe horizon): \
             a cross-shard interaction fired before the drained horizon"
        );
        self.dirty = true;
        self.device.submit(now, client, query, objects);
    }

    /// Kicks the device (filling idle pipeline slots) and re-arms the
    /// wake-up if the earliest pending completion changed. Returns the
    /// instant to schedule, or `None` when the armed wake-up is still
    /// accurate (or the device has nothing to do). A pump untouched
    /// since its last poke is a no-op: nothing can have moved its
    /// earliest completion.
    pub fn poke(&mut self, now: SimTime) -> Option<SimTime> {
        if !self.replay.is_empty() || self.pending_rearm.is_some() {
            // Mid-replay: the device already executed this window; the
            // only wake-up to schedule is the re-arm recorded with the
            // entry just consumed (None while other shards' events
            // fire — this shard's chain is already fully scheduled).
            return self.pending_rearm.take();
        }
        if !self.dirty {
            return None;
        }
        self.dirty = false;
        match self.device.kick(now) {
            Some(at) if self.armed_at == Some(at) => None,
            Some(at) => {
                // Either nothing was armed, or new work moved the
                // earliest completion: arm (or re-arm) at the new
                // instant. A superseded event becomes stale.
                self.armed_at = Some(at);
                Some(at)
            }
            None => {
                debug_assert!(
                    self.armed_at.is_none(),
                    "armed wake-up with nothing in flight"
                );
                self.armed_at = None;
                None
            }
        }
    }

    /// Handles a wake-up firing at `now`: completes everything due and
    /// returns the finished transfers (empty for a switch completion or
    /// a stale, superseded wake-up). Callers must [`DevicePump::poke`]
    /// again afterwards. Allocating convenience form of
    /// [`DevicePump::on_wakeup_into`].
    pub fn on_wakeup(&mut self, now: SimTime) -> Vec<Delivery<Arc<Segment>>> {
        let mut out = Vec::new();
        self.on_wakeup_into(now, &mut out);
        out
    }

    /// Handles a wake-up firing at `now`, appending the finished
    /// transfers to `out` — a caller-owned scratch buffer the event
    /// loop reuses across wake-ups, so the steady state allocates
    /// nothing. Appends nothing for a switch completion or a stale,
    /// superseded wake-up. Callers must [`DevicePump::poke`] again
    /// afterwards.
    pub fn on_wakeup_into(&mut self, now: SimTime, out: &mut Vec<Delivery<Arc<Segment>>>) {
        if !self.replay.is_empty() {
            // Windowed execution: the device already ran this instant
            // during the drain. The front replay entry matching `now`
            // is the live wake-up (its batch routes now, its re-arm
            // goes out on the next poke); any other in-window event is
            // a stale superseded wake-up, exactly as in the sequential
            // armed-flag protocol. The device itself is untouched, so
            // the pump stays clean.
            if self.replay.next_at() == Some(now) {
                debug_assert!(self.pending_rearm.is_none());
                self.pending_rearm = self.replay.consume_into(now, out);
            }
            return;
        }
        if self.armed_at != Some(now) {
            // Stale: this wake-up was superseded by a re-arm at an
            // earlier instant (whose firing already completed the
            // device past this point), or nothing is armed at all.
            // The device is untouched, so the pump stays clean.
            return;
        }
        self.armed_at = None;
        self.dirty = true;
        self.device.complete_into(now, out);
    }

    /// True when the pump's replay log still holds drained wake-ups
    /// the event loop has not consumed yet.
    pub fn replaying(&self) -> bool {
        !self.replay.is_empty() || self.pending_rearm.is_some()
    }

    /// The armed wake-up instant, if any (the device's earliest
    /// pending completion).
    pub fn armed_at(&self) -> Option<SimTime> {
        self.armed_at
    }

    /// Read access to the wrapped device (metrics, trace, scheduler).
    pub fn device(&self) -> &CsdDevice<Arc<Segment>> {
        &self.device
    }

    /// Unwraps the device (end-of-run result assembly: the runtime takes
    /// spans and ledgers by move instead of cloning).
    pub fn into_device(self) -> CsdDevice<Arc<Segment>> {
        self.device
    }
}

impl WindowDrain for DevicePump {
    /// Pre-executes the device's completion chain strictly below
    /// `horizon` into the replay log: the same `complete_into` +
    /// `kick` pair the sequential loop runs at each wake-up, at the
    /// same instants, so the log is exactly the sequential execution.
    /// Pumps are always clean (poked) when a window opens — the loop
    /// pokes after every mutating event — so no catch-up kick is
    /// needed, and completion chains are time-monotone, keeping the
    /// log ordered.
    fn drain_window(&mut self, horizon: SimTime) {
        debug_assert!(!self.dirty, "window opened on an unpoked pump");
        let device = &mut self.device;
        drain_chain(
            &mut self.armed_at,
            horizon,
            &mut self.replay,
            &mut self.stage,
            |at, out| {
                device.complete_into(at, out);
                device.kick(at)
            },
        );
    }
}
