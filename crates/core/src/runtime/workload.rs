//! The workload layer: what each tenant runs and when.
//!
//! A [`Workload`] describes one tenant end to end — its dataset, its
//! query sequence, which engine executes it (via a per-tenant
//! [`EngineFactory`]), and the *arrival process* releasing its queries
//! onto the device:
//!
//! * [`ArrivalProcess::Closed`] — the paper's closed loop: the next
//!   query is submitted the instant the previous one completes.
//! * A start offset ([`Workload::start_at`]) — staggered fleets, the
//!   arrival-gap setup of the §4.4 `K` derivation.
//! * [`ArrivalProcess::Poisson`] — fixed-seed open arrivals: query `k`
//!   is released at the `k`-th event of a Poisson process; a release
//!   while the tenant is still busy queues behind the running query.
//!
//! All randomness is sampled at scenario-assembly time from a seed, so
//! runs stay bit-for-bit reproducible.

use std::sync::Arc;

use skipper_datagen::Dataset;
use skipper_relational::query::QuerySpec;
use skipper_sim::rng::{derive_seed, splitmix64};
use skipper_sim::{SimDuration, SimTime};

use super::engines::{EngineFactory, SkipperFactory};

/// How a tenant's queries are released over time.
#[derive(Clone, Copy, Debug)]
pub enum ArrivalProcess {
    /// Closed loop: each query starts when the previous finishes (the
    /// first at the workload's start offset).
    Closed,
    /// Open arrivals: queries are released at the events of a Poisson
    /// process with the given mean inter-arrival time, sampled
    /// deterministically from `seed`. Releases that land while the
    /// tenant is busy queue up and run back-to-back.
    Poisson {
        /// Mean inter-arrival gap (1/λ).
        mean: SimDuration,
        /// Stream seed; fixed seed ⇒ fixed arrival times, forever.
        seed: u64,
    },
}

/// One tenant: dataset + query mix + engine + arrival process.
#[derive(Clone)]
pub struct Workload {
    /// The tenant's dataset (its private copy on the device).
    pub dataset: Arc<Dataset>,
    /// The query sequence.
    pub queries: Vec<QuerySpec>,
    /// Engine builder for this tenant.
    pub engine: Arc<dyn EngineFactory>,
    /// Query release process.
    pub arrival: ArrivalProcess,
    /// Offset of the tenant's first release (staggered starts).
    pub start: SimDuration,
}

impl Workload {
    /// A workload over `dataset` with paper defaults: Skipper engine
    /// (30 GiB cache), closed-loop arrivals, start at t = 0, no queries
    /// yet.
    pub fn new(dataset: impl Into<Arc<Dataset>>) -> Self {
        Workload {
            dataset: dataset.into(),
            queries: Vec::new(),
            engine: Arc::new(SkipperFactory::default()),
            arrival: ArrivalProcess::Closed,
            start: SimDuration::ZERO,
        }
    }

    /// Sets the query sequence.
    pub fn queries(mut self, queries: Vec<QuerySpec>) -> Self {
        self.queries = queries;
        self
    }

    /// Runs `query` `times` times.
    pub fn repeat_query(mut self, query: QuerySpec, times: usize) -> Self {
        self.queries = std::iter::repeat_with(|| query.clone())
            .take(times)
            .collect();
        self
    }

    /// Sets the engine factory.
    pub fn engine(mut self, factory: impl EngineFactory + 'static) -> Self {
        self.engine = Arc::new(factory);
        self
    }

    /// Sets a shared engine factory (avoids re-wrapping when several
    /// tenants use one configuration).
    pub fn engine_arc(mut self, factory: Arc<dyn EngineFactory>) -> Self {
        self.engine = factory;
        self
    }

    /// Sets the arrival process.
    pub fn arrival(mut self, arrival: ArrivalProcess) -> Self {
        self.arrival = arrival;
        self
    }

    /// Sets the first-release offset (staggered starts).
    pub fn start_at(mut self, offset: SimDuration) -> Self {
        self.start = offset;
        self
    }

    /// Expands the arrival process into one release instant per query
    /// (`None` = closed-loop: start when the predecessor finishes).
    ///
    /// `tenant` salts the Poisson stream so identical workloads on
    /// different tenants do not share arrival times.
    pub fn release_times(&self, tenant: usize) -> Vec<Option<SimTime>> {
        match self.arrival {
            ArrivalProcess::Closed => {
                let mut out = vec![None; self.queries.len()];
                if let (Some(first), false) = (out.first_mut(), self.start.is_zero()) {
                    *first = Some(SimTime::ZERO + self.start);
                }
                out
            }
            ArrivalProcess::Poisson { mean, seed } => {
                let mut state = derive_seed(seed, &format!("poisson-arrivals/{tenant}"));
                let mut at = SimTime::ZERO + self.start;
                (0..self.queries.len())
                    .map(|_| {
                        at += exponential_gap(&mut state, mean);
                        Some(at)
                    })
                    .collect()
            }
        }
    }
}

/// One exponential inter-arrival gap with the given mean, drawn from a
/// SplitMix64 stream (inverse-CDF method).
fn exponential_gap(state: &mut u64, mean: SimDuration) -> SimDuration {
    // 53 uniform mantissa bits in [0, 1).
    let u = (splitmix64(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    SimDuration::from_secs_f64(-mean.as_secs_f64() * (1.0 - u).ln())
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipper_datagen::{tpch, GenConfig};

    fn ds() -> Dataset {
        tpch::dataset(&GenConfig::new(21, 4).with_phys_divisor(100_000))
    }

    #[test]
    fn closed_releases_are_all_none_at_zero_offset() {
        let d = ds();
        let q = tpch::q12(&d);
        let w = Workload::new(d).repeat_query(q, 3);
        assert_eq!(w.release_times(0), vec![None, None, None]);
    }

    #[test]
    fn start_offset_pins_only_the_first_release() {
        let d = ds();
        let q = tpch::q12(&d);
        let w = Workload::new(d)
            .repeat_query(q, 3)
            .start_at(SimDuration::from_secs(500));
        let rel = w.release_times(2);
        assert_eq!(rel[0], Some(SimTime::from_secs(500)));
        assert_eq!(&rel[1..], &[None, None]);
    }

    #[test]
    fn poisson_releases_are_deterministic_increasing_and_tenant_salted() {
        let d = ds();
        let q = tpch::q12(&d);
        let w = Workload::new(d)
            .repeat_query(q, 8)
            .arrival(ArrivalProcess::Poisson {
                mean: SimDuration::from_secs(100),
                seed: 7,
            });
        let a = w.release_times(0);
        let b = w.release_times(0);
        assert_eq!(a, b, "fixed seed must fix the arrival times");
        let times: Vec<SimTime> = a.iter().map(|t| t.unwrap()).collect();
        assert!(
            times.windows(2).all(|p| p[0] <= p[1]),
            "non-monotone arrivals"
        );
        let other = w.release_times(1);
        assert_ne!(a, other, "tenants must not share a Poisson stream");
        // Mean gap lands in the right ballpark (8 samples, loose bound).
        let span = times.last().unwrap().as_secs_f64();
        assert!(span > 50.0 && span < 4000.0, "total span {span}s");
    }

    #[test]
    fn exponential_gaps_have_the_requested_mean() {
        let mut state = 42u64;
        let mean = SimDuration::from_secs(20);
        let n = 4000;
        let total: f64 = (0..n)
            .map(|_| exponential_gap(&mut state, mean).as_secs_f64())
            .sum();
        let avg = total / n as f64;
        assert!((15.0..25.0).contains(&avg), "mean gap {avg}s");
    }
}
