//! The workload layer: what each tenant runs and when.
//!
//! A [`Workload`] describes one tenant end to end — its dataset, its
//! query sequence, which engine executes it (via a per-tenant
//! [`EngineFactory`]), and the *arrival process* releasing its queries
//! onto the device:
//!
//! * [`ArrivalProcess::Closed`] — the paper's closed loop: the next
//!   query is submitted the instant the previous one completes.
//! * A start offset ([`Workload::start_at`]) — staggered fleets, the
//!   arrival-gap setup of the §4.4 `K` derivation.
//! * [`ArrivalProcess::Poisson`] — fixed-seed open arrivals: query `k`
//!   is released at the `k`-th event of a Poisson process; a release
//!   while the tenant is still busy queues behind the running query.
//! * [`ArrivalProcess::OnOff`] — bursty MMPP-style traffic: Poisson
//!   arrivals during exponentially-distributed ON phases, silence
//!   during OFF phases (flash crowds, batch submission fronts).
//! * [`ArrivalProcess::Diurnal`] — a sinusoidal rate modulation over a
//!   Poisson base via Lewis–Shedler thinning (day/night cycles).
//! * [`ArrivalProcess::TraceReplay`] — explicit release instants
//!   replayed from a recorded trace.
//!
//! All randomness is sampled at scenario-assembly time from a seed
//! (expansion happens in [`ArrivalProcess::release_times`] before the
//! event loop starts), so runs stay bit-for-bit reproducible and the
//! sequential/parallel differential battery extends over every shape
//! unchanged.

use std::sync::Arc;

use skipper_datagen::Dataset;
use skipper_relational::query::QuerySpec;
use skipper_sim::rng::{derive_seed, splitmix64};
use skipper_sim::{SimDuration, SimTime};

use super::engines::{EngineFactory, SkipperFactory};
use super::protect::RetryPolicy;

/// How a tenant's queries are released over time.
///
/// Every stochastic shape expands deterministically from a seeded
/// SplitMix64 stream at assembly time: a fixed seed fixes the release
/// instants forever, independent of execution mode or shard layout.
#[derive(Clone, Debug, PartialEq)]
pub enum ArrivalProcess {
    /// Closed loop: each query starts when the previous finishes (the
    /// first at the workload's start offset).
    Closed,
    /// Open arrivals: queries are released at the events of a Poisson
    /// process with the given mean inter-arrival time, sampled
    /// deterministically from `seed`. Releases that land while the
    /// tenant is busy queue up and run back-to-back.
    Poisson {
        /// Mean inter-arrival gap (1/λ).
        mean: SimDuration,
        /// Stream seed; fixed seed ⇒ fixed arrival times, forever.
        seed: u64,
    },
    /// Bursty ON/OFF traffic (a two-state MMPP): during an ON phase
    /// queries arrive as a Poisson process at mean gap `on_mean`;
    /// during an OFF phase nothing arrives. Phase lengths are
    /// exponential with means `on_duration` / `off_duration`, so the
    /// process is Markov-modulated and burst shapes vary across the
    /// run while staying seed-deterministic.
    OnOff {
        /// Mean inter-arrival gap while the source is ON.
        on_mean: SimDuration,
        /// Mean length of an ON phase.
        on_duration: SimDuration,
        /// Mean length of an OFF phase (silence).
        off_duration: SimDuration,
        /// Stream seed for gaps and phase boundaries alike.
        seed: u64,
    },
    /// Diurnal traffic: a non-homogeneous Poisson process whose rate
    /// follows a raised cosine over `period` — peak rate `1/peak_mean`
    /// at the start of each period, dipping to `trough` × peak at
    /// half-period. Sampled by Lewis–Shedler thinning of a homogeneous
    /// peak-rate process, so the expansion stays a pure function of
    /// `seed`.
    Diurnal {
        /// Mean inter-arrival gap at the peak of the cycle (1/λ_max).
        peak_mean: SimDuration,
        /// Length of one full day/night cycle.
        period: SimDuration,
        /// Trough rate as a fraction of peak, in [0, 1]. 1.0 collapses
        /// to plain Poisson; 0.0 goes fully silent at half-period.
        trough: f64,
        /// Stream seed.
        seed: u64,
    },
    /// Replays explicit release instants from a recorded trace. Each
    /// instant is offset by the workload's start; instants are sorted
    /// before use. The trace must contain at least as many instants as
    /// the workload has queries (checked at expansion time).
    TraceReplay(Vec<SimTime>),
}

impl ArrivalProcess {
    /// Expands the process into one release instant per query (`None`
    /// = closed-loop: start when the predecessor finishes).
    ///
    /// `tenant` salts the stochastic streams so identical workloads on
    /// different tenants do not share arrival times; `start` offsets
    /// the whole schedule (staggered fleets).
    pub fn release_times(
        &self,
        queries: usize,
        tenant: usize,
        start: SimDuration,
    ) -> Vec<Option<SimTime>> {
        match self {
            ArrivalProcess::Closed => {
                let mut out = vec![None; queries];
                if let (Some(first), false) = (out.first_mut(), start.is_zero()) {
                    *first = Some(SimTime::ZERO + start);
                }
                out
            }
            ArrivalProcess::Poisson { mean, seed } => {
                let mut state = derive_seed(*seed, &format!("poisson-arrivals/{tenant}"));
                let mut at = SimTime::ZERO + start;
                (0..queries)
                    .map(|_| {
                        at += exponential_gap(&mut state, *mean);
                        Some(at)
                    })
                    .collect()
            }
            ArrivalProcess::OnOff {
                on_mean,
                on_duration,
                off_duration,
                seed,
            } => {
                let mut state = derive_seed(*seed, &format!("onoff-arrivals/{tenant}"));
                let mut at = SimTime::ZERO + start;
                // Phase boundary relative to `at`; the source starts ON.
                let mut phase_left = exponential_gap(&mut state, *on_duration);
                (0..queries)
                    .map(|_| {
                        let mut gap = exponential_gap(&mut state, *on_mean);
                        // Burn whole OFF phases until the gap lands
                        // inside an ON phase. The exponential gap is
                        // memoryless, so redrawing it after a phase
                        // switch preserves the MMPP law.
                        while gap >= phase_left {
                            at += phase_left;
                            at += exponential_gap(&mut state, *off_duration);
                            phase_left = exponential_gap(&mut state, *on_duration);
                            gap = exponential_gap(&mut state, *on_mean);
                        }
                        at += gap;
                        phase_left -= gap;
                        Some(at)
                    })
                    .collect()
            }
            ArrivalProcess::Diurnal {
                peak_mean,
                period,
                trough,
                seed,
            } => {
                assert!(!period.is_zero(), "Diurnal arrivals need a non-zero period");
                assert!(
                    (0.0..=1.0).contains(trough),
                    "Diurnal trough must be in [0, 1] (got {trough})"
                );
                let mut state = derive_seed(*seed, &format!("diurnal-arrivals/{tenant}"));
                let origin = SimTime::ZERO + start;
                let mut at = origin;
                let period_secs = period.as_secs_f64();
                (0..queries)
                    .map(|_| {
                        // Lewis–Shedler: candidate events at the peak
                        // rate, accepted with probability λ(t)/λ_max.
                        // λ(t)/λ_max = trough + (1−trough)·½(1+cos(2πt/T)):
                        // 1 at t = 0, `trough` at t = T/2.
                        loop {
                            at += exponential_gap(&mut state, *peak_mean);
                            let t = at.saturating_since(origin).as_secs_f64();
                            let phase = 2.0 * std::f64::consts::PI * (t / period_secs);
                            let accept = trough + (1.0 - trough) * 0.5 * (1.0 + phase.cos());
                            if uniform_unit(&mut state) < accept {
                                return Some(at);
                            }
                        }
                    })
                    .collect()
            }
            ArrivalProcess::TraceReplay(instants) => {
                assert!(
                    instants.len() >= queries,
                    "TraceReplay has {} instants for {} queries",
                    instants.len(),
                    queries
                );
                let mut sorted = instants.clone();
                sorted.sort();
                sorted
                    .into_iter()
                    .take(queries)
                    .map(|t| Some(t + start))
                    .collect()
            }
        }
    }
}

/// One tenant: dataset + query mix + engine + arrival process.
#[derive(Clone)]
pub struct Workload {
    /// The tenant's dataset (its private copy on the device).
    pub dataset: Arc<Dataset>,
    /// The query sequence.
    pub queries: Vec<QuerySpec>,
    /// Engine builder for this tenant.
    pub engine: Arc<dyn EngineFactory>,
    /// Query release process.
    pub arrival: ArrivalProcess,
    /// Offset of the tenant's first release (staggered starts).
    pub start: SimDuration,
    /// Response-time SLO target for this tenant's queries, if any;
    /// feeds the per-tenant attainment counters in the run's
    /// [`LatencySummary`](super::collector::LatencySummary).
    pub slo: Option<SimDuration>,
    /// Ideal (single-tenant) execution time of this tenant's queries,
    /// if known; enables streaming stretch quantiles in the run's
    /// latency summary.
    pub ideal: Option<SimDuration>,
    /// Response-time deadline: a query not finished this long after its
    /// release (queue-wait included) is cancelled and counted as a
    /// miss. `None` (default) disables cancellation for this tenant.
    pub deadline: Option<SimDuration>,
    /// Re-submission policy for this tenant's cancelled or
    /// replica-less requests. [`RetryPolicy::None`] (default) keeps the
    /// historical park-until-recovery behavior byte-identical.
    pub retry: RetryPolicy,
    /// Hedge delay: this long after submission, still-undelivered reads
    /// are re-issued to the next live replica (first completion wins).
    /// `None` (default) disables hedging. Only meaningful under
    /// replicated placement.
    pub hedge: Option<SimDuration>,
    /// Admission priority (0 = lowest): under admission control, a
    /// tenant of priority `p` is admitted until `limit × (p + 1)`, so
    /// saturation sheds the lowest-priority arrivals first.
    pub priority: u32,
}

impl Workload {
    /// A workload over `dataset` with paper defaults: Skipper engine
    /// (30 GiB cache), closed-loop arrivals, start at t = 0, no queries
    /// yet.
    pub fn new(dataset: impl Into<Arc<Dataset>>) -> Self {
        Workload {
            dataset: dataset.into(),
            queries: Vec::new(),
            engine: Arc::new(SkipperFactory::default()),
            arrival: ArrivalProcess::Closed,
            start: SimDuration::ZERO,
            slo: None,
            ideal: None,
            deadline: None,
            retry: RetryPolicy::None,
            hedge: None,
            priority: 0,
        }
    }

    /// Sets the query sequence.
    pub fn queries(mut self, queries: Vec<QuerySpec>) -> Self {
        self.queries = queries;
        self
    }

    /// Runs `query` `times` times.
    pub fn repeat_query(mut self, query: QuerySpec, times: usize) -> Self {
        self.queries = std::iter::repeat_with(|| query.clone())
            .take(times)
            .collect();
        self
    }

    /// Sets the engine factory.
    pub fn engine(mut self, factory: impl EngineFactory + 'static) -> Self {
        self.engine = Arc::new(factory);
        self
    }

    /// Sets a shared engine factory (avoids re-wrapping when several
    /// tenants use one configuration).
    pub fn engine_arc(mut self, factory: Arc<dyn EngineFactory>) -> Self {
        self.engine = factory;
        self
    }

    /// Sets the arrival process.
    pub fn arrival(mut self, arrival: ArrivalProcess) -> Self {
        self.arrival = arrival;
        self
    }

    /// Sets the first-release offset (staggered starts).
    pub fn start_at(mut self, offset: SimDuration) -> Self {
        self.start = offset;
        self
    }

    /// Declares a response-time SLO target for this tenant (release →
    /// completion, queue-wait included).
    pub fn slo_target(mut self, target: SimDuration) -> Self {
        self.slo = Some(target);
        self
    }

    /// Declares the ideal (single-tenant) execution time of this
    /// tenant's queries, enabling streaming stretch quantiles.
    pub fn ideal_time(mut self, ideal: SimDuration) -> Self {
        self.ideal = Some(ideal);
        self
    }

    /// Sets a response-time deadline: a query not finished this long
    /// after its release is cancelled and counted as a miss.
    pub fn deadline(mut self, deadline: SimDuration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the re-submission policy for cancelled or replica-less
    /// requests.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the hedge delay: this long after submission, undelivered
    /// reads are re-issued to the next live replica.
    pub fn hedge_after(mut self, delay: SimDuration) -> Self {
        self.hedge = Some(delay);
        self
    }

    /// Sets the admission priority (0 = lowest, shed first).
    pub fn priority(mut self, priority: u32) -> Self {
        self.priority = priority;
        self
    }

    /// Expands the arrival process into one release instant per query
    /// (`None` = closed-loop: start when the predecessor finishes).
    ///
    /// `tenant` salts the stochastic streams so identical workloads on
    /// different tenants do not share arrival times.
    pub fn release_times(&self, tenant: usize) -> Vec<Option<SimTime>> {
        self.arrival
            .release_times(self.queries.len(), tenant, self.start)
    }
}

/// One exponential inter-arrival gap with the given mean, drawn from a
/// SplitMix64 stream (inverse-CDF method).
///
/// Clamped to ≥ 1 µs: `u = 0` would otherwise yield a zero gap and two
/// releases at the same instant with unpinned tie order (the simulated
/// clock's resolution is the microsecond, so 1 µs is the smallest
/// representable strictly-positive gap).
pub(crate) fn exponential_gap(state: &mut u64, mean: SimDuration) -> SimDuration {
    // 53 uniform mantissa bits in [0, 1).
    let u = (splitmix64(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    SimDuration::from_secs_f64(-mean.as_secs_f64() * (1.0 - u).ln())
        .max(SimDuration::from_micros(1))
}

/// One uniform draw in [0, 1) from a SplitMix64 stream (53 mantissa
/// bits) — the acceptance coin of the diurnal thinning sampler.
fn uniform_unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipper_datagen::{tpch, GenConfig};

    fn ds() -> Dataset {
        tpch::dataset(&GenConfig::new(21, 4).with_phys_divisor(100_000))
    }

    #[test]
    fn closed_releases_are_all_none_at_zero_offset() {
        let d = ds();
        let q = tpch::q12(&d);
        let w = Workload::new(d).repeat_query(q, 3);
        assert_eq!(w.release_times(0), vec![None, None, None]);
    }

    #[test]
    fn start_offset_pins_only_the_first_release() {
        let d = ds();
        let q = tpch::q12(&d);
        let w = Workload::new(d)
            .repeat_query(q, 3)
            .start_at(SimDuration::from_secs(500));
        let rel = w.release_times(2);
        assert_eq!(rel[0], Some(SimTime::from_secs(500)));
        assert_eq!(&rel[1..], &[None, None]);
    }

    #[test]
    fn poisson_releases_are_deterministic_increasing_and_tenant_salted() {
        let d = ds();
        let q = tpch::q12(&d);
        let w = Workload::new(d)
            .repeat_query(q, 8)
            .arrival(ArrivalProcess::Poisson {
                mean: SimDuration::from_secs(100),
                seed: 7,
            });
        let a = w.release_times(0);
        let b = w.release_times(0);
        assert_eq!(a, b, "fixed seed must fix the arrival times");
        let times: Vec<SimTime> = a.iter().map(|t| t.unwrap()).collect();
        assert!(
            times.windows(2).all(|p| p[0] <= p[1]),
            "non-monotone arrivals"
        );
        let other = w.release_times(1);
        assert_ne!(a, other, "tenants must not share a Poisson stream");
        // Mean gap lands in the right ballpark (8 samples, loose bound).
        let span = times.last().unwrap().as_secs_f64();
        assert!(span > 50.0 && span < 4000.0, "total span {span}s");
    }

    #[test]
    fn exponential_gaps_have_the_requested_mean() {
        let mut state = 42u64;
        let mean = SimDuration::from_secs(20);
        let n = 4000;
        let total: f64 = (0..n)
            .map(|_| exponential_gap(&mut state, mean).as_secs_f64())
            .sum();
        let avg = total / n as f64;
        assert!((15.0..25.0).contains(&avg), "mean gap {avg}s");
    }

    #[test]
    fn exponential_gap_never_returns_zero() {
        // At a 1 µs mean nearly every raw draw rounds to zero; the
        // clamp must keep each gap strictly positive so no two
        // releases share an instant with unpinned tie order.
        let mut state = 7u64;
        let mean = SimDuration::from_micros(1);
        for _ in 0..1000 {
            let gap = exponential_gap(&mut state, mean);
            assert!(gap >= SimDuration::from_micros(1), "zero gap drawn");
        }
    }

    #[test]
    fn onoff_releases_are_deterministic_increasing_and_bursty() {
        let d = ds();
        let q = tpch::q12(&d);
        let arrival = ArrivalProcess::OnOff {
            on_mean: SimDuration::from_secs(10),
            on_duration: SimDuration::from_secs(120),
            off_duration: SimDuration::from_secs(1200),
            seed: 11,
        };
        let w = Workload::new(d).repeat_query(q, 64).arrival(arrival);
        let a = w.release_times(0);
        assert_eq!(a, w.release_times(0), "fixed seed must fix releases");
        assert_ne!(a, w.release_times(1), "tenants must not share a stream");
        let times: Vec<SimTime> = a.iter().map(|t| t.unwrap()).collect();
        assert!(times.windows(2).all(|p| p[0] < p[1]), "non-monotone");
        // Burstiness: with OFF phases 10× the ON phases and 12 expected
        // arrivals per ON phase, the largest gap (an OFF phase) dwarfs
        // the median gap (an in-burst exponential).
        let mut gaps: Vec<f64> = times
            .windows(2)
            .map(|p| p[1].since(p[0]).as_secs_f64())
            .collect();
        gaps.sort_by(f64::total_cmp);
        let median = gaps[gaps.len() / 2];
        let max = *gaps.last().unwrap();
        assert!(
            max > 10.0 * median,
            "no burst structure: median gap {median}s, max gap {max}s"
        );
    }

    #[test]
    fn diurnal_rate_tracks_the_cycle() {
        let d = ds();
        let q = tpch::q12(&d);
        let period = SimDuration::from_secs(86_400);
        let arrival = ArrivalProcess::Diurnal {
            peak_mean: SimDuration::from_secs(60),
            period,
            trough: 0.1,
            seed: 3,
        };
        // ~790 accepted arrivals per simulated day at these settings:
        // 1600 queries span two full cycles, so peak and trough windows
        // are sampled evenly.
        let w = Workload::new(d).repeat_query(q, 1600).arrival(arrival);
        let a = w.release_times(0);
        assert_eq!(a, w.release_times(0), "fixed seed must fix releases");
        let times: Vec<SimTime> = a.iter().map(|t| t.unwrap()).collect();
        assert!(times.windows(2).all(|p| p[0] < p[1]), "non-monotone");
        // Count arrivals near the peak (first/last quarter of each
        // cycle) vs near the trough (middle half): the raised cosine
        // with trough 0.1 concentrates mass near the peak (expected
        // rate ratio ≈ 3.2× between the equal-width windows).
        let (mut near_peak, mut near_trough) = (0u32, 0u32);
        for t in &times {
            let frac = (t.as_secs_f64() % 86_400.0) / 86_400.0;
            if (0.25..0.75).contains(&frac) {
                near_trough += 1;
            } else {
                near_peak += 1;
            }
        }
        assert!(
            near_peak > 2 * near_trough,
            "no diurnal shape: {near_peak} near peak vs {near_trough} near trough"
        );
    }

    #[test]
    fn trace_replay_sorts_offsets_and_checks_length() {
        let d = ds();
        let q = tpch::q12(&d);
        let trace = vec![
            SimTime::from_secs(30),
            SimTime::from_secs(10),
            SimTime::from_secs(20),
        ];
        let w = Workload::new(d)
            .repeat_query(q, 3)
            .arrival(ArrivalProcess::TraceReplay(trace))
            .start_at(SimDuration::from_secs(5));
        assert_eq!(
            w.release_times(0),
            vec![
                Some(SimTime::from_secs(15)),
                Some(SimTime::from_secs(25)),
                Some(SimTime::from_secs(35)),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "TraceReplay has 1 instants for 2 queries")]
    fn trace_replay_panics_when_short() {
        let d = ds();
        let q = tpch::q12(&d);
        Workload::new(d)
            .repeat_query(q, 2)
            .arrival(ArrivalProcess::TraceReplay(vec![SimTime::from_secs(1)]))
            .release_times(0);
    }
}
