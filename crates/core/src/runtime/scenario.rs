//! The scenario facade: fluent experiment description + assembly.
//!
//! [`Scenario`] keeps the seed repository's one-stop builder API
//! (global engine kind, shared queries, device knobs) and adds the
//! multi-tenant workload path: [`Scenario::tenants`] accepts explicit
//! [`Workload`]s so one run can mix Skipper and Vanilla tenants, each
//! with its own cache configuration and arrival process. `run()`
//! assembles the layers — sharding datasets across the device fleet,
//! placing each shard's objects into disk groups, choosing schedulers,
//! planning arrivals — and hands off to [`Runtime`].
//!
//! The device layer scales out through [`Scenario::shards`] /
//! [`Scenario::placement`]: N independently configured CSD shards
//! behind one scenario, with optional per-shard overrides
//! ([`Scenario::shard_scheduler`], [`Scenario::shard_bandwidth`],
//! [`Scenario::shard_switch_latency`]). The default single shard
//! reproduces the seed's exact microsecond-level outputs.

use std::collections::BTreeMap;
use std::sync::Arc;

use skipper_cost::FleetPricing;
use skipper_csd::cache::CacheConfig;
use skipper_csd::{
    CsdConfig, CsdDevice, IntraGroupOrder, Layout, LayoutPolicy, LedgerMode, ObjectId, ObjectStore,
    PlacementPolicy, PowerModel, SchedPolicy, StreamModel,
};
use skipper_datagen::Dataset;
use skipper_relational::query::QuerySpec;
use skipper_relational::segment::Segment;
use skipper_sim::{SimDuration, TraceMode};

use crate::cache::EvictionPolicy;
use crate::config::CostModel;

use super::client::{ClientState, PlannedQuery};
use super::collector::{RecordMode, RunResult};
use super::driver::{ExecutionMode, Runtime};
use super::engines::{factory_for, EngineKind};
use super::fault::{self, FaultPlan};
use super::fleet::DeviceFleet;
use super::protect::{AdmissionPolicy, ClientProtection, RetryPolicy};
use super::workload::Workload;

/// Per-shard deviations from the scenario-wide device knobs.
#[derive(Clone, Copy, Debug, Default)]
struct ShardOverride {
    sched: Option<SchedPolicy>,
    bandwidth: Option<f64>,
    switch_latency: Option<SimDuration>,
    streams: Option<u32>,
    cache: Option<CacheConfig>,
}

/// A complete experiment description; build with the fluent setters and
/// [`Scenario::run`].
pub struct Scenario {
    base: Arc<Dataset>,
    n_clients: usize,
    shared_queries: Vec<QuerySpec>,
    custom_clients: Option<Vec<(Arc<Dataset>, Vec<QuerySpec>)>>,
    tenants: Option<Vec<Workload>>,
    engine: EngineKind,
    sched: Option<SchedPolicy>,
    intra: IntraGroupOrder,
    layout: LayoutPolicy,
    switch_latency: SimDuration,
    bandwidth: f64,
    cache_bytes: u64,
    eviction: EvictionPolicy,
    cost: CostModel,
    prune_empty: bool,
    parallel_streams: u32,
    stream_model: StreamModel,
    stagger: SimDuration,
    shards: usize,
    placement: PlacementPolicy,
    shard_overrides: BTreeMap<usize, ShardOverride>,
    trace_mode: TraceMode,
    ledger_mode: LedgerMode,
    record_mode: RecordMode,
    execution: ExecutionMode,
    slo: Option<SimDuration>,
    faults: FaultPlan,
    shard_cache: CacheConfig,
    power: PowerModel,
    pricing: FleetPricing,
    seed: u64,
    deadline: Option<SimDuration>,
    retry: RetryPolicy,
    hedge: Option<SimDuration>,
    admission: Option<AdmissionPolicy>,
}

impl Scenario {
    /// Starts a scenario over a shared dataset with paper-default knobs:
    /// one client, Skipper engine, rank-based scheduling, semantic
    /// intra-group ordering, one-group-per-client layout, 10 s switches,
    /// ~110 MB/s transfers, 30 GiB cache, maximal-progress eviction.
    pub fn new(dataset: Dataset) -> Self {
        Self::with_base(Arc::new(dataset))
    }

    fn with_base(base: Arc<Dataset>) -> Self {
        Scenario {
            base,
            n_clients: 1,
            shared_queries: Vec::new(),
            custom_clients: None,
            tenants: None,
            engine: EngineKind::Skipper,
            sched: None,
            intra: IntraGroupOrder::SemanticRoundRobin,
            layout: LayoutPolicy::OneClientPerGroup,
            switch_latency: SimDuration::from_secs(10),
            bandwidth: 110.0 * 1024.0 * 1024.0,
            cache_bytes: 30 << 30,
            eviction: EvictionPolicy::MaximalProgress,
            cost: CostModel::paper_calibrated(),
            prune_empty: false,
            parallel_streams: 1,
            stream_model: StreamModel::Pipeline,
            stagger: SimDuration::ZERO,
            shards: 1,
            placement: PlacementPolicy::RoundRobin,
            shard_overrides: BTreeMap::new(),
            trace_mode: TraceMode::Full,
            ledger_mode: LedgerMode::Full,
            record_mode: RecordMode::Full,
            execution: ExecutionMode::Sequential,
            slo: None,
            faults: FaultPlan::new(),
            shard_cache: CacheConfig::disabled(),
            power: PowerModel::default(),
            pricing: FleetPricing::default(),
            seed: 42,
            deadline: None,
            retry: RetryPolicy::None,
            hedge: None,
            admission: None,
        }
    }

    /// A scenario built directly from per-tenant [`Workload`]s (the
    /// multi-tenant runtime path; engine and arrival process are per
    /// workload). Device knobs keep their paper defaults and remain
    /// settable.
    pub fn from_workloads(tenants: Vec<Workload>) -> Self {
        assert!(!tenants.is_empty(), "at least one workload");
        let mut s = Scenario::with_base(Arc::clone(&tenants[0].dataset));
        s.tenants = Some(tenants);
        s
    }

    /// Number of identical clients (each gets its own copy of the
    /// dataset on the device, like the paper's per-VM databases).
    pub fn clients(mut self, n: usize) -> Self {
        assert!(n > 0, "at least one client");
        self.n_clients = n;
        self
    }

    /// Every client runs `query` `times` times, back to back.
    pub fn repeat_query(mut self, query: QuerySpec, times: usize) -> Self {
        self.shared_queries = std::iter::repeat_with(|| query.clone())
            .take(times)
            .collect();
        self
    }

    /// Every client runs this query sequence.
    pub fn queries(mut self, queries: Vec<QuerySpec>) -> Self {
        self.shared_queries = queries;
        self
    }

    /// Heterogeneous tenants: explicit `(dataset, query sequence)` per
    /// client (the Figure 8 mixed workload), all running the global
    /// engine. Overrides [`Scenario::clients`]/[`Scenario::queries`];
    /// for per-tenant engines use [`Scenario::tenants`].
    pub fn custom_clients(mut self, clients: Vec<(Arc<Dataset>, Vec<QuerySpec>)>) -> Self {
        assert!(!clients.is_empty());
        self.custom_clients = Some(clients);
        self
    }

    /// Fully heterogeneous tenants, each with its own dataset, queries,
    /// engine factory, and arrival process. Overrides every other
    /// client-construction setter.
    pub fn tenants(mut self, tenants: Vec<Workload>) -> Self {
        assert!(!tenants.is_empty());
        self.tenants = Some(tenants);
        self
    }

    /// Execution engine for clients built via the legacy setters
    /// (ignored by [`Scenario::tenants`] workloads, which carry their
    /// own factories).
    pub fn engine(mut self, kind: EngineKind) -> Self {
        self.engine = kind;
        self
    }

    /// CSD group-switch scheduling policy. When not set, the device
    /// defaults to the fleet-appropriate policy: all-vanilla fleets get
    /// the stock CSD's object-FCFS (§4.4), any Skipper tenant deploys
    /// the rank-based query-aware scheduler.
    pub fn scheduler(mut self, p: SchedPolicy) -> Self {
        self.sched = Some(p);
        self
    }

    /// Intra-group request ordering.
    pub fn intra_order(mut self, o: IntraGroupOrder) -> Self {
        self.intra = o;
        self
    }

    /// Data placement across disk groups.
    pub fn layout(mut self, l: LayoutPolicy) -> Self {
        self.layout = l;
        self
    }

    /// Group-switch latency `S`.
    pub fn switch_latency(mut self, s: SimDuration) -> Self {
        self.switch_latency = s;
        self
    }

    /// Object streaming bandwidth in bytes/s (≤ 0 ⇒ free transfers).
    pub fn bandwidth(mut self, bytes_per_sec: f64) -> Self {
        self.bandwidth = bytes_per_sec;
        self
    }

    /// MJoin buffer-cache capacity in bytes (legacy global engine only).
    pub fn cache_bytes(mut self, bytes: u64) -> Self {
        self.cache_bytes = bytes;
        self
    }

    /// MJoin cache-eviction policy (legacy global engine only).
    pub fn eviction(mut self, p: EvictionPolicy) -> Self {
        self.eviction = p;
        self
    }

    /// Shard-cache tiers installed on every shard: DRAM/SSD capacities,
    /// bandwidths, and the promotion/demotion policy. Distinct from
    /// [`Scenario::cache_bytes`] (the legacy MJoin engine buffer): this
    /// cache fronts the *device*, completing hot GETs at tier bandwidth
    /// without a queue or a group switch. A disabled config (the
    /// default) runs the uncached machine byte-exactly.
    pub fn shard_cache(mut self, config: CacheConfig) -> Self {
        self.shard_cache = config;
        self
    }

    /// Convenience: a DRAM-only shard cache of `bytes` per shard under
    /// LRU at the default DRAM bandwidth. `cache_size(0)` collapses to
    /// the uncached machine byte-exactly.
    pub fn cache_size(mut self, bytes: u64) -> Self {
        self.shard_cache = CacheConfig::dram_only(bytes);
        self
    }

    /// Overrides one shard's cache config (heterogeneous fleets).
    pub fn shard_cache_config(mut self, shard: usize, config: CacheConfig) -> Self {
        self.shard_overrides.entry(shard).or_default().cache = Some(config);
        self
    }

    /// MAID electrical model for the end-of-run energy report.
    pub fn power_model(mut self, model: PowerModel) -> Self {
        self.power = model;
        self
    }

    /// $/GB and $/kWh inputs for the end-of-run cost report.
    pub fn pricing(mut self, pricing: FleetPricing) -> Self {
        self.pricing = pricing;
        self
    }

    /// CPU cost model.
    pub fn cost(mut self, c: CostModel) -> Self {
        self.cost = c;
        self
    }

    /// Enables the §5.2.4 subplan-pruning optimization (legacy global
    /// engine only).
    pub fn prune_empty_objects(mut self, on: bool) -> Self {
        self.prune_empty = on;
        self
    }

    /// Concurrent transfer streams while a group is loaded (default 1,
    /// the paper's serializing middleware; > 1 opens that many service
    /// pipeline slots per device — the §5.2.1 "parallelize servicing
    /// within a group" improvement). Validated here, at build time: a
    /// zero-stream device could never serve a request, so the scenario
    /// rejects it loudly instead of letting a masked config reach the
    /// device layer.
    pub fn streams(mut self, n: u32) -> Self {
        assert!(
            n >= 1,
            "Scenario::streams needs at least 1 transfer stream (got 0): \
             use streams(1) for the paper's serialized middleware"
        );
        self.parallel_streams = n;
        self
    }

    /// Legacy alias for [`Scenario::streams`].
    pub fn parallel_streams(self, n: u32) -> Self {
        self.streams(n)
    }

    /// How streams > 1 are modelled (default: the true service
    /// pipeline; [`StreamModel::BandwidthMultiplier`] is the historical
    /// compat model kept for A/B comparison in the bench).
    pub fn stream_model(mut self, model: StreamModel) -> Self {
        self.stream_model = model;
        self
    }

    /// Span-log regime of the fleet's activity traces (default:
    /// [`TraceMode::Full`] — every span kept, stall attribution and
    /// timelines exact). [`TraceMode::Counters`] bounds memory for very
    /// large runs: devices keep only per-activity totals, span lists in
    /// the [`ShardResult`](super::collector::ShardResult)s come back
    /// empty, and blocked time attributes as idle.
    pub fn trace_mode(mut self, mode: TraceMode) -> Self {
        self.trace_mode = mode;
        self
    }

    /// Delivery-ledger regime (default: [`LedgerMode::Full`] — every
    /// completed transfer recorded). [`LedgerMode::Counters`] keeps the
    /// [`DeviceMetrics`](skipper_csd::metrics::DeviceMetrics) counters
    /// but leaves the per-shard delivery ledgers empty (bounded memory;
    /// the work-conservation multiset checks need `Full`).
    pub fn ledger_mode(mut self, mode: LedgerMode) -> Self {
        self.ledger_mode = mode;
        self
    }

    /// Per-query record retention (default: [`RecordMode::Full`]).
    /// [`RecordMode::Counters`] drops records as queries finish —
    /// [`RunResult::clients`] comes back empty — while the streaming
    /// [`LatencySummary`](super::collector::LatencySummary) stays fully
    /// populated, so tail latency remains observable on runs too large
    /// to hold per-query records (pair with [`Scenario::trace_mode`] /
    /// [`Scenario::ledger_mode`] `Counters` for a fully bounded drive).
    pub fn record_mode(mut self, mode: RecordMode) -> Self {
        self.record_mode = mode;
        self
    }

    /// Scenario-wide response-time SLO target: applied to every tenant
    /// that does not declare its own
    /// ([`Workload::slo_target`](super::workload::Workload::slo_target)
    /// wins). Feeds the per-tenant attainment counters of the run's
    /// latency summary.
    pub fn slo_target(mut self, target: SimDuration) -> Self {
        self.slo = Some(target);
        self
    }

    /// Root seed for the protection plane's per-client
    /// `"retry/{client}"` backoff-jitter streams (default 42; workload
    /// arrival processes keep their own per-tenant seeds).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Scenario-wide response-time deadline: a query that cannot finish
    /// within it (measured from release, queue wait included) is
    /// cancelled and counted as a miss. Per-workload
    /// [`Workload::deadline`](super::workload::Workload::deadline)
    /// wins; tenants without either knob are never cancelled.
    pub fn deadline(mut self, d: SimDuration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Scenario-wide retry policy for deadline-cancelled queries and
    /// requests with no live replica (default [`RetryPolicy::None`]:
    /// cancelled queries drop, unroutable requests park until
    /// recovery — the historical behavior byte-exactly). A workload's
    /// own enabled policy wins.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Scenario-wide hedge delay under replicated placement: reads
    /// still undelivered this long after submission are re-issued to
    /// the next live replica; first completion wins. Per-workload
    /// [`Workload::hedge_after`](super::workload::Workload::hedge_after)
    /// wins.
    pub fn hedge_after(mut self, delay: SimDuration) -> Self {
        self.hedge = Some(delay);
        self
    }

    /// Installs fleet-seam admission control (default: none — every
    /// arrival admitted, byte-identical to before the protection plane
    /// existed): per-shard backlog ceilings that shed or defer the
    /// lowest-priority arrivals, plus the optional per-shard breaker.
    pub fn admission(mut self, policy: AdmissionPolicy) -> Self {
        self.admission = Some(policy);
        self
    }

    /// Execution mode of the event loop (default:
    /// [`ExecutionMode::Sequential`], the reference implementation).
    /// [`ExecutionMode::Parallel`] drains the fleet's per-shard
    /// completion chains on a worker pool inside conservative safe
    /// windows — the run is **bit-identical** to sequential for every
    /// worker count (the differential sweep in the runtime tests pins
    /// this), so the only observable difference is wall-clock time.
    /// Parallelism pays off when windows are wide relative to shard
    /// count: batch-issuing engines (Skipper) with many shards gain
    /// the most, while pull-based engines (Vanilla) interact every
    /// round-trip and degrade gracefully to near-sequential behaviour.
    pub fn execution(mut self, mode: ExecutionMode) -> Self {
        self.execution = mode;
        self
    }

    /// Staggers client start times: client `i` submits its first query at
    /// `i × delay` (default: everyone at t = 0). This is the arrival-gap
    /// setup of the §4.4 `K` derivation, where query sets arrive `s`
    /// switches apart.
    pub fn stagger(mut self, delay: SimDuration) -> Self {
        self.stagger = delay;
        self
    }

    /// Number of CSD shards behind the scenario (default 1: the paper's
    /// single device, reproduced exactly). Each shard is a fully
    /// independent device — own disk groups, scheduler, bandwidth, and
    /// switch state — and the [`Scenario::placement`] policy decides
    /// which shard stores each object.
    pub fn shards(mut self, n: usize) -> Self {
        assert!(n > 0, "a fleet needs at least one shard");
        self.shards = n;
        self
    }

    /// Object → shard placement policy (default round-robin; irrelevant
    /// with one shard). `PlacementPolicy::Replicated` stores every
    /// object on `k` consecutive shards and serves each request from
    /// the first live replica (see the fault plane,
    /// [`Scenario::faults`]).
    pub fn placement(mut self, p: PlacementPolicy) -> Self {
        self.placement = p;
        self
    }

    /// Installs the deterministic fault plan (default: empty — no
    /// faults, every run byte-identical to before the fault plane
    /// existed). The plan expands at assembly time into timestamped
    /// episodes — seeded stochastic streams and all — and the driver
    /// schedules each as a first-class calendar event, so Sequential
    /// and Parallel execution see identical fault timings. Note that
    /// recovery events keep the simulation alive: a plan whose
    /// episodes outlast the natural drain extends the makespan.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Overrides the scheduling policy on one shard (heterogeneous
    /// fleets: e.g. a stock FCFS shard next to rank-based shards).
    pub fn shard_scheduler(mut self, shard: usize, p: SchedPolicy) -> Self {
        self.shard_overrides.entry(shard).or_default().sched = Some(p);
        self
    }

    /// Overrides the streaming bandwidth of one shard (bytes/s).
    pub fn shard_bandwidth(mut self, shard: usize, bytes_per_sec: f64) -> Self {
        self.shard_overrides.entry(shard).or_default().bandwidth = Some(bytes_per_sec);
        self
    }

    /// Overrides the group-switch latency of one shard.
    pub fn shard_switch_latency(mut self, shard: usize, s: SimDuration) -> Self {
        self.shard_overrides
            .entry(shard)
            .or_default()
            .switch_latency = Some(s);
        self
    }

    /// Overrides the transfer stream count of one shard (heterogeneous
    /// fleets: e.g. one upgraded multi-stream shard next to serialized
    /// ones). Validated like [`Scenario::streams`].
    pub fn shard_streams(mut self, shard: usize, n: u32) -> Self {
        assert!(
            n >= 1,
            "Scenario::shard_streams needs at least 1 transfer stream (got 0 for shard {shard})"
        );
        self.shard_overrides.entry(shard).or_default().streams = Some(n);
        self
    }

    /// Resolves the tenant list: explicit workloads win, then custom
    /// clients, then `n_clients` copies of the shared sequence — legacy
    /// paths materialize the global engine kind into per-tenant
    /// factories.
    fn resolve_workloads(&mut self) -> Vec<Workload> {
        if let Some(tenants) = self.tenants.take() {
            return tenants;
        }
        let factory = factory_for(
            self.engine,
            self.cache_bytes,
            self.eviction,
            self.prune_empty,
        );
        let clients: Vec<(Arc<Dataset>, Vec<QuerySpec>)> = match self.custom_clients.take() {
            Some(c) => c,
            None => (0..self.n_clients)
                .map(|_| (Arc::clone(&self.base), self.shared_queries.clone()))
                .collect(),
        };
        clients
            .into_iter()
            .enumerate()
            .map(|(i, (dataset, queries))| {
                Workload::new(dataset)
                    .queries(queries)
                    .engine_arc(Arc::clone(&factory))
                    .start_at(self.stagger * i as u64)
            })
            .collect()
    }

    /// Executes the scenario to completion, returning all measurements.
    pub fn run(mut self) -> RunResult {
        let workloads = self.resolve_workloads();
        assert!(
            workloads.iter().all(|w| !w.queries.is_empty()),
            "every tenant needs at least one query"
        );
        assert!(
            self.shard_overrides.keys().all(|&s| s < self.shards),
            "shard override index outside the fleet (shards = {})",
            self.shards
        );

        // Shard every tenant's dataset across the fleet at layout time,
        // then build each shard's group layout over the objects it owns.
        let tenant_objects: Vec<Vec<ObjectId>> = workloads
            .iter()
            .enumerate()
            .map(|(tenant, w)| {
                (0..w.dataset.catalog.len())
                    .flat_map(|t| {
                        (0..w.dataset.catalog.table(t).segment_count)
                            .map(move |s| ObjectId::new(tenant as u16, t as u16, s))
                    })
                    .collect()
            })
            .collect();
        // Replica lists per object, preferred shard first (length 1 for
        // plain placements, `k` under `PlacementPolicy::Replicated`):
        // each shard stores every object whose list contains it.
        let replicas_of = self.placement.assign_replicas(&tenant_objects, self.shards);

        // Fleet-appropriate default scheduler: stock CSDs run
        // object-FCFS; one Skipper tenant is enough to deploy the
        // query-aware rank scheduler on every shared device.
        let sched = self.sched.unwrap_or_else(|| {
            if workloads
                .iter()
                .all(|w| w.engine.preferred_scheduler() == SchedPolicy::FcfsObject)
            {
                SchedPolicy::FcfsObject
            } else {
                SchedPolicy::RankBased
            }
        });

        let devices: Vec<CsdDevice<Arc<Segment>>> = (0..self.shards)
            .map(|shard| {
                // This shard's slice of every tenant's storage order.
                let shard_tenant_objects: Vec<Vec<ObjectId>> = tenant_objects
                    .iter()
                    .map(|objs| {
                        objs.iter()
                            .filter(|o| replicas_of[o].contains(&shard))
                            .copied()
                            .collect()
                    })
                    .collect();
                let layout = Layout::build(self.layout, &shard_tenant_objects);
                let mut store: ObjectStore<Arc<Segment>> = ObjectStore::new();
                for (tenant, w) in workloads.iter().enumerate() {
                    for &id in &shard_tenant_objects[tenant] {
                        let table = id.table as usize;
                        store.put_with_layout(
                            id,
                            w.dataset.catalog.table(table).logical_bytes_per_segment,
                            &layout,
                            Arc::clone(&w.dataset.segments[table][id.segment as usize]),
                        );
                    }
                }
                let ov = self
                    .shard_overrides
                    .get(&shard)
                    .copied()
                    .unwrap_or_default();
                CsdDevice::new(
                    CsdConfig {
                        switch_latency: ov.switch_latency.unwrap_or(self.switch_latency),
                        bandwidth_bytes_per_sec: ov.bandwidth.unwrap_or(self.bandwidth),
                        initial_load_free: true,
                        parallel_streams: ov.streams.unwrap_or(self.parallel_streams),
                        stream_model: self.stream_model,
                        trace_mode: self.trace_mode,
                        ledger_mode: self.ledger_mode,
                    },
                    store,
                    ov.sched.unwrap_or(sched).build(),
                    self.intra,
                )
            })
            .collect();

        // Per-client protection knobs, resolved like SLO targets:
        // workload-level settings win over scenario-wide defaults.
        let protection: Vec<ClientProtection> = workloads
            .iter()
            .map(|w| ClientProtection {
                deadline: w.deadline.or(self.deadline),
                retry: if w.retry.enabled() {
                    w.retry
                } else {
                    self.retry
                },
                hedge: w.hedge.or(self.hedge),
                priority: w.priority,
            })
            .collect();

        let clients = workloads
            .into_iter()
            .enumerate()
            .map(|(tenant, w)| {
                let releases = w.release_times(tenant);
                let plan = w
                    .queries
                    .into_iter()
                    .zip(releases)
                    .map(|(spec, release)| PlannedQuery { spec, release })
                    .collect();
                let mut client = ClientState::new(w.dataset, w.engine, plan);
                client.slo = w.slo.or(self.slo);
                client.ideal = w.ideal;
                client
            })
            .collect();
        // Single-replica placements keep the historical primary-map
        // fleet path (byte-identical to before replication existed);
        // replicated placements carry the full lists for failover.
        let mut fleet = if self.placement.replicas() == 1 {
            let shard_of = replicas_of.iter().map(|(&o, r)| (o, r[0])).collect();
            DeviceFleet::new(devices, shard_of)
        } else {
            DeviceFleet::with_replicas(devices, replicas_of)
        };

        // Expand the fault plan (stochastic streams and all) into
        // timestamped episodes, install drop-wakeup injections on
        // their pumps, and hand the timed crash/brown-out actions to
        // the driver as calendar events.
        let episodes = self.faults.expand(self.shards);
        for (shard, nth, redeliver_after) in fault::drop_plans(&episodes) {
            fleet.plan_drop(shard, nth, redeliver_after);
        }

        // Install the shard-cache tiers (a disabled config installs
        // nothing, keeping the uncached machine byte-exact).
        for shard in 0..self.shards {
            let cfg = self
                .shard_overrides
                .get(&shard)
                .and_then(|o| o.cache)
                .unwrap_or(self.shard_cache);
            if cfg.enabled() {
                fleet.set_cache(shard, cfg);
            }
        }

        Runtime::new(fleet, clients, self.cost)
            .with_execution(self.execution)
            .with_record_mode(self.record_mode)
            .with_faults(fault::timed_actions(&episodes))
            .with_economics(self.power, self.pricing)
            .with_protection(protection, self.admission, self.seed)
            .run()
    }
}
