//! The engine layer: per-tenant query-engine construction.
//!
//! The old driver hard-wired one global [`EngineKind`] branch for every
//! client. The runtime replaces that with an [`EngineFactory`] carried
//! *per tenant*: a boxed builder producing a fresh [`QueryEngine`] for
//! each query, so a single scenario can mix Skipper and Vanilla tenants
//! — each with its own cache capacity, eviction policy, and pruning
//! setting — against one shared device.

use std::sync::Arc;

use skipper_csd::SchedPolicy;
use skipper_datagen::Dataset;
use skipper_relational::query::QuerySpec;

use crate::cache::EvictionPolicy;
use crate::config::CostModel;
use crate::engine::QueryEngine;
use crate::state_manager::SkipperEngine;
use crate::vanilla::VanillaEngine;

/// Which execution engine a tenant runs (kept for the knob-free common
/// case and backward compatibility; [`EngineFactory`] is the general
/// mechanism).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// Pull-based baseline (vanilla PostgreSQL).
    Vanilla,
    /// Skipper's cache-aware MJoin.
    Skipper,
}

impl EngineKind {
    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Vanilla => "vanilla",
            EngineKind::Skipper => "skipper",
        }
    }
}

/// Builds one [`QueryEngine`] per query for one tenant.
///
/// Implementations are small config carriers ([`SkipperFactory`],
/// [`VanillaFactory`]); scenarios hold them behind `Arc<dyn _>` so
/// heterogeneous fleets are just a `Vec` of workloads.
pub trait EngineFactory {
    /// Report label ("skipper" / "vanilla" / custom).
    fn label(&self) -> &'static str;

    /// Builds the engine executing `spec` for `tenant` over `dataset`.
    fn build(
        &self,
        tenant: u16,
        dataset: &Dataset,
        spec: QuerySpec,
        cost: CostModel,
    ) -> Box<dyn QueryEngine>;

    /// The device scheduling policy this engine expects from a stock
    /// deployment (§4.4): object-FCFS for pull-based clients, the
    /// rank-based query-aware scheduler for Skipper.
    fn preferred_scheduler(&self) -> SchedPolicy;
}

/// Factory for the pull-based baseline engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct VanillaFactory;

impl EngineFactory for VanillaFactory {
    fn label(&self) -> &'static str {
        EngineKind::Vanilla.label()
    }

    fn build(
        &self,
        tenant: u16,
        dataset: &Dataset,
        spec: QuerySpec,
        cost: CostModel,
    ) -> Box<dyn QueryEngine> {
        Box::new(VanillaEngine::new(tenant, dataset, spec, cost))
    }

    fn preferred_scheduler(&self) -> SchedPolicy {
        SchedPolicy::FcfsObject
    }
}

/// Factory for Skipper's cache-aware MJoin engine, with per-tenant cache
/// configuration.
#[derive(Clone, Copy, Debug)]
pub struct SkipperFactory {
    /// MJoin buffer-cache capacity in bytes.
    pub cache_bytes: u64,
    /// Cache-eviction policy.
    pub eviction: EvictionPolicy,
    /// The §5.2.4 subplan-pruning optimization.
    pub prune_empty: bool,
}

impl Default for SkipperFactory {
    /// Paper defaults: 30 GiB cache, maximal-progress eviction, no
    /// pruning.
    fn default() -> Self {
        SkipperFactory {
            cache_bytes: 30 << 30,
            eviction: EvictionPolicy::MaximalProgress,
            prune_empty: false,
        }
    }
}

impl SkipperFactory {
    /// Sets the buffer-cache capacity.
    pub fn cache_bytes(mut self, bytes: u64) -> Self {
        self.cache_bytes = bytes;
        self
    }

    /// Sets the eviction policy.
    pub fn eviction(mut self, policy: EvictionPolicy) -> Self {
        self.eviction = policy;
        self
    }

    /// Enables/disables subplan pruning.
    pub fn prune_empty(mut self, on: bool) -> Self {
        self.prune_empty = on;
        self
    }
}

impl EngineFactory for SkipperFactory {
    fn label(&self) -> &'static str {
        EngineKind::Skipper.label()
    }

    fn build(
        &self,
        tenant: u16,
        dataset: &Dataset,
        spec: QuerySpec,
        cost: CostModel,
    ) -> Box<dyn QueryEngine> {
        Box::new(SkipperEngine::new(
            tenant,
            dataset,
            spec,
            self.cache_bytes,
            self.eviction,
            cost,
            self.prune_empty,
        ))
    }

    fn preferred_scheduler(&self) -> SchedPolicy {
        SchedPolicy::RankBased
    }
}

/// Materializes the factory for an [`EngineKind`] with explicit knobs
/// (the legacy global-engine path of [`crate::runtime::Scenario`]).
pub fn factory_for(
    kind: EngineKind,
    cache_bytes: u64,
    eviction: EvictionPolicy,
    prune_empty: bool,
) -> Arc<dyn EngineFactory> {
    match kind {
        EngineKind::Vanilla => Arc::new(VanillaFactory),
        EngineKind::Skipper => Arc::new(SkipperFactory {
            cache_bytes,
            eviction,
            prune_empty,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factories_report_engine_labels_and_schedulers() {
        let v = VanillaFactory;
        assert_eq!(v.label(), "vanilla");
        assert_eq!(v.preferred_scheduler(), SchedPolicy::FcfsObject);
        let s = SkipperFactory::default()
            .cache_bytes(1 << 30)
            .prune_empty(true);
        assert_eq!(s.label(), "skipper");
        assert_eq!(s.preferred_scheduler(), SchedPolicy::RankBased);
        assert_eq!(s.cache_bytes, 1 << 30);
        assert!(s.prune_empty);
    }

    #[test]
    fn factory_for_maps_kind_to_factory() {
        let f = factory_for(
            EngineKind::Skipper,
            1,
            EvictionPolicy::MaximalProgress,
            false,
        );
        assert_eq!(f.label(), "skipper");
        let f = factory_for(
            EngineKind::Vanilla,
            1,
            EvictionPolicy::MaximalProgress,
            false,
        );
        assert_eq!(f.label(), "vanilla");
    }
}
