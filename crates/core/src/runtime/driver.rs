//! The driver layer: the discrete-event loop wiring clients to the
//! device fleet.
//!
//! The [`Runtime`] owns the assembled parts — a [`DeviceFleet`], the
//! per-tenant [`ClientState`]s, and the event queue — and advances
//! virtual time until every tenant has drained its plan. It reproduces
//! the paper's testbed loop exactly: deliveries wake clients, charged
//! processing blocks them, follow-up GETs go back to the owning shard,
//! and every transition is timestamped for the collector.
//!
//! Multi-shard wake-ups interleave deterministically: each shard keeps
//! its own armed-wake-up protocol, the event queue breaks simultaneous
//! events by insertion order, and shards are always poked in shard
//! order — so a fleet run is exactly reproducible, and a 1-shard fleet
//! replays the single-device event schedule unchanged.
//!
//! The hot loop is engineered for million-request runs: the future
//! event list is the O(1)-amortized [`CalendarQueue`] (pop order
//! identical to the reference `EventQueue` — pinned by the differential
//! sweep in `skipper-sim`), and delivery batches flow through one
//! reusable scratch buffer (`DeviceFleet::on_wakeup_into`), so the
//! steady state of the loop allocates nothing per event.

use std::sync::Arc;

use skipper_cost::FleetPricing;
use skipper_csd::cache::CacheStats;
use skipper_csd::metrics::DeviceMetrics;
use skipper_csd::{Delivery, PowerModel, QueryId};
use skipper_relational::segment::Segment;
use skipper_sim::trace::Span;
use skipper_sim::{CalendarQueue, HorizonTracker, MergedTimeline, SimDuration, SimTime};

use crate::config::CostModel;

use super::client::ClientState;
use super::collector::{
    attribute_stalls_merged, AvailabilitySummary, LatencyAccumulator, RecordMode, RunResult,
    ShardResult,
};
use super::fault::{FaultAction, TimedFault};
use super::fleet::DeviceFleet;

/// Event payloads of the runtime loop.
#[derive(Clone, Copy, Debug)]
enum Event {
    /// Shard `s` finishes its in-flight operation.
    Device(usize),
    /// Client `c` finishes its charged processing.
    ClientReady(usize),
    /// The arrival process releases client `c`'s next query.
    Release(usize),
    /// The fault plan's `i`-th timed action fires.
    Fault(usize),
}

/// How the event loop executes a run.
///
/// Both modes produce **bit-identical** results — same deliveries,
/// same timestamps, same metrics, same traces — because the parallel
/// mode only *pre-executes* each shard's private completion chain up
/// to a conservative safe horizon and replays it through the unchanged
/// global loop (see the module docs). Sequential stays the reference
/// implementation; the differential sweep in the runtime tests pins
/// the equivalence across every policy, placement, and worker count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecutionMode {
    /// The reference single-thread discrete-event loop.
    #[default]
    Sequential,
    /// Windowed-parallel execution: shard completion chains are
    /// drained concurrently up to the safe horizon between
    /// cross-shard interactions.
    Parallel {
        /// Worker threads draining shard windows; the event-loop
        /// thread counts as one of them. Clamped to at least 1.
        workers: usize,
    },
}

/// The assembled multi-tenant runtime; consumed by [`Runtime::run`].
pub struct Runtime {
    fleet: DeviceFleet,
    clients: Vec<ClientState>,
    events: CalendarQueue<Event>,
    cost: CostModel,
    /// Reusable delivery scratch for multi-stream wake-up batches.
    scratch: Vec<Delivery<Arc<Segment>>>,
    execution: ExecutionMode,
    /// Pending cross-shard interaction instants (parallel mode): every
    /// scheduled event that may submit GETs bounds the safe horizon.
    interactions: HorizonTracker,
    /// End of the currently drained window (parallel mode): events
    /// before it are answered from shard replay logs; reaching it
    /// re-opens the window at the tracker's new minimum.
    window_end: SimTime,
    /// Streaming tail-latency sketches, fed in completion order (the
    /// order is bit-identical across execution modes, so the summary
    /// is too).
    latency: LatencyAccumulator,
    /// Whether finished records are retained for the result.
    record_mode: RecordMode,
    /// The expanded fault schedule, in firing order (empty without a
    /// fault plan). Every action becomes a calendar event up front, so
    /// both execution modes see identical fault timings and each fault
    /// instant bounds the safe horizon.
    faults: Vec<TimedFault>,
    /// MAID electrical model for the end-of-run energy estimate.
    power: PowerModel,
    /// $/GB and $/kWh inputs for the end-of-run cost report.
    pricing: FleetPricing,
}

impl Runtime {
    /// Wires the parts together (sequential execution).
    pub fn new(fleet: DeviceFleet, clients: Vec<ClientState>, cost: CostModel) -> Self {
        let targets: Vec<_> = clients.iter().map(|c| (c.slo, c.ideal)).collect();
        Runtime {
            fleet,
            clients,
            events: CalendarQueue::new(),
            cost,
            scratch: Vec::new(),
            execution: ExecutionMode::default(),
            interactions: HorizonTracker::new(),
            window_end: SimTime::ZERO,
            latency: LatencyAccumulator::new(&targets),
            record_mode: RecordMode::default(),
            faults: Vec::new(),
            power: PowerModel::default(),
            pricing: FleetPricing::default(),
        }
    }

    /// Installs the electrical model and pricing inputs used for the
    /// end-of-run energy/cost report (builder style; defaults are the
    /// paper's Pelican-style array and Table 1 prices).
    pub fn with_economics(mut self, power: PowerModel, pricing: FleetPricing) -> Self {
        self.power = power;
        self.pricing = pricing;
        self
    }

    /// Selects the execution mode (builder style).
    pub fn with_execution(mut self, mode: ExecutionMode) -> Self {
        self.execution = mode;
        self
    }

    /// Installs the expanded fault schedule (builder style; assembly
    /// passes the `FaultPlan`'s timed actions here).
    pub(crate) fn with_faults(mut self, faults: Vec<TimedFault>) -> Self {
        self.faults = faults;
        self
    }

    /// Selects whether per-query records are retained (builder style).
    pub fn with_record_mode(mut self, mode: RecordMode) -> Self {
        self.record_mode = mode;
        self
    }

    /// True when running windowed-parallel.
    fn windowed(&self) -> bool {
        self.execution != ExecutionMode::Sequential
    }

    /// Executes to completion, returning all measurements.
    ///
    /// # Panics
    /// Panics if any client fails to drain its plan (a simulation
    /// deadlock — always a harness bug).
    pub fn run(mut self) -> RunResult {
        let now = SimTime::ZERO;
        // Scheduled releases (staggered starts, Poisson arrivals) are
        // armed as events, in client order for deterministic ties;
        // closed-loop queries with no release instant start immediately.
        // Starting a client never schedules events, so arming all
        // releases first preserves the historical event order.
        let windowed = self.windowed();
        // Fault actions are armed first: at equal instants a crash (or
        // recovery) applies before a release routes its query. Every
        // fault instant is a noted interaction — faults re-route work
        // across shards, so no window may drain past one.
        for (i, f) in self.faults.iter().enumerate() {
            self.events.schedule(f.at, Event::Fault(i));
            if windowed {
                self.interactions.note(f.at);
            }
        }
        for (c, client) in self.clients.iter().enumerate() {
            for at in client.plan.iter().filter_map(|p| p.release) {
                self.events.schedule(at, Event::Release(c));
                if windowed {
                    self.interactions.note(at);
                }
            }
        }
        for c in 0..self.clients.len() {
            self.try_start(c, now);
        }
        self.poke_fleet(now);
        let workers = match self.execution {
            ExecutionMode::Sequential => 0,
            ExecutionMode::Parallel { workers } => workers.max(1),
        };

        while let Some((t, ev)) = self.events.pop() {
            if workers > 0 && t >= self.window_end {
                // Window barrier: every replay from the previous
                // window is consumed (each drained wake-up had its
                // calendar event before `window_end`), so re-open at
                // the new safe horizon and pre-drain every shard's
                // private chain up to it — in parallel, since shards
                // share no state below the horizon.
                let horizon = self.safe_horizon();
                debug_assert!(horizon >= t, "interaction missed by the horizon tracker");
                if horizon > t {
                    self.fleet.drain_window_parallel(horizon, workers);
                }
                self.window_end = horizon;
            }
            match ev {
                Event::Device(shard) => {
                    // A multi-stream wake-up retires every transfer due
                    // at this instant: route the whole batch (device
                    // slot order — deterministic), then poke once.
                    // Stale superseded wake-ups leave the batch empty.
                    // The scratch buffer is taken out of `self` for the
                    // duration of the routing (route_delivery borrows
                    // clients and fleet) and put back drained, so no
                    // per-event allocation survives warm-up.
                    let mut batch = std::mem::take(&mut self.scratch);
                    batch.clear();
                    self.fleet.on_wakeup_into(shard, t, &mut batch);
                    for d in batch.drain(..) {
                        self.route_delivery(t, d.client, d.query, d.object, d.payload);
                    }
                    self.scratch = batch;
                    self.poke_fleet(t);
                }
                Event::ClientReady(c) => self.client_ready(c, t),
                Event::Release(c) => {
                    if windowed {
                        self.interactions.consume(t);
                    }
                    self.try_start(c, t);
                    self.poke_fleet(t);
                }
                Event::Fault(i) => {
                    if windowed {
                        self.interactions.consume(t);
                    }
                    let fault = self.faults[i];
                    let mut batch = std::mem::take(&mut self.scratch);
                    batch.clear();
                    match fault.action {
                        FaultAction::Down => self.fleet.fail_shard(fault.shard, t, &mut batch),
                        FaultAction::Recover => self.fleet.recover_shard(fault.shard, t),
                        FaultAction::Degrade(factor) => {
                            self.fleet.set_bandwidth_factor(fault.shard, factor)
                        }
                        FaultAction::Restore => self.fleet.set_bandwidth_factor(fault.shard, 1.0),
                    }
                    // A crash flushes watchdog-parked deliveries (their
                    // transfers finished before the crash): route them
                    // like any retired batch.
                    for d in batch.drain(..) {
                        self.route_delivery(t, d.client, d.query, d.object, d.payload);
                    }
                    self.scratch = batch;
                    self.poke_fleet(t);
                }
            }
        }

        let makespan = self.events.now();
        self.fleet.close_downtime(makespan);
        let fault_stats = self.fleet.fault_stats().to_vec();
        let availability = AvailabilitySummary::from_shards(
            &fault_stats,
            self.faults.len() as u64,
            self.fleet.parked_total(),
            makespan,
        );
        for (idx, client) in self.clients.iter().enumerate() {
            assert!(
                client.plan.is_empty() && client.engine.is_none(),
                "client {idx} did not finish its workload (simulation deadlock)"
            );
        }
        assert!(
            self.fleet.is_quiescent(),
            "fleet still has queued work after the event queue drained"
        );
        // Post-hoc stall attribution against the union of every stream
        // trace of every shard: a client blocked while *any* stream is
        // transferring anywhere in the fleet counts as a transfer stall.
        // The fleet timeline is flattened exactly once (one k-way merge
        // over all span lists) and shared by every client's records.
        let clients_out = {
            let lists: Vec<&[Span]> = self
                .fleet
                .pumps()
                .iter()
                .flat_map(|p| p.device().traces())
                .map(|tr| tr.spans())
                .collect();
            let timeline = MergedTimeline::build(&lists);
            self.clients
                .iter_mut()
                .map(|client| {
                    attribute_stalls_merged(&timeline, client.records.drain(..).collect())
                })
                .collect()
        };
        // Tier capacities and resident cold bytes feed the cost report;
        // captured before the pumps are consumed.
        let cold_bytes: u64 = self
            .fleet
            .pumps()
            .iter()
            .map(|p| p.device().store().total_logical_bytes())
            .sum();
        let (dram_bytes, ssd_bytes) =
            self.fleet
                .pumps()
                .iter()
                .fold((0u64, 0u64), |acc, p| match p.cache_config() {
                    Some(cfg) => (
                        acc.0 + cfg.dram.capacity_bytes,
                        acc.1 + cfg.ssd.capacity_bytes,
                    ),
                    None => acc,
                });
        // `run` consumed the runtime, so each shard's spans and delivery
        // ledger move into its ShardResult instead of being cloned.
        // Stream 0 is the control stream (switches + slot-0 transfers);
        // the extra streams' span lists are empty for a serial device.
        let shards: Vec<ShardResult> = self
            .fleet
            .into_pumps()
            .into_iter()
            .enumerate()
            .map(|(shard, mut pump)| {
                let cache = pump.cache_stats();
                let cache_deliveries = pump.take_cache_served_log();
                let mut dev = pump.into_device();
                let mut stream_spans = dev.take_stream_spans().into_iter();
                let spans = stream_spans.next().expect("at least one stream trace");
                ShardResult {
                    shard,
                    scheduler: dev.scheduler_name(),
                    metrics: dev.take_metrics(),
                    fault: fault_stats[shard],
                    spans,
                    extra_stream_spans: stream_spans.collect(),
                    deliveries: dev.take_served_log(),
                    cache,
                    cache_deliveries,
                }
            })
            .collect();
        let device = DeviceMetrics::rolled_up(shards.iter().map(|s| &s.metrics));
        let cache = shards.iter().fold(CacheStats::default(), |mut acc, s| {
            acc.absorb(&s.cache);
            acc
        });
        // The energy estimate sees only the cold device's activity —
        // cache hits bypass it by design, which is exactly where the
        // MAID savings come from on a cached run.
        let energy = self.power.estimate(
            makespan.since(SimTime::ZERO),
            SimDuration::from_micros(device.transfer_busy_micros),
            device.group_switches,
        );
        let latency = self.latency.finish();
        let economics = self.pricing.price_run(
            cold_bytes,
            dram_bytes,
            ssd_bytes,
            makespan.as_secs_f64(),
            energy.maid_wh,
            latency.fleet.count,
        );
        RunResult {
            clients: clients_out,
            device,
            scheduler: shards[0].scheduler,
            shards,
            makespan,
            latency,
            availability,
            cache,
            energy,
            economics,
        }
    }

    /// The conservative safe horizon at a window-open instant: no
    /// `fleet.submit` can occur strictly before it.
    ///
    /// Three bounds, each closing one submit path:
    /// * **tracked interactions** — scheduled events known to submit:
    ///   query releases and ClientReadys whose reaction issues
    ///   follow-up GETs or finishes (finish submits the next query's
    ///   upfront batch);
    /// * **inert busy clients** — a pending ClientReady with nothing
    ///   to submit cannot itself touch a device, but whatever it does
    ///   *next* (process a queued delivery, go back to waiting)
    ///   happens at or after `ready_at`, so the window must not drain
    ///   past it;
    /// * **idle live clients** — a client waiting on deliveries turns
    ///   the very next one into processing whose completion may
    ///   submit, so the window must not drain past the fleet's
    ///   earliest armed completion.
    ///
    /// Together these imply *no client-state transition at all* occurs
    /// strictly inside a window: in-window deliveries only fill busy
    /// clients' inboxes. That is what makes pre-drained device chains
    /// safe — and it is also the profitability limit: windows are wide
    /// exactly while every live client is charged with processing
    /// (batch-issuing engines crunching upfront data), and collapse to
    /// single events while any client sits idle between round-trips
    /// (pull-based engines).
    fn safe_horizon(&self) -> SimTime {
        let mut horizon = self.interactions.horizon();
        let mut idle_live = false;
        for client in &self.clients {
            if client.engine.is_none() {
                continue; // between queries: bounded by its Release, if any
            }
            if client.busy {
                if !client.ready_noted {
                    horizon = horizon.min(client.ready_at);
                }
            } else {
                idle_live = true;
            }
        }
        if idle_live {
            horizon = horizon.min(self.fleet.min_armed());
        }
        horizon
    }

    /// Starts client `c`'s next query if its release has come and the
    /// client is idle.
    fn try_start(&mut self, c: usize, now: SimTime) {
        if !self.clients[c].can_start(now) {
            return;
        }
        let requests = self.clients[c].start_next(c as u16, self.cost, now);
        self.clients[c].draft.upfront_gets = requests.len() as u64;
        let qid = QueryId::new(c as u16, self.clients[c].qseq);
        self.fleet.submit(now, c, qid, &requests);
    }

    /// Arms wake-ups on every shard with pending work and none armed.
    fn poke_fleet(&mut self, now: SimTime) {
        let events = &mut self.events;
        self.fleet
            .poke_all(now, |shard, at| events.schedule(at, Event::Device(shard)));
    }

    /// Routes a finished transfer to its client, dropping stale
    /// deliveries for already-completed queries (reissue races).
    fn route_delivery(
        &mut self,
        now: SimTime,
        c: usize,
        query: QueryId,
        object: skipper_csd::ObjectId,
        payload: std::sync::Arc<skipper_relational::segment::Segment>,
    ) {
        let client = &mut self.clients[c];
        if !client.is_current(query.seq) {
            return; // stale delivery for a completed query
        }
        client.inbox.push_back((object, payload));
        self.try_process(c, now);
    }

    /// Feeds the next buffered delivery to the engine and charges its
    /// processing time.
    fn try_process(&mut self, c: usize, now: SimTime) {
        let client = &mut self.clients[c];
        if client.busy || client.engine.is_none() {
            return;
        }
        let Some((object, payload)) = client.inbox.pop_front() else {
            return;
        };
        client.draft.unblock(now);
        let reaction = client
            .engine
            .as_mut()
            .expect("engine present")
            .on_object(object, &payload);
        client.charge(reaction.processing);
        client.busy = true;
        let at = now + reaction.processing;
        if self.execution != ExecutionMode::Sequential {
            // Safe-horizon classification: this ClientReady touches a
            // device iff the reaction submits follow-up GETs or
            // finishes (finish starts the next query's upfront batch).
            // Inert ClientReadys are not tracked — they bound the
            // horizon through their `ready_at` at window-open time
            // instead (see `safe_horizon`).
            let interactive = !reaction.requests.is_empty() || reaction.finished;
            client.ready_at = at;
            client.ready_noted = interactive;
            if interactive {
                self.interactions.note(at);
            }
        }
        client.pending_after = Some((reaction.requests, reaction.finished));
        self.events.schedule(at, Event::ClientReady(c));
    }

    /// Applies the reaction of the processing that just completed:
    /// submit follow-up GETs, finish the query, or go back to waiting.
    fn client_ready(&mut self, c: usize, now: SimTime) {
        let (requests, finished) = self.clients[c]
            .pending_after
            .take()
            .expect("client_ready without reaction");
        self.clients[c].busy = false;
        if self.execution != ExecutionMode::Sequential && self.clients[c].ready_noted {
            self.clients[c].ready_noted = false;
            self.interactions.consume(now);
        }
        let submitted = !requests.is_empty();
        // Reaction contract: a finished query has nothing left to fetch.
        // The single poke below would otherwise let a next-query batch
        // change the device decision the follow-ups should have seen.
        debug_assert!(
            !(submitted && finished),
            "engine finished a query while issuing follow-up GETs"
        );
        if submitted {
            let qid = QueryId::new(c as u16, self.clients[c].qseq);
            self.fleet.submit(now, c, qid, &requests);
        }
        if finished {
            // Engines never finish with follow-up GETs in flight, so the
            // next query's upfront batch and the (empty) follow-up set
            // share one poke below instead of the historical two.
            self.clients[c].finish(c, now);
            let response = self.clients[c]
                .records
                .last()
                .expect("finish pushed a record")
                .record
                .response_time();
            self.latency.observe(c, response);
            if self.record_mode == RecordMode::Counters {
                // Counters mode: the sketches above are the only
                // survivors; drop the record before it accumulates.
                self.clients[c].records.pop();
            }
            self.try_start(c, now);
        }
        if submitted || finished {
            self.poke_fleet(now);
        }
        if !finished {
            self.clients[c].note_waiting(now);
            self.try_process(c, now);
        }
    }
}
