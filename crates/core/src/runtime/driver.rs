//! The driver layer: the discrete-event loop wiring clients to the
//! device fleet.
//!
//! The [`Runtime`] owns the assembled parts — a [`DeviceFleet`], the
//! per-tenant [`ClientState`]s, and the event queue — and advances
//! virtual time until every tenant has drained its plan. It reproduces
//! the paper's testbed loop exactly: deliveries wake clients, charged
//! processing blocks them, follow-up GETs go back to the owning shard,
//! and every transition is timestamped for the collector.
//!
//! Multi-shard wake-ups interleave deterministically: each shard keeps
//! its own armed-wake-up protocol, the event queue breaks simultaneous
//! events by insertion order, and shards are always poked in shard
//! order — so a fleet run is exactly reproducible, and a 1-shard fleet
//! replays the single-device event schedule unchanged.
//!
//! The hot loop is engineered for million-request runs: the future
//! event list is the O(1)-amortized [`CalendarQueue`] (pop order
//! identical to the reference `EventQueue` — pinned by the differential
//! sweep in `skipper-sim`), and delivery batches flow through one
//! reusable scratch buffer (`DeviceFleet::on_wakeup_into`), so the
//! steady state of the loop allocates nothing per event.

use std::sync::Arc;

use skipper_cost::FleetPricing;
use skipper_csd::cache::CacheStats;
use skipper_csd::metrics::DeviceMetrics;
use skipper_csd::{Delivery, ObjectId, PowerModel, QueryId};
use skipper_relational::segment::Segment;
use skipper_sim::rng::derive_seed;
use skipper_sim::trace::Span;
use skipper_sim::{CalendarQueue, HorizonTracker, MergedTimeline, SimDuration, SimTime};

use crate::config::CostModel;

use super::client::{ClientState, PlannedQuery};
use super::collector::{
    attribute_stalls_merged, AvailabilitySummary, LatencyAccumulator, RecordMode, RunResult,
    ShardResult,
};
use super::fault::{FaultAction, TimedFault};
use super::fleet::DeviceFleet;
use super::protect::{AdmissionPolicy, AdmissionResponse, ClientProtection, ProtectionSummary};

/// Event payloads of the runtime loop.
#[derive(Clone, Copy, Debug)]
enum Event {
    /// Shard `s` finishes its in-flight operation.
    Device(usize),
    /// Client `c` finishes its charged processing.
    ClientReady(usize),
    /// The arrival process releases client `c`'s next query.
    Release(usize),
    /// The fault plan's `i`-th timed action fires.
    Fault(usize),
    /// Client `c`'s query seq `q` hits its response deadline.
    Deadline(usize, u32),
    /// The `i`-th hedge entry fires: re-issue still-undelivered
    /// objects to the next live replica.
    Hedge(usize),
    /// The `i`-th retry entry fires: re-submit one unroutable object.
    Retry(usize),
}

/// A scheduled re-submission of one object that found no live replica.
#[derive(Clone, Copy)]
struct RetryEntry {
    client: usize,
    query: QueryId,
    object: ObjectId,
    attempt: u32,
}

/// A scheduled hedge check covering one submitted batch: the range
/// `start..end` indexes the client's `HedgeState::requested` log.
#[derive(Clone, Copy)]
struct HedgeEntry {
    client: usize,
    qseq: u32,
    start: usize,
    end: usize,
}

/// Per-client hedging ledger for the current query. Cleared on finish
/// and cancel; empty for tenants without a hedge delay.
#[derive(Clone, Default)]
struct HedgeState {
    /// Every object submitted for the current query, in submit order.
    requested: Vec<ObjectId>,
    /// Objects already consumed (first copy delivered); later copies
    /// are hedge losers and are discarded.
    consumed: Vec<ObjectId>,
    /// Objects with a hedge duplicate in flight, and the shard it was
    /// sent to (to tell hedge wins from primary wins).
    hedged: Vec<(ObjectId, usize)>,
}

/// How the event loop executes a run.
///
/// Both modes produce **bit-identical** results — same deliveries,
/// same timestamps, same metrics, same traces — because the parallel
/// mode only *pre-executes* each shard's private completion chain up
/// to a conservative safe horizon and replays it through the unchanged
/// global loop (see the module docs). Sequential stays the reference
/// implementation; the differential sweep in the runtime tests pins
/// the equivalence across every policy, placement, and worker count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecutionMode {
    /// The reference single-thread discrete-event loop.
    #[default]
    Sequential,
    /// Windowed-parallel execution: shard completion chains are
    /// drained concurrently up to the safe horizon between
    /// cross-shard interactions.
    Parallel {
        /// Worker threads draining shard windows; the event-loop
        /// thread counts as one of them. Clamped to at least 1.
        workers: usize,
    },
}

/// The assembled multi-tenant runtime; consumed by [`Runtime::run`].
pub struct Runtime {
    fleet: DeviceFleet,
    clients: Vec<ClientState>,
    events: CalendarQueue<Event>,
    cost: CostModel,
    /// Reusable delivery scratch for multi-stream wake-up batches.
    scratch: Vec<Delivery<Arc<Segment>>>,
    execution: ExecutionMode,
    /// Pending cross-shard interaction instants (parallel mode): every
    /// scheduled event that may submit GETs bounds the safe horizon.
    interactions: HorizonTracker,
    /// End of the currently drained window (parallel mode): events
    /// before it are answered from shard replay logs; reaching it
    /// re-opens the window at the tracker's new minimum.
    window_end: SimTime,
    /// Streaming tail-latency sketches, fed in completion order (the
    /// order is bit-identical across execution modes, so the summary
    /// is too).
    latency: LatencyAccumulator,
    /// Whether finished records are retained for the result.
    record_mode: RecordMode,
    /// The expanded fault schedule, in firing order (empty without a
    /// fault plan). Every action becomes a calendar event up front, so
    /// both execution modes see identical fault timings and each fault
    /// instant bounds the safe horizon.
    faults: Vec<TimedFault>,
    /// MAID electrical model for the end-of-run energy estimate.
    power: PowerModel,
    /// $/GB and $/kWh inputs for the end-of-run cost report.
    pricing: FleetPricing,
    /// Per-client protection knobs (deadline, retry, hedge, priority);
    /// one entry per client, all-disabled by default.
    protection: Vec<ClientProtection>,
    /// Fleet-seam admission policy, if any.
    admission: Option<AdmissionPolicy>,
    /// Protection-plane counters for the run result.
    protection_summary: ProtectionSummary,
    /// Per-client seeded SplitMix streams for retry backoff jitter.
    retry_rng: Vec<u64>,
    /// Deadline-retry attempts already spent on the current query.
    query_attempts: Vec<u32>,
    /// Scheduled unroutable-object retries, indexed by `Event::Retry`.
    retries: Vec<RetryEntry>,
    /// Scheduled hedge checks, indexed by `Event::Hedge`.
    hedges: Vec<HedgeEntry>,
    /// Per-client hedging ledgers (empty vectors when unused).
    hedge_state: Vec<HedgeState>,
    /// True when any client hedges: gates the per-delivery ledger work
    /// and the extra safe-horizon bound.
    any_hedge: bool,
    /// Whether consumed deliveries are logged (hedged full-record runs).
    log_consumed: bool,
    /// At-most-once consumption log (see `RunResult::consumed`).
    consumed_log: Vec<(usize, QueryId, ObjectId)>,
    /// Reusable buffer for draining the fleet's unroutable requests.
    unroutable_scratch: Vec<(usize, QueryId, ObjectId)>,
    /// Instant of the last event that did anything. Protection events
    /// for queries that already completed pop as stale no-ops and must
    /// not stretch the makespan (a met deadline leaves its far-future
    /// event behind); every other event advances this unconditionally,
    /// so without protection it equals the historical `events.now()`.
    last_activity: SimTime,
}

impl Runtime {
    /// Wires the parts together (sequential execution).
    pub fn new(fleet: DeviceFleet, clients: Vec<ClientState>, cost: CostModel) -> Self {
        let targets: Vec<_> = clients.iter().map(|c| (c.slo, c.ideal)).collect();
        let n = clients.len();
        Runtime {
            fleet,
            clients,
            events: CalendarQueue::new(),
            cost,
            scratch: Vec::new(),
            execution: ExecutionMode::default(),
            interactions: HorizonTracker::new(),
            window_end: SimTime::ZERO,
            latency: LatencyAccumulator::new(&targets),
            record_mode: RecordMode::default(),
            faults: Vec::new(),
            power: PowerModel::default(),
            pricing: FleetPricing::default(),
            protection: vec![ClientProtection::default(); n],
            admission: None,
            protection_summary: ProtectionSummary::sized(n),
            retry_rng: vec![0; n],
            query_attempts: vec![0; n],
            retries: Vec::new(),
            hedges: Vec::new(),
            hedge_state: vec![HedgeState::default(); n],
            any_hedge: false,
            log_consumed: false,
            consumed_log: Vec::new(),
            unroutable_scratch: Vec::new(),
            last_activity: SimTime::ZERO,
        }
    }

    /// Installs the electrical model and pricing inputs used for the
    /// end-of-run energy/cost report (builder style; defaults are the
    /// paper's Pelican-style array and Table 1 prices).
    pub fn with_economics(mut self, power: PowerModel, pricing: FleetPricing) -> Self {
        self.power = power;
        self.pricing = pricing;
        self
    }

    /// Selects the execution mode (builder style).
    pub fn with_execution(mut self, mode: ExecutionMode) -> Self {
        self.execution = mode;
        self
    }

    /// Installs the expanded fault schedule (builder style; assembly
    /// passes the `FaultPlan`'s timed actions here).
    pub(crate) fn with_faults(mut self, faults: Vec<TimedFault>) -> Self {
        self.faults = faults;
        self
    }

    /// Selects whether per-query records are retained (builder style).
    pub fn with_record_mode(mut self, mode: RecordMode) -> Self {
        self.record_mode = mode;
        self
    }

    /// Installs the protection plane (builder style): per-client knobs,
    /// the optional admission policy, and the root seed the per-client
    /// `"retry/{c}"` backoff streams derive from. With all knobs
    /// disabled this is a no-op and the run is byte-identical to one
    /// that never called it.
    pub(crate) fn with_protection(
        mut self,
        per_client: Vec<ClientProtection>,
        admission: Option<AdmissionPolicy>,
        seed: u64,
    ) -> Self {
        assert_eq!(
            per_client.len(),
            self.clients.len(),
            "one protection entry per client"
        );
        self.any_hedge = per_client.iter().any(|p| p.hedge.is_some());
        let retry_flags: Vec<bool> = per_client.iter().map(|p| p.retry.enabled()).collect();
        if retry_flags.iter().any(|&f| f) {
            self.retry_rng = (0..per_client.len())
                .map(|c| derive_seed(seed, &format!("retry/{c}")))
                .collect();
            self.fleet.set_retry_clients(retry_flags);
        }
        for (c, p) in per_client.iter().enumerate() {
            // A deadline-cancelled query can only be re-planned if its
            // spec survives the cancel.
            self.clients[c].keep_spec = p.deadline.is_some() && p.retry.enabled();
        }
        if let Some(b) = admission.and_then(|a| a.breaker) {
            self.fleet.set_breaker(b);
        }
        self.admission = admission;
        self.protection = per_client;
        self
    }

    /// True when running windowed-parallel.
    fn windowed(&self) -> bool {
        self.execution != ExecutionMode::Sequential
    }

    /// Executes to completion, returning all measurements.
    ///
    /// # Panics
    /// Panics if any client fails to drain its plan (a simulation
    /// deadlock — always a harness bug).
    pub fn run(mut self) -> RunResult {
        let now = SimTime::ZERO;
        // Scheduled releases (staggered starts, Poisson arrivals) are
        // armed as events, in client order for deterministic ties;
        // closed-loop queries with no release instant start immediately.
        // Starting a client never schedules events, so arming all
        // releases first preserves the historical event order.
        let windowed = self.windowed();
        self.log_consumed = self.any_hedge && self.record_mode == RecordMode::Full;
        for (c, client) in self.clients.iter().enumerate() {
            self.protection_summary.per_tenant[c].offered = client.plan.len() as u64;
        }
        // Fault actions are armed first: at equal instants a crash (or
        // recovery) applies before a release routes its query. Every
        // fault instant is a noted interaction — faults re-route work
        // across shards, so no window may drain past one.
        for (i, f) in self.faults.iter().enumerate() {
            self.events.schedule(f.at, Event::Fault(i));
            if windowed {
                self.interactions.note(f.at);
            }
        }
        for (c, client) in self.clients.iter().enumerate() {
            for at in client.plan.iter().filter_map(|p| p.release) {
                self.events.schedule(at, Event::Release(c));
                if windowed {
                    self.interactions.note(at);
                }
            }
        }
        for c in 0..self.clients.len() {
            self.try_start(c, now);
        }
        self.poke_fleet(now);
        let workers = match self.execution {
            ExecutionMode::Sequential => 0,
            ExecutionMode::Parallel { workers } => workers.max(1),
        };

        while let Some((t, ev)) = self.events.pop() {
            if workers > 0 && t >= self.window_end {
                // Window barrier: every replay from the previous
                // window is consumed (each drained wake-up had its
                // calendar event before `window_end`), so re-open at
                // the new safe horizon and pre-drain every shard's
                // private chain up to it — in parallel, since shards
                // share no state below the horizon.
                let horizon = self.safe_horizon();
                debug_assert!(horizon >= t, "interaction missed by the horizon tracker");
                if horizon > t {
                    self.fleet.drain_window_parallel(horizon, workers);
                }
                self.window_end = horizon;
            }
            if !matches!(ev, Event::Deadline(..) | Event::Hedge(_) | Event::Retry(_)) {
                self.last_activity = t;
            }
            match ev {
                Event::Device(shard) => {
                    // A multi-stream wake-up retires every transfer due
                    // at this instant: route the whole batch (device
                    // slot order — deterministic), then poke once.
                    // Stale superseded wake-ups leave the batch empty.
                    // The scratch buffer is taken out of `self` for the
                    // duration of the routing (route_delivery borrows
                    // clients and fleet) and put back drained, so no
                    // per-event allocation survives warm-up.
                    let mut batch = std::mem::take(&mut self.scratch);
                    batch.clear();
                    self.fleet.on_wakeup_into(shard, t, &mut batch);
                    for d in batch.drain(..) {
                        self.route_delivery(t, shard, d.client, d.query, d.object, d.payload);
                    }
                    self.scratch = batch;
                    self.poke_fleet(t);
                }
                Event::ClientReady(c) => self.client_ready(c, t),
                Event::Release(c) => {
                    if windowed {
                        self.interactions.consume(t);
                    }
                    self.try_start(c, t);
                    self.poke_fleet(t);
                }
                Event::Fault(i) => {
                    if windowed {
                        self.interactions.consume(t);
                    }
                    let fault = self.faults[i];
                    let mut batch = std::mem::take(&mut self.scratch);
                    batch.clear();
                    match fault.action {
                        FaultAction::Down => self.fleet.fail_shard(fault.shard, t, &mut batch),
                        FaultAction::Recover => self.fleet.recover_shard(fault.shard, t),
                        FaultAction::Degrade(factor) => {
                            self.fleet.set_bandwidth_factor(fault.shard, factor)
                        }
                        FaultAction::Restore => self.fleet.set_bandwidth_factor(fault.shard, 1.0),
                    }
                    // A crash flushes watchdog-parked deliveries (their
                    // transfers finished before the crash): route them
                    // like any retired batch.
                    for d in batch.drain(..) {
                        self.route_delivery(t, fault.shard, d.client, d.query, d.object, d.payload);
                    }
                    self.scratch = batch;
                    // A crash may have displaced a retry tenant's
                    // in-flight requests with no live replica left.
                    if self.fleet.has_unroutable() {
                        self.drain_unroutable(t, 1);
                    }
                    self.poke_fleet(t);
                }
                Event::Deadline(c, qseq) => {
                    if windowed {
                        self.interactions.consume(t);
                    }
                    self.deadline_fired(c, qseq, t);
                }
                Event::Hedge(i) => {
                    if windowed {
                        self.interactions.consume(t);
                    }
                    self.hedge_fired(i, t);
                }
                Event::Retry(i) => {
                    if windowed {
                        self.interactions.consume(t);
                    }
                    self.retry_fired(i, t);
                }
            }
        }

        let makespan = self.last_activity;
        self.fleet.close_downtime(makespan);
        self.protection_summary.breaker_trips = self.fleet.breaker_trips();
        let fault_stats = self.fleet.fault_stats().to_vec();
        let availability = AvailabilitySummary::from_shards(
            &fault_stats,
            self.faults.len() as u64,
            self.fleet.parked_total(),
            makespan,
        );
        for (idx, client) in self.clients.iter().enumerate() {
            assert!(
                client.plan.is_empty() && client.engine.is_none(),
                "client {idx} did not finish its workload (simulation deadlock)"
            );
        }
        assert!(
            self.fleet.is_quiescent(),
            "fleet still has queued work after the event queue drained"
        );
        // Post-hoc stall attribution against the union of every stream
        // trace of every shard: a client blocked while *any* stream is
        // transferring anywhere in the fleet counts as a transfer stall.
        // The fleet timeline is flattened exactly once (one k-way merge
        // over all span lists) and shared by every client's records.
        let clients_out = {
            let lists: Vec<&[Span]> = self
                .fleet
                .pumps()
                .iter()
                .flat_map(|p| p.device().traces())
                .map(|tr| tr.spans())
                .collect();
            let timeline = MergedTimeline::build(&lists);
            self.clients
                .iter_mut()
                .map(|client| {
                    attribute_stalls_merged(&timeline, client.records.drain(..).collect())
                })
                .collect()
        };
        // Tier capacities and resident cold bytes feed the cost report;
        // captured before the pumps are consumed.
        let cold_bytes: u64 = self
            .fleet
            .pumps()
            .iter()
            .map(|p| p.device().store().total_logical_bytes())
            .sum();
        let (dram_bytes, ssd_bytes) =
            self.fleet
                .pumps()
                .iter()
                .fold((0u64, 0u64), |acc, p| match p.cache_config() {
                    Some(cfg) => (
                        acc.0 + cfg.dram.capacity_bytes,
                        acc.1 + cfg.ssd.capacity_bytes,
                    ),
                    None => acc,
                });
        // `run` consumed the runtime, so each shard's spans and delivery
        // ledger move into its ShardResult instead of being cloned.
        // Stream 0 is the control stream (switches + slot-0 transfers);
        // the extra streams' span lists are empty for a serial device.
        let shards: Vec<ShardResult> = self
            .fleet
            .into_pumps()
            .into_iter()
            .enumerate()
            .map(|(shard, mut pump)| {
                let cache = pump.cache_stats();
                let cache_deliveries = pump.take_cache_served_log();
                let mut dev = pump.into_device();
                let mut stream_spans = dev.take_stream_spans().into_iter();
                let spans = stream_spans.next().expect("at least one stream trace");
                ShardResult {
                    shard,
                    scheduler: dev.scheduler_name(),
                    metrics: dev.take_metrics(),
                    fault: fault_stats[shard],
                    spans,
                    extra_stream_spans: stream_spans.collect(),
                    deliveries: dev.take_served_log(),
                    cache,
                    cache_deliveries,
                }
            })
            .collect();
        let device = DeviceMetrics::rolled_up(shards.iter().map(|s| &s.metrics));
        let cache = shards.iter().fold(CacheStats::default(), |mut acc, s| {
            acc.absorb(&s.cache);
            acc
        });
        // The energy estimate sees only the cold device's activity —
        // cache hits bypass it by design, which is exactly where the
        // MAID savings come from on a cached run.
        let energy = self.power.estimate(
            makespan.since(SimTime::ZERO),
            SimDuration::from_micros(device.transfer_busy_micros),
            device.group_switches,
        );
        let latency = self.latency.finish();
        let economics = self.pricing.price_run(
            cold_bytes,
            dram_bytes,
            ssd_bytes,
            makespan.as_secs_f64(),
            energy.maid_wh,
            latency.fleet.count,
        );
        RunResult {
            clients: clients_out,
            device,
            scheduler: shards[0].scheduler,
            shards,
            makespan,
            latency,
            availability,
            cache,
            energy,
            economics,
            protection: self.protection_summary,
            consumed: self.consumed_log,
        }
    }

    /// The conservative safe horizon at a window-open instant: no
    /// `fleet.submit` can occur strictly before it.
    ///
    /// Three bounds, each closing one submit path:
    /// * **tracked interactions** — scheduled events known to submit:
    ///   query releases and ClientReadys whose reaction issues
    ///   follow-up GETs or finishes (finish submits the next query's
    ///   upfront batch);
    /// * **inert busy clients** — a pending ClientReady with nothing
    ///   to submit cannot itself touch a device, but whatever it does
    ///   *next* (process a queued delivery, go back to waiting)
    ///   happens at or after `ready_at`, so the window must not drain
    ///   past it;
    /// * **idle live clients** — a client waiting on deliveries turns
    ///   the very next one into processing whose completion may
    ///   submit, so the window must not drain past the fleet's
    ///   earliest armed completion.
    ///
    /// Together these imply *no client-state transition at all* occurs
    /// strictly inside a window: in-window deliveries only fill busy
    /// clients' inboxes. That is what makes pre-drained device chains
    /// safe — and it is also the profitability limit: windows are wide
    /// exactly while every live client is charged with processing
    /// (batch-issuing engines crunching upfront data), and collapse to
    /// single events while any client sits idle between round-trips
    /// (pull-based engines).
    fn safe_horizon(&self) -> SimTime {
        let mut horizon = self.interactions.horizon();
        let mut idle_live = false;
        for client in &self.clients {
            if client.engine.is_none() {
                continue; // between queries: bounded by its Release, if any
            }
            if client.busy {
                if !client.ready_noted {
                    horizon = horizon.min(client.ready_at);
                }
            } else {
                idle_live = true;
            }
        }
        if idle_live {
            horizon = horizon.min(self.fleet.min_armed());
        }
        // Hedging adds a delivery-time device mutation: consuming the
        // winning copy cancels the loser's queued copy on another
        // shard. While any hedge-enabled client has a query in flight,
        // no window may drain past the fleet's earliest completion —
        // the cancel must never land inside a pre-drained chain.
        if self.any_hedge
            && self
                .clients
                .iter()
                .zip(&self.protection)
                .any(|(cl, p)| p.hedge.is_some() && cl.engine.is_some())
        {
            horizon = horizon.min(self.fleet.min_armed());
        }
        horizon
    }

    /// Starts client `c`'s next query if its release has come and the
    /// client is idle, after the protection gates: queries whose
    /// deadline already lapsed while queued are abandoned, and
    /// admission control sheds or defers the start when a live shard
    /// is over its backlog ceiling.
    fn try_start(&mut self, c: usize, now: SimTime) {
        loop {
            if !self.clients[c].can_start(now) {
                return;
            }
            if self.protection[c].disabled() && self.admission.is_none() {
                break; // historical fast path, byte-identical
            }
            // Lazy deadline check: an open-arrival query that queued
            // past its whole deadline is a miss before it starts.
            if let Some(d) = self.protection[c].deadline {
                let expired = self.clients[c]
                    .plan
                    .front()
                    .and_then(|p| p.release)
                    .is_some_and(|r| r + d <= now);
                if expired {
                    self.clients[c].plan.pop_front();
                    self.protection_summary.deadline_misses += 1;
                    self.protection_summary.per_tenant[c].deadline_misses += 1;
                    self.query_attempts[c] = 0;
                    continue;
                }
            }
            if let Some(policy) = self.admission {
                let (depth, bytes) = self.fleet.max_live_load();
                if policy.over_limit(self.protection[c].priority, depth, bytes) {
                    match policy.response {
                        AdmissionResponse::Shed => {
                            self.clients[c].plan.pop_front();
                            self.protection_summary.sheds += 1;
                            self.protection_summary.per_tenant[c].shed += 1;
                            self.query_attempts[c] = 0;
                            continue;
                        }
                        AdmissionResponse::Backpressure(delay) => {
                            let at = now + delay;
                            self.clients[c]
                                .plan
                                .front_mut()
                                .expect("can_start saw a front query")
                                .release = Some(at);
                            self.events.schedule(at, Event::Release(c));
                            if self.windowed() {
                                self.interactions.note(at);
                            }
                            self.protection_summary.backpressure_deferrals += 1;
                            return;
                        }
                    }
                }
            }
            break;
        }
        let requests = self.clients[c].start_next(c as u16, self.cost, now);
        self.clients[c].draft.upfront_gets = requests.len() as u64;
        let qid = QueryId::new(c as u16, self.clients[c].qseq);
        if let Some(d) = self.protection[c].deadline {
            // The deadline anchors at release (queue wait counts), like
            // the SLO attainment report.
            let anchor = self.clients[c].draft.release.unwrap_or(now);
            let at = anchor + d;
            self.events.schedule(at, Event::Deadline(c, qid.seq));
            if self.windowed() {
                self.interactions.note(at);
            }
        }
        self.protected_submit(now, c, qid, &requests);
    }

    /// Arms wake-ups on every shard with pending work and none armed.
    fn poke_fleet(&mut self, now: SimTime) {
        let events = &mut self.events;
        self.fleet
            .poke_all(now, |shard, at| events.schedule(at, Event::Device(shard)));
    }

    /// Routes a finished transfer to its client, dropping stale
    /// deliveries for already-completed queries (reissue races) and —
    /// for hedged tenants — duplicate copies of an already-consumed
    /// object (at-most-once consumption; the winner's cancel may have
    /// raced the loser's dispatch).
    fn route_delivery(
        &mut self,
        now: SimTime,
        shard: usize,
        c: usize,
        query: QueryId,
        object: ObjectId,
        payload: std::sync::Arc<skipper_relational::segment::Segment>,
    ) {
        if !self.clients[c].is_current(query.seq) {
            return; // stale delivery for a completed query
        }
        if self.protection[c].hedge.is_some() {
            let hs = &mut self.hedge_state[c];
            if hs.consumed.contains(&object) {
                self.protection_summary.hedge_losers_discarded += 1;
                return; // the other replica already won this object
            }
            hs.consumed.push(object);
            let hedge_shard = hs
                .hedged
                .iter()
                .find(|&&(o, _)| o == object)
                .map(|&(_, s)| s);
            if let Some(target) = hedge_shard {
                if target == shard {
                    self.protection_summary.hedge_wins += 1;
                }
                // First consumption: dequeue the loser's still-queued
                // copy wherever it sits (the winner's copy left its
                // queue at dispatch, so a fleet-wide scan is safe).
                self.protection_summary.hedge_losers_cancelled +=
                    self.fleet.cancel_object(query, object) as u64;
            }
        }
        if self.log_consumed {
            self.consumed_log.push((c, query, object));
        }
        self.clients[c].inbox.push_back((object, payload));
        self.try_process(c, now);
    }

    /// Feeds the next buffered delivery to the engine and charges its
    /// processing time.
    fn try_process(&mut self, c: usize, now: SimTime) {
        let client = &mut self.clients[c];
        if client.busy || client.engine.is_none() {
            return;
        }
        let Some((object, payload)) = client.inbox.pop_front() else {
            return;
        };
        client.draft.unblock(now);
        let reaction = client
            .engine
            .as_mut()
            .expect("engine present")
            .on_object(object, &payload);
        client.charge(reaction.processing);
        client.busy = true;
        let at = now + reaction.processing;
        if self.execution != ExecutionMode::Sequential {
            // Safe-horizon classification: this ClientReady touches a
            // device iff the reaction submits follow-up GETs or
            // finishes (finish starts the next query's upfront batch).
            // Inert ClientReadys are not tracked — they bound the
            // horizon through their `ready_at` at window-open time
            // instead (see `safe_horizon`).
            let interactive = !reaction.requests.is_empty() || reaction.finished;
            client.ready_at = at;
            client.ready_noted = interactive;
            if interactive {
                self.interactions.note(at);
            }
        }
        client.pending_after = Some((reaction.requests, reaction.finished));
        self.events.schedule(at, Event::ClientReady(c));
    }

    /// Applies the reaction of the processing that just completed:
    /// submit follow-up GETs, finish the query, or go back to waiting.
    fn client_ready(&mut self, c: usize, now: SimTime) {
        let (requests, finished) = self.clients[c]
            .pending_after
            .take()
            .expect("client_ready without reaction");
        self.clients[c].busy = false;
        if self.execution != ExecutionMode::Sequential && self.clients[c].ready_noted {
            self.clients[c].ready_noted = false;
            self.interactions.consume(now);
        }
        if self.clients[c].cancelled {
            // The query this processing belonged to was cancelled while
            // charged: discard the reaction. A successor query may
            // already have started (a release fired during the busy
            // window), so drain its buffered deliveries too.
            self.clients[c].cancelled = false;
            self.try_start(c, now);
            self.poke_fleet(now);
            self.try_process(c, now);
            return;
        }
        let submitted = !requests.is_empty();
        // Reaction contract: a finished query has nothing left to fetch.
        // The single poke below would otherwise let a next-query batch
        // change the device decision the follow-ups should have seen.
        debug_assert!(
            !(submitted && finished),
            "engine finished a query while issuing follow-up GETs"
        );
        if submitted {
            let qid = QueryId::new(c as u16, self.clients[c].qseq);
            self.protected_submit(now, c, qid, &requests);
        }
        if finished {
            // Engines never finish with follow-up GETs in flight, so the
            // next query's upfront batch and the (empty) follow-up set
            // share one poke below instead of the historical two.
            self.clients[c].finish(c, now);
            self.protection_summary.per_tenant[c].completed += 1;
            self.query_attempts[c] = 0;
            self.clear_hedge(c);
            let response = self.clients[c]
                .records
                .last()
                .expect("finish pushed a record")
                .record
                .response_time();
            self.latency.observe(c, response);
            if self.record_mode == RecordMode::Counters {
                // Counters mode: the sketches above are the only
                // survivors; drop the record before it accumulates.
                self.clients[c].records.pop();
            }
            self.try_start(c, now);
        }
        if submitted || finished {
            self.poke_fleet(now);
        }
        if !finished {
            self.clients[c].note_waiting(now);
            self.try_process(c, now);
        }
    }

    /// Submits a batch through the protection plane: records a hedge
    /// check for hedge-enabled tenants under replication, routes
    /// through the fleet, and converts any unroutable requests (retry
    /// tenants with no live replica) into scheduled re-submissions.
    fn protected_submit(&mut self, now: SimTime, c: usize, qid: QueryId, objects: &[ObjectId]) {
        if !objects.is_empty() && self.fleet.replicated() {
            if let Some(delay) = self.protection[c].hedge {
                let hs = &mut self.hedge_state[c];
                let start = hs.requested.len();
                hs.requested.extend_from_slice(objects);
                let entry = HedgeEntry {
                    client: c,
                    qseq: self.clients[c].qseq,
                    start,
                    end: start + objects.len(),
                };
                let at = now + delay;
                let idx = self.hedges.len();
                self.hedges.push(entry);
                self.events.schedule(at, Event::Hedge(idx));
                if self.windowed() {
                    self.interactions.note(at);
                }
            }
        }
        self.fleet.submit(now, c, qid, objects);
        if self.fleet.has_unroutable() {
            self.drain_unroutable(now, 1);
        }
    }

    /// Converts the fleet's pending unroutable requests into scheduled
    /// retries at backoff instant `attempt`.
    fn drain_unroutable(&mut self, now: SimTime, attempt: u32) {
        let mut buf = std::mem::take(&mut self.unroutable_scratch);
        buf.clear();
        self.fleet.take_unroutable(&mut buf);
        for &(client, query, object) in buf.iter() {
            self.schedule_retry(now, client, query, object, attempt);
        }
        buf.clear();
        self.unroutable_scratch = buf;
    }

    /// Schedules re-submission attempt `attempt` for one unroutable
    /// object, or — when the backoff budget is exhausted — cancels the
    /// whole query so the run still drains.
    fn schedule_retry(
        &mut self,
        now: SimTime,
        client: usize,
        query: QueryId,
        object: ObjectId,
        attempt: u32,
    ) {
        if self.clients[client].engine.is_none() || self.clients[client].qseq != query.seq {
            return; // the owning query was cancelled meanwhile
        }
        match self.protection[client]
            .retry
            .delay(attempt, &mut self.retry_rng[client])
        {
            Some(delay) => {
                self.protection_summary.retries += 1;
                let at = now + delay;
                let idx = self.retries.len();
                self.retries.push(RetryEntry {
                    client,
                    query,
                    object,
                    attempt,
                });
                self.events.schedule(at, Event::Retry(idx));
                if self.windowed() {
                    self.interactions.note(at);
                }
            }
            None => {
                // Out of attempts: the query can never receive this
                // object, so cancel it (no timeout charged — the shard
                // is down, not slow).
                self.protection_summary.retry_exhausted += 1;
                self.cancel_current(client, now, false);
                self.query_attempts[client] = 0;
                if !self.clients[client].busy {
                    self.try_start(client, now);
                }
            }
        }
    }

    /// A scheduled retry instant arrived: re-submit the object if its
    /// query is still in flight; if the fleet still has no live replica
    /// the request comes straight back and re-schedules at the next
    /// backoff step.
    fn retry_fired(&mut self, i: usize, now: SimTime) {
        let RetryEntry {
            client,
            query,
            object,
            attempt,
        } = self.retries[i];
        if self.clients[client].engine.is_none() || self.clients[client].qseq != query.seq {
            return; // cancelled or finished while the retry waited
        }
        self.last_activity = now;
        self.fleet.submit(now, client, query, &[object]);
        if self.fleet.has_unroutable() {
            self.drain_unroutable(now, attempt + 1);
        }
        self.poke_fleet(now);
    }

    /// A hedge delay elapsed: re-issue every still-undelivered object
    /// of the covered batch to the next live replica.
    fn hedge_fired(&mut self, i: usize, now: SimTime) {
        let HedgeEntry {
            client,
            qseq,
            start,
            end,
        } = self.hedges[i];
        if self.clients[client].engine.is_none() || self.clients[client].qseq != qseq {
            return; // the covered query already finished or cancelled
        }
        self.last_activity = now;
        let qid = QueryId::new(client as u16, qseq);
        let mut fired = false;
        for idx in start..end {
            let object = self.hedge_state[client].requested[idx];
            let skip = {
                let hs = &self.hedge_state[client];
                hs.consumed.contains(&object) || hs.hedged.iter().any(|&(o, _)| o == object)
            };
            if skip {
                continue;
            }
            let Some(target) = self.fleet.hedge_target(object) else {
                continue; // no second live replica to hedge to
            };
            self.fleet.submit_to(target, now, client, qid, object);
            self.hedge_state[client].hedged.push((object, target));
            self.protection_summary.hedges_fired += 1;
            fired = true;
        }
        if fired {
            self.poke_fleet(now);
        }
    }

    /// A deadline fired: if the query is still in flight, cancel it
    /// everywhere (client, queues, ledgers), count the miss, and — for
    /// retry tenants — re-plan it at the next backoff instant.
    fn deadline_fired(&mut self, c: usize, qseq: u32, now: SimTime) {
        let live = self.clients[c].engine.is_some() && self.clients[c].qseq == qseq;
        if !live {
            return; // the query beat its deadline
        }
        self.last_activity = now;
        self.protection_summary.deadline_misses += 1;
        self.protection_summary.per_tenant[c].deadline_misses += 1;
        let attempt = self.query_attempts[c] + 1;
        let delay = self.protection[c]
            .retry
            .delay(attempt, &mut self.retry_rng[c]);
        // The timeout is charged to the shards that still held queued
        // work for the query — that is what trips a slow shard's
        // breaker.
        self.cancel_current(c, now, true);
        match delay {
            Some(delay) => {
                self.query_attempts[c] = attempt;
                self.protection_summary.retries += 1;
                let spec = self.clients[c]
                    .current_spec
                    .clone()
                    .expect("retry-enabled client keeps its running spec");
                let at = now + delay;
                self.clients[c].plan.push_front(PlannedQuery {
                    spec,
                    release: Some(at),
                });
                self.events.schedule(at, Event::Release(c));
                if self.windowed() {
                    self.interactions.note(at);
                }
            }
            None => {
                if self.protection[c].retry.enabled() {
                    self.protection_summary.retry_exhausted += 1;
                }
                self.query_attempts[c] = 0;
            }
        }
        if !self.clients[c].busy {
            self.try_start(c, now);
        }
        self.poke_fleet(now);
    }

    /// Cancels client `c`'s current query end-to-end: fleet queues
    /// (optionally charging the breaker's timeout counter), the client
    /// state machine, and the hedge ledger.
    fn cancel_current(&mut self, c: usize, now: SimTime, charge_timeout: bool) {
        let qid = QueryId::new(c as u16, self.clients[c].qseq);
        self.fleet.cancel_query(qid, now, charge_timeout);
        self.clients[c].cancel();
        self.clear_hedge(c);
    }

    /// Resets client `c`'s hedge ledger (no-op when nothing hedges).
    fn clear_hedge(&mut self, c: usize) {
        if !self.any_hedge {
            return;
        }
        let hs = &mut self.hedge_state[c];
        hs.requested.clear();
        hs.consumed.clear();
        hs.hedged.clear();
    }
}
