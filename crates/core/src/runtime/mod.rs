//! The layered multi-tenant runtime.
//!
//! This module is the execution stack of the reproduction, split into
//! three explicit layers (replacing the seed's monolithic `driver.rs`):
//!
//! 1. **Workload layer** ([`workload`]) — [`Workload`] describes one
//!    tenant: dataset, query mix, engine choice, and arrival process
//!    (closed-loop, staggered starts, fixed-seed Poisson open
//!    arrivals).
//! 2. **Engine layer** ([`engines`]) — the per-tenant [`EngineFactory`]
//!    replacing the old global `EngineKind` branch: one scenario can
//!    mix Skipper and Vanilla tenants with per-tenant cache/eviction
//!    configuration.
//! 3. **Driver layer** ([`client`], [`pump`], [`driver`],
//!    [`collector`]) — the client state machine, the device pump, the
//!    discrete-event loop, and the record/metrics collector behind
//!    every figure in §5 of the paper.
//!
//! [`Scenario`] ([`scenario`]) remains the one-stop facade over all
//! three layers and is fully backward compatible with the seed API.
//!
//! # Mixed-engine fleets
//!
//! ```no_run
//! use skipper_core::runtime::{ArrivalProcess, Scenario, SkipperFactory, VanillaFactory, Workload};
//! use skipper_datagen::{tpch, GenConfig};
//! use skipper_sim::SimDuration;
//!
//! let data = tpch::dataset(&GenConfig::new(42, 8).with_phys_divisor(100_000));
//! let q12 = tpch::q12(&data);
//! let result = Scenario::from_workloads(vec![
//!     Workload::new(data.clone())
//!         .repeat_query(q12.clone(), 2)
//!         .engine(SkipperFactory::default().cache_bytes(10 << 30)),
//!     Workload::new(data.clone())
//!         .repeat_query(q12.clone(), 2)
//!         .engine(VanillaFactory),
//!     Workload::new(data)
//!         .repeat_query(q12, 4)
//!         .arrival(ArrivalProcess::Poisson {
//!             mean: SimDuration::from_secs(300),
//!             seed: 7,
//!         }),
//! ])
//! .run();
//! for rec in result.records() {
//!     println!("client {} [{}] {}: {:.0}s", rec.client, rec.engine, rec.query,
//!              rec.duration().as_secs_f64());
//! }
//! ```

pub mod client;
pub mod collector;
pub mod driver;
pub mod engines;
pub mod pump;
pub mod scenario;
pub mod workload;

pub use collector::{QueryRecord, RunResult};
pub use engines::{EngineFactory, EngineKind, SkipperFactory, VanillaFactory};
pub use scenario::Scenario;
pub use workload::{ArrivalProcess, Workload};

#[cfg(test)]
mod tests;
