//! The layered multi-tenant runtime.
//!
//! This module is the execution stack of the reproduction, split into
//! three explicit layers (replacing the seed's monolithic `driver.rs`):
//!
//! 1. **Workload layer** ([`workload`]) — [`Workload`] describes one
//!    tenant: dataset, query mix, engine choice, and arrival process
//!    (closed-loop, staggered starts, and the open-arrival vocabulary:
//!    fixed-seed Poisson, bursty on/off, diurnal, trace replay), plus
//!    optional per-tenant SLO target and ideal-time anchors for the
//!    latency summary.
//! 2. **Engine layer** ([`engines`]) — the per-tenant [`EngineFactory`]
//!    replacing the old global `EngineKind` branch: one scenario can
//!    mix Skipper and Vanilla tenants with per-tenant cache/eviction
//!    configuration.
//! 3. **Driver layer** ([`client`], [`pump`], [`fleet`], [`driver`],
//!    [`collector`]) — the client state machine, the device pump, the
//!    sharded device fleet, the discrete-event loop, and the
//!    record/metrics collector behind every figure in §5 of the paper.
//!
//! [`Scenario`] ([`scenario`]) remains the one-stop facade over all
//! three layers and is fully backward compatible with the seed API.
//!
//! # Fleet layering
//!
//! The execution stack, top to bottom — one box per layer, one device
//! pump per CSD shard:
//!
//! ```text
//!   ┌────────────────────────────────────────────────────────────┐
//!   │ workload   Workload × N tenants                            │
//!   │            dataset + query mix + arrival process           │
//!   ├────────────────────────────────────────────────────────────┤
//!   │ engine     EngineFactory per tenant                        │
//!   │            Skipper (upfront batch) / Vanilla (pull)        │
//!   ├────────────────────────────────────────────────────────────┤
//!   │ driver     Runtime: event loop + ClientState machines      │
//!   │            deliveries ⇢ processing ⇢ follow-up GETs        │
//!   │   ┌──────────────────────────────────────────────────┐     │
//!   │   │ event core  CalendarQueue (timer wheel, O(1)     │     │
//!   │   │ amortized; (time, seq) pop order ≡ the BinaryHeap│     │
//!   │   │ reference) + one reusable Delivery scratch — the │     │
//!   │   │ steady-state loop allocates nothing per event    │     │
//!   │   └──────────────────────────────────────────────────┘     │
//!   ├────────────────────────────────────────────────────────────┤
//!   │ fault      FaultPlan → timestamped episodes (assembly)     │
//!   │            ShardDown / Degraded / DropWakeup as calendar   │
//!   │            events; crashes evacuate + fail over, k-replica │
//!   │            placement serves from the first live replica    │
//!   ├────────────────────────────────────────────────────────────┤
//!   │ fleet      DeviceFleet: PlacementPolicy → replica lists    │
//!   │   ┌──────────────────┬──────────────────┬────────┐         │
//!   │   │ DevicePump 0     │ DevicePump 1     │   …    │ 1/shard │
//!   │   │  earliest-of-K   │  earliest-of-K   │        │         │
//!   │   │  wake-up, rearm  │  wake-up, rearm  │        │         │
//!   │   ├──────────────────┼──────────────────┼────────┤         │
//!   │   │ ShardCache 0     │ ShardCache 1     │   …    │ opt-in  │
//!   │   │  DRAM tier ─┐    │  (hits bypass    │        │         │
//!   │   │  SSD tier  ─┴─►  │   queue, sched,  │        │         │
//!   │   │  hit fast path   │   and switches)  │        │         │
//!   │   ├──────────────────┼──────────────────┼────────┤         │
//!   │   │ CsdDevice 0      │ CsdDevice 1      │   …    │         │
//!   │   │ ┌────┬────┬────┐ │ ┌────┐           │        │         │
//!   │   │ │str0│str1│str…│ │ │str0│ streams(n)│        │         │
//!   │   │ └────┴────┴────┘ │ └────┘ per shard │        │         │
//!   │   │ + armed switch   │                  │        │         │
//!   │   └──────────────────┴──────────────────┴────────┘         │
//!   │   own scheduler · bandwidth · switch latency · streams     │
//!   │   TraceMode / LedgerMode: Full spans+ledger vs bounded     │
//!   │   Counters for multi-million-request runs                  │
//!   └────────────────────────────────────────────────────────────┘
//! ```
//!
//! GET batches fan out through the shard map fixed at layout time;
//! each shard's wake-ups interleave deterministically in the one event
//! queue (insertion order breaks ties, shards are poked in shard
//! order). A 1-shard fleet replays the seed's single-device schedule
//! microsecond-exactly; `Scenario::shards(n)` scales the device layer
//! out with per-shard config overrides and per-shard result
//! breakdowns ([`collector::ShardResult`]).
//!
//! # Deterministic fault plane
//!
//! [`FaultPlan`] ([`fault`]) injects seeded device failures the same
//! way [`ArrivalProcess`] injects traffic: everything is expanded at
//! assembly time from labeled SplitMix64 streams into timestamped
//! episodes, and the driver schedules each one as a first-class
//! calendar event — nothing is drawn during the run, so repeated runs
//! and both execution modes see identical fault timings (fault
//! instants are safe-horizon barriers in windowed-parallel mode).
//! Crashes ([`FaultEpisode::ShardDown`]) abort the shard's in-flight
//! transfers, evacuate its queue, and cost it its spun-up group;
//! brown-outs ([`FaultEpisode::Degraded`]) scale newly dispatched
//! transfer bandwidth; dropped wake-ups ([`FaultEpisode::DropWakeup`])
//! park one completed batch until a watchdog redelivers it.
//! `PlacementPolicy::Replicated { k, .. }` stores each object on `k`
//! consecutive shards; requests route to the first live replica, and
//! with none live they park at the fleet until a recovery re-submits
//! them in arrival order.
//!
//! **Failover invariants** (pinned by the chaos grid in
//! `tests/sharding.rs` and the fault cells of the differential
//! battery):
//!
//! * **Delivery-multiset conservation** — every `(client, query,
//!   object)` request is served exactly once, by whichever replica
//!   completes it: aborted transfers log nothing and are re-served;
//!   stale deliveries for completed queries are dropped at routing.
//!   A faulted run's multiset equals the fault-free run's.
//! * **Determinism** — a seeded `FaultPlan` yields byte-equal
//!   [`RunResult`]s across repeated runs and across
//!   Sequential/Parallel execution at any worker count.
//! * **Empty plan ⇒ exact goldens** — a default `FaultPlan` leaves
//!   every run microsecond-identical to a build without the fault
//!   plane.
//!
//! What faults *do* change: makespans (recovery events keep the run
//! alive), per-shard counters, and latency tails — failover is a
//! requeue at the surviving replica's tail, not a splice, and
//! [`RunResult::availability`] / [`ShardResult`]`::fault` report
//! downtime, evacuations, aborts, failovers, and parking.
//!
//! # Overload-and-outage protection plane
//!
//! Cold storage serves *seconds*-scale accesses, so saturation and
//! outages are tail-latency catastrophes by default: queues grow
//! without bound under a sustained burst, and a k = 1 outage parks
//! requests indefinitely. [`protect`] threads four deterministic
//! defenses through scenario → client → driver → fleet:
//!
//! * **Deadlines** (`Scenario::deadline` / `Workload::deadline`) — a
//!   per-tenant response bound anchored at release (queue wait
//!   counts). A query that cannot meet it is *cancelled*: its queued
//!   requests are dequeued on every shard
//!   (`CsdDevice::cancel_query`), its client drops the engine and
//!   bumps the query seq so in-flight deliveries and late protection
//!   events go stale, and queries whose deadline lapses while still
//!   queued are abandoned unstarted. Cancel-while-busy is legal: the
//!   pending `ClientReady` fires, sees the `cancelled` flag, and
//!   discards its reaction instead of applying it.
//! * **Seeded retry with capped exponential backoff** —
//!   [`RetryPolicy::Backoff`] re-plans a deadline-cancelled query (and
//!   re-submits outage-unroutable requests) at instants drawn from the
//!   per-client `"retry/{c}"` SplitMix stream (seeded by
//!   `Scenario::seed`), never from wall-clock state. For retry
//!   tenants the fleet diverts would-park requests to the driver's
//!   retry schedule; [`RetryPolicy::None`] tenants keep the
//!   historical parking path byte-exactly.
//! * **Hedged requests** (`hedge_after`) — under replicated placement,
//!   reads still undelivered after the hedge delay are re-issued to
//!   the next live replica; the first completion wins. Conservation is
//!   redefined from at-most-once *delivery* to at-most-once
//!   **consumption**: the winner is consumed, the loser's queued copy
//!   is cancelled (`cancel_object`), a loser that was already in
//!   flight delivers and is discarded at routing, and
//!   [`RunResult::consumed`] logs the consumed multiset so the bench
//!   can assert it equals the clean run's delivery multiset.
//! * **Admission control + breaker** ([`AdmissionPolicy`]) — before a
//!   query starts, the fleet's most-loaded *live* shard is checked
//!   against priority-scaled backlog ceilings; over the limit the
//!   arrival is shed (dropped, counted per tenant) or deferred by
//!   backpressure into the release schedule. The optional per-shard
//!   [`BreakerPolicy`] opens on brown-outs below a bandwidth factor or
//!   on repeated deadline timeouts, and `route` then *prefers* a
//!   closed-breaker replica while still falling back to any live one —
//!   the breaker degrades preference, never availability.
//!
//! **Protection invariants** (pinned by the protection battery in the
//! runtime tests and the overload bench gates):
//!
//! * **Disabled ⇒ byte-exact** — with every knob off the driver takes
//!   only historical code paths: no protection events are scheduled,
//!   the fleet routes and parks exactly as before, and the goldens
//!   survive unregenerated ([`ProtectionSummary::is_quiet`] holds; the
//!   per-tenant offered/completed ledger populates on every run but is
//!   behavior-neutral).
//! * **Determinism & mode invariance** — backoff jitter is the only
//!   stochastic input and it pre-derives from labeled streams, so every
//!   protected run is byte-equal across repeats and across
//!   Sequential/Parallel at any worker count. Deadline, hedge, and
//!   retry instants are noted safe-horizon interactions, and while any
//!   hedge-enabled client has a query in flight the horizon is also
//!   bounded by the fleet's earliest armed completion — a delivery-time
//!   loser-cancel must never land inside a pre-drained window.
//! * **Makespan honesty** — protection events for queries that already
//!   completed pop as stale no-ops and do not stretch the makespan (a
//!   met deadline leaves a far-future cancel event behind).
//! * **Consumption conservation** — hedged runs consume every
//!   requested `(client, query, object)` exactly once; duplicates are
//!   cancelled or discarded, never double-processed.
//!
//! [`RunResult::protection`] rolls up misses, sheds, deferrals,
//! retries, hedge outcomes, breaker trips, and the per-tenant
//! offered/completed/missed/shed ledger; `skipper-bench --bin
//! overload` sweeps a saturating burst across protection configs into
//! `BENCH_overload.json` (`EXPERIMENTS.md`).
//!
//! # Shard cache tiers
//!
//! `Scenario::shard_cache(CacheConfig)` ([`skipper_csd::cache`]) bolts
//! a per-shard DRAM(/SSD) hot tier onto each pump. The cache is a
//! *latency* plane, never a correctness plane: it changes *when* bytes
//! arrive, never *which* — every GET resolves through one of four
//! transitions:
//!
//! ```text
//!             ┌─────────── lookup at submit ───────────┐
//!             ▼                                        ▼
//!           HIT                                      MISS
//!   complete at tier bandwidth               enqueue on the CsdDevice
//!   via the pump-local pending               as before (queue, sched,
//!   heap; the request never                  group switch, transfer)
//!   touches queue, scheduler,                         │
//!   or group switch                                   ▼
//!             │                                     FILL
//!             │                          on delivery consumption the
//!             │                          object enters DRAM, evicting
//!             │                          by policy (LRU / CLOCK /
//!             │                          group-aware)
//!             ▼                                       │
//!   SSD hits also PROMOTE                             ▼
//!   the object to DRAM                              EVICT
//!                                        DRAM victims demote to SSD
//!                                        (a write-back that reserves
//!                                        the SSD pipe) or vanish when
//!                                        no SSD tier is configured
//! ```
//!
//! Each tier is a serialized pipe with its own bandwidth: concurrent
//! hits queue behind a `free_at` cursor, so a hot burst is fast but not
//! free. Residency is metadata-only — payloads stay `Arc`-shared with
//! the store, so a "cached byte" costs an index entry, not a copy.
//! Invariants, pinned by `tests/cache_tiers.rs` and the tiering smoke
//! gates:
//!
//! * **Conservation** — hits + misses partition the GET multiset
//!   exactly; `cache.misses == device.objects_served`.
//! * **Zero ⇒ byte-exact** — `cache_size(0)` / `CacheConfig::disabled`
//!   reproduces the uncached [`RunResult`] bit for bit (the goldens
//!   survive untouched).
//! * **Mode invariance** — hit completions are always live pump events,
//!   never entries in the windowed-parallel replay log, so cached runs
//!   stay bit-identical across Sequential/Parallel and repeats.
//! * **Crash coherence** — a `ShardDown` drains pending hits into the
//!   displaced set and invalidates the whole shard cache (DRAM does not
//!   survive a power cycle); failover re-serves from replicas.
//!
//! The cost model prices the tiers ([`skipper_cost`]) and the power
//! model charges their draw, so `skipper-bench --bin tiering` can sweep
//! capacity × policy into a cost-vs-makespan Pareto frontier
//! (`EXPERIMENTS.md`).
//!
//! # Million-request event core
//!
//! The future event list is the [`skipper_sim::CalendarQueue`]: a
//! bucketed timer wheel with O(1) amortized schedule/pop whose pop
//! order is identical to the reference `EventQueue` binary heap
//! (pinned by the differential sweep in `skipper-sim`), so the goldens
//! survive microsecond-exactly. Wake-up delivery batches drain through
//! `DeviceFleet::on_wakeup_into` into one scratch buffer owned by the
//! `Runtime`, devices pool their request nodes in a seq-addressed slab
//! and reuse transfer slots in place, and per-shard dirty flags keep
//! untouched pumps O(1) per event — after warm-up the hot loop runs
//! allocation-free (`skipper-bench --bin perf` counts ~0.01
//! allocations/event with its `#[global_allocator]` probe, flat in
//! shard count; the CI perf-smoke gates on a ceiling at 8 shards).
//! Scheduler decisions stay off the allocator too: policies fold over
//! the queue's borrowed [`skipper_csd::sched::GroupLens`] aggregates
//! instead of materializing per-group vectors, and the lazy-deletion
//! heaps compact in place.
//!
//! # Windowed-parallel execution
//!
//! `Scenario::execution(ExecutionMode::Parallel { workers })` runs the
//! *same* event loop with a conservative look-ahead on top — the
//! classic safe-horizon design of conservative parallel discrete-event
//! simulation, specialized to the one dependency this model has
//! (clients react to deliveries):
//!
//! ```text
//!   barrier ──► safe horizon H = min( next noted interaction,
//!               busy clients' un-noted ready instants,
//!               min armed wake-up if any client sits idle )
//!      │
//!      ▼
//!   window [now, H): every shard's completion chain is *pre-drained*
//!   in parallel (scoped worker pool, DevicePump::drain_window) into a
//!   per-shard WindowBuffer replay log — the identical complete/kick
//!   calls the sequential loop would make, at the identical instants
//!      │
//!      ▼
//!   the calendar loop keeps popping events; in-window Device events
//!   are answered *from the replay log* (front entry's instant matches
//!   ⇒ consume; otherwise it is a stale superseded wake-up, a no-op —
//!   exactly the sequential armed-flag rule); at t ≥ H the next
//!   barrier recomputes the horizon
//! ```
//!
//! The horizon guarantees no client-state transition — no release, no
//! ready client with follow-up requests, no idle client receiving its
//! first delivery — fires strictly inside a window, so no `submit` can
//! land on a pre-drained shard (the pump asserts this). Shards are
//! independent below the horizon; draining them concurrently reorders
//! *wall-clock* work only, never virtual-time work, which is why a
//! parallel run is **bit-identical** to the sequential one — enforced
//! by the differential battery in `runtime/tests.rs` (every policy ×
//! placement × streams × worker count produces byte-equal
//! [`RunResult`]s) and by the windowed bench drive's fingerprint
//! assertions.
//!
//! *When is parallel profitable?* Windows are only as wide as the gap
//! until the next client interaction. Closed-loop tenants with zero
//! think time interact at every delivery — the horizon collapses to
//! the next event and the windowed loop degenerates to the sequential
//! one plus barrier overhead. Parallelism pays when (a) clients think
//! between rounds (interactions are sparse in virtual time), (b) the
//! fleet has ≥4 shards with real per-shard work to drain, and (c) the
//! host has cores to spare — otherwise keep the default
//! `ExecutionMode::Sequential`, which this crate treats as the
//! reference semantics forever.
//!
//! Observability streams instead of accumulating:
//! `Scenario::trace_mode(TraceMode::Counters)` and
//! `Scenario::ledger_mode(LedgerMode::Counters)` bound memory for
//! multi-million-request runs (running totals only — no span log, no
//! delivery ledger), and whole-run stall attribution flattens every
//! shard's span lists into one [`skipper_sim::MergedTimeline`] via a
//! k-way merge — O((spans + intervals)·log k) total instead of a
//! per-interval union scan, pinned equal to `attribute_union` by the
//! `tests/observability.rs` property sweep.
//!
//! # Internet-scale traffic & tail latency
//!
//! [`ArrivalProcess`] is the traffic vocabulary of the workload layer.
//! Beyond the closed loop and the fixed-seed Poisson stream, it speaks
//! the shapes internet-facing storage actually sees: `OnOff` (a
//! two-phase Markov-modulated Poisson process — exponential ON bursts
//! of exponential-gap releases separated by exponential silences),
//! `Diurnal` (a raised-cosine rate cycle sampled by Lewis–Shedler
//! thinning, peak-to-trough ratio set by `trough`), and `TraceReplay`
//! (externally captured instants, sorted and offset). Every shape is
//! expanded to concrete release instants at assembly time from labeled
//! SplitMix64 streams, so schedules are bit-reproducible and identical
//! across execution modes — the parallel differential battery covers
//! each shape unchanged.
//!
//! An open-arrival query's clock starts at its *release*, not when a
//! client slot frees up: [`QueryRecord::response_time`] = release →
//! completion (queue-wait included; [`QueryRecord::duration`] remains
//! start → completion) and [`QueryRecord::queue_wait`] is the
//! difference. Per-query response times stream — in completion order,
//! identical across execution modes — into Greenwald–Khanna quantile
//! sketches ([`skipper_sim::stats::QuantileSketch`], default rank
//! error ε = 5·10⁻⁴) held per tenant and fleet-wide, surfacing in
//! [`RunResult::latency`] as a [`LatencySummary`]: p50/p95/p99/p999
//! response time and stretch ([`Quantiles`]), exact mean/max, and SLO
//! attainment ([`SloReport`]) against `Workload::slo_target` /
//! `Scenario::slo_target` anchors. The summary costs O(sketch) memory
//! regardless of query count, so
//! `Scenario::record_mode(RecordMode::Counters)` can drop the
//! per-query [`QueryRecord`]s entirely — million-query runs keep full
//! tail visibility with bounded memory, and the collector's
//! counters-vs-full differential tests pin the summary byte-equal
//! across both record modes.
//!
//! # Multi-stream servicing (§5.2.1)
//!
//! Each device is a *service pipeline*: `Scenario::streams(n)` opens
//! `n` transfer slots per shard (per-shard override:
//! `Scenario::shard_streams`), so intra-group requests overlap in time
//! while a group is loaded, and a group switch decided mid-drain is
//! *armed* — it begins the instant the last old-group transfer
//! completes. The pump's wake-up protocol is therefore
//! "earliest of K completions": dispatching new work can move a
//! shard's earliest completion *earlier*, so every poke re-kicks the
//! device and re-arms when the instant changed; superseded wake-up
//! events fire as recognized stale no-ops, and a live wake-up can
//! retire several transfers at once (the event loop routes the whole
//! batch). `streams(1)` — the default — collapses to the paper's
//! serialized middleware exactly. Per-stream activity spans land in
//! [`collector::ShardResult`] and roll up into the
//! [`collector::StreamRollup`] overlap/utilization report
//! ([`collector::RunResult::stream_rollup`]).
//!
//! # Scheduling hot-path complexity
//!
//! Each device's pending queue is the incrementally-indexed
//! `skipper_csd::sched::RequestQueue`: submits, serves, and residency
//! snapshots are O(log n) in queue depth, and scheduler decisions read
//! maintained per-group aggregates instead of rescanning the queue —
//! so a run costs O(events · log depth), not O(events · depth). The
//! contract is pinned three ways: the differential suite
//! (`crates/csd/tests/equivalence.rs`) diffs the indexed queue against
//! the preserved full-rescan `NaiveQueue` reference across every
//! policy × intra order × shard count, the goldens stay
//! microsecond-exact, and `skipper-bench --bin perf` records the
//! wall-clock ratio (`EXPERIMENTS.md`). End-of-run result assembly
//! moves spans, ledgers, and counters out of the devices (`Runtime::run`
//! consumes the fleet) instead of cloning them.
//!
//! # Mixed-engine fleets
//!
//! ```no_run
//! use skipper_core::runtime::{ArrivalProcess, Scenario, SkipperFactory, VanillaFactory, Workload};
//! use skipper_datagen::{tpch, GenConfig};
//! use skipper_sim::SimDuration;
//!
//! let data = tpch::dataset(&GenConfig::new(42, 8).with_phys_divisor(100_000));
//! let q12 = tpch::q12(&data);
//! let result = Scenario::from_workloads(vec![
//!     Workload::new(data.clone())
//!         .repeat_query(q12.clone(), 2)
//!         .engine(SkipperFactory::default().cache_bytes(10 << 30)),
//!     Workload::new(data.clone())
//!         .repeat_query(q12.clone(), 2)
//!         .engine(VanillaFactory),
//!     Workload::new(data)
//!         .repeat_query(q12, 4)
//!         .arrival(ArrivalProcess::Poisson {
//!             mean: SimDuration::from_secs(300),
//!             seed: 7,
//!         }),
//! ])
//! .run();
//! for rec in result.records() {
//!     println!("client {} [{}] {}: {:.0}s", rec.client, rec.engine, rec.query,
//!              rec.duration().as_secs_f64());
//! }
//! ```

pub mod client;
pub mod collector;
pub mod driver;
pub mod engines;
pub mod fault;
pub mod fleet;
pub mod protect;
pub mod pump;
pub mod scenario;
pub mod workload;

pub use collector::{
    AvailabilitySummary, LatencyScope, LatencySummary, Quantiles, QueryRecord, RecordMode,
    RunResult, ShardFaultStats, ShardResult, SloReport, StreamRollup,
};
pub use driver::ExecutionMode;
pub use engines::{EngineFactory, EngineKind, SkipperFactory, VanillaFactory};
pub use fault::{FaultEpisode, FaultPlan, DEFAULT_REDELIVERY};
pub use fleet::DeviceFleet;
pub use protect::{
    AdmissionPolicy, AdmissionResponse, BreakerPolicy, ProtectionSummary, RetryPolicy,
    TenantProtection,
};
pub use scenario::Scenario;
pub use skipper_csd::cache::{CacheConfig, CachePolicy, CacheStats, TierConfig};
pub use skipper_csd::{BasePlacement, LedgerMode, PlacementPolicy, StreamModel};
pub use skipper_sim::TraceMode;
pub use workload::{ArrivalProcess, Workload};

#[cfg(test)]
mod tests;
