//! The client state machine: one tenant's database VM.
//!
//! Each client walks its planned query sequence (released by the
//! workload's arrival process), runs one engine at a time, buffers
//! deliveries that arrive while it is processing, and hands finished
//! measurements to the collector. All timing decisions (when to fire
//! `ClientReady`, when to pump the device) belong to the runtime driver;
//! this module only owns per-tenant state and its legal transitions.

use std::collections::VecDeque;
use std::sync::Arc;

use skipper_csd::ObjectId;
use skipper_datagen::Dataset;
use skipper_relational::query::QuerySpec;
use skipper_relational::segment::Segment;
use skipper_sim::{SimDuration, SimTime};

use crate::config::CostModel;
use crate::engine::QueryEngine;

use super::collector::{PendingRecord, QueryRecord, RecordDraft};
use super::engines::EngineFactory;

/// A query waiting in a client's plan: its spec plus the instant the
/// arrival process releases it (`None` = closed-loop, released by the
/// predecessor's completion).
pub struct PlannedQuery {
    /// The query to run.
    pub spec: QuerySpec,
    /// Absolute release instant for open arrivals.
    pub release: Option<SimTime>,
}

/// One tenant's runtime state.
pub struct ClientState {
    /// The tenant's dataset.
    pub dataset: Arc<Dataset>,
    /// Engine builder for this tenant.
    pub factory: Arc<dyn EngineFactory>,
    /// Queries not yet started, in plan order.
    pub plan: VecDeque<PlannedQuery>,
    /// The engine executing the current query, if any.
    pub engine: Option<Box<dyn QueryEngine>>,
    /// Per-client query sequence number.
    pub qseq: u32,
    /// Deliveries waiting for the CPU.
    pub inbox: VecDeque<(ObjectId, Arc<Segment>)>,
    /// True while charged processing is in flight.
    pub busy: bool,
    /// Requests + finished flag from the in-flight `on_object`, applied
    /// when processing completes.
    pub pending_after: Option<(Vec<ObjectId>, bool)>,
    /// Instant of the in-flight `ClientReady` (windowed execution:
    /// where a late-arriving delivery must promote it to an
    /// interaction).
    pub ready_at: SimTime,
    /// Whether the in-flight `ClientReady` is registered as a
    /// cross-shard interaction in the safe-horizon tracker.
    pub ready_noted: bool,
    /// Measurement draft for the current query.
    pub draft: RecordDraft,
    /// Finished records awaiting stall attribution.
    pub records: Vec<PendingRecord>,
    /// Response-time SLO target (feeds the run's latency summary).
    pub slo: Option<SimDuration>,
    /// Ideal single-tenant time (enables streaming stretch quantiles).
    pub ideal: Option<SimDuration>,
    /// Protection plane: the current query was cancelled while charged
    /// processing was in flight — the pending `ClientReady` must
    /// discard its reaction instead of applying it.
    pub cancelled: bool,
    /// Protection plane: keep a clone of each started query's spec so a
    /// deadline-cancelled query can be re-planned for retry. Set at
    /// assembly only for tenants with both a deadline and a retry
    /// policy; the default (false) skips the per-start clone.
    pub keep_spec: bool,
    /// The running query's spec, saved when [`ClientState::keep_spec`].
    pub current_spec: Option<QuerySpec>,
}

impl ClientState {
    /// Fresh state over `plan`.
    pub fn new(
        dataset: Arc<Dataset>,
        factory: Arc<dyn EngineFactory>,
        plan: Vec<PlannedQuery>,
    ) -> Self {
        ClientState {
            dataset,
            factory,
            plan: plan.into(),
            engine: None,
            qseq: 0,
            inbox: VecDeque::new(),
            busy: false,
            pending_after: None,
            ready_at: SimTime::ZERO,
            ready_noted: false,
            draft: RecordDraft::default(),
            records: Vec::new(),
            slo: None,
            ideal: None,
            cancelled: false,
            keep_spec: false,
            current_spec: None,
        }
    }

    /// True when the next planned query may start at `now`: the client
    /// is idle and the query's release instant (if any) has passed.
    pub fn can_start(&self, now: SimTime) -> bool {
        self.engine.is_none()
            && self
                .plan
                .front()
                .is_some_and(|p| p.release.is_none_or(|at| at <= now))
    }

    /// Starts the next planned query: builds the engine, opens the
    /// measurement draft, and returns the initial GET batch.
    ///
    /// # Panics
    /// Panics if a query is already running — callers gate on
    /// [`ClientState::can_start`].
    pub fn start_next(&mut self, tenant: u16, cost: CostModel, now: SimTime) -> Vec<ObjectId> {
        assert!(self.engine.is_none(), "query started while one is running");
        let planned = self.plan.pop_front().expect("start_next on empty plan");
        let query_name = planned.spec.name.clone();
        let release = planned.release;
        if self.keep_spec {
            self.current_spec = Some(planned.spec.clone());
        }
        let mut engine = self
            .factory
            .build(tenant, &self.dataset, planned.spec, cost);
        let requests = engine.start();
        self.engine = Some(engine);
        self.draft = RecordDraft::begin(query_name, release, now);
        requests
    }

    /// Abandons the current query without a record (a protection-plane
    /// cancel): drops the engine, discards buffered deliveries, resets
    /// the measurement draft, and advances the query seq so in-flight
    /// deliveries and stale protection events are recognized and
    /// dropped at routing. If charged processing is in flight the
    /// [`ClientState::cancelled`] flag stays up and the pending
    /// `ClientReady` discards its reaction instead of applying it; the
    /// driver must not start the next query until that fires.
    pub fn cancel(&mut self) {
        assert!(self.engine.is_some(), "cancel without a running query");
        self.engine = None;
        self.inbox.clear();
        self.draft = RecordDraft::default();
        self.qseq += 1;
        if self.busy {
            self.cancelled = true;
        }
    }

    /// Whether `query_seq` refers to the query currently in flight.
    pub fn is_current(&self, query_seq: u32) -> bool {
        self.engine
            .as_ref()
            .map(|e| !e.is_finished() && query_seq == self.qseq)
            .unwrap_or(false)
    }

    /// Finishes the current query at `now`, recording its measurements.
    pub fn finish(&mut self, client_idx: usize, now: SimTime) {
        let engine = self.engine.take().expect("finishing without engine");
        let draft = std::mem::take(&mut self.draft);
        self.records.push(PendingRecord {
            record: QueryRecord {
                query: draft.query_name.clone(),
                client: client_idx,
                seq: self.qseq,
                engine: self.factory.label(),
                release: draft.release,
                start: draft.start,
                end: now,
                processing: draft.processing,
                upfront_gets: draft.upfront_gets,
                stalls: Default::default(),
                stats: engine.stats(),
                result: engine.result(),
            },
            blocked_intervals: draft.blocked,
        });
        self.inbox.clear();
        self.qseq += 1;
    }

    /// Marks the client blocked-or-working after processing completed:
    /// blocked if the inbox is dry, otherwise ready for the next
    /// delivery.
    pub fn note_waiting(&mut self, now: SimTime) {
        if self.inbox.is_empty() {
            self.draft.blocked_from = Some(now);
        }
    }

    /// Accumulates charged processing time.
    pub fn charge(&mut self, d: SimDuration) {
        self.draft.processing += d;
    }
}
