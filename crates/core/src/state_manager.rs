//! The MJoin state manager — Algorithm 1 of the paper.
//!
//! The state manager is the half of the split MJoin operator that owns
//! all state: it enumerates subplans from the catalog, issues the GET
//! requests for every needed object upfront (enabling the CSD to batch
//! per group), handles arrivals in whatever order the device chooses,
//! admits them to the [`BufferCache`] (evicting per the configured
//! policy), triggers the stateless n-ary join operator on every subplan
//! that became runnable, and runs *reissue cycles*: once all outstanding
//! requests are serviced, it re-requests exactly the objects still
//! needed by pending subplans.
//!
//! The §5.2.4 subplan-pruning optimization is implemented at admission:
//! an object with zero filter-surviving tuples is pruned instead of
//! cached, eliminating every subplan containing it.

use std::sync::Arc;

use skipper_csd::ObjectId;
use skipper_relational::join_graph::ProbePlan;
use skipper_relational::ops::index::SegmentIndex;
use skipper_relational::ops::nary;
use skipper_relational::query::{Aggregator, QuerySpec};
use skipper_relational::segment::Segment;
use skipper_relational::tuple::Row;
use skipper_relational::value::Value;
use skipper_sim::SimDuration;

use skipper_datagen::Dataset;

use crate::cache::{BufferCache, CacheSlot, EvictionPolicy};
use crate::config::CostModel;
use crate::engine::{EngineStats, QueryEngine, Reaction};
use crate::proxy::ClientProxy;
use crate::subplan::{RelSeg, SubplanTracker};

/// Skipper's cache-state-aware MJoin execution of one query.
pub struct SkipperEngine {
    spec: QuerySpec,
    /// One probe plan per relation, rooted at that relation (arrival-
    /// rooted symmetric-hash execution).
    rooted_plans: Vec<ProbePlan>,
    proxy: ClientProxy,
    cache: BufferCache,
    tracker: SubplanTracker,
    agg: Aggregator,
    cost: CostModel,
    /// Logical-to-physical row scale per relation.
    scales: Vec<f64>,
    /// Logical bytes per segment, per relation.
    seg_bytes: Vec<u64>,
    /// Segment payload filters/join columns.
    join_cols: Vec<Vec<usize>>,
    outstanding: Vec<ObjectId>,
    prune_empty: bool,
    stats: EngineStats,
    finished: bool,
    /// Subplans executed in the current cycle (livelock detector).
    cycle_executed: u64,
    /// Cycle-boundary state fingerprints seen since the last productive
    /// cycle. Zero-progress cycles are legal (the cache can alternate
    /// between complementary working sets across cycles); a *repeated*
    /// fingerprint with no progress in between means the deterministic
    /// reissue loop closed a cycle in state space and will never finish.
    stalled_states: std::collections::HashSet<u64>,
    /// The subplan being completed by the current degraded cycle, if any;
    /// its cached members are pinned against eviction so the combination
    /// cannot be cannibalized before it runs.
    degraded_target: Option<Vec<u32>>,
}

impl SkipperEngine {
    /// Builds the engine for `tenant` running `spec` over `dataset`.
    ///
    /// `cache_bytes` is the MJoin buffer cache capacity (the paper's
    /// per-client "cache size"); it must hold at least one segment per
    /// query relation.
    pub fn new(
        tenant: u16,
        dataset: &Dataset,
        spec: QuerySpec,
        cache_bytes: u64,
        policy: EvictionPolicy,
        cost: CostModel,
        prune_empty: bool,
    ) -> Self {
        spec.validate();
        let rooted_plans: Vec<ProbePlan> = (0..spec.num_relations())
            .map(|r| ProbePlan::plan_rooted(&spec, r).expect("workload query must be plannable"))
            .collect();
        let rel_tables = dataset.query_table_indexes(&spec);
        let mut seg_counts = Vec::new();
        let mut scales = Vec::new();
        let mut seg_bytes = Vec::new();
        for &t in &rel_tables {
            let def = dataset.catalog.table(t);
            seg_counts.push(def.segment_count);
            let phys = dataset.segments[t]
                .first()
                .map(|s| s.len().max(1))
                .unwrap_or(1) as f64;
            scales.push(def.logical_rows_per_segment as f64 / phys);
            seg_bytes.push(def.logical_bytes_per_segment);
        }
        let max_seg = seg_bytes.iter().copied().max().unwrap_or(0);
        assert!(
            cache_bytes >= max_seg * spec.tables.len() as u64,
            "MJoin cache ({cache_bytes} B) must hold at least one segment per \
             relation ({} × {max_seg} B) for subplans to make progress",
            spec.tables.len()
        );
        let join_cols = (0..spec.num_relations())
            .map(|r| spec.join_cols(r))
            .collect();
        let agg = Aggregator::for_query(&spec);
        let tracker = SubplanTracker::new(&seg_counts);
        SkipperEngine {
            proxy: ClientProxy::new(tenant, rel_tables.iter().map(|&t| t as u16).collect()),
            cache: BufferCache::new(cache_bytes, policy),
            tracker,
            agg,
            cost,
            scales,
            seg_bytes,
            join_cols,
            outstanding: Vec::new(),
            prune_empty,
            stats: EngineStats::default(),
            finished: false,
            cycle_executed: 0,
            stalled_states: std::collections::HashSet::new(),
            degraded_target: None,
            rooted_plans,
            spec,
        }
    }

    /// Pending-subplan count (exposed for tests/ablations).
    pub fn pending_subplans(&self) -> u64 {
        self.tracker.pending_total()
    }

    fn issue(&mut self, objects: Vec<RelSeg>) -> Vec<ObjectId> {
        let ids = self.proxy.issue(&objects);
        self.outstanding.extend(ids.iter().copied());
        self.stats.gets_issued = self.proxy.gets_issued();
        self.stats.reissues = self.proxy.reissued();
        ids
    }

    /// Executes every subplan that became runnable with `arrived`, in one
    /// arrival-rooted pass: the new segment's tuples probe the cached
    /// unions of the other relations (symmetric-hash MJoin semantics, the
    /// paper's best-case `O(S×R)` complexity at full cache). Combinations
    /// executed in earlier reissue cycles are filtered at emit time so
    /// refetched objects never double-count.
    fn execute_runnable(&mut self, arrived: RelSeg, processing: &mut SimDuration) {
        let n = self.tracker.num_relations();
        let cached = self.cache.cached_by_rel(n);
        let runnable = self.tracker.runnable_with(&cached, arrived);
        if runnable.is_empty() {
            return;
        }
        let candidates: Vec<Vec<(u32, &SegmentIndex)>> = (0..n)
            .map(|r| {
                if r == arrived.0 {
                    vec![(arrived.1, self.cache.index(arrived))]
                } else {
                    cached[r]
                        .iter()
                        .map(|&seg| (seg, self.cache.index((r, seg))))
                        .collect()
                }
            })
            .collect();
        let tracker = &self.tracker;
        let agg = &mut self.agg;
        let work = nary::execute_rooted(
            &self.rooted_plans[arrived.0],
            &candidates,
            &|combo| tracker.is_executed(combo),
            &mut |rows| agg.update(rows),
        );
        let arrived_scale = self.scales[arrived.0];
        self.stats.probe_ops += work.probes as u64;
        self.stats.emitted_rows += work.emitted as u64;
        *processing +=
            self.cost
                .scaled(work.probes as u64, arrived_scale, self.cost.probe_ns_per_op)
                + self.cost.scaled(
                    work.emitted as u64,
                    arrived_scale,
                    self.cost.emit_ns_per_row,
                );
        for combo in runnable {
            let first = self.tracker.mark_executed(&combo);
            debug_assert!(first, "subplan executed twice: {combo:?}");
            self.stats.subplans_executed += 1;
            self.cycle_executed += 1;
            *processing += self.cost.subplan_overhead;
        }
    }
}

impl QueryEngine for SkipperEngine {
    fn name(&self) -> &'static str {
        "skipper"
    }

    fn start(&mut self) -> Vec<ObjectId> {
        // Algorithm 1: read the object universe from the catalog and
        // request everything upfront.
        let all: Vec<RelSeg> = (0..self.tracker.num_relations())
            .flat_map(|r| (0..self.tracker.seg_count(r)).map(move |s| (r, s)))
            .collect();
        self.issue(all)
    }

    fn on_object(&mut self, object: ObjectId, payload: &Arc<Segment>) -> Reaction {
        let mut processing = SimDuration::ZERO;
        let pos = self
            .outstanding
            .iter()
            .position(|&o| o == object)
            .unwrap_or_else(|| panic!("unexpected delivery {object}"));
        self.outstanding.swap_remove(pos);
        self.stats.objects_received += 1;

        let rel = self
            .proxy
            .rel_of(object)
            .expect("delivery belongs to this query");
        let obj: RelSeg = (rel, object.segment);

        // Admission. Objects that no longer participate in any pending
        // subplan (pruned or fully executed since the request went out)
        // are dropped without caching.
        if !self.finished && self.tracker.pending_count(obj) > 0 {
            debug_assert!(!self.cache.contains(obj), "delivered object already cached");
            // Scan + filter + symmetric-hash build (charged at logical
            // scale).
            let index = SegmentIndex::build(
                payload,
                self.spec.filters[rel].as_ref(),
                &self.join_cols[rel],
            );
            let scale = self.scales[rel];
            self.stats.scanned_tuples += index.stats().scanned as u64;
            self.stats.built_tuples += index.entries() as u64;
            processing +=
                self.cost.scaled(
                    index.stats().scanned as u64,
                    scale,
                    self.cost.scan_ns_per_tuple,
                ) + self
                    .cost
                    .scaled(index.entries() as u64, scale, self.cost.build_ns_per_tuple);

            if self.prune_empty && index.is_empty() {
                // §5.2.4: no tuple of this object can contribute to the
                // result; prune every subplan containing it.
                self.tracker.prune(obj);
                self.stats.pruned_objects += 1;
                // Pruning can make progress without executing subplans.
                self.cycle_executed += 1;
            } else {
                let bytes = self.seg_bytes[rel];
                let pinned: Vec<RelSeg> = self
                    .degraded_target
                    .as_ref()
                    .map(|combo| {
                        combo
                            .iter()
                            .enumerate()
                            .map(|(r, &seg)| (r, seg))
                            .filter(|&o| self.cache.contains(o))
                            .collect()
                    })
                    .unwrap_or_default();
                let victims = self
                    .cache
                    .select_victims(&self.tracker, obj, bytes, &pinned);
                for v in victims {
                    self.cache.remove(v);
                }
                self.cache.insert(obj, CacheSlot { index, bytes });
                self.execute_runnable(obj, &mut processing);
            }
        }

        if !self.finished && self.tracker.is_complete() {
            self.finished = true;
            processing += self.cost.agg_finish;
        }

        // Reissue cycle: once every outstanding request is serviced,
        // refetch exactly the uncached objects still needed by pending
        // subplans. If the cycle that just ended made no progress
        // (possible only at extreme cache pressure, where full-set
        // refetch can oscillate between complementary working sets),
        // degrade to targeting one pending subplan — the paper's O(S^R)
        // worst-case regime of one subplan per cycle at cache capacity R.
        let mut requests = Vec::new();
        if !self.finished && self.outstanding.is_empty() {
            let needed: Vec<RelSeg> = if self.cycle_executed == 0 && self.stats.cycles > 0 {
                let combo = self
                    .tracker
                    .first_pending()
                    .expect("pending subplans exist");
                let needed = combo
                    .iter()
                    .enumerate()
                    .map(|(r, &seg)| (r, seg))
                    .filter(|&o| !self.cache.contains(o))
                    .collect();
                self.degraded_target = Some(combo);
                needed
            } else {
                self.degraded_target = None;
                self.tracker
                    .pending_objects()
                    .into_iter()
                    .filter(|&o| !self.cache.contains(o))
                    .collect()
            };
            assert!(
                !needed.is_empty(),
                "pending subplans but nothing to refetch — tracker bug"
            );
            if self.cycle_executed > 0 {
                self.stalled_states.clear();
            } else {
                use std::hash::{Hash, Hasher};
                let mut h = std::collections::hash_map::DefaultHasher::new();
                self.cache
                    .cached_by_rel(self.tracker.num_relations())
                    .hash(&mut h);
                needed.hash(&mut h);
                assert!(
                    self.stalled_states.insert(h.finish()),
                    "query {} livelocked: the reissue loop revisited an \
                     identical cache/refetch state with no subplan progress \
                     (cache {} B is too small for this arrival order)",
                    self.spec.name,
                    self.cache.capacity()
                );
            }
            self.cycle_executed = 0;
            self.stats.cycles += 1;
            requests = self.issue(needed);
        }

        Reaction {
            processing,
            requests,
            finished: self.finished,
        }
    }

    fn is_finished(&self) -> bool {
        self.finished
    }

    fn result(&self) -> Vec<(Row, Vec<Value>)> {
        self.agg.finish()
    }

    fn stats(&self) -> EngineStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipper_datagen::{tpch, GenConfig};
    use skipper_relational::catalog::GIB;
    use skipper_relational::ops::reference;
    use skipper_relational::query::results_approx_eq;

    fn mini() -> (Dataset, QuerySpec) {
        // SF-4: lineitem 4 segments + orders 1 segment = 5 Q12 objects.
        let cfg = GenConfig::new(9, 4).with_phys_divisor(100_000);
        let ds = tpch::dataset(&cfg);
        let spec = tpch::q12(&ds);
        (ds, spec)
    }

    /// Table-major worst case: all lineitem segments before any orders —
    /// the naive intra-group ordering of §4.4.
    fn table_major(queue: &mut Vec<ObjectId>) -> ObjectId {
        let i = queue
            .iter()
            .enumerate()
            .max_by_key(|(_, o)| (o.table, std::cmp::Reverse(o.segment)))
            .map(|(i, _)| i)
            .unwrap();
        queue.swap_remove(i)
    }

    /// Drives the engine standalone by answering its requests in the
    /// given per-step order (round-robin across relations by default).
    fn drive(
        engine: &mut SkipperEngine,
        ds: &Dataset,
        order: impl Fn(&mut Vec<ObjectId>) -> ObjectId,
    ) -> u32 {
        let mut queue = engine.start();
        let mut served = 0u32;
        while !queue.is_empty() {
            let next = order(&mut queue);
            let payload = ds.segments[next.table as usize][next.segment as usize].clone();
            let reaction = engine.on_object(next, &payload);
            served += 1;
            queue.extend(reaction.requests);
            if reaction.finished {
                break;
            }
            assert!(served < 100_000, "engine did not converge");
        }
        served
    }

    /// Semantic order: lowest (segment, table) first — what the CSD's
    /// smart intra-group ordering delivers.
    fn semantic(queue: &mut Vec<ObjectId>) -> ObjectId {
        let i = queue
            .iter()
            .enumerate()
            .min_by_key(|(_, o)| (o.segment, o.table))
            .map(|(i, _)| i)
            .unwrap();
        queue.swap_remove(i)
    }

    #[test]
    fn q12_fully_cached_matches_reference_with_zero_reissues() {
        let (ds, spec) = mini();
        let total_bytes = ds.objects_for_query(&spec) as u64 * GIB;
        let mut engine = SkipperEngine::new(
            0,
            &ds,
            spec.clone(),
            total_bytes,
            EvictionPolicy::MaximalProgress,
            CostModel::paper_calibrated(),
            false,
        );
        drive(&mut engine, &ds, semantic);
        assert!(engine.is_finished());
        assert_eq!(engine.stats().reissues, 0);

        let tables = ds.materialize_query_tables(&spec);
        let slices: Vec<&[Segment]> = tables.iter().map(|t| t.as_slice()).collect();
        let expected = reference::execute(&spec, &slices);
        assert!(results_approx_eq(&engine.result(), &expected, 1e-9));
    }

    #[test]
    fn q12_tight_cache_still_correct_with_reissues() {
        let (ds, spec) = mini();
        // Cache of 2 objects + table-major (naive) arrival order: the
        // lineitem segments thrash before orders ever shows up, forcing
        // reissue cycles.
        let mut engine = SkipperEngine::new(
            0,
            &ds,
            spec.clone(),
            2 * GIB,
            EvictionPolicy::MaximalProgress,
            CostModel::paper_calibrated(),
            false,
        );
        let served = drive(&mut engine, &ds, table_major);
        assert!(engine.is_finished());
        let objects = ds.objects_for_query(&spec);
        assert!(
            served > objects,
            "tight cache must reissue (served {served} of {objects})"
        );
        assert!(engine.stats().reissues > 0);
        assert!(engine.stats().cycles > 0);

        let tables = ds.materialize_query_tables(&spec);
        let slices: Vec<&[Segment]> = tables.iter().map(|t| t.as_slice()).collect();
        let expected = reference::execute(&spec, &slices);
        assert!(results_approx_eq(&engine.result(), &expected, 1e-9));
    }

    #[test]
    fn adversarial_arrival_order_still_correct() {
        let (ds, spec) = mini();
        let total_bytes = ds.objects_for_query(&spec) as u64 * GIB;
        let mut engine = SkipperEngine::new(
            0,
            &ds,
            spec.clone(),
            total_bytes,
            EvictionPolicy::MaximalProgress,
            CostModel::paper_calibrated(),
            false,
        );
        drive(&mut engine, &ds, table_major);
        assert!(engine.is_finished());
        let tables = ds.materialize_query_tables(&spec);
        let slices: Vec<&[Segment]> = tables.iter().map(|t| t.as_slice()).collect();
        assert!(results_approx_eq(
            &engine.result(),
            &reference::execute(&spec, &slices),
            1e-9
        ));
    }

    #[test]
    fn subplan_count_matches_cross_product() {
        let (ds, spec) = mini();
        let total_bytes = ds.objects_for_query(&spec) as u64 * GIB;
        let mut engine = SkipperEngine::new(
            0,
            &ds,
            spec.clone(),
            total_bytes,
            EvictionPolicy::MaximalProgress,
            CostModel::paper_calibrated(),
            false,
        );
        let li = ds.catalog.index_of("lineitem").unwrap();
        let or = ds.catalog.index_of("orders").unwrap();
        let expected =
            ds.catalog.table(li).segment_count as u64 * ds.catalog.table(or).segment_count as u64;
        assert_eq!(engine.pending_subplans(), expected);
        drive(&mut engine, &ds, semantic);
        assert_eq!(engine.stats().subplans_executed, expected);
    }

    #[test]
    #[should_panic(expected = "at least one segment per")]
    fn cache_below_one_object_per_relation_rejected() {
        let (ds, spec) = mini();
        SkipperEngine::new(
            0,
            &ds,
            spec,
            GIB, // two relations need ≥ 2 GiB
            EvictionPolicy::MaximalProgress,
            CostModel::paper_calibrated(),
            false,
        );
    }

    #[test]
    fn processing_time_is_charged() {
        let (ds, spec) = mini();
        let total_bytes = ds.objects_for_query(&spec) as u64 * GIB;
        let mut engine = SkipperEngine::new(
            0,
            &ds,
            spec,
            total_bytes,
            EvictionPolicy::MaximalProgress,
            CostModel::paper_calibrated(),
            false,
        );
        let mut queue = engine.start();
        let first = semantic(&mut queue);
        let payload = ds.segments[first.table as usize][first.segment as usize].clone();
        let reaction = engine.on_object(first, &payload);
        assert!(
            !reaction.processing.is_zero(),
            "scan+build must consume virtual time"
        );
    }
}
