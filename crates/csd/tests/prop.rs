//! Randomized-but-deterministic property tests for the CSD device model.
//!
//! Originally written with `proptest`; this offline workspace replaces
//! the strategy machinery with seeded sweeps over the same input space —
//! every case is a pure function of the loop index, so failures
//! reproduce exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use skipper_csd::{
    CsdConfig, CsdDevice, IntraGroupOrder, Layout, LayoutPolicy, ObjectId, ObjectStore, QueryId,
    SchedPolicy, StreamModel,
};
use skipper_sim::{SimDuration, SimTime};

fn tenant_objects(tenants: u16, per_tenant: u32) -> Vec<Vec<ObjectId>> {
    (0..tenants)
        .map(|t| (0..per_tenant).map(|s| ObjectId::new(t, 0, s)).collect())
        .collect()
}

/// Every layout policy places every object exactly once, and the
/// policy-specific structure holds.
#[test]
fn layouts_place_everything() {
    let policies = [
        LayoutPolicy::AllInOne,
        LayoutPolicy::TwoClientsPerGroup,
        LayoutPolicy::OneClientPerGroup,
        LayoutPolicy::Incremental,
    ];
    for tenants in 1u16..6 {
        for per_tenant in 1u32..10 {
            for policy in policies {
                let objs = tenant_objects(tenants, per_tenant);
                let layout = Layout::build(policy, &objs);
                assert_eq!(layout.len(), (tenants as u32 * per_tenant) as usize);
                for tenant in &objs {
                    for &o in tenant {
                        assert!(layout.contains(o));
                    }
                }
                match policy {
                    LayoutPolicy::AllInOne => assert_eq!(layout.num_groups(), 1),
                    LayoutPolicy::OneClientPerGroup => {
                        assert_eq!(layout.num_groups(), tenants as u32)
                    }
                    LayoutPolicy::TwoClientsPerGroup => {
                        assert_eq!(layout.num_groups(), tenants.div_ceil(2) as u32)
                    }
                    LayoutPolicy::Incremental => {
                        // Each tenant's data touches at most two groups.
                        for (t, tenant) in objs.iter().enumerate() {
                            let mut groups: Vec<u32> =
                                tenant.iter().map(|&o| layout.group_of(o)).collect();
                            groups.sort_unstable();
                            groups.dedup();
                            assert!(groups.len() <= 2, "tenant {t} spans {groups:?}");
                        }
                    }
                }
            }
        }
    }
}

/// Conservation: the device serves every submitted request exactly once,
/// under any scheduler and intra-group ordering, and virtual time only
/// moves forward.
#[test]
fn device_serves_every_request_once() {
    let policies = [
        SchedPolicy::FcfsObject,
        SchedPolicy::FcfsQuery,
        SchedPolicy::MaxQueries,
        SchedPolicy::RankBased,
        SchedPolicy::FcfsSlack(8),
    ];
    let intras = [
        IntraGroupOrder::SemanticRoundRobin,
        IntraGroupOrder::TableOrder,
        IntraGroupOrder::ArrivalOrder,
    ];
    let mut rng = StdRng::seed_from_u64(0xC5D0);
    for case in 0..120 {
        let tenants = rng.gen_range(1u16..5);
        let per_tenant = rng.gen_range(1u32..8);
        let policy = policies[rng.gen_range(0..policies.len())];
        let intra = intras[rng.gen_range(0..intras.len())];
        let switch_secs = rng.gen_range(0u64..30);
        let split_batches = rng.gen_bool(0.5);

        let mut store = ObjectStore::new();
        let objs = tenant_objects(tenants, per_tenant);
        for tenant in &objs {
            for &o in tenant {
                store.put(o, 1 << 20, o.tenant as u32 % 3, ());
            }
        }
        let mut dev: CsdDevice<()> = CsdDevice::new(
            CsdConfig {
                switch_latency: SimDuration::from_secs(switch_secs),
                bandwidth_bytes_per_sec: (1 << 20) as f64,
                initial_load_free: true,
                parallel_streams: 1,
                stream_model: StreamModel::Pipeline,
                ..CsdConfig::default()
            },
            store,
            policy.build(),
            intra,
        );
        let mut now = SimTime::ZERO;
        let mut expected = 0u64;
        for (t, tenant) in objs.iter().enumerate() {
            expected += tenant.len() as u64;
            if split_batches {
                for &o in tenant {
                    dev.submit(now, t, QueryId::new(t as u16, 0), &[o]);
                }
            } else {
                dev.submit(now, t, QueryId::new(t as u16, 0), tenant);
            }
        }
        let mut served = Vec::new();
        let mut last = now;
        while let Some(until) = dev.kick(now) {
            assert!(until >= last, "case {case}: time went backwards");
            last = until;
            now = until;
            for d in dev.complete(now) {
                served.push(d.object);
            }
        }
        assert!(dev.is_quiescent());
        assert_eq!(served.len() as u64, expected, "case {case}");
        served.sort_unstable();
        served.dedup();
        assert_eq!(
            served.len() as u64,
            expected,
            "case {case}: duplicate delivery"
        );
        assert_eq!(dev.metrics().objects_served, expected);
        // Switches are bounded by the number of service operations.
        assert!(dev.metrics().group_switches <= expected * 3);
    }
}

/// With all data in one group no scheduler ever pays a switch.
#[test]
fn single_group_never_switches() {
    let policies = [
        SchedPolicy::FcfsObject,
        SchedPolicy::FcfsQuery,
        SchedPolicy::MaxQueries,
        SchedPolicy::RankBased,
    ];
    for tenants in 1u16..5 {
        for per_tenant in 1u32..6 {
            for policy in policies {
                let mut store = ObjectStore::new();
                let objs = tenant_objects(tenants, per_tenant);
                for tenant in &objs {
                    for &o in tenant {
                        store.put(o, 1 << 20, 0, ());
                    }
                }
                let mut dev: CsdDevice<()> = CsdDevice::new(
                    CsdConfig {
                        switch_latency: SimDuration::from_secs(10),
                        bandwidth_bytes_per_sec: (1 << 20) as f64,
                        initial_load_free: true,
                        parallel_streams: 1,
                        stream_model: StreamModel::Pipeline,
                        ..CsdConfig::default()
                    },
                    store,
                    policy.build(),
                    IntraGroupOrder::SemanticRoundRobin,
                );
                let mut now = SimTime::ZERO;
                for (t, tenant) in objs.iter().enumerate() {
                    dev.submit(now, t, QueryId::new(t as u16, 0), tenant);
                }
                while let Some(until) = dev.kick(now) {
                    now = until;
                    dev.complete(now);
                }
                assert_eq!(dev.metrics().group_switches, 0);
            }
        }
    }
}
