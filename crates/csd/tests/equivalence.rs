//! Differential equivalence: the indexed queue vs the naive reference.
//!
//! The indexed [`RequestQueue`] must be *observationally identical* to
//! the pre-index full-rescan [`NaiveQueue`]: for any submit schedule,
//! both queues plugged into the same device must produce the same
//! decision sequence (operation kinds and completion times), the same
//! delivery order, and the same counters. The sweep is randomized but
//! seeded — every case is a pure function of its loop indices — and
//! covers every `SchedPolicy` × `IntraGroupOrder` × {1, 2, 4} shards ×
//! {1, 2, 4} parallel streams, with mid-run arrivals racing active
//! residencies and (at streams > 1) armed switches draining multi-slot
//! pipelines.
//!
//! Shard counts enter through a miniature fleet driver (round-robin
//! object → shard placement, one independent device per shard), which
//! also pins two work-conservation contracts: every shard count and
//! every stream count delivers the same `(client, query, object)`
//! multiset.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use skipper_csd::sched::{NaiveQueue, RequestIndex, RequestQueue};
use skipper_csd::{
    CsdConfig, CsdDevice, IntraGroupOrder, ObjectId, ObjectStore, QueryId, SchedPolicy, StreamModel,
};
use skipper_sim::{SimDuration, SimTime};

const MB: u64 = 1 << 20;

/// One randomized workload: the object universe plus a time-ordered
/// submit schedule.
struct Workload {
    tenants: u16,
    segs_per_tenant: u32,
    groups: u32,
    /// `(time, client, query, objects)` sorted by time.
    schedule: Vec<(SimTime, usize, QueryId, Vec<ObjectId>)>,
}

fn workload(seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let tenants = rng.gen_range(2u16..6);
    let segs_per_tenant = rng.gen_range(3u32..9);
    let groups = rng.gen_range(1u32..4);
    let batches = rng.gen_range(4usize..12);
    let mut schedule = Vec::new();
    let mut t = 0u64;
    for b in 0..batches {
        // Batches arrive at increasing instants; several may collide on
        // the same second to race the residency snapshot.
        t += rng.gen_range(0u64..15);
        let tenant = rng.gen_range(0..tenants);
        let query = QueryId::new(tenant, b as u32);
        let n = rng.gen_range(1usize..=segs_per_tenant as usize);
        let objects: Vec<ObjectId> = (0..n)
            .map(|_| ObjectId::new(tenant, 0, rng.gen_range(0..segs_per_tenant)))
            .collect();
        schedule.push((SimTime::from_secs(t), tenant as usize, query, objects));
    }
    Workload {
        tenants,
        segs_per_tenant,
        groups,
        schedule,
    }
}

/// One shard event: completion time plus the delivered triple (`None`
/// for switch completions). Multi-stream wake-ups append one entry per
/// retired transfer, in the device's deterministic slot order.
type ShardEvent = (SimTime, Option<(usize, QueryId, ObjectId)>);

/// The observable outcome of one fleet run: per-shard event log plus
/// the counters the paper's figures derive from.
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    events: Vec<Vec<ShardEvent>>,
    switches: Vec<u64>,
    served: Vec<u64>,
}

impl Outcome {
    fn delivery_multiset(&self) -> Vec<(usize, QueryId, ObjectId)> {
        let mut all: Vec<_> = self
            .events
            .iter()
            .flatten()
            .filter_map(|(_, d)| *d)
            .collect();
        all.sort_unstable();
        all
    }
}

/// Runs `w` against a fleet of `shards` devices using queue impl `Q`
/// with `streams` pipeline slots each. Objects land on shard
/// `segment % shards`; tenant data lives in group `tenant % groups`.
/// 100 MB objects at 100 MB/s per stream, 10 s switches.
fn run_fleet<Q: RequestIndex>(
    w: &Workload,
    policy: SchedPolicy,
    intra: IntraGroupOrder,
    shards: usize,
    streams: u32,
) -> Outcome {
    let mut devices: Vec<CsdDevice<(), Q>> = (0..shards)
        .map(|shard| {
            let mut store = ObjectStore::new();
            for tenant in 0..w.tenants {
                for seg in 0..w.segs_per_tenant {
                    if seg as usize % shards == shard {
                        store.put(
                            ObjectId::new(tenant, 0, seg),
                            100 * MB,
                            tenant as u32 % w.groups,
                            (),
                        );
                    }
                }
            }
            CsdDevice::new(
                CsdConfig {
                    switch_latency: SimDuration::from_secs(10),
                    bandwidth_bytes_per_sec: (100 * MB) as f64,
                    initial_load_free: true,
                    parallel_streams: streams,
                    stream_model: StreamModel::Pipeline,
                    ..CsdConfig::default()
                },
                store,
                policy.build(),
                intra,
            )
        })
        .collect();

    let mut next: Vec<Option<SimTime>> = vec![None; shards];
    let mut events: Vec<Vec<ShardEvent>> = vec![Vec::new(); shards];
    let mut si = 0;
    loop {
        let due = next
            .iter()
            .enumerate()
            .filter_map(|(s, t)| t.map(|t| (t, s)))
            .min();
        let upcoming = w.schedule.get(si).map(|e| e.0);
        // Device completions run before same-instant arrivals, like the
        // runtime's event queue (insertion order).
        let device_first = match (due, upcoming) {
            (None, None) => break,
            (Some((t, _)), Some(st)) => t <= st,
            (Some(_), None) => true,
            (None, Some(_)) => false,
        };
        if device_first {
            let (t, s) = due.expect("device event due");
            let batch = devices[s].complete(t);
            if batch.is_empty() {
                events[s].push((t, None)); // switch completion
            }
            for d in batch {
                events[s].push((t, Some((d.client, d.query, d.object))));
            }
            next[s] = devices[s].kick(t);
        } else {
            let st = upcoming.expect("submission due");
            while si < w.schedule.len() && w.schedule[si].0 == st {
                let (at, client, query, ref objects) = w.schedule[si];
                for &obj in objects {
                    let s = obj.segment as usize % shards;
                    devices[s].submit(at, client, query, &[obj]);
                }
                si += 1;
            }
            // Re-arm on every mutation: a submission can open idle
            // pipeline slots, moving a shard's earliest completion
            // *earlier*, so every shard re-kicks unconditionally.
            for (s, slot) in next.iter_mut().enumerate() {
                *slot = devices[s].kick(st);
            }
        }
    }
    Outcome {
        switches: devices.iter().map(|d| d.metrics().group_switches).collect(),
        served: devices.iter().map(|d| d.metrics().objects_served).collect(),
        events,
    }
}

const INTRA_ORDERS: [IntraGroupOrder; 3] = [
    IntraGroupOrder::SemanticRoundRobin,
    IntraGroupOrder::TableOrder,
    IntraGroupOrder::ArrivalOrder,
];

/// The sweep: every policy × intra order × shard count × stream count,
/// several seeds each — the indexed queue reproduces the naive queue's
/// decision sequence and delivery order exactly, and every shard/stream
/// combination conserves the delivery multiset.
#[test]
fn indexed_queue_matches_naive_reference() {
    for seed in 0..6u64 {
        let w = workload(seed);
        for policy in SchedPolicy::all() {
            for intra in INTRA_ORDERS {
                let mut multisets = Vec::new();
                for shards in [1usize, 2, 4] {
                    for streams in [1u32, 2, 4] {
                        let label =
                            format!("seed {seed} {policy:?}/{intra:?}/{shards}sh/{streams}st");
                        let indexed = run_fleet::<RequestQueue>(&w, policy, intra, shards, streams);
                        let naive = run_fleet::<NaiveQueue>(&w, policy, intra, shards, streams);
                        assert_eq!(indexed, naive, "{label}: queue implementations diverged");
                        multisets.push(indexed.delivery_multiset());
                    }
                }
                assert!(
                    multisets.windows(2).all(|p| p[0] == p[1]),
                    "seed {seed} {policy:?}/{intra:?}: sharding or streaming broke work conservation"
                );
            }
        }
    }
}

/// Deep-queue stress: one heavily contended device, every request
/// submitted upfront — the regime where the indexed queue's O(log n)
/// path does all the work. Equivalence must hold at depth and at full
/// pipeline occupancy too.
#[test]
fn indexed_queue_matches_naive_on_deep_queues() {
    let mut rng = StdRng::seed_from_u64(0xC5D);
    let tenants = 8u16;
    let segs = 24u32;
    let mut schedule = Vec::new();
    for b in 0..tenants {
        let objects: Vec<ObjectId> = (0..segs)
            .map(|s| ObjectId::new(b, 0, s))
            .filter(|_| rng.gen_range(0u32..4) > 0)
            .collect();
        if !objects.is_empty() {
            schedule.push((SimTime::ZERO, b as usize, QueryId::new(b, 0), objects));
        }
    }
    let w = Workload {
        tenants,
        segs_per_tenant: segs,
        groups: 3,
        schedule,
    };
    for policy in SchedPolicy::all() {
        for streams in [1u32, 4] {
            let indexed = run_fleet::<RequestQueue>(
                &w,
                policy,
                IntraGroupOrder::SemanticRoundRobin,
                1,
                streams,
            );
            let naive = run_fleet::<NaiveQueue>(
                &w,
                policy,
                IntraGroupOrder::SemanticRoundRobin,
                1,
                streams,
            );
            assert_eq!(
                indexed, naive,
                "{policy:?}/{streams} streams diverged on a deep queue"
            );
            assert!(indexed.served.iter().sum::<u64>() > 100);
        }
    }
}
