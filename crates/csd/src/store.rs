//! The object store: payloads + placement + sizing.
//!
//! Plays the role of OpenStack Swift in the paper's testbed: a flat
//! key–value store of GB-sized blobs fronting the MAID array. The store
//! is generic over the payload type so this crate stays domain-free — the
//! driver stores `Arc<Segment>`s, tests store strings.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use skipper_sim::SimDuration;

use crate::layout::Layout;
use crate::object::{GroupId, ObjectId, ObjectMeta};

/// A fast, deterministic hasher for the store's small fixed-width keys.
///
/// The store is probed two to three times per simulated event (submit
/// metadata, completion payload); SipHash's per-lookup cost is
/// measurable at million-request scale and buys nothing here — keys are
/// trusted `ObjectId`s, not attacker-controlled strings. FNV-1a over
/// the written words, finished with a SplitMix64 mix, hashes an
/// `ObjectId` in a few cycles and is identical across runs (the seed
/// path stays deterministic).
#[derive(Clone, Copy, Debug, Default)]
pub struct FastHasher(u64);

impl Hasher for FastHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x0000_0100_0000_01B3);
    }

    #[inline]
    fn finish(&self) -> u64 {
        let mut state = self.0;
        skipper_sim::rng::splitmix64(&mut state)
    }
}

type FastBuild = BuildHasherDefault<FastHasher>;

/// An object store mapping [`ObjectId`]s to `(metadata, payload)`.
#[derive(Clone, Debug, Default)]
pub struct ObjectStore<P> {
    objects: HashMap<ObjectId, (ObjectMeta, P), FastBuild>,
}

impl<P> ObjectStore<P> {
    /// Creates an empty store.
    pub fn new() -> Self {
        ObjectStore {
            objects: HashMap::default(),
        }
    }

    /// Inserts an object with explicit placement.
    pub fn put(&mut self, id: ObjectId, logical_bytes: u64, group: GroupId, payload: P) {
        let meta = ObjectMeta {
            id,
            logical_bytes,
            group,
        };
        self.objects.insert(id, (meta, payload));
    }

    /// Inserts an object, resolving its group from `layout`.
    ///
    /// # Panics
    /// Panics if the layout does not place `id`.
    pub fn put_with_layout(
        &mut self,
        id: ObjectId,
        logical_bytes: u64,
        layout: &Layout,
        payload: P,
    ) {
        self.put(id, logical_bytes, layout.group_of(id), payload);
    }

    /// Metadata of `id`, if stored.
    pub fn meta(&self, id: ObjectId) -> Option<&ObjectMeta> {
        self.objects.get(&id).map(|(m, _)| m)
    }

    /// Payload of `id`, if stored (a GET without the latency model —
    /// timing is the device's job).
    pub fn get(&self, id: ObjectId) -> Option<&P> {
        self.objects.get(&id).map(|(_, p)| p)
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when the store is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Total logical bytes stored.
    pub fn total_logical_bytes(&self) -> u64 {
        self.objects.values().map(|(m, _)| m.logical_bytes).sum()
    }

    /// Iterates all stored metadata (unordered).
    pub fn iter_meta(&self) -> impl Iterator<Item = &ObjectMeta> {
        self.objects.values().map(|(m, _)| m)
    }
}

/// Transfer time of an object at `bandwidth_bytes_per_sec`.
///
/// Zero or non-finite bandwidth means "free" (used by the ideal/local
/// configurations in Table 3's component breakdown).
pub fn transfer_time(logical_bytes: u64, bandwidth_bytes_per_sec: f64) -> SimDuration {
    if !(bandwidth_bytes_per_sec.is_finite() && bandwidth_bytes_per_sec > 0.0) {
        return SimDuration::ZERO;
    }
    SimDuration::from_secs_f64(logical_bytes as f64 / bandwidth_bytes_per_sec)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GIB: u64 = 1 << 30;

    #[test]
    fn put_get_roundtrip() {
        let mut store: ObjectStore<&str> = ObjectStore::new();
        let id = ObjectId::new(0, 1, 2);
        store.put(id, GIB, 3, "payload");
        assert_eq!(store.get(id), Some(&"payload"));
        let meta = store.meta(id).unwrap();
        assert_eq!(meta.group, 3);
        assert_eq!(meta.logical_bytes, GIB);
        assert_eq!(store.len(), 1);
        assert_eq!(store.total_logical_bytes(), GIB);
    }

    #[test]
    fn missing_objects_are_none() {
        let store: ObjectStore<u8> = ObjectStore::new();
        assert!(store.get(ObjectId::new(0, 0, 0)).is_none());
        assert!(store.meta(ObjectId::new(0, 0, 0)).is_none());
        assert!(store.is_empty());
    }

    #[test]
    fn layout_resolution() {
        let id = ObjectId::new(1, 0, 0);
        let layout = Layout::from_pairs([(id, 7)]);
        let mut store: ObjectStore<()> = ObjectStore::new();
        store.put_with_layout(id, GIB, &layout, ());
        assert_eq!(store.meta(id).unwrap().group, 7);
    }

    #[test]
    fn transfer_time_scales_with_size() {
        // 1 GiB at 128 MiB/s = 8 s.
        let t = transfer_time(GIB, (128 * 1024 * 1024) as f64);
        assert_eq!(t, SimDuration::from_secs(8));
        assert!(transfer_time(GIB, 0.0).is_zero());
        assert!(transfer_time(GIB, f64::INFINITY).is_zero());
    }
}
