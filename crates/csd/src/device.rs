//! The CSD device state machine: a multi-stream service pipeline.
//!
//! Models the paper's emulated cold storage device: a request queue in
//! front of a MAID array with one active disk group. The device is
//! event-driven and passive — the simulation driver calls [`CsdDevice::kick`]
//! whenever the device might have work (new requests, or an operation just
//! completed) and schedules a wake-up at the returned completion time.
//!
//! The paper's prototype middleware *serialized* request servicing; §5.2.1
//! observes that "by parallelizing the servicing of requests within a
//! group, we can reduce transfer time substantially" — the spun-up group
//! itself sustains 1-2 GB/s while one stream sees ~110 MB/s. The device
//! therefore runs a **service pipeline**: `parallel_streams` transfer
//! slots, each carrying one in-flight request, with completions kept in a
//! small min-heap, plus an explicit switch stage that drains in-flight
//! transfers before the group swap:
//!
//! ```text
//! kick(now) ──► per idle slot: scheduler.decide(queue, active, in-flight)
//!    │              │
//!    │         ServeActive ──► resolve ServeScope + IntraGroupOrder in
//!    │              │          the queue, dequeue the request, start a
//!    │              │          transfer in the slot: done at now+bytes/BW
//!    │         SwitchTo(g) ──► pipe empty: start Switch, done at now+S
//!    │              │          (first load of an idle array is free);
//!    │              │          pipe draining: ARM the switch — no new
//!    │              │          transfers; it begins the instant the
//!    │              │          last old-group transfer completes
//!    │         Idle ────────► nothing new (a draining policy may be
//!    │                        declining; it is re-asked at the next
//!    │                        completion)
//!    ▼
//! earliest pending completion (min over the slot heap / switch stage)
//!    │
//! complete(now) ──► retire EVERYTHING due at now:
//!                   Switch: activate group, notify scheduler, arm the
//!                           residency snapshot
//!                   Transfers: pop payloads, return Vec<Delivery>; if
//!                           the pipe just drained and a switch is
//!                           armed, the switch starts at now exactly
//! ```
//!
//! Serving never preempts: once a transfer starts it finishes; an armed
//! switch stops new dispatches but never cancels in-flight transfers.
//! `streams = 1` collapses to the historical one-op state machine
//! exactly: the single slot is either empty (decide, as before) or busy
//! (return its completion), a switch can only be decided with the pipe
//! empty (so it starts immediately, never armed), and every decision is
//! made with [`InFlight::NONE`].
//!
//! Each slot records its transfer spans in its own [`ActivityTrace`]
//! (slot 0 also carries the switch spans), so traces stay sequential
//! per-slot while transfers overlap across slots; stall attribution
//! unions them.
//!
//! The pending queue is pluggable: the device is generic over
//! [`RequestIndex`] and defaults to the incrementally-indexed
//! [`RequestQueue`] (O(log n) per decision). The full-rescan
//! [`NaiveQueue`](crate::sched::NaiveQueue) plugs into the same slot for
//! differential testing and as the `skipper-bench --bin perf` baseline.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use skipper_sim::{Activity, ActivityTrace, SimDuration, SimTime, TraceMode};

use crate::metrics::DeviceMetrics;
use crate::object::{GroupId, ObjectId, QueryId};
use crate::sched::{
    Decision, GroupScheduler, InFlight, PendingRequest, RequestIndex, RequestQueue,
};
use crate::store::{transfer_time, ObjectStore};
use skipper_sim::trace::Span;

/// How `parallel_streams > 1` is modelled.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StreamModel {
    /// The service pipeline (default): `parallel_streams` transfer
    /// slots, each serving one request at the per-stream bandwidth,
    /// overlapping in time. This is the §5.2.1 improvement modelled
    /// faithfully: concurrency, not a rate constant.
    #[default]
    Pipeline,
    /// The historical compat model kept for A/B comparison in
    /// `skipper-bench`: servicing stays strictly serial (one slot) and
    /// `parallel_streams` merely multiplies the transfer bandwidth.
    /// Equivalent to the pipeline only when the queue never runs dry
    /// mid-residency; use [`StreamModel::Pipeline`] for new work.
    BandwidthMultiplier,
}

/// How the device keeps its per-transfer delivery ledger.
///
/// The ledger (`served_log`) records every completed transfer as a
/// `(client, query, object)` triple — the work-conservation multiset the
/// sharding and equivalence suites compare. It grows O(requests), which
/// a multi-million-request run cannot afford; [`LedgerMode::Counters`]
/// keeps only the [`DeviceMetrics`] counters and leaves the ledger
/// empty.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LedgerMode {
    /// Record every delivery (default; O(requests) memory).
    #[default]
    Full,
    /// Counters only; `served_log` stays empty (bounded memory).
    Counters,
}

/// Device parameters.
#[derive(Clone, Copy, Debug)]
pub struct CsdConfig {
    /// Group switch latency `S` (Pelican: 8 s; the paper's experiments
    /// use 10 s by default and sweep 0-40 s).
    pub switch_latency: SimDuration,
    /// Per-stream object streaming bandwidth in bytes/s. Non-positive or
    /// non-finite means transfers are free (used by the "local disk"
    /// configuration of the Table 3 component breakdown).
    pub bandwidth_bytes_per_sec: f64,
    /// Whether the very first group load costs nothing (the array always
    /// has *some* group spinning; matching the paper where a lone client
    /// with a one-group layout sees zero switches).
    pub initial_load_free: bool,
    /// Concurrent transfer streams while a group is loaded. The paper's
    /// prototype middleware serialized request servicing (streams = 1);
    /// values > 1 open that many pipeline slots (§5.2.1 "parallelize
    /// the servicing of requests within a group"). Must be ≥ 1 — a
    /// zero-stream device could never serve anything, so the
    /// constructor rejects it loudly instead of clamping.
    pub parallel_streams: u32,
    /// How streams > 1 are modelled (default: the true pipeline).
    pub stream_model: StreamModel,
    /// Span-log regime of the per-slot activity traces (default: keep
    /// every span). [`TraceMode::Counters`] bounds memory for huge runs
    /// at the cost of post-hoc stall attribution.
    pub trace_mode: TraceMode,
    /// Delivery-ledger regime (default: record every transfer).
    pub ledger_mode: LedgerMode,
}

impl Default for CsdConfig {
    fn default() -> Self {
        CsdConfig {
            switch_latency: SimDuration::from_secs(10),
            // ~110 MB/s: the effective per-object streaming rate implied by
            // the paper's Table 3 (57 GB transferred in ~550 s through the
            // serializing Swift middleware).
            bandwidth_bytes_per_sec: 110.0 * 1024.0 * 1024.0,
            initial_load_free: true,
            parallel_streams: 1,
            stream_model: StreamModel::Pipeline,
            trace_mode: TraceMode::Full,
            ledger_mode: LedgerMode::Full,
        }
    }
}

/// How the device orders requests *within* the loaded group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IntraGroupOrder {
    /// Semantically-smart ordering (§4.4): round-robin across a query's
    /// tables (A.1, B.1, C.1, A.2, B.2, C.2, ...) so MJoin can complete
    /// subplans early and evict aggressively.
    SemanticRoundRobin,
    /// Naive per-table ordering (all of A, then all of B, ...): the
    /// pathological case for cache-constrained MJoin, used in ablations.
    TableOrder,
    /// Strict arrival order.
    ArrivalOrder,
}

impl IntraGroupOrder {
    /// The total service-order key of one request: the policy's sort
    /// components followed by the arrival sequence number, so keys are
    /// unique and ties always break FIFO. The indexed
    /// [`RequestQueue`](crate::sched::RequestQueue) keeps its per-group
    /// sub-queues sorted by exactly this key.
    pub fn key(self, r: &PendingRequest) -> (u32, u32, u32, u64) {
        match self {
            // Segment-major: (seg, table) walks A.1,B.1,C.1,A.2,...
            IntraGroupOrder::SemanticRoundRobin => (
                r.object.segment,
                r.object.table as u32,
                r.object.tenant as u32,
                r.seq,
            ),
            // Table-major: (table, seg) drains A entirely first.
            IntraGroupOrder::TableOrder => (
                r.object.table as u32,
                r.object.segment,
                r.object.tenant as u32,
                r.seq,
            ),
            IntraGroupOrder::ArrivalOrder => (0, 0, 0, r.seq),
        }
    }

    /// Picks which of the in-scope pending requests to serve next.
    ///
    /// # Panics
    /// Panics if `scope` is empty — the device only asks when the
    /// scheduler granted a non-empty scope.
    pub fn select(self, pending: &[PendingRequest], scope: &[usize]) -> usize {
        assert!(!scope.is_empty(), "intra-group selection over empty scope");
        *scope
            .iter()
            .min_by_key(|&&i| self.key(&pending[i]))
            .expect("non-empty scope")
    }
}

/// A completed object transfer handed back to the driver.
#[derive(Clone, Debug)]
pub struct Delivery<P> {
    /// Receiving client.
    pub client: usize,
    /// The query the GET belonged to.
    pub query: QueryId,
    /// The delivered object.
    pub object: ObjectId,
    /// The object payload (cloned out of the store; `Arc` in practice).
    pub payload: P,
}

/// One occupied transfer slot.
#[derive(Clone, Debug)]
struct TransferSlot {
    request: PendingRequest,
    /// Logical size, captured at dispatch so completion does not pay a
    /// second store lookup.
    bytes: u64,
    started: SimTime,
    until: SimTime,
}

/// The switch stage of the pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SwitchStage {
    /// No switch pending.
    Idle,
    /// Decided while transfers were draining: starts the instant the
    /// last one completes. No new transfers dispatch while armed.
    Armed(GroupId),
    /// Spinning groups down/up right now; the pipe is empty.
    Switching { target: GroupId, until: SimTime },
}

/// The cold storage device: request queue + MAID service pipeline.
///
/// Generic over the pending-queue implementation `Q` (default: the
/// indexed [`RequestQueue`]).
pub struct CsdDevice<P, Q: RequestIndex = RequestQueue> {
    config: CsdConfig,
    store: ObjectStore<P>,
    scheduler: Box<dyn GroupScheduler>,
    queue: Q,
    active_group: Option<GroupId>,
    /// The transfer slots; `None` = idle. Length is the stream count
    /// (one under [`StreamModel::BandwidthMultiplier`]).
    slots: Vec<Option<TransferSlot>>,
    /// Occupied-slot count (= number of `Some` entries in `slots`).
    in_flight: usize,
    /// Pending transfer completions: min-heap of `(until, slot)`, so
    /// the earliest wake-up is a peek and same-instant retirements pop
    /// in slot order (deterministic).
    completions: BinaryHeap<Reverse<(SimTime, usize)>>,
    switch: SwitchStage,
    next_seq: u64,
    /// One activity trace per slot: per-slot spans stay sequential while
    /// transfers overlap across slots. Slot 0 also records switch spans
    /// (a switch only runs with the pipe empty, so they never overlap).
    traces: Vec<ActivityTrace>,
    metrics: DeviceMetrics,
    served_log: Vec<(usize, QueryId, ObjectId)>,
    /// Fault-plane brown-out multiplier on the per-stream bandwidth,
    /// applied to transfers *dispatched* while it is below 1.0 (already
    /// committed completion instants never move).
    bandwidth_factor: f64,
    /// Set by [`CsdDevice::fail`]: the crash spun the array down, so
    /// the first group load after recovery pays a full switch even
    /// under `initial_load_free`.
    paid_reload: bool,
    /// Logical bytes of the queued (not yet dispatched) requests,
    /// maintained at every queue mutation so the admission-control
    /// seam reads the backlog in O(1) instead of rescanning.
    queued_bytes: u64,
}

impl<P: Clone, Q: RequestIndex> CsdDevice<P, Q> {
    /// Creates a device over `store` with the given scheduler and
    /// intra-group ordering.
    ///
    /// # Panics
    /// Panics if `config.parallel_streams` is 0 — a zero-stream device
    /// could never serve a request.
    pub fn new(
        config: CsdConfig,
        store: ObjectStore<P>,
        scheduler: Box<dyn GroupScheduler>,
        intra: IntraGroupOrder,
    ) -> Self {
        assert!(
            config.parallel_streams >= 1,
            "CsdConfig::parallel_streams must be >= 1 (got 0); \
             use 1 for the paper's serialized middleware"
        );
        let slot_count = match config.stream_model {
            StreamModel::Pipeline => config.parallel_streams as usize,
            StreamModel::BandwidthMultiplier => 1,
        };
        CsdDevice {
            config,
            store,
            scheduler,
            queue: Q::new(intra),
            active_group: None,
            slots: (0..slot_count).map(|_| None).collect(),
            in_flight: 0,
            completions: BinaryHeap::new(),
            switch: SwitchStage::Idle,
            next_seq: 0,
            traces: (0..slot_count)
                .map(|_| ActivityTrace::with_mode(config.trace_mode))
                .collect(),
            metrics: DeviceMetrics::default(),
            served_log: Vec::new(),
            bandwidth_factor: 1.0,
            paid_reload: false,
            queued_bytes: 0,
        }
    }

    /// The effective per-stream service bandwidth (scaled by any active
    /// brown-out factor).
    fn stream_bandwidth(&self) -> f64 {
        let nominal = match self.config.stream_model {
            StreamModel::Pipeline => self.config.bandwidth_bytes_per_sec,
            StreamModel::BandwidthMultiplier => {
                self.config.bandwidth_bytes_per_sec * self.config.parallel_streams as f64
            }
        };
        nominal * self.bandwidth_factor
    }

    /// Scales the per-stream bandwidth by `factor` (a fault-plane
    /// brown-out; `1.0` restores nominal service). Only transfers
    /// dispatched from now on see the new rate — in-flight completion
    /// instants are already committed, which keeps the change
    /// deterministic under windowed execution.
    ///
    /// # Panics
    /// Panics unless `0 < factor <= 1`.
    pub fn set_bandwidth_factor(&mut self, factor: f64) {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "bandwidth factor {factor} outside (0, 1]"
        );
        self.bandwidth_factor = factor;
    }

    /// Power-fails the device: every in-flight transfer is aborted
    /// (nothing is counted as served — the bytes never arrived), any
    /// armed or in-progress switch is cancelled, the spun-up group is
    /// lost (the first load after recovery pays a full switch even
    /// under `initial_load_free`), and the pending queue is evacuated.
    ///
    /// Displaced requests are appended to `displaced`: aborted
    /// in-flight transfers first (slot order), then the queued requests
    /// oldest first. The return value is the aborted-transfer count
    /// (the prefix length). The caller re-routes them to surviving
    /// replicas or parks them until recovery; their re-submission gets
    /// fresh sequence numbers and arrival times.
    ///
    /// Spans already recorded for aborted transfers are left in the
    /// trace: the device genuinely spun its platters until the crash,
    /// and stall attribution covers every interval regardless of span
    /// content.
    pub fn fail(&mut self, _now: SimTime, displaced: &mut Vec<PendingRequest>) -> usize {
        let mut aborted = 0usize;
        for slot in &mut self.slots {
            if let Some(TransferSlot { request, .. }) = slot.take() {
                displaced.push(request);
                aborted += 1;
            }
        }
        self.in_flight = 0;
        self.completions.clear();
        self.switch = SwitchStage::Idle;
        self.active_group = None;
        self.paid_reload = true;
        self.metrics.transfers_aborted += aborted as u64;
        while let Some(r) = self.queue.oldest() {
            displaced.push(self.queue.remove(r.seq));
            self.metrics.requests_evacuated += 1;
        }
        self.queued_bytes = 0;
        aborted
    }

    /// Cancels query `q`: every still-queued request of the query is
    /// dequeued (never served, no ledger entry) and counted in
    /// [`DeviceMetrics::requests_cancelled`]. In-flight transfers are
    /// *not* preempted — serving never preempts — so their deliveries
    /// still complete and the caller discards them at routing. Returns
    /// the number of requests dequeued.
    pub fn cancel_query(&mut self, q: QueryId) -> usize {
        let mut bytes = 0u64;
        let n = self.queue.cancel_query(q, &mut |r| bytes += r.bytes);
        self.queued_bytes -= bytes;
        self.metrics.requests_cancelled += n as u64;
        n
    }

    /// Cancels query `q`'s queued request for `object` — the
    /// hedge-loser path: the winning replica's copy was consumed, so
    /// the duplicate must not occupy this shard's pipeline. Returns
    /// true when a queued copy was dequeued.
    pub fn cancel_object(&mut self, q: QueryId, object: ObjectId) -> bool {
        match self.queue.cancel_object(q, object) {
            Some(r) => {
                self.queued_bytes -= r.bytes;
                self.metrics.requests_cancelled += 1;
                true
            }
            None => false,
        }
    }

    /// Enqueues GET requests from `client` tagged with `query`. Call
    /// [`CsdDevice::kick`] afterwards to (re)start the device.
    ///
    /// # Panics
    /// Panics if an object is not stored — requesting unknown objects is
    /// a harness bug.
    pub fn submit(&mut self, now: SimTime, client: usize, query: QueryId, objects: &[ObjectId]) {
        for &object in objects {
            let meta = self
                .store
                .meta(object)
                .unwrap_or_else(|| panic!("GET for unknown object {object}"));
            self.queue.insert(PendingRequest {
                object,
                query,
                client,
                group: meta.group,
                bytes: meta.logical_bytes,
                arrival: now,
                seq: self.next_seq,
            });
            self.next_seq += 1;
            self.queued_bytes += meta.logical_bytes;
            self.metrics.requests_submitted += 1;
        }
    }

    /// Fills idle transfer slots (consulting the scheduler once per
    /// slot, each grant dequeuing its request so the queue aggregates
    /// stay truthful) and returns the *earliest* pending completion —
    /// transfer or switch — or `None` if the device is idle with
    /// nothing to do.
    ///
    /// The wake-up contract is "earliest of K completions": dispatching
    /// new work can move the earliest completion *earlier*, so callers
    /// must re-kick after every mutation (submit or complete) and
    /// re-arm their wake-up when the returned instant changes.
    pub fn kick(&mut self, now: SimTime) -> Option<SimTime> {
        if let SwitchStage::Switching { until, .. } = self.switch {
            return Some(until);
        }
        // Dispatch until the slots are full, the scheduler stops
        // granting, or a switch gets armed (no new transfers then).
        while self.switch == SwitchStage::Idle {
            let Some(slot) = self.slots.iter().position(Option::is_none) else {
                break;
            };
            let pipe = InFlight {
                transfers: self.in_flight,
                slots: self.slots.len(),
            };
            match self.scheduler.decide(&self.queue, self.active_group, pipe) {
                Decision::Idle => break,
                Decision::ServeActive => {
                    let active = self
                        .active_group
                        .expect("ServeActive requires a loaded group");
                    let scope = self.scheduler.serve_scope();
                    let seq = match self.queue.select(scope, active) {
                        Some(seq) => seq,
                        None => {
                            // The residency drained but the scheduler
                            // re-picked this group: start a fresh
                            // residency over the current queue without
                            // paying a switch.
                            self.queue.arm_residency(active);
                            self.queue.select(scope, active).unwrap_or_else(|| {
                                panic!(
                                    "scheduler {} returned ServeActive with empty scope",
                                    self.scheduler.name()
                                )
                            })
                        }
                    };
                    let request = self.queue.remove(seq);
                    debug_assert_eq!(request.group, active, "serving off-group request");
                    let bytes = request.bytes;
                    self.queued_bytes -= bytes;
                    let until = now + transfer_time(bytes, self.stream_bandwidth());
                    self.traces[slot].record(
                        now,
                        until,
                        Activity::Transferring {
                            client: request.client,
                        },
                    );
                    self.slots[slot] = Some(TransferSlot {
                        request,
                        bytes,
                        started: now,
                        until,
                    });
                    self.in_flight += 1;
                    self.metrics.peak_concurrent_streams = self
                        .metrics
                        .peak_concurrent_streams
                        .max(self.in_flight as u32);
                    self.completions.push(Reverse((until, slot)));
                }
                Decision::SwitchTo(target) => {
                    assert_ne!(
                        Some(target),
                        self.active_group,
                        "scheduler {} switched to the already-active group",
                        self.scheduler.name()
                    );
                    if self.in_flight > 0 {
                        // Transfers still draining: arm the switch so it
                        // begins the instant the last one completes.
                        self.switch = SwitchStage::Armed(target);
                        break;
                    }
                    if self.active_group.is_none()
                        && self.config.initial_load_free
                        && !self.paid_reload
                    {
                        // The array always has some group spinning; treat
                        // the first load as free and re-decide.
                        self.active_group = Some(target);
                        self.metrics.initial_loads += 1;
                        self.scheduler.on_switch_complete(&self.queue, target);
                        self.queue.arm_residency(target);
                        continue;
                    }
                    return Some(self.begin_switch(now, target));
                }
            }
        }
        self.completions.peek().map(|&Reverse((at, _))| at)
    }

    /// Starts the switch stage (the pipe must be empty) and returns its
    /// completion instant.
    fn begin_switch(&mut self, now: SimTime, target: GroupId) -> SimTime {
        debug_assert_eq!(self.in_flight, 0, "switch started with transfers in flight");
        self.paid_reload = false;
        let until = now + self.config.switch_latency;
        self.traces[0].record(now, until, Activity::Switching);
        self.metrics.group_switches += 1;
        self.switch = SwitchStage::Switching { target, until };
        until
    }

    /// Completes everything due at `now`, allocating a fresh batch; see
    /// [`CsdDevice::complete_into`] for the zero-allocation form the
    /// drivers use on the hot path.
    pub fn complete(&mut self, now: SimTime) -> Vec<Delivery<P>> {
        let mut deliveries = Vec::new();
        self.complete_into(now, &mut deliveries);
        deliveries
    }

    /// Completes everything due at `now`: either the switch stage, or
    /// every transfer whose completion instant is exactly `now`
    /// (appended to `out` in slot order — `out` is a caller-owned
    /// scratch buffer, reusable across wake-ups so the steady state
    /// allocates nothing). If retiring the last transfer drains the
    /// pipe with a switch armed, the switch starts at `now` — no idle
    /// gap. The caller should deliver the results and call
    /// [`CsdDevice::kick`] again.
    ///
    /// # Panics
    /// Panics if nothing is due at `now` — the event loop must stay in
    /// lock-step with the device's reported completion times.
    pub fn complete_into(&mut self, now: SimTime, out: &mut Vec<Delivery<P>>) {
        if let SwitchStage::Switching { target, until } = self.switch {
            assert_eq!(until, now, "switch completion out of step");
            self.switch = SwitchStage::Idle;
            self.active_group = Some(target);
            self.scheduler.on_switch_complete(&self.queue, target);
            self.queue.arm_residency(target);
            return;
        }
        let mut retired = 0usize;
        while let Some(&Reverse((at, slot))) = self.completions.peek() {
            if at != now {
                assert!(
                    at > now,
                    "transfer completion out of step: slot {slot} was due at {at}, woken at {now}"
                );
                break;
            }
            self.completions.pop();
            let TransferSlot {
                request,
                bytes,
                started,
                until,
            } = self.slots[slot]
                .take()
                .expect("completion heap entry without an occupied slot");
            debug_assert_eq!(until, now);
            self.in_flight -= 1;
            retired += 1;
            self.metrics.objects_served += 1;
            self.metrics.logical_bytes_served += bytes;
            self.metrics.transfer_busy_micros += until.since(started).as_micros();
            self.metrics.note_served(request.client);
            if self.config.ledger_mode == LedgerMode::Full {
                self.served_log
                    .push((request.client, request.query, request.object));
            }
            let payload = self
                .store
                .get(request.object)
                .expect("object exists")
                .clone();
            out.push(Delivery {
                client: request.client,
                query: request.query,
                object: request.object,
                payload,
            });
        }
        assert!(
            retired > 0,
            "complete() with no operation in flight at {now}"
        );
        if self.in_flight == 0 {
            if let SwitchStage::Armed(target) = self.switch {
                // The pipe just drained: the armed switch begins now.
                self.switch = SwitchStage::Idle;
                self.begin_switch(now, target);
            }
        }
    }

    /// True when no transfer or switch is in flight and the queue is
    /// empty.
    pub fn is_quiescent(&self) -> bool {
        self.in_flight == 0 && self.switch == SwitchStage::Idle && self.queue.is_empty()
    }

    /// Number of queued (not yet dispatched) requests.
    pub fn pending_len(&self) -> usize {
        self.queue.len()
    }

    /// Logical bytes of the queued (not yet dispatched) requests — the
    /// backlog the admission-control seam thresholds against,
    /// maintained incrementally (O(1) read).
    pub fn queued_bytes(&self) -> u64 {
        self.queued_bytes
    }

    /// Number of transfers currently occupying pipeline slots.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Number of transfer slots (1 under
    /// [`StreamModel::BandwidthMultiplier`]).
    pub fn stream_count(&self) -> usize {
        self.slots.len()
    }

    /// The currently loaded group.
    pub fn active_group(&self) -> Option<GroupId> {
        self.active_group
    }

    /// Run counters.
    pub fn metrics(&self) -> &DeviceMetrics {
        &self.metrics
    }

    /// Takes the run counters out of the device (end-of-run assembly).
    pub fn take_metrics(&mut self) -> DeviceMetrics {
        std::mem::take(&mut self.metrics)
    }

    /// Every completed transfer in service order: `(client, query,
    /// object)`. The multiset of entries is the device's work-conservation
    /// ledger — sharded fleets must deliver exactly the same multiset as
    /// a single device would.
    pub fn served_log(&self) -> &[(usize, QueryId, ObjectId)] {
        &self.served_log
    }

    /// Takes the delivery ledger out of the device (end-of-run assembly).
    pub fn take_served_log(&mut self) -> Vec<(usize, QueryId, ObjectId)> {
        std::mem::take(&mut self.served_log)
    }

    /// The control-stream activity trace: slot 0's transfers plus every
    /// switch span. The full per-slot picture is [`CsdDevice::traces`].
    pub fn trace(&self) -> &ActivityTrace {
        &self.traces[0]
    }

    /// Every slot's activity trace, in slot order. Spans are sequential
    /// within a slot and overlap across slots; stall attribution unions
    /// them (`skipper_sim::attribute_union`).
    pub fn traces(&self) -> &[ActivityTrace] {
        &self.traces
    }

    /// Takes the recorded spans out of every slot trace, in slot order
    /// (end-of-run assembly). Index 0 is the control stream (switches +
    /// slot-0 transfers); with one stream this is exactly the
    /// historical single span log.
    pub fn take_stream_spans(&mut self) -> Vec<Vec<Span>> {
        self.traces.iter_mut().map(|t| t.take_spans()).collect()
    }

    /// The configured delivery-ledger mode (callers layering extra
    /// ledgers — e.g. the shard cache's served log — follow it).
    pub fn ledger_mode(&self) -> LedgerMode {
        self.config.ledger_mode
    }

    /// The scheduler's report name.
    pub fn scheduler_name(&self) -> &'static str {
        self.scheduler.name()
    }

    /// Read access to the backing store.
    pub fn store(&self) -> &ObjectStore<P> {
        &self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::SchedPolicy;

    const MB: u64 = 1 << 20;

    /// 2 tenants × 2 objects, one group per tenant, 100 MB objects,
    /// 100 MB/s bandwidth (1 s per object), 10 s switches.
    fn device(policy: SchedPolicy) -> CsdDevice<&'static str> {
        device_with_streams(policy, 1)
    }

    fn device_with_streams(policy: SchedPolicy, streams: u32) -> CsdDevice<&'static str> {
        let mut store = ObjectStore::new();
        for t in 0..2u16 {
            for s in 0..2u32 {
                store.put(ObjectId::new(t, 0, s), 100 * MB, t as u32, "seg");
            }
        }
        CsdDevice::new(
            CsdConfig {
                switch_latency: SimDuration::from_secs(10),
                bandwidth_bytes_per_sec: (100 * MB) as f64,
                initial_load_free: true,
                parallel_streams: streams,
                stream_model: StreamModel::Pipeline,
                ..CsdConfig::default()
            },
            store,
            policy.build(),
            IntraGroupOrder::SemanticRoundRobin,
        )
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// Drives the device to quiescence, collecting `(time, delivery)`.
    fn drain(dev: &mut CsdDevice<&'static str>, mut now: SimTime) -> (SimTime, Vec<ObjectId>) {
        let mut served = Vec::new();
        while let Some(until) = dev.kick(now) {
            now = until;
            for d in dev.complete(now) {
                served.push(d.object);
            }
        }
        (now, served)
    }

    #[test]
    fn single_client_sees_no_switches() {
        let mut dev = device(SchedPolicy::RankBased);
        let q = QueryId::new(0, 0);
        dev.submit(
            t(0),
            0,
            q,
            &[ObjectId::new(0, 0, 0), ObjectId::new(0, 0, 1)],
        );
        // Initial load is free → first op is a 1 s transfer.
        let done = dev.kick(t(0)).unwrap();
        assert_eq!(done, t(1));
        let d = dev.complete(t(1));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].client, 0);
        assert_eq!(d[0].object.segment, 0); // semantic order: lowest segment first
        let done = dev.kick(t(1)).unwrap();
        assert_eq!(done, t(2));
        let d = dev.complete(t(2));
        assert_eq!(d[0].object.segment, 1);
        assert!(dev.kick(t(2)).is_none());
        assert!(dev.is_quiescent());
        assert_eq!(dev.metrics().group_switches, 0);
        assert_eq!(dev.metrics().initial_loads, 1);
        assert_eq!(dev.metrics().objects_served, 2);
    }

    #[test]
    fn two_clients_force_one_switch_with_batching() {
        let mut dev = device(SchedPolicy::RankBased);
        dev.submit(
            t(0),
            0,
            QueryId::new(0, 0),
            &[ObjectId::new(0, 0, 0), ObjectId::new(0, 0, 1)],
        );
        dev.submit(
            t(0),
            1,
            QueryId::new(1, 0),
            &[ObjectId::new(1, 0, 0), ObjectId::new(1, 0, 1)],
        );
        let mut now = t(0);
        let mut deliveries = Vec::new();
        while let Some(until) = dev.kick(now) {
            now = until;
            deliveries.extend(dev.complete(now));
        }
        assert_eq!(deliveries.len(), 4);
        // Batched: both of client 0's objects, then a single switch, then
        // both of client 1's.
        assert_eq!(dev.metrics().group_switches, 1);
        assert_eq!(deliveries[0].client, deliveries[1].client);
        assert_eq!(deliveries[2].client, deliveries[3].client);
        assert_ne!(deliveries[0].client, deliveries[2].client);
        // Total: 2×1 s + 10 s switch + 2×1 s = 14 s.
        assert_eq!(now, t(14));
    }

    #[test]
    fn object_fcfs_ping_pongs_between_groups() {
        let mut dev = device(SchedPolicy::FcfsObject);
        // Interleaved arrival: c0/s0, c1/s0, c0/s1, c1/s1.
        dev.submit(t(0), 0, QueryId::new(0, 0), &[ObjectId::new(0, 0, 0)]);
        dev.submit(t(0), 1, QueryId::new(1, 0), &[ObjectId::new(1, 0, 0)]);
        dev.submit(t(0), 0, QueryId::new(0, 0), &[ObjectId::new(0, 0, 1)]);
        dev.submit(t(0), 1, QueryId::new(1, 0), &[ObjectId::new(1, 0, 1)]);
        let (now, _) = drain(&mut dev, t(0));
        // Strict arrival order forces 3 switches (0→1→0→1) vs 1 for the
        // batching schedulers — the §4.4 pathology.
        assert_eq!(dev.metrics().group_switches, 3);
        assert_eq!(now, t(4 + 30));
    }

    #[test]
    fn switch_latency_respected() {
        let mut dev = device(SchedPolicy::MaxQueries);
        dev.submit(t(0), 1, QueryId::new(1, 0), &[ObjectId::new(1, 0, 0)]);
        // Free initial load lands on group 1 directly.
        let until = dev.kick(t(0)).unwrap();
        assert_eq!(until, t(1));
        dev.complete(t(1));
        // New work on group 0 arrives: now a paid switch.
        dev.submit(t(1), 0, QueryId::new(0, 0), &[ObjectId::new(0, 0, 0)]);
        let until = dev.kick(t(1)).unwrap();
        assert_eq!(until, t(11)); // 10 s switch
        assert!(dev.complete(t(11)).is_empty());
        assert_eq!(dev.active_group(), Some(0));
        let until = dev.kick(t(11)).unwrap();
        assert_eq!(until, t(12));
        assert_eq!(dev.complete(t(12)).len(), 1);
    }

    #[test]
    fn trace_records_switch_and_transfer_spans() {
        let mut dev = device(SchedPolicy::MaxQueries);
        dev.submit(t(0), 0, QueryId::new(0, 0), &[ObjectId::new(0, 0, 0)]);
        dev.submit(t(0), 1, QueryId::new(1, 0), &[ObjectId::new(1, 0, 0)]);
        let (now, _) = drain(&mut dev, t(0));
        let attr = dev.trace().attribute(t(0), now);
        assert_eq!(attr.switching, SimDuration::from_secs(10));
        assert_eq!(attr.transfer, SimDuration::from_secs(2));
    }

    #[test]
    fn intra_group_orders() {
        let mk = |table: u16, seg: u32, seq: u64| PendingRequest {
            object: ObjectId::new(0, table, seg),
            query: QueryId::new(0, 0),
            client: 0,
            group: 0,
            bytes: 0,
            arrival: SimTime::ZERO,
            seq,
        };
        let pending = vec![mk(0, 0, 0), mk(0, 1, 1), mk(1, 0, 2), mk(1, 1, 3)];
        let scope = vec![0, 1, 2, 3];
        // Semantic: A.0 then B.0 (segment-major).
        let first = IntraGroupOrder::SemanticRoundRobin.select(&pending, &scope);
        assert_eq!(pending[first].object, ObjectId::new(0, 0, 0));
        let scope_rest = vec![1, 2, 3];
        let second = IntraGroupOrder::SemanticRoundRobin.select(&pending, &scope_rest);
        assert_eq!(pending[second].object, ObjectId::new(0, 1, 0));
        // TableOrder: A.0 then A.1 (table-major).
        let second_naive = IntraGroupOrder::TableOrder.select(&pending, &scope_rest);
        assert_eq!(pending[second_naive].object, ObjectId::new(0, 0, 1));
        // Arrival order follows seq.
        let arr = IntraGroupOrder::ArrivalOrder.select(&pending, &[3, 2]);
        assert_eq!(pending[arr].object, ObjectId::new(0, 1, 0));
    }

    #[test]
    #[should_panic(expected = "unknown object")]
    fn unknown_object_rejected() {
        let mut dev = device(SchedPolicy::RankBased);
        dev.submit(t(0), 0, QueryId::new(0, 0), &[ObjectId::new(9, 9, 9)]);
    }

    #[test]
    #[should_panic(expected = "no operation in flight")]
    fn complete_without_op_panics() {
        let mut dev = device(SchedPolicy::RankBased);
        dev.complete(t(0));
    }

    #[test]
    #[should_panic(expected = "parallel_streams must be >= 1")]
    fn zero_streams_rejected() {
        device_with_streams(SchedPolicy::RankBased, 0);
    }

    #[test]
    fn pipeline_overlaps_intra_group_transfers() {
        // 4 objects on one group, 2 streams: pairs of 1 s transfers
        // overlap → 2 s total instead of the serial 4 s.
        let mut store = ObjectStore::new();
        for s in 0..4u32 {
            store.put(ObjectId::new(0, 0, s), 100 * MB, 0, "seg");
        }
        let mut dev: CsdDevice<&'static str> = CsdDevice::new(
            CsdConfig {
                switch_latency: SimDuration::from_secs(10),
                bandwidth_bytes_per_sec: (100 * MB) as f64,
                initial_load_free: true,
                parallel_streams: 2,
                stream_model: StreamModel::Pipeline,
                ..CsdConfig::default()
            },
            store,
            SchedPolicy::RankBased.build(),
            IntraGroupOrder::SemanticRoundRobin,
        );
        let objs: Vec<ObjectId> = (0..4).map(|s| ObjectId::new(0, 0, s)).collect();
        dev.submit(t(0), 0, QueryId::new(0, 0), &objs);
        let first = dev.kick(t(0)).unwrap();
        assert_eq!(first, t(1));
        assert_eq!(dev.in_flight(), 2);
        // Both streams complete at t=1: one wake-up retires both.
        let batch = dev.complete(t(1));
        assert_eq!(batch.len(), 2);
        let (now, _) = drain(&mut dev, t(1));
        assert_eq!(now, t(2), "two stream-pairs of 1 s each");
        assert_eq!(dev.metrics().objects_served, 4);
        assert_eq!(dev.metrics().peak_concurrent_streams, 2);
        // 4 stream-seconds of transfer over 2 wall seconds.
        assert_eq!(dev.metrics().transfer_busy_micros, 4_000_000);
        // Slot traces: 2 s of transfer in each slot, overlapping in
        // wall time (adjacent same-client spans coalesce per slot).
        assert_eq!(dev.traces().len(), 2);
        for tr in dev.traces() {
            assert_eq!(tr.attribute(t(0), t(2)).transfer, SimDuration::from_secs(2));
        }
    }

    #[test]
    fn switch_begins_the_instant_the_pipe_drains() {
        // Client 0: two 1 s objects on group 0; client 1: one on group 1.
        // With 2 streams both of client 0's transfers overlap in [0,1);
        // the switch must begin at exactly t=1 (no idle gap at the
        // drain→switch seam), finishing at t=11.
        let mut dev = device_with_streams(SchedPolicy::FcfsQuery, 2);
        dev.submit(
            t(0),
            0,
            QueryId::new(0, 0),
            &[ObjectId::new(0, 0, 0), ObjectId::new(0, 0, 1)],
        );
        dev.submit(t(0), 1, QueryId::new(1, 0), &[ObjectId::new(1, 0, 0)]);
        let first = dev.kick(t(0)).unwrap();
        assert_eq!(first, t(1));
        assert_eq!(dev.in_flight(), 2);
        let batch = dev.complete(t(1));
        assert_eq!(batch.len(), 2, "both group-0 transfers retire together");
        let until = dev.kick(t(1)).unwrap();
        assert_eq!(until, t(11), "switch spans [1, 11) with no idle gap");
        assert!(dev.complete(t(11)).is_empty());
        assert_eq!(dev.active_group(), Some(1));
        let (now, _) = drain(&mut dev, t(11));
        assert_eq!(now, t(12));
        // Trace confirms the seam: switch span starts exactly at drain.
        let switching: Vec<_> = dev
            .trace()
            .spans()
            .iter()
            .filter(|s| s.activity == Activity::Switching)
            .collect();
        assert_eq!(switching.len(), 1);
        assert_eq!(switching[0].start, t(1));
        assert_eq!(switching[0].end, t(11));
    }

    #[test]
    fn armed_switch_blocks_new_dispatches() {
        // FCFS-object with 2 streams: oldest is on group 0, second
        // oldest on group 1. Slot 0 takes the group-0 transfer; the
        // next grant is a switch (armed, pipe draining) and the second
        // slot must stay empty.
        let mut dev = device_with_streams(SchedPolicy::FcfsObject, 2);
        dev.submit(t(0), 0, QueryId::new(0, 0), &[ObjectId::new(0, 0, 0)]);
        dev.submit(t(0), 1, QueryId::new(1, 0), &[ObjectId::new(1, 0, 0)]);
        dev.submit(t(0), 0, QueryId::new(0, 1), &[ObjectId::new(0, 0, 1)]);
        let first = dev.kick(t(0)).unwrap();
        assert_eq!(first, t(1));
        assert_eq!(dev.in_flight(), 1, "armed switch must stop dispatching");
        dev.complete(t(1));
        // Switch to group 1 spans [1, 11).
        assert_eq!(dev.kick(t(1)), Some(t(11)));
        assert_eq!(dev.metrics().group_switches, 1);
    }

    #[test]
    fn bandwidth_multiplier_compat_mode_stays_serial() {
        // The legacy model: one slot, bandwidth × streams.
        let mut store = ObjectStore::new();
        for s in 0..4u32 {
            store.put(ObjectId::new(0, 0, s), 100 * MB, 0, "seg");
        }
        let mut dev: CsdDevice<&'static str> = CsdDevice::new(
            CsdConfig {
                switch_latency: SimDuration::from_secs(10),
                bandwidth_bytes_per_sec: (100 * MB) as f64,
                initial_load_free: true,
                parallel_streams: 4,
                stream_model: StreamModel::BandwidthMultiplier,
                ..CsdConfig::default()
            },
            store,
            SchedPolicy::RankBased.build(),
            IntraGroupOrder::SemanticRoundRobin,
        );
        assert_eq!(dev.stream_count(), 1);
        let objs: Vec<ObjectId> = (0..4).map(|s| ObjectId::new(0, 0, s)).collect();
        dev.submit(t(0), 0, QueryId::new(0, 0), &objs);
        let mut now = t(0);
        let mut completions = 0;
        while let Some(until) = dev.kick(now) {
            now = until;
            completions += dev.complete(now).len();
            assert!(dev.in_flight() <= 1, "multiplier mode must stay serial");
        }
        // 4 objects × 0.25 s each at 4× service bandwidth = 1 s total,
        // delivered one at a time.
        assert_eq!(now, t(1));
        assert_eq!(completions, 4);
        assert_eq!(dev.metrics().objects_served, 4);
        assert_eq!(dev.metrics().peak_concurrent_streams, 1);
    }

    #[test]
    fn pipeline_matches_multiplier_makespan_on_saturated_queue() {
        // With the queue saturated the two models agree on total
        // intra-group service time: 4 × 1 s over 4 streams = 1 s.
        let mut store = ObjectStore::new();
        for s in 0..4u32 {
            store.put(ObjectId::new(0, 0, s), 100 * MB, 0, "seg");
        }
        let mut dev: CsdDevice<&'static str> = CsdDevice::new(
            CsdConfig {
                switch_latency: SimDuration::from_secs(10),
                bandwidth_bytes_per_sec: (100 * MB) as f64,
                initial_load_free: true,
                parallel_streams: 4,
                stream_model: StreamModel::Pipeline,
                ..CsdConfig::default()
            },
            store,
            SchedPolicy::RankBased.build(),
            IntraGroupOrder::SemanticRoundRobin,
        );
        let objs: Vec<ObjectId> = (0..4).map(|s| ObjectId::new(0, 0, s)).collect();
        dev.submit(t(0), 0, QueryId::new(0, 0), &objs);
        let (now, _) = drain(&mut dev, t(0));
        assert_eq!(now, t(1));
        assert_eq!(dev.metrics().objects_served, 4);
        assert_eq!(dev.metrics().peak_concurrent_streams, 4);
    }

    #[test]
    fn residency_snapshot_excludes_mid_residency_arrivals() {
        // Client 0's query is being served on group 0; client 1 submits
        // for group 1; then client 0 submits MORE work for group 0. The
        // new group-0 work must wait until after group 1 is served (it
        // arrived after the residency snapshot).
        let mut dev = device(SchedPolicy::RankBased);
        dev.submit(t(0), 0, QueryId::new(0, 0), &[ObjectId::new(0, 0, 0)]);
        let until = dev.kick(t(0)).unwrap(); // serving c0/s0 on group 0
        dev.submit(t(0), 1, QueryId::new(1, 0), &[ObjectId::new(1, 0, 0)]);
        dev.submit(t(0), 0, QueryId::new(0, 1), &[ObjectId::new(0, 0, 1)]);
        let mut order = Vec::new();
        let mut now = until;
        loop {
            for d in dev.complete(now) {
                order.push(d.query);
            }
            match dev.kick(now) {
                Some(u) => now = u,
                None => break,
            }
        }
        assert_eq!(
            order,
            vec![QueryId::new(0, 0), QueryId::new(1, 0), QueryId::new(0, 1)],
            "post-snapshot work must not preempt the waiting group"
        );
        assert_eq!(dev.metrics().group_switches, 2);
    }

    #[test]
    fn requests_submitted_counts_reissues() {
        let mut dev = device(SchedPolicy::RankBased);
        let obj = ObjectId::new(0, 0, 0);
        dev.submit(t(0), 0, QueryId::new(0, 0), &[obj]);
        let (now, _) = drain(&mut dev, t(0));
        dev.submit(now, 0, QueryId::new(0, 0), &[obj]); // reissue
        drain(&mut dev, now);
        assert_eq!(dev.metrics().requests_submitted, 2);
        assert_eq!(dev.metrics().objects_served, 2);
        assert_eq!(dev.metrics().served_to(0), 2);
    }

    #[test]
    fn served_log_records_every_transfer_in_order() {
        let mut dev = device(SchedPolicy::RankBased);
        dev.submit(
            t(0),
            0,
            QueryId::new(0, 0),
            &[ObjectId::new(0, 0, 0), ObjectId::new(0, 0, 1)],
        );
        drain(&mut dev, t(0));
        assert_eq!(
            dev.served_log(),
            &[
                (0, QueryId::new(0, 0), ObjectId::new(0, 0, 0)),
                (0, QueryId::new(0, 0), ObjectId::new(0, 0, 1)),
            ]
        );
    }

    #[test]
    fn streams_one_matches_the_serial_event_schedule() {
        // The collapse contract: a 1-stream pipeline reproduces the
        // serial machine's exact completion instants and span log on a
        // switch-heavy workload.
        let run = |streams: u32| {
            let mut dev = device_with_streams(SchedPolicy::RankBased, streams);
            dev.submit(
                t(0),
                0,
                QueryId::new(0, 0),
                &[ObjectId::new(0, 0, 0), ObjectId::new(0, 0, 1)],
            );
            dev.submit(
                t(0),
                1,
                QueryId::new(1, 0),
                &[ObjectId::new(1, 0, 0), ObjectId::new(1, 0, 1)],
            );
            let mut instants = Vec::new();
            let mut now = t(0);
            while let Some(until) = dev.kick(now) {
                now = until;
                instants.push((now, dev.complete(now).len()));
            }
            let spans = dev.take_stream_spans();
            (instants, spans)
        };
        let (serial, serial_spans) = run(1);
        assert_eq!(
            serial,
            vec![(t(1), 1), (t(2), 1), (t(12), 0), (t(13), 1), (t(14), 1)]
        );
        // One slot trace: coalesced transfer [0,2), switch [2,12),
        // coalesced transfer [12,14) — the historical span log.
        assert_eq!(serial_spans.len(), 1);
        assert_eq!(serial_spans[0].len(), 3);
    }
}
