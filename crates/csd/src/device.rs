//! The CSD device state machine.
//!
//! Models the paper's emulated cold storage device: a request queue in
//! front of a MAID array with one active disk group. The device is
//! event-driven and passive — the simulation driver calls [`CsdDevice::kick`]
//! whenever the device might have work (new requests, or an operation just
//! completed) and schedules a wake-up at the returned completion time.
//!
//! The lifecycle of one operation:
//!
//! ```text
//! kick(now) ──► scheduler.decide()
//!    │               │
//!    │          ServeActive ──► resolve the policy's ServeScope + the
//!    │               │          device's IntraGroupOrder in the queue,
//!    │               │          start Transfer, complete at now + bytes/BW
//!    │          SwitchTo(g) ──► start Switch, complete at now + S
//!    │               │          (first load of an idle array is free)
//!    │          Idle ───────► nothing pending
//!    ▼
//! complete(now) ──► Switch: activate group, notify scheduler
//!                   Transfer: pop payload, return Delivery to the driver
//! ```
//!
//! Serving never preempts: once a transfer starts it finishes; group
//! residency policy is entirely the scheduler's business via
//! [`GroupScheduler::serve_scope`].
//!
//! The pending queue is pluggable: the device is generic over
//! [`RequestIndex`] and defaults to the incrementally-indexed
//! [`RequestQueue`] (O(log n) per decision). The full-rescan
//! [`NaiveQueue`](crate::sched::NaiveQueue) plugs into the same slot for
//! differential testing and as the `skipper-bench --bin perf` baseline.

use skipper_sim::{Activity, ActivityTrace, SimDuration, SimTime};

use crate::metrics::DeviceMetrics;
use crate::object::{GroupId, ObjectId, QueryId};
use crate::sched::{Decision, GroupScheduler, PendingRequest, RequestIndex, RequestQueue};
use crate::store::{transfer_time, ObjectStore};
use skipper_sim::trace::Span;

/// Device parameters.
#[derive(Clone, Copy, Debug)]
pub struct CsdConfig {
    /// Group switch latency `S` (Pelican: 8 s; the paper's experiments
    /// use 10 s by default and sweep 0-40 s).
    pub switch_latency: SimDuration,
    /// Object streaming bandwidth in bytes/s. Non-positive or non-finite
    /// means transfers are free (used by the "local disk" configuration of
    /// the Table 3 component breakdown).
    pub bandwidth_bytes_per_sec: f64,
    /// Whether the very first group load costs nothing (the array always
    /// has *some* group spinning; matching the paper where a lone client
    /// with a one-group layout sees zero switches).
    pub initial_load_free: bool,
    /// Concurrent transfer streams while a group is loaded. The paper's
    /// prototype middleware serialized request servicing (streams = 1)
    /// and its §5.2.1 notes that "by parallelizing the servicing of
    /// requests within a group, we can reduce transfer time
    /// substantially" — the spun-up disk group itself sustains
    /// 1-2 GB/s. Values > 1 model that improvement as a bandwidth
    /// multiplier on intra-group service.
    pub parallel_streams: u32,
}

impl Default for CsdConfig {
    fn default() -> Self {
        CsdConfig {
            switch_latency: SimDuration::from_secs(10),
            // ~110 MB/s: the effective per-object streaming rate implied by
            // the paper's Table 3 (57 GB transferred in ~550 s through the
            // serializing Swift middleware).
            bandwidth_bytes_per_sec: 110.0 * 1024.0 * 1024.0,
            initial_load_free: true,
            parallel_streams: 1,
        }
    }
}

/// How the device orders requests *within* the loaded group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IntraGroupOrder {
    /// Semantically-smart ordering (§4.4): round-robin across a query's
    /// tables (A.1, B.1, C.1, A.2, B.2, C.2, ...) so MJoin can complete
    /// subplans early and evict aggressively.
    SemanticRoundRobin,
    /// Naive per-table ordering (all of A, then all of B, ...): the
    /// pathological case for cache-constrained MJoin, used in ablations.
    TableOrder,
    /// Strict arrival order.
    ArrivalOrder,
}

impl IntraGroupOrder {
    /// The total service-order key of one request: the policy's sort
    /// components followed by the arrival sequence number, so keys are
    /// unique and ties always break FIFO. The indexed
    /// [`RequestQueue`](crate::sched::RequestQueue) keeps its per-group
    /// sub-queues sorted by exactly this key.
    pub fn key(self, r: &PendingRequest) -> (u32, u32, u32, u64) {
        match self {
            // Segment-major: (seg, table) walks A.1,B.1,C.1,A.2,...
            IntraGroupOrder::SemanticRoundRobin => (
                r.object.segment,
                r.object.table as u32,
                r.object.tenant as u32,
                r.seq,
            ),
            // Table-major: (table, seg) drains A entirely first.
            IntraGroupOrder::TableOrder => (
                r.object.table as u32,
                r.object.segment,
                r.object.tenant as u32,
                r.seq,
            ),
            IntraGroupOrder::ArrivalOrder => (0, 0, 0, r.seq),
        }
    }

    /// Picks which of the in-scope pending requests to serve next.
    ///
    /// # Panics
    /// Panics if `scope` is empty — the device only asks when the
    /// scheduler granted a non-empty scope.
    pub fn select(self, pending: &[PendingRequest], scope: &[usize]) -> usize {
        assert!(!scope.is_empty(), "intra-group selection over empty scope");
        *scope
            .iter()
            .min_by_key(|&&i| self.key(&pending[i]))
            .expect("non-empty scope")
    }
}

/// A completed object transfer handed back to the driver.
#[derive(Clone, Debug)]
pub struct Delivery<P> {
    /// Receiving client.
    pub client: usize,
    /// The query the GET belonged to.
    pub query: QueryId,
    /// The delivered object.
    pub object: ObjectId,
    /// The object payload (cloned out of the store; `Arc` in practice).
    pub payload: P,
}

/// The in-flight operation.
#[derive(Clone, Debug)]
enum Op {
    Switch {
        target: GroupId,
        until: SimTime,
    },
    Transfer {
        request: PendingRequest,
        until: SimTime,
    },
}

/// The cold storage device: request queue + MAID state machine.
///
/// Generic over the pending-queue implementation `Q` (default: the
/// indexed [`RequestQueue`]).
pub struct CsdDevice<P, Q: RequestIndex = RequestQueue> {
    config: CsdConfig,
    store: ObjectStore<P>,
    scheduler: Box<dyn GroupScheduler>,
    queue: Q,
    active_group: Option<GroupId>,
    op: Option<Op>,
    next_seq: u64,
    trace: ActivityTrace,
    metrics: DeviceMetrics,
    served_log: Vec<(usize, QueryId, ObjectId)>,
}

impl<P: Clone, Q: RequestIndex> CsdDevice<P, Q> {
    /// Creates a device over `store` with the given scheduler and
    /// intra-group ordering.
    pub fn new(
        config: CsdConfig,
        store: ObjectStore<P>,
        scheduler: Box<dyn GroupScheduler>,
        intra: IntraGroupOrder,
    ) -> Self {
        CsdDevice {
            config,
            store,
            scheduler,
            queue: Q::new(intra),
            active_group: None,
            op: None,
            next_seq: 0,
            trace: ActivityTrace::new(),
            metrics: DeviceMetrics::default(),
            served_log: Vec::new(),
        }
    }

    /// Enqueues GET requests from `client` tagged with `query`. Call
    /// [`CsdDevice::kick`] afterwards to (re)start the device.
    ///
    /// # Panics
    /// Panics if an object is not stored — requesting unknown objects is
    /// a harness bug.
    pub fn submit(&mut self, now: SimTime, client: usize, query: QueryId, objects: &[ObjectId]) {
        for &object in objects {
            let meta = self
                .store
                .meta(object)
                .unwrap_or_else(|| panic!("GET for unknown object {object}"));
            self.queue.insert(PendingRequest {
                object,
                query,
                client,
                group: meta.group,
                arrival: now,
                seq: self.next_seq,
            });
            self.next_seq += 1;
            self.metrics.requests_submitted += 1;
        }
    }

    /// If the device is idle, consults the scheduler and starts the next
    /// operation. Returns the completion time of the operation now in
    /// flight (whether just started or pre-existing), or `None` if the
    /// device is idle with nothing to do.
    pub fn kick(&mut self, now: SimTime) -> Option<SimTime> {
        if let Some(op) = &self.op {
            return Some(match op {
                Op::Switch { until, .. } | Op::Transfer { until, .. } => *until,
            });
        }
        loop {
            match self.scheduler.decide(&self.queue, self.active_group) {
                Decision::Idle => return None,
                Decision::ServeActive => {
                    let active = self
                        .active_group
                        .expect("ServeActive requires a loaded group");
                    let scope = self.scheduler.serve_scope();
                    let seq = match self.queue.select(scope, active) {
                        Some(seq) => seq,
                        None => {
                            // The residency drained but the scheduler
                            // re-picked this group: start a fresh
                            // residency over the current queue without
                            // paying a switch.
                            self.queue.arm_residency(active);
                            self.queue.select(scope, active).unwrap_or_else(|| {
                                panic!(
                                    "scheduler {} returned ServeActive with empty scope",
                                    self.scheduler.name()
                                )
                            })
                        }
                    };
                    let request = self.queue.remove(seq);
                    debug_assert_eq!(request.group, active, "serving off-group request");
                    let bytes = self
                        .store
                        .meta(request.object)
                        .expect("submitted object exists")
                        .logical_bytes;
                    let streams = self.config.parallel_streams.max(1) as f64;
                    let until =
                        now + transfer_time(bytes, self.config.bandwidth_bytes_per_sec * streams);
                    self.trace.record(
                        now,
                        until,
                        Activity::Transferring {
                            client: request.client,
                        },
                    );
                    self.op = Some(Op::Transfer { request, until });
                    return Some(until);
                }
                Decision::SwitchTo(target) => {
                    assert_ne!(
                        Some(target),
                        self.active_group,
                        "scheduler {} switched to the already-active group",
                        self.scheduler.name()
                    );
                    if self.active_group.is_none() && self.config.initial_load_free {
                        // The array always has some group spinning; treat
                        // the first load as free and re-decide.
                        self.active_group = Some(target);
                        self.metrics.initial_loads += 1;
                        self.scheduler.on_switch_complete(&self.queue, target);
                        self.queue.arm_residency(target);
                        continue;
                    }
                    let until = now + self.config.switch_latency;
                    self.trace.record(now, until, Activity::Switching);
                    self.metrics.group_switches += 1;
                    self.op = Some(Op::Switch { target, until });
                    return Some(until);
                }
            }
        }
    }

    /// Completes the operation due at `now`. Returns a [`Delivery`] when a
    /// transfer finished; the caller should then deliver it and call
    /// [`CsdDevice::kick`] again.
    ///
    /// # Panics
    /// Panics if no operation is in flight or the completion time does not
    /// match — the event loop must be in lock-step with the device.
    pub fn complete(&mut self, now: SimTime) -> Option<Delivery<P>> {
        let op = self
            .op
            .take()
            .expect("complete() with no operation in flight");
        match op {
            Op::Switch { target, until } => {
                assert_eq!(until, now, "switch completion out of step");
                self.active_group = Some(target);
                self.scheduler.on_switch_complete(&self.queue, target);
                self.queue.arm_residency(target);
                None
            }
            Op::Transfer { request, until } => {
                assert_eq!(until, now, "transfer completion out of step");
                let meta = *self.store.meta(request.object).expect("object exists");
                self.metrics.objects_served += 1;
                self.metrics.logical_bytes_served += meta.logical_bytes;
                *self
                    .metrics
                    .served_per_client
                    .entry(request.client)
                    .or_default() += 1;
                self.served_log
                    .push((request.client, request.query, request.object));
                let payload = self
                    .store
                    .get(request.object)
                    .expect("object exists")
                    .clone();
                Some(Delivery {
                    client: request.client,
                    query: request.query,
                    object: request.object,
                    payload,
                })
            }
        }
    }

    /// True when no operation is in flight and the queue is empty.
    pub fn is_quiescent(&self) -> bool {
        self.op.is_none() && self.queue.is_empty()
    }

    /// Number of queued (not yet served) requests.
    pub fn pending_len(&self) -> usize {
        self.queue.len()
    }

    /// The currently loaded group.
    pub fn active_group(&self) -> Option<GroupId> {
        self.active_group
    }

    /// Run counters.
    pub fn metrics(&self) -> &DeviceMetrics {
        &self.metrics
    }

    /// Takes the run counters out of the device (end-of-run assembly).
    pub fn take_metrics(&mut self) -> DeviceMetrics {
        std::mem::take(&mut self.metrics)
    }

    /// Every completed transfer in service order: `(client, query,
    /// object)`. The multiset of entries is the device's work-conservation
    /// ledger — sharded fleets must deliver exactly the same multiset as
    /// a single device would.
    pub fn served_log(&self) -> &[(usize, QueryId, ObjectId)] {
        &self.served_log
    }

    /// Takes the delivery ledger out of the device (end-of-run assembly).
    pub fn take_served_log(&mut self) -> Vec<(usize, QueryId, ObjectId)> {
        std::mem::take(&mut self.served_log)
    }

    /// The activity trace (switch/transfer spans) for stall attribution.
    pub fn trace(&self) -> &ActivityTrace {
        &self.trace
    }

    /// Takes the recorded activity spans out of the device (end-of-run
    /// assembly).
    pub fn take_spans(&mut self) -> Vec<Span> {
        self.trace.take_spans()
    }

    /// The scheduler's report name.
    pub fn scheduler_name(&self) -> &'static str {
        self.scheduler.name()
    }

    /// Read access to the backing store.
    pub fn store(&self) -> &ObjectStore<P> {
        &self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::SchedPolicy;

    const MB: u64 = 1 << 20;

    /// 2 tenants × 2 objects, one group per tenant, 100 MB objects,
    /// 100 MB/s bandwidth (1 s per object), 10 s switches.
    fn device(policy: SchedPolicy) -> CsdDevice<&'static str> {
        let mut store = ObjectStore::new();
        for t in 0..2u16 {
            for s in 0..2u32 {
                store.put(ObjectId::new(t, 0, s), 100 * MB, t as u32, "seg");
            }
        }
        CsdDevice::new(
            CsdConfig {
                switch_latency: SimDuration::from_secs(10),
                bandwidth_bytes_per_sec: (100 * MB) as f64,
                initial_load_free: true,
                parallel_streams: 1,
            },
            store,
            policy.build(),
            IntraGroupOrder::SemanticRoundRobin,
        )
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn single_client_sees_no_switches() {
        let mut dev = device(SchedPolicy::RankBased);
        let q = QueryId::new(0, 0);
        dev.submit(
            t(0),
            0,
            q,
            &[ObjectId::new(0, 0, 0), ObjectId::new(0, 0, 1)],
        );
        // Initial load is free → first op is a 1 s transfer.
        let done = dev.kick(t(0)).unwrap();
        assert_eq!(done, t(1));
        let d = dev.complete(t(1)).unwrap();
        assert_eq!(d.client, 0);
        assert_eq!(d.object.segment, 0); // semantic order: lowest segment first
        let done = dev.kick(t(1)).unwrap();
        assert_eq!(done, t(2));
        let d = dev.complete(t(2)).unwrap();
        assert_eq!(d.object.segment, 1);
        assert!(dev.kick(t(2)).is_none());
        assert!(dev.is_quiescent());
        assert_eq!(dev.metrics().group_switches, 0);
        assert_eq!(dev.metrics().initial_loads, 1);
        assert_eq!(dev.metrics().objects_served, 2);
    }

    #[test]
    fn two_clients_force_one_switch_with_batching() {
        let mut dev = device(SchedPolicy::RankBased);
        dev.submit(
            t(0),
            0,
            QueryId::new(0, 0),
            &[ObjectId::new(0, 0, 0), ObjectId::new(0, 0, 1)],
        );
        dev.submit(
            t(0),
            1,
            QueryId::new(1, 0),
            &[ObjectId::new(1, 0, 0), ObjectId::new(1, 0, 1)],
        );
        let mut now = t(0);
        let mut deliveries = Vec::new();
        while let Some(until) = dev.kick(now) {
            now = until;
            if let Some(d) = dev.complete(now) {
                deliveries.push(d);
            }
        }
        assert_eq!(deliveries.len(), 4);
        // Batched: both of client 0's objects, then a single switch, then
        // both of client 1's.
        assert_eq!(dev.metrics().group_switches, 1);
        assert_eq!(deliveries[0].client, deliveries[1].client);
        assert_eq!(deliveries[2].client, deliveries[3].client);
        assert_ne!(deliveries[0].client, deliveries[2].client);
        // Total: 2×1 s + 10 s switch + 2×1 s = 14 s.
        assert_eq!(now, t(14));
    }

    #[test]
    fn object_fcfs_ping_pongs_between_groups() {
        let mut dev = device(SchedPolicy::FcfsObject);
        // Interleaved arrival: c0/s0, c1/s0, c0/s1, c1/s1.
        dev.submit(t(0), 0, QueryId::new(0, 0), &[ObjectId::new(0, 0, 0)]);
        dev.submit(t(0), 1, QueryId::new(1, 0), &[ObjectId::new(1, 0, 0)]);
        dev.submit(t(0), 0, QueryId::new(0, 0), &[ObjectId::new(0, 0, 1)]);
        dev.submit(t(0), 1, QueryId::new(1, 0), &[ObjectId::new(1, 0, 1)]);
        let mut now = t(0);
        while let Some(until) = dev.kick(now) {
            now = until;
            dev.complete(now);
        }
        // Strict arrival order forces 3 switches (0→1→0→1) vs 1 for the
        // batching schedulers — the §4.4 pathology.
        assert_eq!(dev.metrics().group_switches, 3);
        assert_eq!(now, t(4 + 30));
    }

    #[test]
    fn switch_latency_respected() {
        let mut dev = device(SchedPolicy::MaxQueries);
        dev.submit(t(0), 1, QueryId::new(1, 0), &[ObjectId::new(1, 0, 0)]);
        // Free initial load lands on group 1 directly.
        let until = dev.kick(t(0)).unwrap();
        assert_eq!(until, t(1));
        dev.complete(t(1));
        // New work on group 0 arrives: now a paid switch.
        dev.submit(t(1), 0, QueryId::new(0, 0), &[ObjectId::new(0, 0, 0)]);
        let until = dev.kick(t(1)).unwrap();
        assert_eq!(until, t(11)); // 10 s switch
        assert!(dev.complete(t(11)).is_none());
        assert_eq!(dev.active_group(), Some(0));
        let until = dev.kick(t(11)).unwrap();
        assert_eq!(until, t(12));
        assert!(dev.complete(t(12)).is_some());
    }

    #[test]
    fn trace_records_switch_and_transfer_spans() {
        let mut dev = device(SchedPolicy::MaxQueries);
        dev.submit(t(0), 0, QueryId::new(0, 0), &[ObjectId::new(0, 0, 0)]);
        dev.submit(t(0), 1, QueryId::new(1, 0), &[ObjectId::new(1, 0, 0)]);
        let mut now = t(0);
        while let Some(until) = dev.kick(now) {
            now = until;
            dev.complete(now);
        }
        let attr = dev.trace().attribute(t(0), now);
        assert_eq!(attr.switching, SimDuration::from_secs(10));
        assert_eq!(attr.transfer, SimDuration::from_secs(2));
    }

    #[test]
    fn intra_group_orders() {
        let mk = |table: u16, seg: u32, seq: u64| PendingRequest {
            object: ObjectId::new(0, table, seg),
            query: QueryId::new(0, 0),
            client: 0,
            group: 0,
            arrival: SimTime::ZERO,
            seq,
        };
        let pending = vec![mk(0, 0, 0), mk(0, 1, 1), mk(1, 0, 2), mk(1, 1, 3)];
        let scope = vec![0, 1, 2, 3];
        // Semantic: A.0 then B.0 (segment-major).
        let first = IntraGroupOrder::SemanticRoundRobin.select(&pending, &scope);
        assert_eq!(pending[first].object, ObjectId::new(0, 0, 0));
        let scope_rest = vec![1, 2, 3];
        let second = IntraGroupOrder::SemanticRoundRobin.select(&pending, &scope_rest);
        assert_eq!(pending[second].object, ObjectId::new(0, 1, 0));
        // TableOrder: A.0 then A.1 (table-major).
        let second_naive = IntraGroupOrder::TableOrder.select(&pending, &scope_rest);
        assert_eq!(pending[second_naive].object, ObjectId::new(0, 0, 1));
        // Arrival order follows seq.
        let arr = IntraGroupOrder::ArrivalOrder.select(&pending, &[3, 2]);
        assert_eq!(pending[arr].object, ObjectId::new(0, 1, 0));
    }

    #[test]
    #[should_panic(expected = "unknown object")]
    fn unknown_object_rejected() {
        let mut dev = device(SchedPolicy::RankBased);
        dev.submit(t(0), 0, QueryId::new(0, 0), &[ObjectId::new(9, 9, 9)]);
    }

    #[test]
    #[should_panic(expected = "no operation in flight")]
    fn complete_without_op_panics() {
        let mut dev = device(SchedPolicy::RankBased);
        dev.complete(t(0));
    }

    #[test]
    fn parallel_streams_scale_intra_group_bandwidth() {
        let mut store = ObjectStore::new();
        for s in 0..4u32 {
            store.put(ObjectId::new(0, 0, s), 100 * MB, 0, "seg");
        }
        let mut dev: CsdDevice<&'static str> = CsdDevice::new(
            CsdConfig {
                switch_latency: SimDuration::from_secs(10),
                bandwidth_bytes_per_sec: (100 * MB) as f64,
                initial_load_free: true,
                parallel_streams: 4,
            },
            store,
            SchedPolicy::RankBased.build(),
            IntraGroupOrder::SemanticRoundRobin,
        );
        let objs: Vec<ObjectId> = (0..4).map(|s| ObjectId::new(0, 0, s)).collect();
        dev.submit(t(0), 0, QueryId::new(0, 0), &objs);
        let mut now = t(0);
        while let Some(until) = dev.kick(now) {
            now = until;
            dev.complete(now);
        }
        // 4 objects x 1 s each at 4x service bandwidth = 1 s total.
        assert_eq!(now, t(1));
        assert_eq!(dev.metrics().objects_served, 4);
    }

    #[test]
    fn residency_snapshot_excludes_mid_residency_arrivals() {
        // Client 0's query is being served on group 0; client 1 submits
        // for group 1; then client 0 submits MORE work for group 0. The
        // new group-0 work must wait until after group 1 is served (it
        // arrived after the residency snapshot).
        let mut dev = device(SchedPolicy::RankBased);
        dev.submit(t(0), 0, QueryId::new(0, 0), &[ObjectId::new(0, 0, 0)]);
        let until = dev.kick(t(0)).unwrap(); // serving c0/s0 on group 0
        dev.submit(t(0), 1, QueryId::new(1, 0), &[ObjectId::new(1, 0, 0)]);
        dev.submit(t(0), 0, QueryId::new(0, 1), &[ObjectId::new(0, 0, 1)]);
        let mut order = Vec::new();
        let mut now = until;
        loop {
            if let Some(d) = dev.complete(now) {
                order.push(d.query);
            }
            match dev.kick(now) {
                Some(u) => now = u,
                None => break,
            }
        }
        assert_eq!(
            order,
            vec![QueryId::new(0, 0), QueryId::new(1, 0), QueryId::new(0, 1)],
            "post-snapshot work must not preempt the waiting group"
        );
        assert_eq!(dev.metrics().group_switches, 2);
    }

    #[test]
    fn requests_submitted_counts_reissues() {
        let mut dev = device(SchedPolicy::RankBased);
        let obj = ObjectId::new(0, 0, 0);
        dev.submit(t(0), 0, QueryId::new(0, 0), &[obj]);
        let mut now = t(0);
        while let Some(until) = dev.kick(now) {
            now = until;
            dev.complete(now);
        }
        dev.submit(now, 0, QueryId::new(0, 0), &[obj]); // reissue
        while let Some(until) = dev.kick(now) {
            now = until;
            dev.complete(now);
        }
        assert_eq!(dev.metrics().requests_submitted, 2);
        assert_eq!(dev.metrics().objects_served, 2);
        assert_eq!(dev.metrics().served_to(0), 2);
    }

    #[test]
    fn served_log_records_every_transfer_in_order() {
        let mut dev = device(SchedPolicy::RankBased);
        dev.submit(
            t(0),
            0,
            QueryId::new(0, 0),
            &[ObjectId::new(0, 0, 0), ObjectId::new(0, 0, 1)],
        );
        let mut now = t(0);
        while let Some(until) = dev.kick(now) {
            now = until;
            dev.complete(now);
        }
        assert_eq!(
            dev.served_log(),
            &[
                (0, QueryId::new(0, 0), ObjectId::new(0, 0, 0)),
                (0, QueryId::new(0, 0), ObjectId::new(0, 0, 1)),
            ]
        );
    }
}
