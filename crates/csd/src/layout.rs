//! Data placement across disk groups — and across devices.
//!
//! The database has no control over where a shared CSD places its data
//! (§3.2): the device may spread a tenant — or even a single relation —
//! across disk groups for load balancing, failure recovery or incremental
//! arrival. The experiments in §5.2.3 probe exactly this dimension with
//! four canned layouts, reproduced here, plus arbitrary custom maps.
//!
//! A production archive outgrows one CSD: [`PlacementPolicy`] is the
//! device-level analogue of [`LayoutPolicy`], deciding which *shard*
//! (device) of a fleet stores each object before the per-device group
//! layout is built.

use std::collections::HashMap;

use skipper_sim::rng::splitmix64;

use crate::object::{GroupId, ObjectId};

/// The canned placement policies of the paper's layout-sensitivity
/// experiment (Figure 11a), applied to per-tenant datasets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LayoutPolicy {
    /// `Allin1`: every tenant's data in one group — the no-switch ideal
    /// (also how the paper emulates the HDD capacity tier).
    AllInOne,
    /// `2perG`: two consecutive tenants share each group.
    TwoClientsPerGroup,
    /// `1perG`: each tenant gets a private group (the default layout of
    /// the scalability experiments).
    OneClientPerGroup,
    /// `Increm.`: each tenant's data is split in two halves stored on
    /// *different* groups, interleaved with its neighbours: group g holds
    /// the first half of tenant g and the second half of tenant g-1
    /// (C1.1+C4.2 / C1.2+C2.1 / ... in the paper's notation).
    Incremental,
}

impl LayoutPolicy {
    /// Human-readable label matching the paper's figure axis.
    pub fn label(self) -> &'static str {
        match self {
            LayoutPolicy::AllInOne => "Allin1",
            LayoutPolicy::TwoClientsPerGroup => "2perG",
            LayoutPolicy::OneClientPerGroup => "1perG",
            LayoutPolicy::Incremental => "Increm.",
        }
    }
}

/// How a fleet of CSD shards divides objects among devices.
///
/// Placement happens at layout time — before any request is issued — so
/// the shard map is a pure function of the stored object set, never of
/// runtime state. Every policy is deterministic: the same objects and
/// shard count always produce the same map.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Objects of each tenant alternate across shards in storage order
    /// (object `i` of a tenant lands on shard `i mod n`): spreads every
    /// tenant's working set over the whole fleet.
    RoundRobin,
    /// Shard chosen by a deterministic hash of the full object id:
    /// statistically balanced, placement-stable under object additions.
    HashObject,
    /// All segments of one `(tenant, table)` pair stay on one shard
    /// (range/table affinity): a tenant's scan touches few devices, at
    /// the price of coarser balance.
    TableAffinity,
    /// `k`-way replication: `base` places the *primary* shard and the
    /// remaining `k - 1` replicas land on the consecutively following
    /// shards (`(primary + r) mod shards` for `r` in `1..k`). The
    /// primary is the preferred replica; the fleet fails reads over to
    /// the next live replica in this order when the primary is down.
    Replicated {
        /// Replica count (`1 ≤ k ≤ shards`; `k = 1` collapses to
        /// `base` exactly).
        k: usize,
        /// The policy placing the primary replica.
        base: BasePlacement,
    },
}

/// The non-replicated policies a [`PlacementPolicy::Replicated`]
/// placement can use for its primary replica.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BasePlacement {
    /// See [`PlacementPolicy::RoundRobin`].
    RoundRobin,
    /// See [`PlacementPolicy::HashObject`].
    HashObject,
    /// See [`PlacementPolicy::TableAffinity`].
    TableAffinity,
}

impl BasePlacement {
    fn shard_of(self, obj: ObjectId, ordinal: usize, shards: usize) -> usize {
        match self {
            BasePlacement::RoundRobin => ordinal % shards,
            BasePlacement::HashObject => {
                // SplitMix64 over the packed id: deterministic forever,
                // independent of std's hasher keys.
                let mut key =
                    ((obj.tenant as u64) << 48) | ((obj.table as u64) << 32) | obj.segment as u64;
                (splitmix64(&mut key) % shards as u64) as usize
            }
            BasePlacement::TableAffinity => {
                let mut key = ((obj.tenant as u64) << 16) | obj.table as u64;
                (splitmix64(&mut key) % shards as u64) as usize
            }
        }
    }
}

impl PlacementPolicy {
    /// Human-readable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            PlacementPolicy::RoundRobin => "round-robin",
            PlacementPolicy::HashObject => "hash-object",
            PlacementPolicy::TableAffinity => "table-affinity",
            PlacementPolicy::Replicated { base, .. } => match base {
                BasePlacement::RoundRobin => "replicated/round-robin",
                BasePlacement::HashObject => "replicated/hash-object",
                BasePlacement::TableAffinity => "replicated/table-affinity",
            },
        }
    }

    /// Number of replicas each object gets (1 for the plain policies).
    pub fn replicas(self) -> usize {
        match self {
            PlacementPolicy::Replicated { k, .. } => k,
            _ => 1,
        }
    }

    /// The *primary* shard storing `obj`, where `ordinal` is the
    /// object's position in its tenant's storage order.
    ///
    /// The ordinal is the deterministic tie-break: [`RoundRobin`]
    /// (and replicated round-robin primaries) place by `ordinal mod
    /// shards`, so two objects with identical ids in different storage
    /// positions would land on different shards — while the hash-based
    /// policies ignore the ordinal entirely and depend only on the
    /// object id. Callers must therefore pass the storage-order
    /// position, not an arbitrary counter, for round-robin placements
    /// to partition evenly.
    ///
    /// [`RoundRobin`]: PlacementPolicy::RoundRobin
    ///
    /// # Panics
    /// Panics with a clear message when `shards` is zero (a
    /// modulo-by-zero would otherwise surface as an arithmetic panic
    /// deep in the policy arm), and when a [`Replicated`] placement has
    /// `k = 0`.
    ///
    /// [`Replicated`]: PlacementPolicy::Replicated
    pub fn shard_of(self, obj: ObjectId, ordinal: usize, shards: usize) -> usize {
        assert!(shards > 0, "a fleet needs at least one shard");
        match self {
            PlacementPolicy::RoundRobin => BasePlacement::RoundRobin.shard_of(obj, ordinal, shards),
            PlacementPolicy::HashObject => BasePlacement::HashObject.shard_of(obj, ordinal, shards),
            PlacementPolicy::TableAffinity => {
                BasePlacement::TableAffinity.shard_of(obj, ordinal, shards)
            }
            PlacementPolicy::Replicated { k, base } => {
                assert!(k >= 1, "a Replicated placement needs k >= 1");
                base.shard_of(obj, ordinal, shards)
            }
        }
    }

    /// The full replica set storing `obj`, preferred (primary) replica
    /// first: the primary from [`PlacementPolicy::shard_of`] followed
    /// by the `k - 1` consecutively next shards. Plain policies return
    /// a single shard.
    ///
    /// # Panics
    /// Panics when `shards` is zero or a replicated placement asks for
    /// more replicas than the fleet has shards.
    pub fn replica_shards(self, obj: ObjectId, ordinal: usize, shards: usize) -> Vec<usize> {
        let k = self.replicas();
        assert!(
            k <= shards,
            "Replicated placement wants {k} replicas but the fleet has {shards} shard(s)"
        );
        let primary = self.shard_of(obj, ordinal, shards);
        (0..k).map(|r| (primary + r) % shards).collect()
    }

    /// Builds the full object → shard map for `tenant_objects` (indexed
    /// as in [`Layout::build`]: `tenant_objects[t]` lists tenant `t`'s
    /// objects in storage order). Replicated placements report their
    /// *primary* shard here; see [`PlacementPolicy::assign_replicas`]
    /// for the full replica sets.
    pub fn assign(
        self,
        tenant_objects: &[Vec<ObjectId>],
        shards: usize,
    ) -> HashMap<ObjectId, usize> {
        tenant_objects
            .iter()
            .flat_map(|objs| {
                objs.iter()
                    .enumerate()
                    .map(move |(i, &obj)| (obj, self.shard_of(obj, i, shards)))
            })
            .collect()
    }

    /// Builds the full object → replica-set map for `tenant_objects`,
    /// each set ordered preferred replica first (see
    /// [`PlacementPolicy::replica_shards`]).
    pub fn assign_replicas(
        self,
        tenant_objects: &[Vec<ObjectId>],
        shards: usize,
    ) -> HashMap<ObjectId, Vec<usize>> {
        tenant_objects
            .iter()
            .flat_map(|objs| {
                objs.iter()
                    .enumerate()
                    .map(move |(i, &obj)| (obj, self.replica_shards(obj, i, shards)))
            })
            .collect()
    }
}

/// A concrete object → disk-group assignment.
#[derive(Clone, Debug, Default)]
pub struct Layout {
    map: HashMap<ObjectId, GroupId>,
    num_groups: u32,
}

impl Layout {
    /// Builds a layout by applying `policy` to `tenant_objects`, where
    /// `tenant_objects[t]` lists every object of tenant `t` in storage
    /// order.
    pub fn build(policy: LayoutPolicy, tenant_objects: &[Vec<ObjectId>]) -> Layout {
        let tenants = tenant_objects.len() as u32;
        let mut layout = Layout::default();
        for (t, objs) in tenant_objects.iter().enumerate() {
            let t = t as u32;
            for (i, &obj) in objs.iter().enumerate() {
                let group = match policy {
                    LayoutPolicy::AllInOne => 0,
                    LayoutPolicy::TwoClientsPerGroup => t / 2,
                    LayoutPolicy::OneClientPerGroup => t,
                    LayoutPolicy::Incremental => {
                        // First half with the tenant's own group, second
                        // half rolls over to the next tenant's group.
                        if i < objs.len().div_ceil(2) {
                            t
                        } else {
                            (t + 1) % tenants.max(1)
                        }
                    }
                };
                layout.place(obj, group);
            }
        }
        layout
    }

    /// Builds a layout from explicit `(object, group)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (ObjectId, GroupId)>) -> Layout {
        let mut layout = Layout::default();
        for (obj, group) in pairs {
            layout.place(obj, group);
        }
        layout
    }

    /// Assigns `obj` to `group` (last assignment wins).
    pub fn place(&mut self, obj: ObjectId, group: GroupId) {
        self.num_groups = self.num_groups.max(group + 1);
        self.map.insert(obj, group);
    }

    /// The group housing `obj`.
    ///
    /// # Panics
    /// Panics for unknown objects: requesting an object that was never
    /// placed is a harness bug.
    pub fn group_of(&self, obj: ObjectId) -> GroupId {
        *self
            .map
            .get(&obj)
            .unwrap_or_else(|| panic!("object {obj} was never placed on the device"))
    }

    /// Whether `obj` has a placement.
    pub fn contains(&self, obj: ObjectId) -> bool {
        self.map.contains_key(&obj)
    }

    /// Number of groups referenced by the layout (max group id + 1).
    pub fn num_groups(&self) -> u32 {
        self.num_groups
    }

    /// Number of placed objects.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is placed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates all `(object, group)` placements (unordered).
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, GroupId)> + '_ {
        self.map.iter().map(|(&o, &g)| (o, g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Four tenants with four objects each (two tables × two segments).
    fn tenant_objects(tenants: u16, objects_each: u32) -> Vec<Vec<ObjectId>> {
        (0..tenants)
            .map(|t| {
                (0..objects_each)
                    .map(|i| ObjectId::new(t, (i / 2) as u16, i % 2))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn all_in_one_uses_single_group() {
        let layout = Layout::build(LayoutPolicy::AllInOne, &tenant_objects(4, 4));
        assert_eq!(layout.num_groups(), 1);
        assert!(layout.iter().all(|(_, g)| g == 0));
    }

    #[test]
    fn one_client_per_group_isolates_tenants() {
        let layout = Layout::build(LayoutPolicy::OneClientPerGroup, &tenant_objects(4, 4));
        assert_eq!(layout.num_groups(), 4);
        for (obj, g) in layout.iter() {
            assert_eq!(g, obj.tenant as u32);
        }
    }

    #[test]
    fn two_clients_per_group_pairs_tenants() {
        let layout = Layout::build(LayoutPolicy::TwoClientsPerGroup, &tenant_objects(4, 4));
        assert_eq!(layout.num_groups(), 2);
        for (obj, g) in layout.iter() {
            assert_eq!(g, obj.tenant as u32 / 2);
        }
    }

    #[test]
    fn incremental_matches_paper_example() {
        // Paper (§5.2.3, 4 clients): G1 stores C1.1 and C4.2, G2 stores
        // C1.2 and C2.1, G3 stores C2.2 and C3.1, G4 stores C3.2 and C4.1.
        // 0-based: tenant t first half → group t, second half → (t+1)%4.
        let objs = tenant_objects(4, 4);
        let layout = Layout::build(LayoutPolicy::Incremental, &objs);
        assert_eq!(layout.num_groups(), 4);
        for (t, tenant_objs) in objs.iter().enumerate() {
            let (first, second) = tenant_objs.split_at(2);
            for &o in first {
                assert_eq!(layout.group_of(o), t as u32);
            }
            for &o in second {
                assert_eq!(layout.group_of(o), (t as u32 + 1) % 4);
            }
        }
    }

    #[test]
    fn incremental_odd_object_count_rounds_up_first_half() {
        let objs = vec![(0..5).map(|i| ObjectId::new(0, 0, i)).collect::<Vec<_>>()];
        let layout = Layout::build(LayoutPolicy::Incremental, &objs);
        // div_ceil(5,2)=3 objects in the first half; single tenant ⇒ both
        // halves land in group 0.
        assert!(objs[0].iter().all(|&o| layout.group_of(o) == 0));
    }

    #[test]
    fn from_pairs_and_contains() {
        let a = ObjectId::new(0, 0, 0);
        let b = ObjectId::new(0, 0, 1);
        let layout = Layout::from_pairs([(a, 2), (b, 0)]);
        assert_eq!(layout.group_of(a), 2);
        assert_eq!(layout.num_groups(), 3);
        assert!(layout.contains(b));
        assert!(!layout.contains(ObjectId::new(9, 9, 9)));
        assert_eq!(layout.len(), 2);
    }

    #[test]
    #[should_panic(expected = "never placed")]
    fn unknown_object_panics() {
        Layout::default().group_of(ObjectId::new(0, 0, 0));
    }

    #[test]
    fn placement_covers_all_objects_exactly_once() {
        let objs = tenant_objects(3, 4);
        for policy in [
            PlacementPolicy::RoundRobin,
            PlacementPolicy::HashObject,
            PlacementPolicy::TableAffinity,
        ] {
            for shards in 1..=5 {
                let map = policy.assign(&objs, shards);
                assert_eq!(map.len(), 12, "{policy:?} lost objects");
                assert!(
                    map.values().all(|&s| s < shards),
                    "{policy:?} placed outside the fleet"
                );
            }
        }
    }

    #[test]
    fn single_shard_placement_is_trivial() {
        let objs = tenant_objects(2, 4);
        for policy in [
            PlacementPolicy::RoundRobin,
            PlacementPolicy::HashObject,
            PlacementPolicy::TableAffinity,
        ] {
            assert!(policy.assign(&objs, 1).values().all(|&s| s == 0));
        }
    }

    #[test]
    fn round_robin_alternates_within_each_tenant() {
        let objs = tenant_objects(2, 4);
        let map = PlacementPolicy::RoundRobin.assign(&objs, 2);
        for tenant_objs in &objs {
            for (i, obj) in tenant_objs.iter().enumerate() {
                assert_eq!(map[obj], i % 2);
            }
        }
    }

    #[test]
    fn table_affinity_keeps_tables_whole() {
        let objs = tenant_objects(4, 4);
        let map = PlacementPolicy::TableAffinity.assign(&objs, 3);
        for tenant_objs in &objs {
            for pair in tenant_objs.windows(2) {
                if pair[0].table == pair[1].table {
                    assert_eq!(map[&pair[0]], map[&pair[1]], "table split across shards");
                }
            }
        }
    }

    #[test]
    fn hash_placement_is_deterministic_and_ordinal_free() {
        let objs = tenant_objects(3, 4);
        let a = PlacementPolicy::HashObject.assign(&objs, 4);
        let b = PlacementPolicy::HashObject.assign(&objs, 4);
        assert_eq!(a, b);
        // Ordinal is irrelevant for hashing: shard_of agrees regardless.
        let o = ObjectId::new(1, 0, 1);
        assert_eq!(
            PlacementPolicy::HashObject.shard_of(o, 0, 4),
            PlacementPolicy::HashObject.shard_of(o, 99, 4)
        );
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        PlacementPolicy::RoundRobin.shard_of(ObjectId::new(0, 0, 0), 0, 0);
    }

    #[test]
    fn replicated_produces_k_distinct_consecutive_shards() {
        let objs = tenant_objects(3, 4);
        for base in [
            BasePlacement::RoundRobin,
            BasePlacement::HashObject,
            BasePlacement::TableAffinity,
        ] {
            for k in 1..=3 {
                let policy = PlacementPolicy::Replicated { k, base };
                let map = policy.assign_replicas(&objs, 4);
                assert_eq!(map.len(), 12);
                for (obj, replicas) in &map {
                    assert_eq!(replicas.len(), k, "{base:?} k={k}");
                    let primary = replicas[0];
                    for (r, &shard) in replicas.iter().enumerate() {
                        assert_eq!(shard, (primary + r) % 4, "replicas must be consecutive");
                    }
                    let mut distinct = replicas.clone();
                    distinct.sort_unstable();
                    distinct.dedup();
                    assert_eq!(distinct.len(), k, "{obj} has duplicate replicas");
                }
            }
        }
    }

    #[test]
    fn replicated_primary_matches_base_policy() {
        let objs = tenant_objects(2, 4);
        let replicated = PlacementPolicy::Replicated {
            k: 2,
            base: BasePlacement::HashObject,
        };
        let primaries = replicated.assign(&objs, 4);
        assert_eq!(primaries, PlacementPolicy::HashObject.assign(&objs, 4));
        // k = 1 collapses to the base policy's single-shard map.
        let single = PlacementPolicy::Replicated {
            k: 1,
            base: BasePlacement::HashObject,
        };
        for (obj, replicas) in single.assign_replicas(&objs, 4) {
            assert_eq!(replicas, vec![primaries[&obj]]);
        }
    }

    #[test]
    fn plain_policies_are_single_replica() {
        let o = ObjectId::new(0, 0, 0);
        assert_eq!(PlacementPolicy::RoundRobin.replicas(), 1);
        assert_eq!(PlacementPolicy::RoundRobin.replica_shards(o, 3, 2), vec![1]);
    }

    #[test]
    #[should_panic(expected = "wants 3 replicas")]
    fn over_replication_rejected() {
        PlacementPolicy::Replicated {
            k: 3,
            base: BasePlacement::RoundRobin,
        }
        .replica_shards(ObjectId::new(0, 0, 0), 0, 2);
    }

    #[test]
    #[should_panic(expected = "needs k >= 1")]
    fn zero_replicas_rejected() {
        PlacementPolicy::Replicated {
            k: 0,
            base: BasePlacement::RoundRobin,
        }
        .shard_of(ObjectId::new(0, 0, 0), 0, 2);
    }

    #[test]
    fn placement_labels() {
        assert_eq!(PlacementPolicy::RoundRobin.label(), "round-robin");
        assert_eq!(PlacementPolicy::HashObject.label(), "hash-object");
        assert_eq!(PlacementPolicy::TableAffinity.label(), "table-affinity");
        assert_eq!(
            PlacementPolicy::Replicated {
                k: 2,
                base: BasePlacement::RoundRobin
            }
            .label(),
            "replicated/round-robin"
        );
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(LayoutPolicy::AllInOne.label(), "Allin1");
        assert_eq!(LayoutPolicy::TwoClientsPerGroup.label(), "2perG");
        assert_eq!(LayoutPolicy::OneClientPerGroup.label(), "1perG");
        assert_eq!(LayoutPolicy::Incremental.label(), "Increm.");
    }
}
