//! Shard-local cache tiers: the DRAM/SSD hot path in front of a CSD.
//!
//! The paper hides the cold device's multi-second group-switch latency
//! behind scheduling, but a production fleet would never serve a hot
//! object from the CSD twice — it fronts each shard with a DRAM tier
//! (and optionally an SSD tier below it) so repeated GETs complete at
//! tier bandwidth without touching the CSD queue, the scheduler, or a
//! group switch. This module is the pure cache machine: residency,
//! promotion/demotion policy, per-tier bandwidth serialization, and
//! hit/miss accounting. The event-loop integration (arming cache
//! completions as wake-ups, filling on miss delivery, invalidation on
//! crash) lives in the core runtime's `DevicePump`.
//!
//! ## Timing model
//!
//! Each tier serves reads through one serialized pipe: a cursor tracks
//! the instant the tier's bandwidth is next free, a hit starts at
//! `max(now, free_at)` and completes `bytes / bandwidth` later, and the
//! cursor advances. Demotion write-backs (DRAM evictions spilling into
//! the SSD tier) reserve the same SSD pipe, so background fills compete
//! with foreground hits for the same streams — a burst of evictions
//! visibly delays subsequent SSD reads. Everything is integer
//! microseconds on the simulation clock, so replays are bit-identical.
//!
//! ## Policies
//!
//! * [`CachePolicy::Lru`] — classic move-to-front; evicts the least
//!   recently used object.
//! * [`CachePolicy::Clock`] — second-chance: a hit sets a reference bit
//!   instead of relinking; eviction rotates referenced entries back
//!   with the bit cleared and evicts the first unreferenced one.
//! * [`CachePolicy::GroupAware`] — recency at disk-group granularity:
//!   the victim is the least-recently-*used group's* coldest object,
//!   so a group whose objects keep getting hit stays fully resident
//!   and every future GET against it skips the switch entirely.

use std::collections::HashMap;
use std::hash::BuildHasherDefault;

use skipper_sim::SimTime;

use crate::object::{GroupId, ObjectId};
use crate::store::{transfer_time, FastHasher};

type FastBuild = BuildHasherDefault<FastHasher>;

/// Default DRAM tier read bandwidth (one service pipe): 4 GiB/s.
pub const DRAM_BANDWIDTH_BYTES_PER_SEC: f64 = 4.0 * (1u64 << 30) as f64;

/// Default SSD tier read bandwidth (one service pipe): 500 MB/s.
pub const SSD_BANDWIDTH_BYTES_PER_SEC: f64 = 500e6;

/// Eviction/recency policy shared by both tiers of a shard cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CachePolicy {
    /// Least-recently-used: hits relink to the front, evict the tail.
    #[default]
    Lru,
    /// CLOCK (second chance): hits set a reference bit; eviction
    /// rotates referenced tail entries back to the front.
    Clock,
    /// Group-aware: evict from the least-recently-used *disk group*,
    /// keeping actively hit groups fully resident so their GETs never
    /// pay a switch.
    GroupAware,
}

impl CachePolicy {
    /// Short lowercase label for reports and bench JSON.
    pub fn label(&self) -> &'static str {
        match self {
            CachePolicy::Lru => "lru",
            CachePolicy::Clock => "clock",
            CachePolicy::GroupAware => "group",
        }
    }
}

/// Capacity and bandwidth of one cache tier.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TierConfig {
    /// Resident-byte capacity; `0` disables the tier.
    pub capacity_bytes: u64,
    /// Serialized read/fill bandwidth of the tier's service pipe.
    pub bandwidth_bytes_per_sec: f64,
}

impl TierConfig {
    /// A tier with the given capacity and bandwidth.
    pub fn new(capacity_bytes: u64, bandwidth_bytes_per_sec: f64) -> Self {
        TierConfig {
            capacity_bytes,
            bandwidth_bytes_per_sec,
        }
    }

    /// A disabled (zero-capacity) tier.
    pub fn disabled() -> Self {
        TierConfig::new(0, 0.0)
    }

    /// True when the tier can hold at least one byte.
    pub fn enabled(&self) -> bool {
        self.capacity_bytes > 0
    }
}

/// Full shard-cache configuration: both tiers plus the shared policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CacheConfig {
    /// The DRAM tier (top of the hierarchy; misses fill here).
    pub dram: TierConfig,
    /// The SSD tier (holds DRAM demotions; hits promote back up).
    pub ssd: TierConfig,
    /// Eviction/recency policy for both tiers.
    pub policy: CachePolicy,
}

impl CacheConfig {
    /// No cache at all — the byte-exact legacy machine.
    pub fn disabled() -> Self {
        CacheConfig {
            dram: TierConfig::disabled(),
            ssd: TierConfig::disabled(),
            policy: CachePolicy::Lru,
        }
    }

    /// A DRAM-only cache of `capacity_bytes` at the default DRAM
    /// bandwidth under LRU; `0` is exactly [`CacheConfig::disabled`].
    pub fn dram_only(capacity_bytes: u64) -> Self {
        CacheConfig {
            dram: TierConfig::new(capacity_bytes, DRAM_BANDWIDTH_BYTES_PER_SEC),
            ssd: TierConfig::disabled(),
            policy: CachePolicy::Lru,
        }
    }

    /// DRAM + SSD tiers at default bandwidths under LRU.
    pub fn two_tier(dram_bytes: u64, ssd_bytes: u64) -> Self {
        CacheConfig {
            dram: TierConfig::new(dram_bytes, DRAM_BANDWIDTH_BYTES_PER_SEC),
            ssd: TierConfig::new(ssd_bytes, SSD_BANDWIDTH_BYTES_PER_SEC),
            policy: CachePolicy::Lru,
        }
    }

    /// Returns the config with `policy` swapped in.
    pub fn with_policy(mut self, policy: CachePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// True when at least one tier has capacity. A disabled config
    /// must collapse to the uncached machine byte-exactly, so callers
    /// gate every cache structure on this.
    pub fn enabled(&self) -> bool {
        self.dram.enabled() || self.ssd.enabled()
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::disabled()
    }
}

/// Hit/miss/fill/evict counters for one shard cache (or a fleet
/// roll-up). Every counter is exact; `hits() + misses` equals the GETs
/// the shard cache was consulted for.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// GETs served from the DRAM tier.
    pub dram_hits: u64,
    /// GETs served from the SSD tier (then promoted to DRAM).
    pub ssd_hits: u64,
    /// GETs that fell through to the CSD.
    pub misses: u64,
    /// Objects inserted on miss delivery.
    pub fills: u64,
    /// SSD→DRAM promotions on SSD hits.
    pub promotions: u64,
    /// DRAM→SSD demotions (evictions written back to the SSD tier).
    pub demotions: u64,
    /// Objects evicted out of the hierarchy entirely.
    pub evictions: u64,
    /// Logical bytes served from either tier.
    pub hit_bytes: u64,
    /// Demotion write-back bytes charged to the SSD pipe.
    pub writeback_bytes: u64,
    /// Whole-cache wipes (shard crashes).
    pub invalidations: u64,
}

impl CacheStats {
    /// Total tier hits.
    pub fn hits(&self) -> u64 {
        self.dram_hits + self.ssd_hits
    }

    /// Total lookups (hits + misses).
    pub fn lookups(&self) -> u64 {
        self.hits() + self.misses
    }

    /// Fraction of lookups served from a tier (0 when never consulted).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits() as f64 / self.lookups() as f64
        }
    }

    /// Accumulates `other` into `self` (fleet roll-up).
    pub fn absorb(&mut self, other: &CacheStats) {
        self.dram_hits += other.dram_hits;
        self.ssd_hits += other.ssd_hits;
        self.misses += other.misses;
        self.fills += other.fills;
        self.promotions += other.promotions;
        self.demotions += other.demotions;
        self.evictions += other.evictions;
        self.hit_bytes += other.hit_bytes;
        self.writeback_bytes += other.writeback_bytes;
        self.invalidations += other.invalidations;
    }
}

/// Slab slot sentinel for the intrusive lists.
const NIL: u32 = u32::MAX;

/// One resident object: slab node carrying both the global recency
/// links and the per-group links (group-aware policy only).
#[derive(Clone, Copy, Debug)]
struct Node {
    id: ObjectId,
    bytes: u64,
    group: GroupId,
    /// Global recency list (MRU at head).
    prev: u32,
    next: u32,
    /// Per-group recency list (MRU at head; group-aware policy).
    gprev: u32,
    gnext: u32,
    /// CLOCK reference bit.
    referenced: bool,
}

/// Per-group list head/tail plus the group-recency chain links.
#[derive(Clone, Copy, Debug)]
struct GroupLinks {
    head: u32,
    tail: u32,
    prev: Option<GroupId>,
    next: Option<GroupId>,
}

/// One cache tier: a capacity-bounded residency set over a slab of
/// intrusively linked nodes, plus the serialized bandwidth pipe.
/// All operations are allocation-free once the slab and index have
/// grown to their peak population.
struct Tier {
    capacity: u64,
    bandwidth: f64,
    policy: CachePolicy,
    used: u64,
    /// Instant the tier's service pipe is next free.
    free_at: SimTime,
    nodes: Vec<Node>,
    free: Vec<u32>,
    index: HashMap<ObjectId, u32, FastBuild>,
    /// Global recency list (MRU first).
    head: u32,
    tail: u32,
    /// Group recency chain (group-aware policy; MRU first).
    groups: HashMap<GroupId, GroupLinks, FastBuild>,
    gmru: Option<GroupId>,
    glru: Option<GroupId>,
}

impl Tier {
    fn new(config: TierConfig, policy: CachePolicy) -> Tier {
        Tier {
            capacity: config.capacity_bytes,
            bandwidth: config.bandwidth_bytes_per_sec,
            policy,
            used: 0,
            free_at: SimTime::ZERO,
            nodes: Vec::new(),
            free: Vec::new(),
            index: HashMap::default(),
            head: NIL,
            tail: NIL,
            groups: HashMap::default(),
            gmru: None,
            glru: None,
        }
    }

    fn enabled(&self) -> bool {
        self.capacity > 0
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    /// Reserves the serialized pipe for `bytes`: service starts when
    /// the pipe frees up, never before `now`; returns the completion
    /// instant and advances the cursor.
    fn reserve(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let start = now.max(self.free_at);
        let done = start + transfer_time(bytes, self.bandwidth);
        self.free_at = done;
        done
    }

    // ---- global recency list ----

    fn unlink(&mut self, slot: u32) {
        let (prev, next) = {
            let n = &self.nodes[slot as usize];
            (n.prev, n.next)
        };
        if prev == NIL {
            self.head = next;
        } else {
            self.nodes[prev as usize].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.nodes[next as usize].prev = prev;
        }
    }

    fn push_front(&mut self, slot: u32) {
        let old = self.head;
        {
            let n = &mut self.nodes[slot as usize];
            n.prev = NIL;
            n.next = old;
        }
        if old != NIL {
            self.nodes[old as usize].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    // ---- per-group lists (group-aware policy) ----

    fn group_unlink_node(&mut self, slot: u32) {
        let (group, gprev, gnext) = {
            let n = &self.nodes[slot as usize];
            (n.group, n.gprev, n.gnext)
        };
        let links = self.groups.get_mut(&group).expect("resident node's group");
        if gprev == NIL {
            links.head = gnext;
        } else {
            self.nodes[gprev as usize].gnext = gnext;
        }
        if gnext == NIL {
            links.tail = gprev;
        } else {
            self.nodes[gnext as usize].gprev = gprev;
        }
        let links = self.groups[&group];
        if links.head == NIL {
            // Last resident object of the group: drop it from the
            // group-recency chain.
            match links.prev {
                Some(p) => self.groups.get_mut(&p).expect("chained group").next = links.next,
                None => self.gmru = links.next,
            }
            match links.next {
                Some(nx) => self.groups.get_mut(&nx).expect("chained group").prev = links.prev,
                None => self.glru = links.prev,
            }
            self.groups.remove(&group);
        }
    }

    fn group_push_node(&mut self, slot: u32) {
        let group = self.nodes[slot as usize].group;
        match self.groups.get_mut(&group) {
            Some(links) => {
                let old = links.head;
                links.head = slot;
                {
                    let n = &mut self.nodes[slot as usize];
                    n.gprev = NIL;
                    n.gnext = old;
                }
                if old != NIL {
                    self.nodes[old as usize].gprev = slot;
                }
            }
            None => {
                {
                    let n = &mut self.nodes[slot as usize];
                    n.gprev = NIL;
                    n.gnext = NIL;
                }
                self.groups.insert(
                    group,
                    GroupLinks {
                        head: slot,
                        tail: slot,
                        prev: None,
                        next: None,
                    },
                );
                // Splice at MRU below (group_touch), starting unlinked.
                let links = self.groups.get_mut(&group).expect("just inserted");
                links.next = self.gmru;
                match self.gmru {
                    Some(m) => self.groups.get_mut(&m).expect("chained group").prev = Some(group),
                    None => self.glru = Some(group),
                }
                self.gmru = Some(group);
                return;
            }
        }
        self.group_touch(group);
    }

    /// Moves `group` to the MRU end of the group-recency chain.
    fn group_touch(&mut self, group: GroupId) {
        if self.gmru == Some(group) {
            return;
        }
        let links = self.groups[&group];
        match links.prev {
            Some(p) => self.groups.get_mut(&p).expect("chained group").next = links.next,
            None => self.gmru = links.next,
        }
        match links.next {
            Some(nx) => self.groups.get_mut(&nx).expect("chained group").prev = links.prev,
            None => self.glru = links.prev,
        }
        let old_mru = self.gmru;
        {
            let links = self.groups.get_mut(&group).expect("chained group");
            links.prev = None;
            links.next = old_mru;
        }
        match old_mru {
            Some(m) => self.groups.get_mut(&m).expect("chained group").prev = Some(group),
            None => self.glru = Some(group),
        }
        self.gmru = Some(group);
    }

    // ---- residency operations ----

    /// Records a hit on `id` (recency update per policy); returns the
    /// resident byte size, or `None` when absent.
    fn touch(&mut self, id: ObjectId) -> Option<u64> {
        let slot = *self.index.get(&id)?;
        match self.policy {
            CachePolicy::Lru => {
                self.unlink(slot);
                self.push_front(slot);
            }
            CachePolicy::Clock => {
                self.nodes[slot as usize].referenced = true;
            }
            CachePolicy::GroupAware => {
                self.unlink(slot);
                self.push_front(slot);
                self.group_unlink_node(slot);
                self.group_push_node(slot);
            }
        }
        Some(self.nodes[slot as usize].bytes)
    }

    /// Picks the victim slot per policy. Caller guarantees the tier is
    /// non-empty.
    fn victim(&mut self) -> u32 {
        match self.policy {
            CachePolicy::Lru => self.tail,
            CachePolicy::Clock => {
                // Second chance: rotate referenced tail entries back to
                // the front with the bit cleared. Each pass clears one
                // bit, so this terminates within one lap.
                loop {
                    let t = self.tail;
                    debug_assert!(t != NIL, "victim() on an empty tier");
                    if self.nodes[t as usize].referenced {
                        self.nodes[t as usize].referenced = false;
                        self.unlink(t);
                        self.push_front(t);
                    } else {
                        return t;
                    }
                }
            }
            CachePolicy::GroupAware => {
                let coldest = self.glru.expect("non-empty tier has a coldest group");
                self.groups[&coldest].tail
            }
        }
    }

    /// Removes `slot` from every structure and returns its metadata.
    fn remove_slot(&mut self, slot: u32) -> (ObjectId, u64, GroupId) {
        self.unlink(slot);
        if self.policy == CachePolicy::GroupAware {
            self.group_unlink_node(slot);
        }
        let n = self.nodes[slot as usize];
        self.index.remove(&n.id);
        self.used -= n.bytes;
        self.free.push(slot);
        (n.id, n.bytes, n.group)
    }

    /// Removes `id` if resident (promotion exclusivity).
    fn remove(&mut self, id: ObjectId) -> bool {
        match self.index.get(&id) {
            Some(&slot) => {
                self.remove_slot(slot);
                true
            }
            None => false,
        }
    }

    /// Inserts `id` at the MRU position, evicting per policy until it
    /// fits; evicted objects are appended to `evicted`. Returns `false`
    /// (inserting nothing, evicting nothing) when `bytes` exceeds the
    /// whole tier, and `true` (a pure touch) when already resident.
    fn insert(
        &mut self,
        id: ObjectId,
        bytes: u64,
        group: GroupId,
        evicted: &mut Vec<(ObjectId, u64, GroupId)>,
    ) -> bool {
        if bytes > self.capacity {
            return false;
        }
        if self.index.contains_key(&id) {
            self.touch(id);
            return true;
        }
        while self.used + bytes > self.capacity {
            let v = self.victim();
            evicted.push(self.remove_slot(v));
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.nodes[s as usize] = Node {
                    id,
                    bytes,
                    group,
                    prev: NIL,
                    next: NIL,
                    gprev: NIL,
                    gnext: NIL,
                    referenced: false,
                };
                s
            }
            None => {
                let s = u32::try_from(self.nodes.len()).expect("cache slab fits u32");
                self.nodes.push(Node {
                    id,
                    bytes,
                    group,
                    prev: NIL,
                    next: NIL,
                    gprev: NIL,
                    gnext: NIL,
                    referenced: false,
                });
                s
            }
        };
        self.index.insert(id, slot);
        self.used += bytes;
        self.push_front(slot);
        if self.policy == CachePolicy::GroupAware {
            self.group_push_node(slot);
        }
        true
    }

    /// Wipes all residency (crash invalidation). The pipe cursor resets
    /// too: a dead tier serves nothing.
    fn clear(&mut self) {
        self.used = 0;
        self.free_at = SimTime::ZERO;
        self.nodes.clear();
        self.free.clear();
        self.index.clear();
        self.head = NIL;
        self.tail = NIL;
        self.groups.clear();
        self.gmru = None;
        self.glru = None;
    }
}

/// The per-shard cache state machine: a DRAM tier over an SSD tier,
/// with hits reserving tier bandwidth, SSD hits promoting, DRAM
/// evictions demoting (write-backs on the SSD pipe), and full
/// hit/miss/fill accounting. Pure state — the runtime's pump owns
/// delivery scheduling and crash wiring.
pub struct ShardCache {
    dram: Tier,
    ssd: Tier,
    stats: CacheStats,
    /// Reusable eviction scratch (DRAM evictions per insert).
    evict_scratch: Vec<(ObjectId, u64, GroupId)>,
    /// Reusable eviction scratch (SSD evictions per demotion).
    drop_scratch: Vec<(ObjectId, u64, GroupId)>,
}

impl ShardCache {
    /// Builds the cache, or `None` for a disabled config — the caller
    /// keeps `None` on the hot path so zero capacity is byte-exactly
    /// the uncached machine.
    pub fn new(config: CacheConfig) -> Option<ShardCache> {
        if !config.enabled() {
            return None;
        }
        Some(ShardCache {
            dram: Tier::new(config.dram, config.policy),
            ssd: Tier::new(config.ssd, config.policy),
            stats: CacheStats::default(),
            evict_scratch: Vec::new(),
            drop_scratch: Vec::new(),
        })
    }

    /// Consults the tiers for `id`: on a hit, reserves the serving
    /// tier's pipe and returns the delivery-ready instant (an SSD hit
    /// also promotes the object to DRAM); on a miss returns `None` and
    /// the caller forwards the GET to the CSD.
    pub fn lookup(
        &mut self,
        now: SimTime,
        id: ObjectId,
        bytes: u64,
        group: GroupId,
    ) -> Option<SimTime> {
        if self.dram.enabled() && self.dram.touch(id).is_some() {
            self.stats.dram_hits += 1;
            self.stats.hit_bytes += bytes;
            return Some(self.dram.reserve(now, bytes));
        }
        if self.ssd.enabled() && self.ssd.touch(id).is_some() {
            self.stats.ssd_hits += 1;
            self.stats.hit_bytes += bytes;
            let ready = self.ssd.reserve(now, bytes);
            if self.dram.enabled() && bytes <= self.dram.capacity {
                self.ssd.remove(id);
                self.stats.promotions += 1;
                self.insert_dram(now, id, bytes, group);
            }
            return Some(ready);
        }
        self.stats.misses += 1;
        None
    }

    /// Fills the hierarchy after a miss delivery: the object enters the
    /// top enabled tier; DRAM evictions demote into SSD as write-backs
    /// on the SSD pipe; SSD evictions leave the hierarchy.
    pub fn fill(&mut self, now: SimTime, id: ObjectId, bytes: u64, group: GroupId) {
        if self.dram.enabled() {
            if self.insert_dram(now, id, bytes, group) {
                self.stats.fills += 1;
            }
        } else if self.ssd.enabled() {
            self.drop_scratch.clear();
            if self.ssd.insert(id, bytes, group, &mut self.drop_scratch) {
                self.stats.fills += 1;
            }
            self.stats.evictions += self.drop_scratch.len() as u64;
        }
    }

    /// Inserts into DRAM, demoting evictions into SSD. Returns whether
    /// the object is resident afterwards.
    fn insert_dram(&mut self, now: SimTime, id: ObjectId, bytes: u64, group: GroupId) -> bool {
        self.evict_scratch.clear();
        let inserted = self.dram.insert(id, bytes, group, &mut self.evict_scratch);
        for i in 0..self.evict_scratch.len() {
            let (eid, ebytes, egroup) = self.evict_scratch[i];
            if self.ssd.enabled() {
                self.drop_scratch.clear();
                if self.ssd.insert(eid, ebytes, egroup, &mut self.drop_scratch) {
                    // The write-back occupies the SSD pipe like any
                    // read: demotions compete with foreground hits.
                    self.ssd.reserve(now, ebytes);
                    self.stats.demotions += 1;
                    self.stats.writeback_bytes += ebytes;
                } else {
                    self.stats.evictions += 1;
                }
                self.stats.evictions += self.drop_scratch.len() as u64;
            } else {
                self.stats.evictions += 1;
            }
        }
        inserted
    }

    /// Wipes both tiers (shard crash): nothing survives a failover, so
    /// no stale hit can ever be served from a dead shard's memory.
    pub fn invalidate_all(&mut self) {
        self.dram.clear();
        self.ssd.clear();
        self.stats.invalidations += 1;
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resident objects per tier `(dram, ssd)` — test/report helper.
    pub fn resident(&self) -> (usize, usize) {
        (self.dram.len(), self.ssd.len())
    }

    /// Resident bytes per tier `(dram, ssd)`.
    pub fn resident_bytes(&self) -> (u64, u64) {
        (self.dram.used, self.ssd.used)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(seg: u32) -> ObjectId {
        ObjectId::new(0, 0, seg)
    }

    fn dram_cache(capacity: u64, policy: CachePolicy) -> ShardCache {
        ShardCache::new(CacheConfig {
            dram: TierConfig::new(capacity, 100.0), // 100 B/s: easy math
            ssd: TierConfig::disabled(),
            policy,
        })
        .expect("enabled config")
    }

    #[test]
    fn disabled_config_builds_no_cache() {
        assert!(ShardCache::new(CacheConfig::disabled()).is_none());
        assert!(ShardCache::new(CacheConfig::dram_only(0)).is_none());
        assert!(ShardCache::new(CacheConfig::dram_only(1)).is_some());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = dram_cache(300, CachePolicy::Lru);
        let t = SimTime::ZERO;
        for seg in 0..3 {
            c.fill(t, oid(seg), 100, 0);
        }
        // Touch 0 so 1 becomes the LRU victim.
        assert!(c.lookup(t, oid(0), 100, 0).is_some());
        c.fill(t, oid(3), 100, 0);
        assert!(c.lookup(t, oid(1), 100, 0).is_none(), "LRU victim evicted");
        assert!(c.lookup(t, oid(0), 100, 0).is_some());
        assert!(c.lookup(t, oid(3), 100, 0).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn clock_gives_referenced_entries_a_second_chance() {
        let mut c = dram_cache(300, CachePolicy::Clock);
        let t = SimTime::ZERO;
        for seg in 0..3 {
            c.fill(t, oid(seg), 100, 0);
        }
        // Reference 0 (the would-be victim): CLOCK must skip it.
        assert!(c.lookup(t, oid(0), 100, 0).is_some());
        c.fill(t, oid(3), 100, 0);
        assert!(c.lookup(t, oid(0), 100, 0).is_some(), "referenced survives");
        assert!(
            c.lookup(t, oid(1), 100, 0).is_none(),
            "unreferenced evicted"
        );
    }

    #[test]
    fn group_aware_keeps_the_hot_group_resident() {
        let mut c = dram_cache(400, CachePolicy::GroupAware);
        let t = SimTime::ZERO;
        // Group 0: objects 0,1 — filled first; group 1: objects 10,11.
        c.fill(t, oid(0), 100, 0);
        c.fill(t, oid(1), 100, 0);
        c.fill(t, oid(10), 100, 1);
        c.fill(t, oid(11), 100, 1);
        // Touch ONE object of group 0: under plain LRU object 1 (group
        // 0) would be the victim; group-aware recency protects the
        // whole group and evicts from group 1 instead.
        assert!(c.lookup(t, oid(0), 100, 0).is_some());
        c.fill(t, oid(2), 100, 0);
        assert!(c.lookup(t, oid(1), 100, 0).is_some(), "whole group stays");
        assert!(c.lookup(t, oid(10), 100, 1).is_none(), "cold group pays");
    }

    #[test]
    fn hits_serialize_on_the_tier_pipe() {
        let mut c = dram_cache(300, CachePolicy::Lru);
        let t = SimTime::ZERO;
        c.fill(t, oid(0), 100, 0);
        c.fill(t, oid(1), 100, 0);
        // 100 bytes at 100 B/s = 1 s each; the second hit queues behind
        // the first on the single pipe.
        let first = c.lookup(t, oid(0), 100, 0).expect("hit");
        let second = c.lookup(t, oid(1), 100, 0).expect("hit");
        assert_eq!(first, SimTime::from_secs(1));
        assert_eq!(second, SimTime::from_secs(2));
    }

    #[test]
    fn dram_evictions_demote_and_charge_the_ssd_pipe() {
        let mut c = ShardCache::new(CacheConfig {
            dram: TierConfig::new(100, 100.0),
            ssd: TierConfig::new(200, 100.0),
            policy: CachePolicy::Lru,
        })
        .expect("enabled");
        let t = SimTime::ZERO;
        c.fill(t, oid(0), 100, 0);
        c.fill(t, oid(1), 100, 0); // evicts 0 from DRAM → demotes to SSD
        assert_eq!(c.stats().demotions, 1);
        assert_eq!(c.stats().writeback_bytes, 100);
        // The SSD hit must queue behind the 1 s write-back.
        let ready = c.lookup(t, oid(0), 100, 0).expect("SSD hit");
        assert_eq!(ready, SimTime::from_secs(2));
        assert_eq!(c.stats().ssd_hits, 1);
        // The hit promoted 0 back to DRAM, displacing 1 down.
        assert!(c.stats().promotions == 1 && c.stats().demotions == 2);
    }

    #[test]
    fn accounting_conserves_lookups_and_residency() {
        let mut c = dram_cache(500, CachePolicy::Lru);
        let t = SimTime::ZERO;
        let mut lookups = 0u64;
        for round in 0..4u32 {
            // Round 0 scans everything; later rounds re-touch the tail
            // half, which fits in the tier — a hot head with locality.
            let segs = if round == 0 { 0..8u32 } else { 4..8u32 };
            for seg in segs {
                lookups += 1;
                if c.lookup(t, oid(seg), 100, seg % 2).is_none() {
                    c.fill(t, oid(seg), 100, seg % 2);
                }
            }
        }
        let s = c.stats();
        assert_eq!(s.lookups(), lookups);
        assert_eq!(s.hits() + s.misses, lookups);
        assert_eq!(s.fills as i64 - s.evictions as i64, c.resident().0 as i64);
        assert!(s.hit_rate() > 0.0);
    }

    #[test]
    fn invalidation_wipes_everything() {
        let mut c = dram_cache(500, CachePolicy::GroupAware);
        let t = SimTime::ZERO;
        for seg in 0..5 {
            c.fill(t, oid(seg), 100, seg % 3);
        }
        c.invalidate_all();
        assert_eq!(c.resident(), (0, 0));
        assert_eq!(c.stats().invalidations, 1);
        for seg in 0..5 {
            assert!(c.lookup(t, oid(seg), 100, seg % 3).is_none());
        }
    }

    #[test]
    fn oversized_objects_bypass_the_tier() {
        let mut c = dram_cache(100, CachePolicy::Lru);
        let t = SimTime::ZERO;
        c.fill(t, oid(0), 1000, 0);
        assert_eq!(c.stats().fills, 0);
        assert_eq!(c.resident(), (0, 0));
        assert!(c.lookup(t, oid(0), 1000, 0).is_none());
    }
}
