//! Object identifiers and metadata.
//!
//! Each tenant's database is striped over the shared CSD as a set of
//! objects, one per 1 GB relation segment, named after the PostgreSQL
//! filenode they back. An [`ObjectId`] identifies one such object:
//! `(tenant, table, segment)`. [`QueryId`] is the semantic tag the client
//! proxy attaches to every GET so the scheduler can group requests by
//! query (§4.3 — "the client proxy shares semantic information with
//! Swift").

use std::fmt;

/// A disk-group index within the CSD.
pub type GroupId = u32;

/// Globally unique identifier of one stored object (a relation segment of
/// one tenant's database).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId {
    /// The owning tenant (client) — each VM's database is a separate
    /// dataset on the shared device.
    pub tenant: u16,
    /// Table index within the tenant's catalog.
    pub table: u16,
    /// Segment index within the table.
    pub segment: u32,
}

impl ObjectId {
    /// Creates an object id.
    pub const fn new(tenant: u16, table: u16, segment: u32) -> Self {
        ObjectId {
            tenant,
            table,
            segment,
        }
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}/t{}.{}", self.tenant, self.table, self.segment)
    }
}

/// Identifier of one query execution, unique across the whole simulation.
/// The pair `(tenant, seq)` makes ids readable in traces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId {
    /// Issuing tenant.
    pub tenant: u16,
    /// Per-tenant query sequence number.
    pub seq: u32,
}

impl QueryId {
    /// Creates a query id.
    pub const fn new(tenant: u16, seq: u32) -> Self {
        QueryId { tenant, seq }
    }
}

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}-{}", self.tenant, self.seq)
    }
}

/// Placement and sizing metadata for one stored object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObjectMeta {
    /// The object.
    pub id: ObjectId,
    /// Logical size in bytes (1 GB for full segments); transfer time =
    /// `logical_bytes / bandwidth`.
    pub logical_bytes: u64,
    /// The disk group housing the object.
    pub group: GroupId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_id_ordering_is_lexicographic() {
        let a = ObjectId::new(0, 0, 1);
        let b = ObjectId::new(0, 1, 0);
        let c = ObjectId::new(1, 0, 0);
        assert!(a < b && b < c);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ObjectId::new(2, 1, 7).to_string(), "c2/t1.7");
        assert_eq!(QueryId::new(3, 4).to_string(), "q3-4");
    }

    #[test]
    fn usable_as_map_keys() {
        use std::collections::HashMap;
        let mut objs = HashMap::new();
        objs.insert(ObjectId::new(0, 0, 0), 1);
        let mut queries = HashMap::new();
        queries.insert(QueryId::new(0, 0), 2);
        assert_eq!(objs.len() + queries.len(), 2);
    }
}
