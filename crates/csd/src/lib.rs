//! # skipper-csd — Cold Storage Device model
//!
//! A Cold Storage Device (CSD) packs hundreds to thousands of
//! archival-grade SMR disks into a rack, organized as a
//! Massive-Array-of-Idle-Disks: only one *disk group* is spun up at a
//! time. Accessing data in the loaded group performs like a normal
//! capacity-tier disk array (1-2 GB/s); accessing any other group first
//! requires a *group switch* — spinning the active group down and the
//! target group up — costing roughly 8-20 seconds (Pelican: 8 s).
//!
//! This crate models exactly the device the paper emulates with its Swift
//! middleware:
//!
//! * [`object`] — object identifiers and metadata (tenant, table, segment,
//!   logical size, group placement).
//! * [`layout`] — data-placement policies across groups, including the
//!   four layouts of §5.2.3 (all-in-one, two-clients-per-group,
//!   one-client-per-group, incremental), plus the device-level
//!   [`PlacementPolicy`] dividing objects across the shards of a
//!   multi-CSD fleet.
//! * [`store`] — the object store holding real segment payloads behind a
//!   GET interface.
//! * [`sched`] — group-switch scheduling policies: object-FCFS,
//!   query-FCFS, Max-Queries, and the paper's rank-based algorithm
//!   `R(g) = N_g + K·ΣW_q(g)` with `K = 1` (§4.4) — all deciding over
//!   the incrementally-indexed request queue
//!   ([`sched::queue::RequestQueue`], O(log n) per submit/serve; the
//!   pre-index full-rescan [`sched::naive::NaiveQueue`] survives as the
//!   differential-test reference and perf baseline).
//! * [`device`] — the device state machine: request queue → pick group →
//!   switch (latency S) → serve every pending request on the group
//!   (no preemption) → repeat; with semantically-smart intra-group
//!   ordering (round-robin across a query's tables). Serving runs
//!   through a multi-stream *service pipeline*
//!   ([`CsdConfig::parallel_streams`](device::CsdConfig) transfer
//!   slots, §5.2.1): intra-group transfers overlap, and a switch
//!   decided mid-drain is armed to start the instant the pipe drains.
//! * [`metrics`] — switch/transfer counters per device and per client.
//! * [`power`] — MAID energy accounting (the ~80 % power saving that
//!   motivates cold storage economics).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod device;
pub mod layout;
pub mod metrics;
pub mod object;
pub mod power;
pub mod sched;
pub mod store;

pub use cache::{CacheConfig, CachePolicy, CacheStats, ShardCache, TierConfig};
pub use device::{CsdConfig, CsdDevice, Delivery, IntraGroupOrder, LedgerMode, StreamModel};
pub use layout::{BasePlacement, Layout, LayoutPolicy, PlacementPolicy};
pub use object::{GroupId, ObjectId, ObjectMeta, QueryId};
pub use power::{EnergyReport, PowerModel};
pub use sched::{
    FcfsObject, FcfsQuery, FcfsSlack, GroupLens, GroupScheduler, InFlight, MaxQueries, NaiveQueue,
    QueueView, RankBased, RequestIndex, RequestQueue, SchedPolicy, ServeScope,
};
pub use store::ObjectStore;
